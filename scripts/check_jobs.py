#!/usr/bin/env python
"""Static audit of the service job-type registry.

Every registered :class:`repro.service.JobType` must produce specs
that are safe to ship across process boundaries and to use as cache
addresses.  For each type, using its declared ``sample_params``, the
audit checks (without *running* anything):

* the implementation is a module-level function (picklable by
  reference) with a docstring,
* ``sample_params`` are declared and canonically JSON-able,
* the spec pickle round-trips to an equal spec,
* the spec hash is *stable*: identical across repeated computation,
  across the pickle round trip, and across params-dict insertion
  order — the property that makes the artifact store a cache rather
  than a lottery,
* the hash ignores execution policy (timeout/retries) but depends on
  the seed,
* the declared ``sample_result`` is picklable *and* JSON-able — the
  result must cross the worker pipe and land in the artifact store,
  so it must not smuggle process-local handles (compiled programs,
  solver engines, open stores) out of a warm worker,
* the job function captures no closure state (``__closure__`` is
  empty): a persistent worker runs many jobs, and captured mutable
  state would make results depend on execution history instead of
  ``(params, seed)``.

Run directly (exit 1 on problems) or import :func:`audit` from a test.

Usage::

    PYTHONPATH=src python scripts/check_jobs.py
"""

from __future__ import annotations

import pickle
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def audit() -> List[str]:
    """Return one problem string per registry violation (empty = clean)."""
    from repro.netlist import canonical_json
    from repro.service import JobSpec, registered_job_types

    problems: List[str] = []
    for name, job_type in sorted(registered_job_types().items()):
        fn = job_type.fn
        where = f"{fn.__module__}.{fn.__qualname__}"

        if not (fn.__doc__ or "").strip():
            problems.append(f"{name}: job function {where} has no "
                            "docstring")
        try:
            unpickled = pickle.loads(pickle.dumps(fn))
        except Exception as exc:   # noqa: BLE001
            problems.append(
                f"{name}: job function {where} is not picklable "
                f"({type(exc).__name__}: {exc}) — it must be a "
                "module-level function")
        else:
            if unpickled is not fn:
                problems.append(
                    f"{name}: job function {where} does not pickle "
                    "by reference")

        if getattr(fn, "__closure__", None):
            problems.append(
                f"{name}: job function {where} captures closure "
                "state — warm-worker results must depend only on "
                "(params, seed), not on captured objects")

        sample_result = dict(job_type.sample_result)
        if not sample_result:
            problems.append(
                f"{name}: no sample_result declared — the audit "
                "cannot prove the result crosses the worker pipe")
        else:
            try:
                canonical_json(sample_result)
            except (TypeError, ValueError) as exc:
                problems.append(
                    f"{name}: sample_result is not JSON-able ({exc}) "
                    "— results must be storable artifacts, free of "
                    "process-local handles")
            try:
                clone = pickle.loads(pickle.dumps(sample_result))
            except Exception as exc:   # noqa: BLE001
                problems.append(
                    f"{name}: sample_result is not picklable "
                    f"({type(exc).__name__}: {exc}) — results must "
                    "cross the worker pipe")
            else:
                if clone != sample_result:
                    problems.append(
                        f"{name}: sample_result != pickle round trip")

        sample = dict(job_type.sample_params)
        if not sample and name not in ():
            problems.append(
                f"{name}: no sample_params declared — the audit "
                "cannot prove spec portability")
        try:
            canonical_json(sample)
        except (TypeError, ValueError) as exc:
            problems.append(
                f"{name}: sample_params are not canonically JSON-able "
                f"({exc})")
            continue

        try:
            spec = JobSpec(name, params=sample, seed=7)
        except Exception as exc:   # noqa: BLE001
            problems.append(
                f"{name}: JobSpec construction failed on "
                f"sample_params ({type(exc).__name__}: {exc})")
            continue

        # Pickle round trip: equal spec, equal hash.
        try:
            clone = pickle.loads(pickle.dumps(spec))
        except Exception as exc:   # noqa: BLE001
            problems.append(
                f"{name}: spec is not picklable "
                f"({type(exc).__name__}: {exc})")
            continue
        if clone != spec:
            problems.append(f"{name}: spec != pickle round trip")
        if clone.spec_hash != spec.spec_hash:
            problems.append(
                f"{name}: spec hash changes across pickling")

        # Hash stability: recomputation and key-order independence.
        if spec.spec_hash != JobSpec(name, params=sample,
                                     seed=7).spec_hash:
            problems.append(f"{name}: spec hash is not deterministic")
        reordered = dict(reversed(list(sample.items())))
        if spec.spec_hash != JobSpec(name, params=reordered,
                                     seed=7).spec_hash:
            problems.append(
                f"{name}: spec hash depends on params insertion order")

        # Policy out, seed in.
        if spec.spec_hash != JobSpec(name, params=sample, seed=7,
                                     timeout=1.0, retries=5).spec_hash:
            problems.append(
                f"{name}: spec hash leaks execution policy "
                "(timeout/retries must not change what is computed)")
        if spec.spec_hash == JobSpec(name, params=sample,
                                     seed=8).spec_hash:
            problems.append(f"{name}: spec hash ignores the seed")
    return problems


def main() -> int:
    problems = audit()
    from repro.service import registered_job_types

    total = len(registered_job_types())
    if problems:
        print(f"job registry audit: {len(problems)} problem(s) "
              f"across {total} registered job types")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"job registry audit: {total} job types, all specs "
          "picklable and hash-stable")
    return 0


if __name__ == "__main__":
    sys.exit(main())
