#!/usr/bin/env python
"""Static audit of the flow pass registry.

Walks every registered :class:`repro.flow.Pass` and fails on:

* a missing or non-Table-II ``stage``,
* a missing ``effects`` declaration,
* an effects declaration that is not *total* — every tracked
  :class:`~repro.flow.properties.SecurityProperty` must be explicitly
  preserved, established, or invalidated (the manager treats undeclared
  as invalidated, but a pass relying on that default is a pass nobody
  has thought about — exactly what this check exists to catch),
* a registry-key / class-attribute name mismatch,
* a pass class without a docstring (the declaration's rationale).

Run directly (exit 1 on problems) or import :func:`audit` from a test.

Usage::

    PYTHONPATH=src python scripts/check_passes.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def audit() -> List[str]:
    """Return one problem string per registry violation (empty = clean)."""
    from repro.core.stages import DesignStage
    from repro.flow import Effects, registered_passes

    problems: List[str] = []
    for name, cls in sorted(registered_passes().items()):
        where = f"{cls.__module__}.{cls.__qualname__}"
        if cls.name != name:
            problems.append(
                f"{name}: registry key does not match {where}.name "
                f"({cls.name!r})")
        if not isinstance(cls.stage, DesignStage):
            problems.append(
                f"{name}: missing stage (must be a DesignStage / "
                f"Table II row), got {cls.stage!r}")
        if not isinstance(cls.effects, Effects):
            problems.append(
                f"{name}: missing effects declaration ({where})")
        else:
            undeclared = cls.effects.undeclared
            if undeclared:
                props = ", ".join(sorted(p.value for p in undeclared))
                problems.append(
                    f"{name}: undeclared effect on {props} — declare "
                    f"preserves/establishes/invalidates explicitly")
        if not (cls.__doc__ or "").strip():
            problems.append(f"{name}: pass class {where} has no "
                            "docstring explaining its declaration")
    return problems


def main() -> int:
    problems = audit()
    from repro.flow import registered_passes

    total = len(registered_passes())
    if problems:
        print(f"pass registry audit: {len(problems)} problem(s) "
              f"across {total} registered passes")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"pass registry audit: {total} passes, all declarations total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
