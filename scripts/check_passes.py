#!/usr/bin/env python
"""Static audit of the flow pass registry.

Walks every registered :class:`repro.flow.Pass` and fails on:

* a missing or non-Table-II ``stage``,
* a missing ``effects`` declaration,
* an effects declaration that is not *total* — every tracked
  :class:`~repro.flow.properties.SecurityProperty` must be explicitly
  preserved, established, or invalidated (the manager treats undeclared
  as invalidated, but a pass relying on that default is a pass nobody
  has thought about — exactly what this check exists to catch),
* a registry-key / class-attribute name mismatch,
* a pass class without a docstring (the declaration's rationale),
* a physical-synthesis pass that claims to leave all three layout
  properties (probing / FIA / Trojan) untouched — physical passes move
  geometry, so each must establish or invalidate at least one,
* a pass establishing a layout property from outside the
  physical-synthesis stage (layout metrics are measured on routed
  geometry, which only physical passes produce or edit),
* a closure ECO (``is_closure_eco = True``) that breaks the ECO
  contract: netlist untouched (functional equivalence *preserved*),
  at least one layout property established, physical-synthesis stage.

Run directly (exit 1 on problems) or import :func:`audit` from a test.

Usage::

    PYTHONPATH=src python scripts/check_passes.py
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))


def audit() -> List[str]:
    """Return one problem string per registry violation (empty = clean)."""
    from repro.core.stages import DesignStage
    from repro.flow import Effects, registered_passes
    from repro.flow.properties import SecurityProperty

    layout_props = frozenset((SecurityProperty.PROBING_EXPOSURE,
                              SecurityProperty.FIA_EXPOSURE,
                              SecurityProperty.TROJAN_INSERTABILITY))
    problems: List[str] = []
    for name, cls in sorted(registered_passes().items()):
        where = f"{cls.__module__}.{cls.__qualname__}"
        if cls.name != name:
            problems.append(
                f"{name}: registry key does not match {where}.name "
                f"({cls.name!r})")
        if not isinstance(cls.stage, DesignStage):
            problems.append(
                f"{name}: missing stage (must be a DesignStage / "
                f"Table II row), got {cls.stage!r}")
        if not isinstance(cls.effects, Effects):
            problems.append(
                f"{name}: missing effects declaration ({where})")
        else:
            undeclared = cls.effects.undeclared
            if undeclared:
                props = ", ".join(sorted(p.value for p in undeclared))
                problems.append(
                    f"{name}: undeclared effect on {props} — declare "
                    f"preserves/establishes/invalidates explicitly")
            problems.extend(_layout_problems(name, cls, layout_props,
                                             SecurityProperty))
        if not (cls.__doc__ or "").strip():
            problems.append(f"{name}: pass class {where} has no "
                            "docstring explaining its declaration")
    return problems


def _layout_problems(name, cls, layout_props, SecurityProperty):
    """Layout-property and closure-ECO contract checks for one pass."""
    from repro.core.stages import DesignStage

    problems: List[str] = []
    physical = cls.stage is DesignStage.PHYSICAL_SYNTHESIS
    established = cls.effects.establishes & layout_props
    touched = established | (cls.effects.invalidates & layout_props)
    if physical and not touched:
        problems.append(
            f"{name}: physical-synthesis pass declares no effect on any "
            f"layout property — geometry changes must establish or "
            f"invalidate probing/FIA/Trojan exposure")
    if established and not physical:
        props = ", ".join(sorted(p.value for p in established))
        problems.append(
            f"{name}: establishes layout property {props} outside the "
            f"physical-synthesis stage — layout metrics exist only on "
            f"routed geometry")
    if getattr(cls, "is_closure_eco", False):
        fe = SecurityProperty.FUNCTIONAL_EQUIVALENCE
        if fe not in cls.effects.preserves:
            problems.append(
                f"{name}: closure ECO must preserve functional "
                f"equivalence (ECOs edit geometry, never the netlist)")
        if not established:
            problems.append(
                f"{name}: closure ECO establishes no layout property — "
                f"an ECO that closes nothing is not a closure ECO")
        if not physical:
            problems.append(
                f"{name}: closure ECO must belong to the "
                f"physical-synthesis stage")
    return problems


def main() -> int:
    problems = audit()
    from repro.flow import registered_passes

    total = len(registered_passes())
    if problems:
        print(f"pass registry audit: {len(problems)} problem(s) "
              f"across {total} registered passes")
        for p in problems:
            print(f"  - {p}")
        return 1
    print(f"pass registry audit: {total} passes, all declarations total")
    return 0


if __name__ == "__main__":
    sys.exit(main())
