#!/usr/bin/env python
"""Static audit of the evaluation gateway's HTTP API surface.

The gateway's route table is data (:data:`repro.service.gateway.
ROUTES`), so its contracts are checkable without binding a socket:

* every route handler is an ``async`` module-level function whose
  signature carries an explicit ``tenant`` parameter — the
  tenant-scoping contract; a handler that ignores tenancy cannot
  even be registered without showing up here,
* every handler docstring documents its error surface: an
  ``Errors:`` section whose entries are ``NNN code`` pairs drawn
  from the gateway's status/code vocabulary,
* route patterns are well-formed: versioned under ``/v1/``, methods
  restricted to GET/POST, capture segments named, and no two routes
  claim the same (method, pattern),
* every *registered job type* is reachable through the submit
  endpoint: feeding its declared ``sample_params`` to
  :func:`~repro.service.gateway.spec_from_body` must yield a spec
  whose hash equals the directly-constructed
  :class:`~repro.service.jobs.JobSpec` — the transport-parity
  property (an HTTP submission can never hash differently from the
  same CLI submission),
* every campaign expander is registered under a non-empty name and
  is callable.

Run directly (exit 1 on problems) or import :func:`audit` from a test.

Usage::

    PYTHONPATH=src python scripts/check_api.py
"""

from __future__ import annotations

import inspect
import re
import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

#: ``NNN code`` pairs a handler may document (the gateway vocabulary).
KNOWN_ERRORS = {
    (400, "bad_request"), (401, "unauthenticated"), (404, "not_found"),
    (405, "method_not_allowed"), (409, "conflict"), (413, "too_large"),
    (429, "rate_limited"), (500, "internal"), (503, "quota_exceeded"),
}

_ERROR_LINE = re.compile(r"^(\d{3})\s+([a-z_]+)\b")
_SEGMENT_OK = re.compile(r"\A(\{[a-z_]+\}|[a-z0-9_.-]+)\Z")


def _docstring_errors(doc: str) -> List[str]:
    """The ``NNN code`` pairs listed under a docstring's Errors: section."""
    lines = doc.splitlines()
    out = []
    in_section = False
    for line in lines:
        text = line.strip()
        if text.startswith("Errors:"):
            in_section = True
            continue
        if in_section:
            match = _ERROR_LINE.match(text)
            if match:
                out.append((int(match.group(1)), match.group(2)))
    return out


def audit() -> List[str]:
    """Return one problem string per API violation (empty = clean)."""
    from repro.service.gateway import (
        CAMPAIGN_EXPANDERS,
        ROUTES,
        spec_from_body,
    )
    from repro.service.jobs import JobSpec, registered_job_types

    problems: List[str] = []

    # -- route table shape --------------------------------------------
    seen = set()
    for route in ROUTES:
        where = f"{route.method} {route.pattern}"
        if (route.method, route.pattern) in seen:
            problems.append(f"{where}: duplicate route")
        seen.add((route.method, route.pattern))
        if route.method not in ("GET", "POST"):
            problems.append(f"{where}: method must be GET or POST")
        if not route.pattern.startswith("/v1/"):
            problems.append(f"{where}: pattern must live under /v1/")
        for segment in route.pattern.strip("/").split("/"):
            if not _SEGMENT_OK.match(segment):
                problems.append(f"{where}: malformed segment "
                                f"{segment!r}")
        if route.kind not in ("json", "sse"):
            problems.append(f"{where}: unknown kind {route.kind!r}")

        # -- handler contract -----------------------------------------
        handler = route.handler
        name = getattr(handler, "__qualname__", repr(handler))
        if not inspect.iscoroutinefunction(handler):
            problems.append(f"{where}: handler {name} is not async")
        if "." in name:
            problems.append(f"{where}: handler {name} is not a "
                            "module-level function")
        params = list(inspect.signature(handler).parameters)
        if "tenant" not in params:
            problems.append(f"{where}: handler {name} takes no "
                            "'tenant' parameter (tenant-scoping "
                            "contract)")
        doc = inspect.getdoc(handler) or ""
        if not doc.strip():
            problems.append(f"{where}: handler {name} has no docstring")
        elif "Errors:" not in doc:
            problems.append(f"{where}: handler {name} docstring has "
                            "no 'Errors:' section")
        else:
            for status, code in _docstring_errors(doc):
                if (status, code) not in KNOWN_ERRORS:
                    problems.append(
                        f"{where}: documents unknown error "
                        f"'{status} {code}'")

    # -- transport parity: every job type reachable and hash-stable ---
    for name, job_type in sorted(registered_job_types().items()):
        body = {"job_type": name,
                "params": dict(job_type.sample_params), "seed": 7}
        try:
            via_http = spec_from_body(body)
        except Exception as exc:   # noqa: BLE001 — any refusal is a bug
            problems.append(f"job type {name}: spec_from_body refused "
                            f"sample_params: {exc}")
            continue
        direct = JobSpec(name, params=dict(job_type.sample_params),
                         seed=7)
        if via_http.spec_hash != direct.spec_hash:
            problems.append(
                f"job type {name}: HTTP-built spec hashes "
                f"{via_http.spec_hash[:12]}…, direct construction "
                f"{direct.spec_hash[:12]}… — transport changes the "
                "cache address")

    # -- campaign registry --------------------------------------------
    for name, expander in sorted(CAMPAIGN_EXPANDERS.items()):
        if not name or not isinstance(name, str):
            problems.append(f"campaign {name!r}: invalid name")
        if not callable(expander):
            problems.append(f"campaign {name}: expander not callable")

    return problems


def main() -> int:
    problems = audit()
    if problems:
        print(f"check_api: {len(problems)} problem(s)")
        for problem in problems:
            print(f"  - {problem}")
        return 1
    print("check_api: API surface is clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
