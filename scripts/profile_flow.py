#!/usr/bin/env python
"""Profile any flow / benchmark entry point under cProfile.

This is the hotspot-hunting tool that found the SAT-core bottleneck
behind ``test_fig1_classical_flow`` (clause propagation + lazy-heap
decisions + per-fault re-encoding).  It runs a ``module:callable``
target with ``src/`` and ``benchmarks/`` on ``sys.path`` and prints the
top entries by cumulative and internal time, so the next hunt is one
command instead of a throwaway script.

Usage::

    python scripts/profile_flow.py bench_fig1:run_classical
    python scripts/profile_flow.py bench_sat:run_atpg_aes_sbox
    python scripts/profile_flow.py repro.dft.atpg:run_atpg --limit 40
    python scripts/profile_flow.py bench_fig1:run_classical -o fig1.pstats

Targets taking no arguments are called directly; a saved ``.pstats``
file can be explored later with ``pstats`` or snakeviz-alikes.
"""

from __future__ import annotations

import argparse
import cProfile
import importlib
import pstats
import sys
import time
from pathlib import Path
from typing import Optional

REPO_ROOT = Path(__file__).resolve().parent.parent


def resolve_target(spec: str):
    """Import ``module:callable`` and return the callable."""
    if ":" not in spec:
        raise SystemExit(
            f"target {spec!r} must have the form module:callable "
            f"(e.g. bench_fig1:run_classical)")
    module_name, func_name = spec.split(":", 1)
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, func_name)
    except AttributeError:
        raise SystemExit(f"{module_name} has no attribute {func_name!r}")
    if not callable(func):
        raise SystemExit(f"{spec} is not callable")
    return func


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0])
    parser.add_argument("target",
                        help="module:callable to profile "
                             "(benchmarks/ and src/ are importable)")
    parser.add_argument("--limit", type=int, default=25,
                        help="rows per table (default: 25)")
    parser.add_argument("--sort", choices=["cumulative", "tottime", "both"],
                        default="both",
                        help="which table(s) to print (default: both)")
    parser.add_argument("-o", "--output", type=Path, default=None,
                        help="also dump raw stats to this .pstats file")
    args = parser.parse_args(argv)

    sys.path.insert(0, str(REPO_ROOT / "src"))
    sys.path.insert(0, str(REPO_ROOT / "benchmarks"))
    func = resolve_target(args.target)

    profiler = cProfile.Profile()
    began = time.perf_counter()
    profiler.enable()
    func()
    profiler.disable()
    wall = time.perf_counter() - began
    print(f"{args.target}: {wall:.3f}s wall (cProfile overhead included)\n")

    stats = pstats.Stats(profiler)
    sorts = (["cumulative", "tottime"] if args.sort == "both"
             else [args.sort])
    for sort in sorts:
        print(f"--- top {args.limit} by {sort} ---")
        stats.sort_stats(sort).print_stats(args.limit)
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw stats written to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
