"""Tests for fault injection: models, campaigns, codes, DFA, sensors."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import AES128
from repro.fia import (
    BIT_FAULTS,
    DetectAndSuppressAES,
    DfaAttacker,
    Fault,
    FaultDiscriminator,
    FaultKind,
    InfectiveAES,
    Response,
    Verdict,
    attack_fault_stream,
    dfa_on_unprotected,
    duplicate_and_compare,
    enumerate_faults,
    fault_campaign,
    formal_coverage,
    greedy_sensor_placement,
    inject_fault,
    injection_campaign,
    last_round_candidates,
    natural_fault_stream,
    parity_protect,
    prove_fault_detected,
    residue_protect_adder,
    sample_faults,
    tmr_protect,
    with_fault_control,
)
from repro.netlist import (
    GateType,
    c17,
    decode_int,
    encode_int,
    output_values,
    ripple_carry_adder,
    simulate,
)


class TestInjection:
    def test_stuck_at_changes_behavior(self):
        n = c17()
        faulty = inject_fault(n, Fault("G10", FaultKind.STUCK_AT_1))
        stim = {k: 1 for k in n.inputs}
        # G10 = NAND(1,1) = 0 normally; stuck at 1 flips G22.
        assert simulate(faulty, stim)["G10"] == 1

    def test_bit_flip_inverts(self):
        n = c17()
        faulty = inject_fault(n, Fault("G16", FaultKind.BIT_FLIP))
        stim = {k: 0 for k in n.inputs}
        good = simulate(n, stim)
        bad = simulate(faulty, stim)
        flipped = [net for net in ("G22", "G23")
                   if good[net] != bad[net]]
        assert flipped  # the inversion must reach an output for this stim

    def test_stuck_input(self):
        n = c17()
        faulty = inject_fault(n, Fault("G1", FaultKind.STUCK_AT_0))
        v0 = output_values(faulty, {k: 1 for k in n.inputs})
        v1 = output_values(faulty, {**{k: 1 for k in n.inputs}, "G1": 0})
        assert v0 == v1  # input value no longer matters

    def test_fault_control_toggles(self):
        n = c17()
        fault = Fault("G16", FaultKind.BIT_FLIP)
        inst, enables = with_fault_control(n, [fault])
        stim = {k: 1 for k in n.inputs}
        stim[enables[fault]] = 0
        assert output_values(inst, stim) == output_values(
            n, {k: 1 for k in n.inputs})
        stim[enables[fault]] = 1
        assert output_values(inst, stim) != output_values(
            n, {k: 1 for k in n.inputs})

    def test_enumerate_and_sample(self):
        n = c17()
        all_faults = enumerate_faults(n)
        assert len(all_faults) == 2 * len(n.gates)
        sampled = sample_faults(n, 5, seed=1)
        assert len(sampled) == 5
        assert set(sampled) <= set(
            enumerate_faults(n, kinds=(FaultKind.BIT_FLIP,)))


class TestCodes:
    def setup_method(self):
        self.payload = ripple_carry_adder(4)

    def _functional_check(self, protected, a, b):
        stim = {}
        stim.update(encode_int(a, [f"a{i}" for i in range(4)]))
        stim.update(encode_int(b, [f"b{i}" for i in range(4)]))
        values = simulate(protected.netlist, stim)
        got = decode_int(values, [f"o_s{i}" for i in range(4)] + ["o_cout"])
        assert got == a + b
        assert values["alarm"] == 0

    @pytest.mark.parametrize("factory", [
        duplicate_and_compare, parity_protect, tmr_protect,
    ])
    def test_protected_functional(self, factory):
        protected = factory(self.payload)
        protected.netlist.validate()
        for a, b in [(0, 0), (15, 15), (7, 9)]:
            self._functional_check(protected, a, b)

    def test_residue_functional(self):
        protected = residue_protect_adder(4)
        for a, b in [(0, 0), (15, 15), (5, 11)]:
            self._functional_check(protected, a, b)

    def test_duplication_full_coverage(self):
        protected = duplicate_and_compare(self.payload)
        faults = [Fault(g, FaultKind.STUCK_AT_0)
                  for g in protected.netlist.gates if g.startswith("m_")]
        report = fault_campaign(protected.netlist, faults, 64,
                                alarm="alarm")
        assert report.coverage == 1.0
        assert report.silent == 0

    def test_parity_misses_even_errors(self):
        protected = parity_protect(self.payload)
        faults = [Fault(g, FaultKind.STUCK_AT_0)
                  for g in protected.netlist.gates if g.startswith("m_")]
        report = fault_campaign(protected.netlist, faults, 128,
                                alarm="alarm")
        assert report.coverage < 1.0
        assert report.silent > 0

    def test_tmr_masks_single_faults(self):
        protected = tmr_protect(self.payload)
        faults = [Fault(g, FaultKind.STUCK_AT_1)
                  for g in protected.netlist.gates
                  if g.startswith("r1_")][:20]
        report = fault_campaign(protected.netlist, faults, 64,
                                alarm="alarm",
                                payload_outputs=protected.payload_outputs)
        assert report.propagating == 0  # corrected, not just detected

    def test_residue_catches_single_faults(self):
        protected = residue_protect_adder(4)
        faults = [Fault(g, FaultKind.STUCK_AT_1)
                  for g in protected.netlist.gates if g.startswith("m_")]
        report = fault_campaign(protected.netlist, faults, 128,
                                alarm="alarm")
        assert report.coverage > 0.9

    def test_overhead_ordering(self):
        dup = duplicate_and_compare(self.payload)
        tmr = tmr_protect(self.payload)
        assert tmr.overhead_cells > dup.overhead_cells


class TestFormalFaultAnalysis:
    def test_prove_duplication_fault(self):
        protected = duplicate_and_compare(ripple_carry_adder(3))
        fault = Fault(next(g for g in protected.netlist.gates
                           if g.startswith("m_fa0")),
                      FaultKind.STUCK_AT_0)
        assert prove_fault_detected(
            protected.netlist, fault, "alarm").provably_detected

    def test_witness_is_real_silent_corruption(self):
        protected = parity_protect(ripple_carry_adder(3))
        faults = [Fault(g, FaultKind.STUCK_AT_1)
                  for g in protected.netlist.gates if g.startswith("m_")]
        missed = None
        for fault in faults:
            result = prove_fault_detected(protected.netlist, fault, "alarm")
            if not result.provably_detected:
                missed = (fault, result)
                break
        assert missed is not None
        fault, result = missed
        faulty = inject_fault(protected.netlist, fault)
        good = output_values(protected.netlist, result.witness)
        bad = output_values(faulty, result.witness)
        corrupted = any(
            good[o] != bad[o] for o in protected.payload_outputs)
        assert corrupted and bad["alarm"] == 0

    def test_formal_coverage_matches_simulation(self):
        protected = duplicate_and_compare(ripple_carry_adder(2))
        faults = [Fault(g, FaultKind.STUCK_AT_0)
                  for g in protected.netlist.gates
                  if g.startswith("m_")][:6]
        coverage, missed = formal_coverage(protected.netlist, faults,
                                           "alarm")
        assert coverage == 1.0 and not missed


class TestDfa:
    def test_candidate_set_contains_true_key(self):
        rng = random.Random(0)
        key_byte = rng.randrange(256)
        state = rng.randrange(256)
        from repro.crypto import SBOX
        correct = SBOX[state] ^ key_byte
        fault = 0x04
        faulty = SBOX[state ^ fault] ^ key_byte
        candidates = last_round_candidates(correct, faulty)
        assert key_byte in candidates

    def test_full_attack_recovers_key(self):
        key = [random.Random(5).randrange(256) for _ in range(16)]
        result = dfa_on_unprotected(key, seed=1)
        assert result.success
        assert result.recovered_master_key == key

    def test_detect_and_suppress_blocks(self):
        key = [random.Random(6).randrange(256) for _ in range(16)]
        chip = DetectAndSuppressAES(key)
        attacker = DfaAttacker(
            chip.encrypt,
            lambda pt, b, f: chip.encrypt_with_fault(pt, b, f), seed=2)
        assert not attacker.attack(max_faults_per_byte=3).success
        assert chip.detected_faults > 0

    def test_infective_blocks(self):
        key = [random.Random(7).randrange(256) for _ in range(16)]
        chip = InfectiveAES(key, seed=3)
        attacker = DfaAttacker(
            chip.encrypt,
            lambda pt, b, f: chip.encrypt_with_fault(pt, b, f), seed=4)
        assert not attacker.attack(max_faults_per_byte=3).success
        assert chip.infections > 0

    def test_infective_output_unchanged_without_fault(self):
        key = list(range(16))
        chip = InfectiveAES(key)
        pt = list(range(16))
        assert chip.encrypt_with_fault(pt, 0, 0) == AES128(key).encrypt(pt)


class TestSensors:
    def test_full_coverage(self):
        rng = random.Random(1)
        cells = {f"g{i}": (rng.uniform(0, 50), rng.uniform(0, 50))
                 for i in range(25)}
        plan = greedy_sensor_placement(cells, radius=20)
        assert plan.coverage() == 1.0
        assert not plan.uncovered()

    def test_budget_limits_coverage(self):
        cells = {"a": (0, 0), "b": (100, 100), "c": (0, 100)}
        plan = greedy_sensor_placement(cells, radius=5, max_sensors=1)
        assert plan.coverage() < 1.0
        assert len(plan.sensors) == 1

    def test_injection_campaign(self):
        cells = {"a": (0, 0), "b": (10, 0)}
        plan = greedy_sensor_placement(cells, radius=3)
        result = injection_campaign(plan, [(0, 0), (50, 50)])
        assert result["detected"] == 1.0
        assert result["detection_rate"] == 0.5


class TestDiscrimination:
    def test_natural_stream_recovers(self):
        disc = FaultDiscriminator()
        last = None
        for event in natural_fault_stream(4, 50_000, ["a", "b", "c"],
                                          seed=3):
            last = disc.observe(event)
        assert last.verdict is Verdict.NATURAL
        assert last.response is Response.RECOVER_AND_RESUME

    def test_attack_stream_flagged(self):
        disc = FaultDiscriminator()
        last = None
        for event in attack_fault_stream(6, 0, "crypto", seed=1):
            last = disc.observe(event)
        assert last.verdict is Verdict.MALICIOUS
        assert last.response in (Response.REKEY, Response.DISCONTINUE)
        assert last.reasons

    def test_empty_window(self):
        disc = FaultDiscriminator()
        assessment = disc.assess(now=0.0)
        assert assessment.verdict is Verdict.NATURAL


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 7))
def test_dfa_candidates_property(key_byte, state, fault_bit):
    """The true key always survives candidate filtering."""
    from repro.crypto import SBOX
    fault = 1 << fault_bit
    correct = SBOX[state] ^ key_byte
    faulty = SBOX[state ^ fault] ^ key_byte
    if correct != faulty:
        assert key_byte in last_round_candidates(correct, faulty)
