"""Tests for logic synthesis: passes, re-association, techmap, flow."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    GateType,
    Netlist,
    arrival_times,
    exhaustive_truth_table,
    parity_tree,
    random_circuit,
)
from repro.synth import (
    BufferSweep,
    ConstantPropagation,
    DoubleInversionElimination,
    StructuralHashing,
    SynthesisFlow,
    balance_trees,
    camouflage_library,
    collect_trees,
    decompose_variadic,
    map_to_library,
    nand_inv_library,
    reassociate_for_timing,
    standard_library,
    synthesize,
    to_nand_inv,
)


def truth_of(netlist):
    return {o: exhaustive_truth_table(netlist, o) for o in netlist.outputs}


class TestConstantPropagation:
    def _one(self, gate_type, fanins_spec, expected_tt):
        """fanins_spec: list of 'a'/'0'/'1' (input / const0 / const1)."""
        n = Netlist()
        n.add_input("a")
        c0 = n.add_gate("zero", GateType.CONST0)
        c1 = n.add_gate("one", GateType.CONST1)
        lookup = {"a": "a", "0": "zero", "1": "one"}
        n.add_gate("y", gate_type, [lookup[f] for f in fanins_spec])
        n.add_gate("out", GateType.BUF, ["y"])
        n.add_output("out")
        ConstantPropagation()(n)
        assert exhaustive_truth_table(n, "out") == expected_tt

    def test_and_with_one(self):
        self._one(GateType.AND, ["a", "1"], [0, 1])

    def test_and_with_zero(self):
        self._one(GateType.AND, ["a", "0"], [0, 0])

    def test_nand_with_zero(self):
        self._one(GateType.NAND, ["a", "0"], [1, 1])

    def test_or_with_one(self):
        self._one(GateType.OR, ["a", "1"], [1, 1])

    def test_nor_with_zero(self):
        self._one(GateType.NOR, ["a", "0"], [1, 0])

    def test_xor_with_one(self):
        self._one(GateType.XOR, ["a", "1"], [1, 0])

    def test_xnor_with_one(self):
        self._one(GateType.XNOR, ["a", "1"], [0, 1])

    def test_xor_self_cancel(self):
        self._one(GateType.XOR, ["a", "a", "a"], [0, 1])

    def test_mux_const_select(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        c1 = n.add_gate("one", GateType.CONST1)
        n.add_gate("y", GateType.MUX, ["one", "a", "b"])
        n.add_gate("out", GateType.BUF, ["y"])
        n.add_output("out")
        ConstantPropagation()(n)
        # select=1 -> b : out = b
        assert exhaustive_truth_table(n, "out") == [0, 0, 1, 1]

    def test_mux_equal_branches(self):
        n = Netlist()
        n.add_input("s")
        n.add_input("a")
        n.add_gate("y", GateType.MUX, ["s", "a", "a"])
        n.add_gate("out", GateType.BUF, ["y"])
        n.add_output("out")
        ConstantPropagation()(n)
        assert n.gates["out"].fanins == ["a"]

    def test_random_circuits_preserved(self):
        for seed in range(4):
            n = random_circuit(6, 50, 3, seed=seed)
            golden = truth_of(n)
            ConstantPropagation()(n)
            assert truth_of(n) == golden


class TestOtherPasses:
    def test_double_inversion(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("n1", GateType.NOT, ["a"])
        n.add_gate("n2", GateType.NOT, ["n1"])
        n.add_gate("y", GateType.BUF, ["n2"])
        n.add_output("y")
        DoubleInversionElimination()(n)
        assert n.gates["y"].fanins == ["a"]

    def test_structural_hashing_merges(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("g1", GateType.AND, ["a", "b"])
        n.add_gate("g2", GateType.AND, ["b", "a"])  # commutative duplicate
        n.add_gate("y", GateType.XOR, ["g1", "g2"])
        n.add_output("y")
        report = StructuralHashing()(n)
        assert report.rewrites >= 1
        # XOR(x, x) is functionally 0 but strash only merges structure.
        assert exhaustive_truth_table(n, "y") == [0, 0, 0, 0]

    def test_buffer_sweep_keeps_outputs(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("b1", GateType.BUF, ["a"])
        n.add_gate("g", GateType.NOT, ["b1"])
        n.add_gate("y", GateType.BUF, ["g"])
        n.add_output("y")
        BufferSweep()(n)
        assert "y" in n.gates          # output buffer kept
        assert n.gates["g"].fanins == ["a"]  # internal buffer removed

    def test_flow_reduces_random_circuit(self):
        n = random_circuit(8, 120, 4, seed=9)
        result = SynthesisFlow().run(n, verify=True)
        assert result.netlist.num_cells() <= n.num_cells()
        assert result.ppa_after.area <= result.ppa_before.area

    def test_synthesize_helper(self):
        n = random_circuit(6, 40, 2, seed=5)
        golden = truth_of(n)
        m = synthesize(n, verify=True)
        assert truth_of(m) == golden


class TestReassociation:
    def test_collect_trees_chain(self):
        p = parity_tree(6, balanced=False)
        trees = collect_trees(p)
        assert len(trees) == 1
        assert sorted(trees[0].leaves) == [f"x{i}" for i in range(6)]

    def test_function_preserved(self):
        p = parity_tree(7, balanced=False)
        golden = exhaustive_truth_table(p)
        reassociate_for_timing(p)
        assert exhaustive_truth_table(p) == golden

    def test_depth_reduced(self):
        p = parity_tree(16, balanced=False)
        before = p.depth()
        reassociate_for_timing(p)
        assert p.depth() < before

    def test_balance_trees(self):
        p = parity_tree(9, balanced=False)
        golden = exhaustive_truth_table(p)
        assert balance_trees(p) == 1
        assert exhaustive_truth_table(p) == golden

    def test_late_input_near_root(self):
        p = parity_tree(6, balanced=False)
        reassociate_for_timing(p, input_arrivals={"x0": 1e6})
        # x0 must now be a fanin of the root XOR.
        root = p.gates[p.outputs[0]].fanins[0]
        assert "x0" in p.gates[root].fanins

    def test_xnor_parity_preserved(self):
        n = Netlist()
        for i in range(4):
            n.add_input(f"x{i}")
        n.add_gate("t0", GateType.XNOR, ["x0", "x1"])
        n.add_gate("t1", GateType.XOR, ["t0", "x2"])
        n.add_gate("y", GateType.XNOR, ["t1", "x3"])
        n.add_output("y")
        golden = exhaustive_truth_table(n, "y")
        reassociate_for_timing(n)
        assert exhaustive_truth_table(n, "y") == golden

    def test_chained_roots(self):
        # Tree root feeding another tree through a multi-fanout net.
        n = Netlist()
        for i in range(5):
            n.add_input(f"x{i}")
        n.add_gate("t0", GateType.XOR, ["x0", "x1"])
        n.add_gate("t1", GateType.XOR, ["t0", "x2"])
        n.add_gate("u0", GateType.XOR, ["t1", "x3"])
        n.add_gate("u1", GateType.XOR, ["u0", "x4"])
        n.add_gate("other", GateType.AND, ["t1", "x4"])  # t1 multi-fanout
        n.add_output("u1")
        n.add_output("other")
        golden = truth_of(n)
        reassociate_for_timing(n)
        n.validate()
        assert truth_of(n) == golden


class TestTechmap:
    def test_decompose_variadic(self):
        n = Netlist()
        for name in "abcd":
            n.add_input(name)
        n.add_gate("y", GateType.NAND, ["a", "b", "c", "d"])
        n.add_output("y")
        golden = exhaustive_truth_table(n, "y")
        decompose_variadic(n)
        assert all(len(g.fanins) <= 2 for g in n.gates.values())
        assert exhaustive_truth_table(n, "y") == golden

    @pytest.mark.parametrize("library_factory", [
        standard_library, nand_inv_library, camouflage_library,
    ])
    def test_mapping_preserves_function(self, library_factory):
        n = random_circuit(6, 50, 3, seed=21)
        golden = truth_of(n)
        lib = library_factory()
        map_to_library(n, lib)
        assert truth_of(n) == golden
        allowed = lib.gate_types | {
            GateType.INPUT, GateType.CONST0, GateType.CONST1, GateType.BUF,
        }
        assert {g.gate_type for g in n.gates.values()} <= allowed

    def test_nand_inv_only(self):
        n = random_circuit(5, 30, 2, seed=3)
        to_nand_inv(n)
        kinds = {g.gate_type for g in n.gates.values()
                 if g.gate_type.is_combinational
                 and g.gate_type is not GateType.BUF}
        assert kinds <= {GateType.NAND, GateType.NOT}

    def test_mux_mapped_out(self):
        n = Netlist()
        for name in ("s", "a", "b"):
            n.add_input(name)
        n.add_gate("y", GateType.MUX, ["s", "a", "b"])
        n.add_output("y")
        golden = exhaustive_truth_table(n, "y")
        map_to_library(n, nand_inv_library())
        assert exhaustive_truth_table(n, "y") == golden
        assert not any(g.gate_type is GateType.MUX for g in n.gates.values())


@settings(max_examples=15, deadline=None)
@given(st.integers(0, 10_000))
def test_synthesis_random_equivalence_property(seed):
    n = random_circuit(5, 35, 3, seed=seed)
    golden = truth_of(n)
    m = synthesize(n)
    assert truth_of(m) == golden


@settings(max_examples=10, deadline=None)
@given(st.integers(2, 12), st.booleans())
def test_reassociation_property(width, balanced):
    p = parity_tree(width, balanced=balanced)
    golden = exhaustive_truth_table(p)
    reassociate_for_timing(p)
    assert exhaustive_truth_table(p) == golden
