"""Tests for Trojan insertion, MERO, fingerprinting, and monitors."""

import random

import pytest

from repro.formal import solve_circuit
from repro.netlist import output_values, random_circuit, simulate
from repro.physical import annealing_placement
from repro.trojan import (
    CATALOGUE,
    apply_test_set,
    bisa_fill,
    build_fingerprint,
    build_ro_network,
    calibrate_iddq,
    detection_rate,
    generate_mero_tests,
    golden_population_delays,
    insert_monitors,
    insert_rare_trigger_trojan,
    insertion_feasibility,
    measure_chip,
    pair_trigger_coverage,
    rare_nodes,
    random_test_set,
    regional_leakage,
    ro_detection,
    screen_iddq,
    screen_population,
    signal_probabilities,
)


@pytest.fixture(scope="module")
def host():
    return random_circuit(12, 150, 6, seed=8)


@pytest.fixture(scope="module")
def trojan(host):
    return insert_rare_trigger_trojan(host, trigger_width=3, seed=1)


class TestInsertion:
    def test_signal_probabilities_bounds(self, host):
        probs = signal_probabilities(host, n_vectors=512)
        assert all(0.0 <= p <= 1.0 for p in probs.values())

    def test_rare_nodes_sorted(self, host):
        rare = rare_nodes(host, 0.2)
        probs = [p for _, _, p in rare]
        assert probs == sorted(probs)

    def test_trojan_netlist_valid(self, trojan):
        trojan.netlist.validate()

    def test_function_preserved_when_dormant(self, host, trojan):
        rng = random.Random(0)
        for _ in range(40):
            stim = {name: rng.randint(0, 1) for name in host.inputs}
            values = simulate(trojan.netlist, stim)
            if not values[trojan.trigger_net] & 1:
                assert output_values(host, stim) == {
                    o: values[o] for o in host.outputs}

    def test_payload_flips_when_triggered(self, host, trojan):
        trigger_input = solve_circuit(trojan.netlist, {},
                                      {trojan.trigger_net: 1})
        assert trigger_input is not None
        values = simulate(trojan.netlist, trigger_input)
        clean = output_values(host, trigger_input)
        dirty = {o: values[o] for o in host.outputs}
        # The payload flips the victim; outputs may or may not change
        # depending on propagation, but the victim's consumers see it.
        fanout = trojan.netlist.fanout_map()
        assert any(c.startswith("tj_pay") for c
                   in fanout[trojan.victim_net])

    def test_trigger_probability_small(self, trojan):
        assert 0 < trojan.trigger_probability < 0.05

    def test_victim_outside_trigger_cone(self, trojan):
        cone = trojan.netlist.transitive_fanin(
            [net for net, _ in trojan.trigger_inputs])
        assert trojan.victim_net not in cone

    def test_reproducible(self, host):
        a = insert_rare_trigger_trojan(host, trigger_width=2, seed=4)
        b = insert_rare_trigger_trojan(host, trigger_width=2, seed=4)
        assert a.victim_net == b.victim_net
        assert a.trigger_inputs == b.trigger_inputs

    def test_catalogue_nonempty(self):
        assert len(CATALOGUE) >= 4


class TestMero:
    def test_generation_meets_some_quota(self, host):
        tests = generate_mero_tests(host, n_detect=5, n_initial=100,
                                    seed=2)
        assert tests.vectors
        assert tests.quota_fraction > 0.3

    def test_pair_coverage_beats_random(self, host):
        mero = generate_mero_tests(host, n_detect=10, n_initial=200,
                                   seed=3)
        budget = len(mero.vectors)
        mero_cov = pair_trigger_coverage(host, mero.vectors, seed=1)
        rand_cov = pair_trigger_coverage(
            host, random_test_set(host, budget, seed=2), seed=1)
        assert mero_cov > rand_cov

    def test_apply_test_set_detects_or_not(self, host, trojan):
        outcome = apply_test_set(trojan, random_test_set(host, 20, seed=5))
        assert isinstance(outcome.triggered, bool)
        if outcome.triggered:
            assert outcome.triggering_vector is not None

    def test_detection_rate_bounds(self, host):
        vectors = random_test_set(host, 30, seed=6)
        rate = detection_rate(host, vectors, n_trojans=6, seed=7)
        assert 0.0 <= rate <= 1.0


class TestFingerprint:
    def test_population_shape(self, host):
        pop = golden_population_delays(host, n_chips=10, seed=1)
        assert pop.shape == (10, len(host.outputs))

    def test_golden_chips_pass(self, host):
        fingerprint = build_fingerprint(host, n_chips=25, seed=2)
        false_positives = sum(
            1 for i in range(10)
            if fingerprint.is_outlier(
                measure_chip(host, seed=5000 + i,
                             fingerprint=fingerprint)))
        assert false_positives <= 1

    def test_trojan_detected(self, host, trojan):
        fingerprint = build_fingerprint(host, n_chips=25, seed=3)
        fpr, detection = screen_population(
            fingerprint, host, trojan.netlist, n_chips=10)
        assert detection > 0.8
        assert fpr < 0.2


class TestSideChannelDetection:
    @pytest.fixture(scope="class")
    def placed(self, host):
        return annealing_placement(host, iterations=2000, seed=4).placement

    def test_iddq_clean_passes(self, host, placed):
        detector = calibrate_iddq(host, placed, n_chips=15)
        assert screen_iddq(detector, host, placed, n_chips=8) <= 0.2

    def test_iddq_flags_trojan(self, host, trojan, placed):
        detector = calibrate_iddq(host, placed, n_chips=15)
        compromised = placed.copy()
        occupied = set(compromised.positions.values())
        free = sorted(
            (x, y) for x in range(compromised.width)
            for y in range(compromised.height) if (x, y) not in occupied)
        cells = [g for g in trojan.netlist.gates if g.startswith("tj_")]
        for cell, site in zip(cells, free):
            compromised.positions[cell] = site
        assert screen_iddq(detector, trojan.netlist, compromised,
                           n_chips=8) > 0.8

    def test_ro_network_detects(self, host, trojan, placed):
        compromised = placed.copy()
        occupied = set(compromised.positions.values())
        free = sorted(
            (x, y) for x in range(compromised.width)
            for y in range(compromised.height) if (x, y) not in occupied)
        cells = [g for g in trojan.netlist.gates if g.startswith("tj_")]
        for cell, site in zip(cells, free):
            compromised.positions[cell] = site
        network = build_ro_network(placed)
        detected, max_z = ro_detection(network, host, placed,
                                       trojan.netlist, compromised, cells)
        assert detected and max_z > 4.0

    def test_ro_clean_not_flagged(self, host, placed):
        network = build_ro_network(placed)
        detected, _ = ro_detection(network, host, placed, host, placed,
                                   [], seed=60)
        assert not detected

    def test_regional_leakage_positive(self, host, placed):
        currents = regional_leakage(host, placed)
        assert (currents > 0).all()


class TestMonitorsBisa:
    def test_monitor_alarm_quiet_on_clean(self, host):
        monitored = insert_monitors(host)
        rng = random.Random(8)
        for _ in range(30):
            stim = {name: rng.randint(0, 1) for name in host.inputs}
            assert simulate(monitored.netlist, stim)["monitor_alarm"] == 0

    def test_monitor_proves_no_silent_payload(self, host):
        from repro.formal import CircuitEncoder
        monitored = insert_monitors(host)
        trojan = insert_rare_trigger_trojan(monitored.netlist,
                                            trigger_width=2, seed=9)
        enc = CircuitEncoder()
        clean_vars = enc.encode(host)
        shared = {name: clean_vars[name] for name in host.inputs}
        dirty_vars = enc.encode(trojan.netlist, bind=shared)
        diffs = [enc.xor_of(clean_vars[o], dirty_vars[o])
                 for o in host.outputs]
        enc.assert_equal(enc.or_of(diffs), 1)
        enc.assert_equal(dirty_vars["monitor_alarm"], 0)
        assert enc.solver.solve() is False

    def test_bisa_full_fill_blocks_insertion(self, host):
        placement = annealing_placement(host, iterations=1500,
                                        seed=10).placement
        fill = bisa_fill(placement, 1.0)
        assert fill.fill_rate == 1.0
        assert not insertion_feasibility(placement, fill, 3)

    def test_partial_fill_leaves_room(self, host):
        placement = annealing_placement(host, iterations=1500,
                                        seed=10).placement
        fill = bisa_fill(placement, 0.3, seed=1)
        assert insertion_feasibility(placement, fill, 3)
