"""Tests for physical synthesis: placement, timing, layers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import c17, random_circuit, ripple_carry_adder
from repro.physical import (
    DEFAULT_THRESHOLDS,
    Placement,
    annealing_placement,
    arrival_times_placed,
    assign_layers,
    critical_path_placed,
    hpwl,
    ir_drop_ok,
    layer_histogram,
    nets_for_wirelength,
    output_path_delays,
    power_density_map,
    random_placement,
    split_wires,
    wire_delay,
)


class TestPlacement:
    def test_random_placement_legal(self):
        n = c17()
        p = random_placement(n, seed=1)
        positions = list(p.positions.values())
        assert len(positions) == len(set(positions))  # one cell per site
        assert all(0 <= x < p.width and 0 <= y < p.height
                   for x, y in positions)

    def test_die_too_small_rejected(self):
        n = ripple_carry_adder(8)
        with pytest.raises(ValueError):
            random_placement(n, width=2, height=2)

    def test_annealing_improves(self):
        n = ripple_carry_adder(6)
        result = annealing_placement(n, iterations=5000, seed=0)
        assert result.final_hpwl < result.initial_hpwl
        assert result.improvement > 0.2

    def test_annealing_stays_legal(self):
        n = ripple_carry_adder(4)
        result = annealing_placement(n, iterations=3000, seed=3)
        positions = list(result.placement.positions.values())
        assert len(positions) == len(set(positions))

    def test_hpwl_zero_for_colocated(self):
        n = c17()
        p = random_placement(n, seed=0)
        for cell in p.positions:
            p.positions[cell] = (0, 0)
        # All cells at one site cannot happen physically, but HPWL is 0.
        assert hpwl(p, nets_for_wirelength(n)) == 0.0

    def test_distance(self):
        p = Placement({"a": (0, 0), "b": (3, 4)}, 10, 10)
        assert p.distance("a", "b") == 7

    def test_copy_independent(self):
        p = Placement({"a": (0, 0)}, 4, 4)
        q = p.copy()
        q.positions["a"] = (1, 1)
        assert p.positions["a"] == (0, 0)


class TestTiming:
    def test_wire_delay_scales_with_distance(self):
        p = Placement({"a": (0, 0), "b": (5, 0)}, 10, 10)
        assert wire_delay(p, "a", "b") == 5 * wire_delay(
            p, "a", "b") / 5

    def test_placed_arrival_monotone(self):
        n = c17()
        p = random_placement(n, seed=2)
        at = arrival_times_placed(n, p)
        for g in n.gates.values():
            for fi in g.fanins:
                assert at[g.name] > at[fi]

    def test_placed_critical_ge_unplaced(self):
        from repro.netlist import critical_path_delay
        n = ripple_carry_adder(6)
        p = random_placement(n, seed=4)
        assert critical_path_placed(n, p) >= critical_path_delay(n)

    def test_path_delay_noise_reproducible(self):
        n = c17()
        a = output_path_delays(n, delay_noise=0.05, seed=7).vector()
        b = output_path_delays(n, delay_noise=0.05, seed=7).vector()
        c = output_path_delays(n, delay_noise=0.05, seed=8).vector()
        assert (a == b).all()
        assert not (a == c).all()

    def test_power_density_total(self):
        from repro.netlist import leakage_power
        n = ripple_carry_adder(4)
        p = random_placement(n, seed=5)
        grid = power_density_map(n, p, bins=4)
        assert grid.sum() == pytest.approx(leakage_power(n), rel=0.01)

    def test_ir_drop_check(self):
        n = ripple_carry_adder(4)
        p = random_placement(n, seed=5)
        assert ir_drop_ok(n, p, limit_per_bin=1e9)
        assert not ir_drop_ok(n, p, limit_per_bin=0.0)


class TestLayers:
    def test_short_wires_low_layers(self):
        p = Placement({"a": (0, 0), "b": (1, 0)}, 10, 10)
        from repro.netlist import GateType, Netlist
        n = Netlist()
        n.add_input("a")
        n.add_gate("b", GateType.NOT, ["a"])
        n.add_output("b")
        wires = assign_layers(n, p)
        assert all(w.layer == 1 for w in wires)

    def test_long_wires_high_layers(self):
        from repro.netlist import GateType, Netlist
        n = Netlist()
        n.add_input("a")
        n.add_gate("b", GateType.NOT, ["a"])
        n.add_output("b")
        p = Placement({"a": (0, 0), "b": (40, 40)}, 64, 64)
        wires = assign_layers(n, p)
        assert all(w.layer == len(DEFAULT_THRESHOLDS) + 1 for w in wires)

    def test_lifting_forces_top_layer(self):
        n = ripple_carry_adder(4)
        p = random_placement(n, seed=6)
        lifted = {n.inputs[0]}
        wires = assign_layers(n, p, lifted=lifted)
        for w in wires:
            if w.driver in lifted:
                assert w.layer == len(DEFAULT_THRESHOLDS) + 1

    def test_split_partitions(self):
        n = ripple_carry_adder(4)
        p = random_placement(n, seed=7)
        wires = assign_layers(n, p)
        visible, hidden = split_wires(wires, 2)
        assert len(visible) + len(hidden) == len(wires)
        assert all(w.layer <= 2 for w in visible)
        assert all(w.layer > 2 for w in hidden)

    def test_histogram_counts(self):
        n = ripple_carry_adder(4)
        p = random_placement(n, seed=8)
        wires = assign_layers(n, p)
        hist = layer_histogram(wires)
        assert sum(hist.values()) == len(wires)


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 100))
def test_annealing_never_worse_property(seed):
    n = c17()
    result = annealing_placement(n, iterations=800, seed=seed)
    assert result.final_hpwl <= result.initial_hpwl
