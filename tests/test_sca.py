"""Tests for side-channel analysis: TVLA, CPA, masking, WDDL, glitches."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import SBOX, aes_sbox_netlist, sbox_with_key_netlist
from repro.netlist import encode_int, parity_tree, simulate
from repro.sca import (
    cpa_attack,
    decode_shares,
    dual_rail_stimulus,
    encode_shares,
    glitch_simulate,
    hamming_weight,
    intermediate_value_trace,
    isw_and,
    isw_and_netlist,
    leakage_traces,
    leaking_gate_report,
    locate_leaking_nets,
    masked_xor,
    probing_security_first_order,
    random_share_stimulus,
    signal_to_noise_ratio,
    traces_to_disclosure,
    tvla,
    tvla_sweep,
    welch_t,
    wddl_transform,
)
from repro.synth import reassociate_for_timing


def make_share_classes(netlist, n_traces, fixed, seed):
    """Stimuli for fixed (a=1,b=1) vs random secret classes."""
    rng = random.Random(seed)
    stims = []
    for _ in range(n_traces):
        if fixed:
            a, b = 1, 1
        else:
            a, b = rng.randint(0, 1), rng.randint(0, 1)
        stims.append(random_share_stimulus(a, b, 3, rng))
    return stims


class TestPowerModel:
    def test_hamming_weight(self):
        assert hamming_weight(0) == 0
        assert hamming_weight(0xFF) == 8
        assert hamming_weight(1 << 100) == 1

    def test_leakage_trace_shape(self):
        net = parity_tree(4, balanced=True)
        stims = [{f"x{i}": (j >> i) & 1 for i in range(4)} for j in range(16)]
        traces = leakage_traces(net, stims, noise_sigma=0.0)
        assert traces.shape == (16, net.depth() + 1)

    def test_noiseless_value_model_counts_ones(self):
        net = parity_tree(2, balanced=True)
        stims = [{"x0": 1, "x1": 1}]
        traces = leakage_traces(net, stims, noise_sigma=0.0)
        # level 0: x0, x1 both 1 -> sample 2
        assert traces[0, 0] == 2.0

    def test_toggle_model(self):
        net = parity_tree(2, balanced=True)
        stims = [{"x0": 0, "x1": 0}, {"x0": 1, "x1": 0}]
        traces = leakage_traces(net, stims, model="toggle", noise_sigma=0.0)
        # second trace: x0 toggles (level 0) and the XOR output toggles
        assert traces[1, 0] == 1.0
        assert traces[1].sum() >= 2.0

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            leakage_traces(parity_tree(2), [{}], model="quantum")

    def test_snr_flags_dependent_sample(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 2000)
        traces = rng.normal(0, 1, (2000, 3))
        traces[:, 1] += labels * 2.0
        snr = signal_to_noise_ratio(traces, labels)
        assert snr[1] > 10 * max(snr[0], snr[2])


class TestTvla:
    def test_welch_t_zero_for_identical_stats(self):
        rng = np.random.default_rng(1)
        a = rng.normal(0, 1, (4000, 4))
        b = rng.normal(0, 1, (4000, 4))
        t = welch_t(a, b)
        assert np.all(np.abs(t) < 4.5)

    def test_welch_t_detects_shift(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0, 1, (2000, 2))
        b = rng.normal(0, 1, (2000, 2))
        b[:, 1] += 0.5
        res = tvla(a, b)
        assert res.leaks and res.leaking_sample == 1

    def test_second_order(self):
        rng = np.random.default_rng(3)
        # same mean, different variance: first order passes, second fails
        a = rng.normal(0, 1.0, (4000, 1))
        b = rng.normal(0, 2.0, (4000, 1))
        assert not tvla(a, b, order=1).leaks
        assert tvla(a, b, order=2).leaks

    def test_order_validation(self):
        a = np.zeros((10, 2))
        with pytest.raises(ValueError):
            tvla(a, a, order=3)

    def test_group_size_validation(self):
        with pytest.raises(ValueError):
            welch_t(np.zeros((1, 2)), np.zeros((5, 2)))

    def test_sweep_monotone_under_leak(self):
        rng = np.random.default_rng(4)
        a = rng.normal(0, 1, (4000, 1))
        b = rng.normal(0.3, 1, (4000, 1))
        sweep = tvla_sweep(a, b, (250, 1000, 4000))
        assert sweep[-1] > sweep[0]


class TestCpa:
    def build_traces(self, n, sigma, seed=0):
        net = sbox_with_key_netlist()
        rng = random.Random(seed)
        pts = [rng.randrange(256) for _ in range(n)]
        stims = []
        for pt in pts:
            s = encode_int(pt, [f"p{i}" for i in range(8)])
            s.update(encode_int(0xC3, [f"k{i}" for i in range(8)]))
            stims.append(s)
        traces = leakage_traces(net, stims, noise_sigma=sigma, seed=seed)
        return traces, pts

    def test_key_recovery(self):
        traces, pts = self.build_traces(600, sigma=2.0)
        res = cpa_attack(traces, pts)
        assert res.best_key == 0xC3
        assert res.rank_of(0xC3) == 0

    def test_more_noise_needs_more_traces(self):
        traces, pts = self.build_traces(1500, sigma=6.0, seed=1)
        low = traces_to_disclosure(traces[:400], pts[:400], 0xC3)
        high = traces_to_disclosure(traces, pts, 0xC3)
        assert high != -1
        # with the full set the attack succeeds at some finite count
        assert high > 0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            cpa_attack(np.zeros((4, 2)), [1, 2, 3])


class TestMaskingSoftware:
    def test_share_roundtrip(self):
        rng = random.Random(0)
        for bit in (0, 1):
            for n in (2, 3, 4):
                assert decode_shares(encode_shares(bit, n, rng)) == bit

    def test_masked_xor_correct(self):
        rng = random.Random(1)
        for _ in range(30):
            a, b = rng.randint(0, 1), rng.randint(0, 1)
            at = encode_shares(a, 3, rng)
            bt = encode_shares(b, 3, rng)
            assert decode_shares(masked_xor(at, bt).shares) == a ^ b

    @pytest.mark.parametrize("order", ["secure", "reassociated"])
    def test_isw_and_correct(self, order):
        rng = random.Random(2)
        for _ in range(40):
            a, b = rng.randint(0, 1), rng.randint(0, 1)
            at = encode_shares(a, 3, rng)
            bt = encode_shares(b, 3, rng)
            r = [rng.randint(0, 1) for _ in range(3)]
            out = isw_and(at, bt, r, order=order)
            assert decode_shares(out.shares) == (a & b)

    def test_randomness_count_validated(self):
        with pytest.raises(ValueError):
            isw_and([0, 0, 0], [0, 0, 0], [0, 0])

    def test_unknown_order_rejected(self):
        with pytest.raises(ValueError):
            isw_and([0, 0, 0], [0, 0, 0], [0, 0, 0], order="fastest")

    def test_secure_order_probing_secure(self):
        ok, _ = probing_security_first_order(
            lambda a, b, r: isw_and(a, b, r, "secure"))
        assert ok

    def test_reassociated_order_leaks(self):
        ok, leaky = probing_security_first_order(
            lambda a, b, r: isw_and(a, b, r, "reassociated"))
        assert not ok
        assert leaky is not None

    def test_intermediate_trace(self):
        trace = intermediate_value_trace([0, 1, 3])
        assert list(trace) == [0, 1, 2]


class TestMaskingNetlist:
    def test_netlist_computes_and(self):
        nl = isw_and_netlist()
        rng = random.Random(3)
        for _ in range(40):
            a, b = rng.randint(0, 1), rng.randint(0, 1)
            vals = simulate(nl, random_share_stimulus(a, b, 3, rng))
            assert vals["c0"] ^ vals["c1"] ^ vals["c2"] == (a & b)

    def test_secure_netlist_passes_tvla(self):
        nl = isw_and_netlist()
        fixed = leakage_traces(nl, make_share_classes(nl, 4000, True, 1),
                               noise_sigma=0.25, seed=1)
        rand = leakage_traces(nl, make_share_classes(nl, 4000, False, 2),
                              noise_sigma=0.25, seed=2)
        assert not tvla(fixed, rand).leaks

    def test_reassociated_netlist_fails_tvla(self):
        nl = isw_and_netlist()
        late = {f"r_{i}_{j}": 1e5 for i in range(3) for j in range(i + 1, 3)}
        reassociate_for_timing(nl, input_arrivals=late)
        fixed = leakage_traces(nl, make_share_classes(nl, 4000, True, 3),
                               noise_sigma=0.25, seed=3)
        rand = leakage_traces(nl, make_share_classes(nl, 4000, False, 4),
                              noise_sigma=0.25, seed=4)
        assert tvla(fixed, rand).leaks

    def test_localization_finds_reassociated_net(self):
        nl = isw_and_netlist()
        late = {f"r_{i}_{j}": 1e5 for i in range(3) for j in range(i + 1, 3)}
        reassociate_for_timing(nl, input_arrivals=late)
        leaks = locate_leaking_nets(
            nl,
            make_share_classes(nl, 3000, True, 5),
            make_share_classes(nl, 3000, False, 6),
        )
        assert leaks[0].leaks
        report = leaking_gate_report(leaks)
        assert "LEAKS" in report

    def test_secure_netlist_has_no_leaky_net(self):
        nl = isw_and_netlist()
        leaks = locate_leaking_nets(
            nl,
            make_share_classes(nl, 3000, True, 7),
            make_share_classes(nl, 3000, False, 8),
        )
        assert not leaks[0].leaks


class TestWddl:
    def test_functional_equivalence(self):
        sb = aes_sbox_netlist()
        dual, rails = wddl_transform(sb)
        for x in (0, 1, 0x53, 0x9E, 0xFF):
            stim = dual_rail_stimulus(
                encode_int(x, [f"x{i}" for i in range(8)]))
            vals = simulate(dual, stim)
            got = 0
            for bit in range(8):
                t_rail, f_rail = rails[f"y{bit}"]
                assert vals[t_rail] == 1 - vals[f_rail]
                got |= vals[t_rail] << bit
            assert got == SBOX[x]

    def test_constant_total_weight(self):
        sb = aes_sbox_netlist()
        dual, _ = wddl_transform(sb)
        weights = set()
        for x in range(0, 256, 13):
            stim = dual_rail_stimulus(
                encode_int(x, [f"x{i}" for i in range(8)]))
            weights.add(sum(simulate(dual, stim).values()))
        assert len(weights) == 1

    def test_wddl_passes_tvla_where_plain_fails(self):
        sb = aes_sbox_netlist()
        xs = [f"x{i}" for i in range(8)]
        rng = random.Random(9)
        fixed_stims = [encode_int(0xAB, xs) for _ in range(1500)]
        rand_stims = [encode_int(rng.randrange(256), xs) for _ in range(1500)]
        plain_fixed = leakage_traces(sb, fixed_stims, noise_sigma=1.0, seed=1)
        plain_rand = leakage_traces(sb, rand_stims, noise_sigma=1.0, seed=2)
        assert tvla(plain_fixed, plain_rand).leaks

        dual, _ = wddl_transform(sb)
        dual_fixed = leakage_traces(
            dual, [dual_rail_stimulus(s) for s in fixed_stims],
            noise_sigma=1.0, seed=3)
        dual_rand = leakage_traces(
            dual, [dual_rail_stimulus(s) for s in rand_stims],
            noise_sigma=1.0, seed=4)
        assert not tvla(dual_fixed, dual_rand).leaks

    def test_sequential_rejected(self):
        from repro.netlist import GateType, Netlist
        n = Netlist()
        n.add_input("a")
        n.add_gate("q", GateType.DFF, ["a"])
        n.add_output("q")
        with pytest.raises(ValueError):
            wddl_transform(n)


class TestGlitch:
    def test_settles_to_static_values(self):
        net = parity_tree(5, balanced=False)
        before = {f"x{i}": 0 for i in range(5)}
        after = {f"x{i}": 1 for i in range(5)}
        rep = glitch_simulate(net, before, after)
        assert rep.final_values[net.outputs[0]] == 1  # parity of 5 ones

    def test_no_transition_when_inputs_static(self):
        net = parity_tree(3, balanced=True)
        stim = {f"x{i}": 1 for i in range(3)}
        rep = glitch_simulate(net, stim, stim)
        assert rep.total_transitions == 0
        assert rep.glitch_count() == 0

    def test_chain_produces_glitches(self):
        net = parity_tree(8, balanced=False)
        before = {f"x{i}": 0 for i in range(8)}
        after = {f"x{i}": 1 for i in range(8)}
        rep = glitch_simulate(net, before, after)
        assert rep.glitch_count() > 0

    def test_waveform_total_matches_events(self):
        net = parity_tree(4, balanced=False)
        rep = glitch_simulate(net, {f"x{i}": 0 for i in range(4)},
                              {f"x{i}": 1 for i in range(4)})
        wave = rep.power_waveform(bin_width=5.0)
        assert wave.sum() == len(rep.events)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 1), st.integers(0, 1),
       st.lists(st.integers(0, 1), min_size=3, max_size=3),
       st.integers(0, 10_000))
def test_isw_and_property(a, b, randomness, seed):
    rng = random.Random(seed)
    at = encode_shares(a, 3, rng)
    bt = encode_shares(b, 3, rng)
    for order in ("secure", "reassociated"):
        out = isw_and(at, bt, randomness, order=order)
        assert decode_shares(out.shares) == (a & b)
