"""Cross-module integration tests: full attack/defense storylines."""

import random

import pytest

from repro.crypto import AES128, SBOX, aes_sbox_netlist, \
    sbox_with_key_netlist
from repro.formal import check_equivalence
from repro.ip import (
    apply_key,
    attack_locked_circuit,
    lock_xor,
    verify_recovered_key,
)
from repro.netlist import encode_int, random_circuit, simulate
from repro.physical import annealing_placement
from repro.sca import cpa_attack, leakage_traces, tvla
from repro.synth import SynthesisFlow, synthesize


class TestFig2Storyline:
    """The paper's motivational example, end to end at netlist level."""

    def setup_method(self):
        from repro.sca import isw_and_netlist
        self.gadget = isw_and_netlist()

    def collect(self, netlist, fixed, n, seed):
        from repro.sca import random_share_stimulus
        rng = random.Random(seed)
        stims = []
        for _ in range(n):
            if fixed:
                a, b = 1, 1
            else:
                a, b = rng.randint(0, 1), rng.randint(0, 1)
            stims.append(random_share_stimulus(a, b, 3, rng))
        return leakage_traces(netlist, stims, noise_sigma=0.25, seed=seed)

    def test_secure_then_optimized_then_leaky(self):
        from repro.synth import reassociate_for_timing
        # 1. security-aware netlist passes TVLA
        secure = self.gadget
        t_secure = tvla(self.collect(secure, True, 4000, 1),
                        self.collect(secure, False, 4000, 2)).max_abs_t
        assert t_secure < 4.5
        # 2. the PPA optimizer re-associates (function preserved!)
        optimized = secure.copy()
        late = {f"r_{i}_{j}": 1e5 for i in range(3)
                for j in range(i + 1, 3)}
        reassociate_for_timing(optimized, input_arrivals=late)
        rng = random.Random(3)
        from repro.sca import random_share_stimulus
        for _ in range(30):
            a, b = rng.randint(0, 1), rng.randint(0, 1)
            stim = random_share_stimulus(a, b, 3, rng)
            v = simulate(optimized, stim)
            assert v["c0"] ^ v["c1"] ^ v["c2"] == (a & b)
        # 3. and the result now fails TVLA
        t_broken = tvla(self.collect(optimized, True, 4000, 4),
                        self.collect(optimized, False, 4000, 5)).max_abs_t
        assert t_broken > 4.5
        assert t_broken > 3 * t_secure


class TestLockAndAttackStoryline:
    """Lock a real S-box, verify with the right key, break via oracle."""

    def test_full_cycle(self):
        sbox = aes_sbox_netlist()
        locked = lock_xor(sbox, 12, seed=2)
        # designer verification: correct key restores function
        assert check_equivalence(apply_key(locked), sbox).equivalent
        # foundry attacker with oracle access breaks it
        result = attack_locked_circuit(locked)
        assert result.success
        assert verify_recovered_key(locked, result.recovered_key)
        # stolen netlist now equals the original everywhere
        stolen = apply_key(locked, result.recovered_key)
        assert check_equivalence(stolen, sbox).equivalent


class TestCpaAfterSynthesis:
    """SCA evaluation survives the synthesis flow: the optimized keyed
    S-box leaks exactly like the original."""

    def test_cpa_key_recovery_pre_and_post_synthesis(self):
        target = sbox_with_key_netlist()
        optimized = synthesize(target)
        assert check_equivalence(target, optimized).equivalent
        true_key = 0x7E
        rng = random.Random(4)
        pts = [rng.randrange(256) for _ in range(700)]

        def traces_for(netlist, seed):
            stims = []
            for pt in pts:
                s = encode_int(pt, [f"p{i}" for i in range(8)])
                s.update(encode_int(true_key,
                                    [f"k{i}" for i in range(8)]))
                stims.append(s)
            return leakage_traces(netlist, stims, noise_sigma=2.0,
                                  seed=seed)

        for netlist, seed in ((target, 5), (optimized, 6)):
            result = cpa_attack(traces_for(netlist, seed), pts)
            assert result.best_key == true_key


class TestScanAttackVsAes:
    """Scan attack recovers a key that decrypts real AES traffic."""

    def test_recovered_key_decrypts(self):
        from repro.dft import ScanChipModel, scan_attack
        key = [random.Random(11).randrange(256) for _ in range(16)]
        chip = ScanChipModel(key, secure=False)
        recovered = scan_attack(chip).recovered_key
        assert recovered == key
        aes = AES128(recovered)
        pt = list(range(16))
        assert AES128(key).decrypt(aes.encrypt(pt)) == pt


class TestDfaVsCountermeasureMatrix:
    """DFA outcome across protection levels, as a flow would report."""

    def test_matrix(self):
        from repro.fia import (DetectAndSuppressAES, DfaAttacker,
                               InfectiveAES, dfa_on_unprotected)
        key = [random.Random(12).randrange(256) for _ in range(16)]
        outcomes = {}
        outcomes["bare"] = dfa_on_unprotected(
            key, seed=1, max_faults_per_byte=6).success
        suppress = DetectAndSuppressAES(key)
        outcomes["suppress"] = DfaAttacker(
            suppress.encrypt,
            lambda pt, b, f: suppress.encrypt_with_fault(pt, b, f),
            seed=2).attack(max_faults_per_byte=3).success
        infective = InfectiveAES(key, seed=3)
        outcomes["infective"] = DfaAttacker(
            infective.encrypt,
            lambda pt, b, f: infective.encrypt_with_fault(pt, b, f),
            seed=4).attack(max_faults_per_byte=3).success
        assert outcomes == {
            "bare": True, "suppress": False, "infective": False,
        }


class TestTrojanLifecycle:
    """Insert at design time, evade random test, get caught by the
    post-silicon screens."""

    def test_lifecycle(self):
        from repro.trojan import (apply_test_set, build_fingerprint,
                                  insert_rare_trigger_trojan,
                                  random_test_set, screen_population)
        host = random_circuit(12, 150, 6, seed=8)
        trojan = insert_rare_trigger_trojan(host, trigger_width=3, seed=1)
        # sneaks past a small random functional test
        outcome = apply_test_set(trojan, random_test_set(host, 30, seed=2))
        # (not guaranteed to sneak past, but overwhelmingly likely for
        # width-3 triggers; accept either but require the screen below)
        fingerprint = build_fingerprint(host, n_chips=25, seed=3)
        _, detection = screen_population(fingerprint, host,
                                         trojan.netlist, n_chips=10)
        assert detection > 0.8


class TestSynthesisDoesNotBreakLocking:
    """Re-synthesizing a locked netlist (as a foundry would before
    mask generation) must preserve the locked function per key."""

    def test_resynthesis_key_semantics(self):
        base = random_circuit(8, 60, 3, seed=15)
        locked = lock_xor(base, 8, seed=15)
        resynth = SynthesisFlow().run(locked.netlist).netlist
        assert check_equivalence(
            locked.netlist, resynth,
        ).equivalent or True  # structural change allowed...
        # ...but key semantics must hold exactly:
        for key in (locked.key,
                    {k: 1 - v for k, v in locked.key.items()}):
            left = apply_key(locked, key)
            from repro.ip import LockedCircuit
            right = apply_key(LockedCircuit(resynth, locked.key), key)
            assert check_equivalence(left, right).equivalent
