"""Integration tests for the multi-tenant HTTP evaluation gateway.

Every test binds a real gateway on an ephemeral port and talks to it
through :class:`~repro.service.client.GatewayClient` — the same
transport a remote design team would use.  Covered contracts:

* tenant isolation: artifacts, jobs, and run-database slices of one
  tenant are invisible (404, not 403 — no existence oracle) to
  another;
* quotas: token-bucket rate limiting (429 + Retry-After, recovering
  after the bucket refills) and live-job quotas (503, releasing as
  jobs finish);
* SSE: cancelling a job mid-stream delivers its terminal event and
  closes the stream cleanly;
* drain: shutting the server down cancels live jobs and leaves no
  orphan worker processes (reusing the scheduler suite's
  kill-injection jobs);
* transport parity: a campaign computed through the in-process
  campaign API is a 100% cache hit when resubmitted over HTTP;
* input hygiene: traversal-shaped digests are 400s, never paths.
"""

import os
import signal
import threading
import time

import pytest

from repro.netlist import c17, netlist_to_dict
from repro.service.campaigns import locking_sweep_campaign
from repro.service.client import GatewayClient, GatewayClientError
from repro.service.gateway import Gateway
from repro.service.jobs import JobSpec
from repro.service.rundb import SqliteRunDatabase
from repro.service.store import ArtifactStore
from repro.service.tenants import Tenant, TenantRegistry

from test_service_scheduler import (  # noqa: F401  registers t-* jobs
    _kill_when_pid_appears,
)

TERMINAL = ("succeeded", "failed", "timeout", "cancelled", "skipped")


def _gateway(tmp_path, tenants=None, workers=2):
    store = ArtifactStore(tmp_path / "store")
    rundb = SqliteRunDatabase(tmp_path / "runs.sqlite")
    registry = TenantRegistry(tenants or [
        Tenant("alice", "tok-a"), Tenant("bob", "tok-b")])
    gw = Gateway(store, registry, rundb=rundb, workers=workers)
    gw.start()
    return gw


class TestTenantIsolation:
    def test_cross_tenant_artifact_job_and_runs_invisible(self, tmp_path):
        gw = _gateway(tmp_path)
        try:
            alice = GatewayClient(gw.host, gw.port, "tok-a")
            bob = GatewayClient(gw.host, gw.port, "tok-b")
            digest = alice.publish_netlist(netlist_to_dict(c17()))
            receipt = alice.submit_job("netlist-ppa",
                                       {"netlist": digest})
            job_id = receipt["job_ids"][0]
            alice.wait(job_id, timeout=60)

            # Bob's view: the artifact, the job, and the cancel
            # endpoint all 404 — indistinguishable from absent.
            for attempt in (lambda: bob.artifact(digest),
                            lambda: bob.job(job_id),
                            lambda: bob.cancel(job_id)):
                with pytest.raises(GatewayClientError) as err:
                    attempt()
                assert err.value.status == 404
                assert err.value.code == "not_found"
            # Bob cannot run jobs against Alice's input either.
            with pytest.raises(GatewayClientError) as err:
                bob.submit_job("netlist-ppa", {"netlist": digest})
            assert err.value.status == 404

            # Run-database slices are disjoint.
            assert alice.runs()["runs"] != []
            assert bob.runs()["runs"] == []
            assert bob.jobs() == []
            assert alice.jobs() != []
        finally:
            gw.shutdown()

    def test_missing_and_unknown_tokens_are_401(self, tmp_path):
        gw = _gateway(tmp_path)
        try:
            anon = GatewayClient(gw.host, gw.port, "")
            stranger = GatewayClient(gw.host, gw.port, "nope")
            for client in (anon, stranger):
                with pytest.raises(GatewayClientError) as err:
                    client.status()
                assert err.value.status == 401
                assert err.value.code == "unauthenticated"
        finally:
            gw.shutdown()

    def test_tenant_pins_are_namespaced(self, tmp_path):
        gw = _gateway(tmp_path)
        try:
            alice = GatewayClient(gw.host, gw.port, "tok-a")
            digest = alice.publish_netlist(netlist_to_dict(c17()))
            alice.pin(digest, ref="keep")
            refs = gw.store.pins(digest)
            assert "tenant:alice:keep" in refs
            assert "tenant:alice:published" in refs
            # Unpin through the API releases only the tenant's ref.
            assert alice.unpin(digest, ref="keep")["unpinned"]
            assert "tenant:alice:keep" not in gw.store.pins(digest)
        finally:
            gw.shutdown()


class TestQuotas:
    def test_rate_limit_429_then_recovery(self, tmp_path):
        gw = _gateway(tmp_path, tenants=[
            Tenant("alice", "tok-a", rate=20.0, burst=2)])
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            client.status()
            client.status()
            with pytest.raises(GatewayClientError) as err:
                client.status()
            assert err.value.status == 429
            assert err.value.code == "rate_limited"
            assert err.value.retry_after is not None
            assert err.value.retry_after >= 1.0   # integral header
            # The bucket refills at 20/s: after a short wait the
            # tenant is served again — throttled, not locked out.
            time.sleep(0.2)
            assert client.status()["tenant"] == "alice"
        finally:
            gw.shutdown()

    def test_in_flight_quota_503_and_release(self, tmp_path):
        gw = _gateway(tmp_path, tenants=[
            Tenant("alice", "tok-a", max_in_flight=1)], workers=1)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            digest = client.publish_netlist(netlist_to_dict(c17()))
            pidfile = tmp_path / "w.pid"
            receipt = client.submit_job(
                "t-pid-sleep", {"pidfile": str(pidfile)}, retries=0,
                cacheable=False)
            job_id = receipt["job_ids"][0]
            with pytest.raises(GatewayClientError) as err:
                client.submit_job("netlist-ppa", {"netlist": digest})
            assert err.value.status == 503
            assert err.value.code == "quota_exceeded"
            # Finishing (here: cancelling) the live job releases the
            # quota slot.
            client.cancel(job_id)
            final = client.wait(job_id, timeout=30)
            assert final["status"] in ("cancelled", "failed")
            receipt2 = client.submit_job("netlist-ppa",
                                         {"netlist": digest})
            assert client.wait(receipt2["job_ids"][0],
                               timeout=60)["status"] == "succeeded"
        finally:
            gw.shutdown()


class TestEventStreams:
    def test_cancel_during_stream_closes_sse_cleanly(self, tmp_path):
        gw = _gateway(tmp_path, workers=1)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            pidfile = tmp_path / "w.pid"
            receipt = client.submit_job(
                "t-pid-sleep", {"pidfile": str(pidfile)}, retries=0,
                cacheable=False)
            job_id = receipt["job_ids"][0]
            events, done = [], threading.Event()

            def follow():
                streamer = GatewayClient(gw.host, gw.port, "tok-a")
                for event in streamer.events(job_id):
                    events.append(event)
                done.set()

            thread = threading.Thread(target=follow)
            thread.start()
            # Wait until the job is actually on a worker, then cancel.
            deadline = time.time() + 15.0
            while time.time() < deadline and not pidfile.exists():
                time.sleep(0.01)
            client.cancel(job_id)
            assert done.wait(timeout=15.0), events
            thread.join(timeout=5.0)
            assert events, "stream delivered nothing"
            assert events[-1]["status"] in ("cancelled", "failed")
            assert events[-1]["job_id"] == job_id
            # The stream ended *because* of the terminal event — the
            # connection is closed, not hung.
            assert not thread.is_alive()
        finally:
            gw.shutdown()

    def test_stream_of_finished_job_replays_terminal_event(self, tmp_path):
        gw = _gateway(tmp_path)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            digest = client.publish_netlist(netlist_to_dict(c17()))
            receipt = client.submit_job("netlist-ppa",
                                        {"netlist": digest})
            job_id = receipt["job_ids"][0]
            client.wait(job_id, timeout=60)
            # A late subscriber still gets a snapshot + terminal end.
            events = list(client.events(job_id))
            assert events
            assert events[-1]["status"] == "succeeded"
        finally:
            gw.shutdown()


class TestDrain:
    def test_shutdown_leaves_no_orphan_workers(self, tmp_path):
        gw = _gateway(tmp_path, workers=2)
        client = GatewayClient(gw.host, gw.port, "tok-a")
        pidfile = tmp_path / "w.pid"
        receipt = client.submit_job(
            "t-pid-sleep", {"pidfile": str(pidfile)}, retries=0,
            cacheable=False)
        worker_pids = [w.process.pid
                       for w in gw.scheduler._pool.workers()]
        assert worker_pids
        # Wait for the job to be running on a worker, then pull the
        # plug with it still live.
        deadline = time.time() + 15.0
        while time.time() < deadline and not pidfile.exists():
            time.sleep(0.01)
        assert pidfile.exists()
        gw.shutdown()
        # Every worker process is gone — drain, not abandonment.
        for pid in worker_pids:
            deadline = time.time() + 10.0
            while time.time() < deadline:
                try:
                    os.kill(pid, 0)
                except ProcessLookupError:
                    break
                time.sleep(0.05)
            else:
                pytest.fail(f"worker {pid} survived shutdown")
        # The gateway's own view records the withdrawal.
        view = gw._jobs[receipt["job_ids"][0]]
        assert view.event.status in ("cancelled", "failed")

    def test_sigkilled_worker_is_replaced_and_job_retries(self, tmp_path):
        # PR 7's kill-injection, over HTTP: a worker dying mid-job
        # must not take the gateway down; the pool respawns and the
        # retried attempt succeeds.
        gw = _gateway(tmp_path, workers=1)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            pidfile = tmp_path / "w.pid"
            receipt = client.submit_job(
                "t-pid-sleep", {"pidfile": str(pidfile)},
                retries=1, retry_backoff=0.01, cacheable=False)
            killer = _kill_when_pid_appears(pidfile, signal.SIGKILL)
            final = client.wait(receipt["job_ids"][0], timeout=60)
            killer.join()
            assert final["status"] == "succeeded"
            assert final["attempts"] == 2
            assert final["result"] == {"survived": True}
            assert gw.scheduler._pool.respawns >= 1
        finally:
            gw.shutdown()


class TestTransportParity:
    def test_campaign_resubmitted_over_http_is_all_cache_hits(
            self, tmp_path):
        # Compute the sweep through the in-process campaign API
        # (the CLI path), then submit the same campaign over HTTP
        # against the same store: every job must be a cache hit with
        # an identical spec hash — transport never changes the
        # addressed computation.
        store = ArtifactStore(tmp_path / "store")
        locking_sweep_campaign(c17(), [0, 2], seed=0,
                               max_iterations=50, store=store)
        gw = Gateway(store, TenantRegistry([Tenant("alice", "tok-a")]),
                     rundb=SqliteRunDatabase(tmp_path / "runs.sqlite"),
                     workers=1)
        gw.start()
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            receipt = client.submit_campaign(
                "sweep", bench="c17", widths=[0, 2],
                max_iterations=50, seed=0)
            finals = client.wait_all(receipt["job_ids"], timeout=120)
            assert all(f["status"] == "succeeded" for f in finals)
            assert all(f["cache_hit"] for f in finals)
            # Receipt hashes equal locally constructed spec hashes.
            input_hash = store.put_netlist(c17())
            expected = [JobSpec(
                "locking-point",
                params={"netlist": input_hash, "key_bits": bits,
                        "max_iterations": 50},
                seed=0, retries=1).spec_hash for bits in (0, 2)]
            assert receipt["spec_hashes"] == expected
        finally:
            gw.shutdown()

    def test_job_resubmission_across_transports_caches(self, tmp_path):
        gw = _gateway(tmp_path, workers=1)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            digest = client.publish_netlist(netlist_to_dict(c17()))
            first = client.submit_job("netlist-ppa",
                                      {"netlist": digest}, seed=9)
            f1 = client.wait(first["job_ids"][0], timeout=60)
            assert f1["status"] == "succeeded"
            assert not f1["cache_hit"]
            second = client.submit_job("netlist-ppa",
                                       {"netlist": digest}, seed=9)
            f2 = client.wait(second["job_ids"][0], timeout=60)
            assert f2["cache_hit"]
            assert f2["result"] == f1["result"]
            assert f1["spec_hash"] == f2["spec_hash"] == JobSpec(
                "netlist-ppa", params={"netlist": digest},
                seed=9).spec_hash
        finally:
            gw.shutdown()


class TestInputHygiene:
    @pytest.mark.parametrize("bad", [
        "..%2F..%2Fetc%2Fpasswd", "..", "ab", "AB" * 32,
        ("ab" * 32)[:-1] + "g"])
    def test_traversal_shaped_digests_are_400(self, tmp_path, bad):
        import http.client
        import json as _json

        gw = _gateway(tmp_path)
        try:
            conn = http.client.HTTPConnection(gw.host, gw.port,
                                              timeout=10)
            conn.request("GET", f"/v1/artifacts/{bad}",
                         headers={"X-Repro-Token": "tok-a"})
            response = conn.getresponse()
            payload = _json.loads(response.read())
            assert response.status == 400
            assert payload["error"]["code"] == "bad_request"
            conn.close()
        finally:
            gw.shutdown()

    def test_unknown_route_404_and_wrong_method_405(self, tmp_path):
        import http.client

        gw = _gateway(tmp_path)
        try:
            conn = http.client.HTTPConnection(gw.host, gw.port,
                                              timeout=10)
            conn.request("GET", "/v1/nope",
                         headers={"X-Repro-Token": "tok-a"})
            response = conn.getresponse()
            assert response.status == 404
            response.read()
            conn.request("POST", "/v1/runs",
                         headers={"X-Repro-Token": "tok-a"})
            response = conn.getresponse()
            assert response.status == 405
            response.read()
            conn.close()
        finally:
            gw.shutdown()

    def test_unknown_job_type_and_campaign_are_400(self, tmp_path):
        gw = _gateway(tmp_path)
        try:
            client = GatewayClient(gw.host, gw.port, "tok-a")
            with pytest.raises(GatewayClientError) as err:
                client.submit_job("no-such-type", {})
            assert err.value.status == 400
            with pytest.raises(GatewayClientError) as err:
                client.submit_campaign("no-such-campaign")
            assert err.value.status == 400
        finally:
            gw.shutdown()
