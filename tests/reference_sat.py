"""Frozen reference CDCL solver for differential testing.

This is the pre-rewrite solver (lazy-deletion activity heap, geometric
restarts, no phase saving or clause-database reduction), kept verbatim
as an independent oracle: ``test_sat_differential`` pits the production
solver in :mod:`repro.formal.sat` against it (and against brute force
on small instances) on randomly generated CNF formulas.  Do not "fix"
or optimise this file — its value is that it shares no code with the
solver under test.

Literal encoding: variable ``v`` (0-based) appears as literal ``2*v``
(positive) or ``2*v + 1`` (negated).
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

UNASSIGNED = -1


def lit(var: int, negative: bool = False) -> int:
    """Build a literal from a 0-based variable index."""
    return 2 * var + (1 if negative else 0)


def neg(literal: int) -> int:
    """The complement literal."""
    return literal ^ 1


def var_of(literal: int) -> int:
    """The 0-based variable index of a literal."""
    return literal >> 1


class Solver:
    """CDCL SAT solver with incremental assumption support.

    Clauses may be added between :meth:`solve` calls, enabling the
    oracle-guided loops (SAT attack, CEGAR-style flows) to reuse learned
    state across iterations.
    """

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []
        self.watches: List[List[int]] = []   # literal -> clause indices
        self.assign: List[int] = []          # var -> 0/1/UNASSIGNED
        self.level: List[int] = []           # var -> decision level
        self.reason: List[int] = []          # var -> clause idx or -1
        self.trail: List[int] = []           # assigned literals, in order
        self.trail_lim: List[int] = []       # trail length per decision
        self.activity: List[float] = []
        self._heap: List[Tuple[float, int]] = []
        self._seen: List[bool] = []          # scratch for _analyze
        self._qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.propagations = 0
        self.conflicts = 0
        self.decisions = 0
        self._ok = True

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its 0-based index."""
        v = self.num_vars
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(-1)
        self.activity.append(0.0)
        self._seen.append(False)
        self.watches.append([])
        self.watches.append([])
        heapq.heappush(self._heap, (0.0, v))
        return v

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause at decision level 0.

        Returns False if the formula became trivially unsatisfiable.
        Must not be called in the middle of :meth:`solve`.
        """
        if self.trail_lim:
            self._backtrack(0)
        # Single pass: dedup, tautology check, and level-0 filtering
        # (drop false literals, skip satisfied clauses).  This runs for
        # every encoded gate, so the literal value test is inlined.
        assign = self.assign
        num_vars = self.num_vars
        seen = set()
        reduced: List[int] = []
        for l in literals:
            if l in seen:
                continue
            if l ^ 1 in seen:
                return True  # tautology
            if (l >> 1) >= num_vars:
                raise ValueError(f"literal {l} references unknown variable")
            seen.add(l)
            value = assign[l >> 1]
            if value == UNASSIGNED:
                reduced.append(l)
            elif value ^ (l & 1) == 1:
                return True
        if not reduced:
            self._ok = False
            return False
        if len(reduced) == 1:
            self._enqueue(reduced[0], -1)
            if self._propagate() != -1:
                self._ok = False
                return False
            return True
        idx = len(self.clauses)
        self.clauses.append(reduced)
        self.watches[neg(reduced[0])].append(idx)
        self.watches[neg(reduced[1])].append(idx)
        return True

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _value_of(self, literal: int) -> int:
        value = self.assign[var_of(literal)]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value ^ (literal & 1)

    def _enqueue(self, literal: int, reason_idx: int) -> None:
        v = var_of(literal)
        self.assign[v] = 1 - (literal & 1)
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason_idx
        self.trail.append(literal)

    def _propagate(self) -> int:
        """Unit propagation; returns a conflicting clause index or -1.

        This is the solver's hot loop (millions of iterations per SAT
        attack), so attribute lookups are hoisted into locals, the
        decision level is computed once (it cannot change while
        propagating), and ``_value_of``/``_enqueue`` are inlined.  With
        ``UNASSIGNED == -1``, ``assign[v] ^ (lit & 1)`` is negative for
        unassigned variables, so the ``== 1`` / ``== 0`` tests need no
        explicit unassigned branch.
        """
        trail = self.trail
        watches = self.watches
        clauses = self.clauses
        assign = self.assign
        level = self.level
        reason = self.reason
        lvl = len(self.trail_lim)
        qhead = self._qhead
        processed = 0
        while qhead < len(trail):
            literal = trail[qhead]
            qhead += 1
            processed += 1
            false_lit = literal ^ 1
            watch_list = watches[literal]
            i = 0
            while i < len(watch_list):
                ci = watch_list[i]
                clause = clauses[ci]
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                fv = assign[first >> 1] ^ (first & 1)
                if fv == 1:
                    i += 1
                    continue
                moved = False
                for k in range(2, len(clause)):
                    ck = clause[k]
                    if assign[ck >> 1] ^ (ck & 1) != 0:
                        clause[1] = ck
                        clause[k] = false_lit
                        watches[ck ^ 1].append(ci)
                        watch_list[i] = watch_list[-1]
                        watch_list.pop()
                        moved = True
                        break
                if moved:
                    continue
                if fv == 0:
                    self._qhead = len(trail)
                    self.propagations += processed
                    return ci
                v = first >> 1
                assign[v] = (first & 1) ^ 1
                level[v] = lvl
                reason[v] = ci
                trail.append(first)
                i += 1
        self._qhead = qhead
        self.propagations += processed
        return -1

    def _backtrack(self, target_level: int) -> None:
        trail_lim = self.trail_lim
        if len(trail_lim) <= target_level:
            self._qhead = min(self._qhead, len(self.trail))
            return
        # Unwind the trail in one slice instead of popping per literal.
        trail = self.trail
        assign = self.assign
        activity = self.activity
        heap = self._heap
        push = heapq.heappush
        limit = trail_lim[target_level]
        del trail_lim[target_level:]
        for literal in trail[limit:]:
            v = literal >> 1
            assign[v] = UNASSIGNED
            push(heap, (-activity[v], v))
        del trail[limit:]
        self._qhead = min(self._qhead, limit)

    def _bump(self, v: int) -> None:
        self.activity[v] += self.var_inc
        if self.activity[v] > 1e100:
            for u in range(self.num_vars):
                self.activity[u] *= 1e-100
            self.var_inc *= 1e-100
        heapq.heappush(self._heap, (-self.activity[v], v))

    def _decide_var(self) -> int:
        """Unassigned variable of highest activity (lazy-deletion heap).

        Every activity change pushes a fresh heap entry, so stale
        entries (recorded activity below the current one) can be
        discarded safely — a fresher entry for that variable exists.
        """
        while self._heap:
            act, v = heapq.heappop(self._heap)
            if self.assign[v] != UNASSIGNED:
                continue
            if -act < self.activity[v] - 1e-12:
                continue
            return v
        for v in range(self.num_vars):  # safety net
            if self.assign[v] == UNASSIGNED:
                return v
        return -1

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict_idx: int) -> Tuple[List[int], int]:
        """First-UIP resolution; returns (learned clause, backjump level)."""
        learned: List[int] = [0]
        # Reusable scratch: at exit, the only True flags left belong to
        # the learned clause's lower-level literals (current-level flags
        # are cleared as they are resolved), so those are reset below.
        seen = self._seen
        counter = 0
        p = -1  # resolved literal (-1 = conflict clause itself)
        index = len(self.trail)
        clause = self.clauses[conflict_idx]
        current_level = len(self.trail_lim)
        while True:
            for l in clause:
                if p != -1 and l == p:
                    continue
                v = var_of(l)
                if not seen[v] and self.level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if self.level[v] >= current_level:
                        counter += 1
                    else:
                        learned.append(l)
            while True:
                index -= 1
                p = self.trail[index]
                if seen[var_of(p)]:
                    break
            v = var_of(p)
            seen[v] = False
            counter -= 1
            if counter == 0:
                learned[0] = neg(p)
                break
            clause = self.clauses[self.reason[v]]
        for l in learned[1:]:
            seen[l >> 1] = False
        if len(learned) == 1:
            return learned, 0
        back_level = max(self.level[var_of(l)] for l in learned[1:])
        for k in range(1, len(learned)):
            if self.level[var_of(learned[k])] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (SAT), False (UNSAT), or None when
        ``conflict_budget`` conflicts were exhausted.  After SAT, read
        the model via :meth:`model_value`.
        """
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() != -1:
            self._ok = False
            return False
        budget = conflict_budget
        restart_interval = 100
        conflicts_since_restart = 0
        while True:
            confl = self._propagate()
            if confl != -1:
                self.conflicts += 1
                conflicts_since_restart += 1
                if len(self.trail_lim) == 0:
                    self._ok = False
                    return False
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        self._backtrack(0)
                        return None
                learned, back_level = self._analyze(confl)
                self._backtrack(back_level)
                if len(learned) == 1:
                    value = self._value_of(learned[0])
                    if value == 0:
                        self._ok = False
                        return False
                    if value == UNASSIGNED:
                        self._enqueue(learned[0], -1)
                else:
                    idx = len(self.clauses)
                    self.clauses.append(learned)
                    self.watches[neg(learned[0])].append(idx)
                    self.watches[neg(learned[1])].append(idx)
                    self._enqueue(learned[0], idx)
                self.var_inc /= self.var_decay
                if conflicts_since_restart >= restart_interval:
                    conflicts_since_restart = 0
                    restart_interval = int(restart_interval * 1.5)
                    self._backtrack(0)
                continue
            # Place any pending assumption as the next decision.
            pending = None
            for a in assumptions:
                value = self._value_of(a)
                if value == 0:
                    # Forced false by formula + earlier assumptions.
                    self._backtrack(0)
                    return False
                if value == UNASSIGNED:
                    pending = a
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending, -1)
                continue
            v = self._decide_var()
            if v == -1:
                return True
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            # Phase heuristic: try False first (good for miter circuits).
            self._enqueue(lit(v, negative=True), -1)

    def model_value(self, variable: int) -> int:
        """Value of a variable in the satisfying assignment (after SAT)."""
        return 1 if self.assign[variable] == 1 else 0

    def stats(self) -> Dict[str, int]:
        """Search statistics (vars, clauses, conflicts, ...)."""
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
        }
