"""Tests for HLS: DFG, scheduling, binding, IFT/QIF, secure passes."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import SBOX
from repro.hls import (
    Dfg,
    Label,
    OpType,
    aes_first_round_dfg,
    alap_schedule,
    asap_schedule,
    bind,
    dfg_output_leakage,
    evaluate_hls_cpa,
    flushed_exposure,
    insert_register_flushes,
    list_schedule,
    mask_sbox_kernel,
    multi_byte_kernel,
    qif_channel_capacity,
    secret_exposure,
    taint_analysis,
    value_lifetimes,
)

RESOURCES = {"alu": 1, "sbox": 1, "mul": 1, "rng": 1}


class TestDfg:
    def test_duplicate_rejected(self):
        g = Dfg()
        g.add("a", OpType.INPUT)
        with pytest.raises(ValueError):
            g.add("a", OpType.INPUT)

    def test_arity_checked(self):
        g = Dfg()
        g.add("a", OpType.INPUT)
        with pytest.raises(ValueError):
            g.add("x", OpType.XOR, ["a"])

    def test_unknown_operand_rejected(self):
        g = Dfg()
        with pytest.raises(ValueError):
            g.add("x", OpType.NOT, ["nope"])

    def test_evaluate_kernel(self):
        g = aes_first_round_dfg()
        values = g.evaluate({"pt": 0x12, "key": 0x34})
        assert values["ct"] == SBOX[0x12 ^ 0x34]

    def test_evaluate_arith(self):
        g = Dfg()
        g.add("a", OpType.INPUT)
        g.add("b", OpType.INPUT)
        g.add("s", OpType.ADD, ["a", "b"])
        g.add("p", OpType.MUL, ["a", "b"])
        g.add("n", OpType.NOT, ["a"])
        values = g.evaluate({"a": 200, "b": 100})
        assert values["s"] == (300 & 0xFF)
        assert values["p"] == (20000 & 0xFF)
        assert values["n"] == (~200) & 0xFF

    def test_msbox_semantics(self):
        g = Dfg()
        g.add("x", OpType.INPUT)
        g.add("mi", OpType.RAND)
        g.add("mo", OpType.RAND)
        g.add("y", OpType.MSBOX, ["x", "mi", "mo"])
        values = g.evaluate({"x": 0x40}, {"mi": 0x0F, "mo": 0xF0})
        assert values["y"] == SBOX[0x40 ^ 0x0F] ^ 0xF0

    def test_masked_kernel_correct(self):
        g = mask_sbox_kernel()
        values = g.evaluate({"pt": 0x21, "key": 0x43},
                            {"m_in": 0x99, "m_out": 0x77})
        assert values["ct_m"] ^ values["mask_out"] == SBOX[0x21 ^ 0x43]

    def test_multi_byte_kernel(self):
        g = multi_byte_kernel(3)
        stim = {"pt": 1, "key": 2, "pt1": 3, "key1": 4,
                "pt2": 5, "key2": 6}
        values = g.evaluate(stim)
        assert values["ct"] == SBOX[3]
        assert values["ct2"] == SBOX[3]


class TestScheduling:
    def test_asap_respects_dependencies(self):
        g = aes_first_round_dfg()
        schedule = asap_schedule(g)
        assert schedule.start["ark"] >= schedule.start["pt"]
        assert schedule.start["sb"] > schedule.start["ark"]

    def test_alap_not_before_asap(self):
        g = multi_byte_kernel(3)
        asap = asap_schedule(g)
        alap = alap_schedule(g)
        for name in g.ops:
            assert alap.start[name] >= asap.start[name]

    def test_list_schedule_resource_limits(self):
        g = multi_byte_kernel(4)
        schedule = list_schedule(g, RESOURCES)
        # single sbox unit: no two SBOX ops in the same cycle
        sbox_ops = [n for n, op in g.ops.items()
                    if op.op is OpType.SBOX]
        starts = [schedule.start[n] for n in sbox_ops]
        assert len(starts) == len(set(starts))

    def test_more_resources_shorter_latency(self):
        g = multi_byte_kernel(4)
        slow = list_schedule(g, {"alu": 1, "sbox": 1})
        fast = list_schedule(g, {"alu": 4, "sbox": 4})
        assert fast.latency <= slow.latency

    def test_shuffle_changes_order(self):
        g = multi_byte_kernel(4)
        a = list_schedule(g, RESOURCES, shuffle_seed=1)
        b = list_schedule(g, RESOURCES, shuffle_seed=2)
        assert a.start != b.start  # different tie-breaks


class TestBinding:
    def test_register_count_positive(self):
        g = aes_first_round_dfg()
        binding = bind(list_schedule(g, RESOURCES))
        assert binding.n_registers >= 1

    def test_unit_sharing(self):
        g = multi_byte_kernel(4)
        binding = bind(list_schedule(g, RESOURCES))
        # one sbox instance serves all four lanes
        sbox_instances = {
            inst for (cls, inst) in binding.unit_of.values()
            if cls == "sbox"
        }
        assert len(sbox_instances) == 1

    def test_lifetimes_nonnegative(self):
        g = multi_byte_kernel(3)
        for lt in value_lifetimes(list_schedule(g, RESOURCES)):
            assert lt.death >= lt.birth

    def test_secret_exposure_counts_secret_only(self):
        g = aes_first_round_dfg()
        labels = taint_analysis(g).labels
        exposure = secret_exposure(list_schedule(g, RESOURCES), labels)
        assert exposure >= 0


class TestIft:
    def test_unmasked_kernel_tainted(self):
        report = taint_analysis(aes_first_round_dfg())
        assert report.tainted_outputs == ["ct"]

    def test_masked_kernel_healed(self):
        report = taint_analysis(mask_sbox_kernel())
        assert not report.tainted_outputs
        assert report.healed_by_masking

    def test_masking_unaware_mode_conservative(self):
        report = taint_analysis(mask_sbox_kernel(), masking_aware=False)
        assert report.tainted_outputs  # without healing, taint flows

    def test_reused_random_does_not_heal(self):
        g = Dfg()
        g.add("s", OpType.INPUT, label=Label.SECRET)
        g.add("r", OpType.RAND)
        g.add("m1", OpType.XOR, ["s", "r"])
        g.add("m2", OpType.XOR, ["s", "r"])   # same mask reused!
        g.add("o1", OpType.OUTPUT, ["m1"])
        g.add("o2", OpType.OUTPUT, ["m2"])
        report = taint_analysis(g)
        # reuse means m1 ^ m2 = 0 reveals equality; must not be healed
        assert report.tainted_outputs

    def test_qif_identity_channel(self):
        assert qif_channel_capacity(lambda s, p: s, 4, 2) == 4.0

    def test_qif_constant_channel(self):
        assert qif_channel_capacity(lambda s, p: 7, 4, 2) == 0.0

    def test_qif_parity_channel(self):
        leak = qif_channel_capacity(lambda s, p: bin(s).count("1") & 1,
                                    4, 1)
        assert leak == 1.0

    def test_qif_enumeration_bound(self):
        with pytest.raises(ValueError):
            qif_channel_capacity(lambda s, p: 0, 30, 30)

    def test_frozen_rng_collapses_masking(self):
        # The verification flow must flag that masking with a frozen RNG
        # leaks everything (paper Sec. II-C: weak spots of schemes).
        leak = dfg_output_leakage(mask_sbox_kernel(), "ct_m", "key", "pt")
        assert leak == 8.0


class TestSecurePasses:
    def test_flush_reduces_exposure(self):
        g = mask_sbox_kernel()
        labels = taint_analysis(g).labels
        before = flushed_exposure(list_schedule(g, RESOURCES), labels)
        flushed, inserted = insert_register_flushes(g, labels)
        after = flushed_exposure(list_schedule(flushed, RESOURCES), labels)
        assert inserted
        assert after < before

    def test_flush_preserves_function(self):
        g = mask_sbox_kernel()
        flushed, _ = insert_register_flushes(g)
        values = flushed.evaluate({"pt": 5, "key": 9},
                                  {"m_in": 3, "m_out": 8})
        assert values["ct_m"] ^ values["mask_out"] == SBOX[5 ^ 9]

    def test_cpa_breaks_unmasked(self):
        result = evaluate_hls_cpa(aes_first_round_dfg(), true_key=0x3C,
                                  n_traces=800, noise_sigma=0.8, seed=1)
        assert result.cpa_rank_of_true_key == 0

    def test_cpa_fails_on_masked(self):
        result = evaluate_hls_cpa(mask_sbox_kernel(), true_key=0x3C,
                                  n_traces=800, noise_sigma=0.8, seed=2)
        assert result.cpa_rank_of_true_key > 3

    def test_shuffling_reduces_correlation(self):
        kernel = multi_byte_kernel(4)
        plain = evaluate_hls_cpa(kernel, 0x3C, n_traces=600,
                                 noise_sigma=0.8, seed=3)
        shuffled = evaluate_hls_cpa(kernel, 0x3C, n_traces=600,
                                    noise_sigma=0.8, shuffle=True, seed=3)
        assert shuffled.max_correlation < plain.max_correlation


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255),
       st.integers(0, 255), st.integers(0, 255))
def test_masked_kernel_property(pt, key, m_in, m_out):
    g = mask_sbox_kernel()
    values = g.evaluate({"pt": pt, "key": key},
                        {"m_in": m_in, "m_out": m_out})
    assert values["ct_m"] ^ values["mask_out"] == SBOX[pt ^ key]
