"""Tests for extension modules: Verilog I/O, MIA, structural attack,
clock-glitch fault modeling."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import sbox_with_key_netlist
from repro.fia import (
    clock_glitch_capture,
    guard_band_to_close,
    vulnerability_profile,
)
from repro.ip import (
    lock_xor,
    resynthesis_resistance,
    structural_key_attack,
)
from repro.netlist import (
    GateType,
    Netlist,
    NetlistError,
    c17,
    dumps_verilog,
    encode_int,
    exhaustive_truth_table,
    loads_verilog,
    random_circuit,
    ripple_carry_adder,
)
from repro.netlist.metrics import critical_path_delay
from repro.sca import (
    leakage_traces,
    mia_attack,
    mutual_information,
    perceived_information_gap,
)


class TestVerilog:
    @pytest.mark.parametrize("factory", [
        c17,
        lambda: ripple_carry_adder(4),
        lambda: random_circuit(6, 40, 3, seed=7),
    ])
    def test_roundtrip_preserves_function(self, factory):
        n = factory()
        m = loads_verilog(dumps_verilog(n))
        for o in n.outputs:
            assert exhaustive_truth_table(m, o) == \
                exhaustive_truth_table(n, o)

    def test_mux_const_dff_roundtrip(self):
        n = Netlist("mix")
        n.add_input("s")
        n.add_input("a")
        n.add_input("b")
        n.add_gate("one", GateType.CONST1)
        n.add_gate("m", GateType.MUX, ["s", "a", "b"])
        n.add_gate("q", GateType.DFF, ["m"])
        n.add_gate("y", GateType.AND, ["m", "one"])
        n.add_output("y")
        n.add_output("q")
        m = loads_verilog(dumps_verilog(n))
        assert m.is_sequential
        assert set(m.outputs) == {"y", "q"}

    def test_emits_module_header(self):
        text = dumps_verilog(c17())
        assert text.startswith("module c17")
        assert text.rstrip().endswith("endmodule")

    def test_sanitizes_names(self):
        n = Netlist("weird")
        n.add_input("in")  # legal
        n.add_gate("a.b[3]", GateType.NOT, ["in"])
        n.add_output("a.b[3]")
        text = dumps_verilog(n)
        assert "a.b[3]" not in text
        m = loads_verilog(text)
        assert exhaustive_truth_table(m) == [1, 0]

    def test_unknown_primitive_rejected(self):
        with pytest.raises(NetlistError):
            loads_verilog("module t (a);\n  input a;\n"
                          "  frobnicate u0 (a, a);\nendmodule\n")


class TestMia:
    def test_mutual_information_basics(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 4000)
        independent = rng.normal(0, 1, 4000)
        dependent = labels * 2.0 + rng.normal(0, 0.3, 4000)
        assert mutual_information(dependent, labels) > \
            mutual_information(independent, labels) + 0.3

    def test_mi_nonnegative(self):
        rng = np.random.default_rng(1)
        mi = mutual_information(rng.normal(0, 1, 500),
                                rng.integers(0, 4, 500))
        assert mi >= 0.0

    def test_mia_recovers_key(self):
        net = sbox_with_key_netlist()
        rng = random.Random(2)
        true_key = 0x4D
        pts = [rng.randrange(256) for _ in range(1500)]
        stims = []
        for pt in pts:
            s = encode_int(pt, [f"p{i}" for i in range(8)])
            s.update(encode_int(true_key, [f"k{i}" for i in range(8)]))
            stims.append(s)
        traces = leakage_traces(net, stims, noise_sigma=1.5, seed=3)
        result = mia_attack(traces, pts)
        assert result.rank_of(true_key) <= 3

    def test_information_gap_positive_on_leaky_target(self):
        net = sbox_with_key_netlist()
        rng = random.Random(4)
        true_key = 0x91
        pts = [rng.randrange(256) for _ in range(1200)]
        stims = []
        for pt in pts:
            s = encode_int(pt, [f"p{i}" for i in range(8)])
            s.update(encode_int(true_key, [f"k{i}" for i in range(8)]))
            stims.append(s)
        traces = leakage_traces(net, stims, noise_sigma=1.5, seed=5)
        assert perceived_information_gap(traces, pts, true_key) > 0.0

    def test_input_validation(self):
        with pytest.raises(ValueError):
            mia_attack(np.zeros((5, 2)), [1, 2, 3])


class TestStructuralAttack:
    def test_reads_key_from_gate_types(self):
        base = random_circuit(8, 80, 4, seed=3)
        locked = lock_xor(base, 12, seed=3)
        result = structural_key_attack(locked.netlist,
                                       locked.key_inputs)
        assert result.accuracy(locked.key) == 1.0
        assert result.resolved == 12

    def test_resynthesis_does_not_hide_keys(self):
        # The SAIL observation: resynthesis alone is insufficient.
        base = random_circuit(8, 80, 4, seed=5)
        locked = lock_xor(base, 10, seed=5)
        plain, after = resynthesis_resistance(locked)
        assert plain == 1.0
        assert after >= 0.7

    def test_structural_beats_random_guessing(self):
        base = random_circuit(8, 80, 4, seed=6)
        locked = lock_xor(base, 16, seed=6)
        result = structural_key_attack(locked.netlist,
                                       locked.key_inputs)
        assert result.accuracy(locked.key) > 0.75


class TestClockGlitch:
    def setup_method(self):
        self.adder = ripple_carry_adder(8)
        self.prev = {}
        self.prev.update(encode_int(0, [f"a{i}" for i in range(8)]))
        self.prev.update(encode_int(0, [f"b{i}" for i in range(8)]))
        self.cur = {}
        self.cur.update(encode_int(255, [f"a{i}" for i in range(8)]))
        self.cur.update(encode_int(1, [f"b{i}" for i in range(8)]))
        self.critical = critical_path_delay(self.adder)

    def test_full_period_is_safe(self):
        out = clock_glitch_capture(self.adder, self.prev, self.cur,
                                   period=1.05 * self.critical)
        assert out.fault_count == 0
        assert out.captured == out.correct

    def test_short_period_faults_late_outputs(self):
        out = clock_glitch_capture(self.adder, self.prev, self.cur,
                                   period=0.4 * self.critical)
        assert out.fault_count > 0
        for name in out.faulted_outputs:
            assert out.captured[name] != out.correct[name]

    def test_vulnerability_monotone_in_period(self):
        periods = [0.2 * self.critical, 0.6 * self.critical,
                   1.1 * self.critical]
        profile = vulnerability_profile(self.adder, periods)
        counts = [profile[p] for p in periods]
        assert counts == sorted(counts, reverse=True)
        assert counts[-1] == 0

    def test_guard_band(self):
        assert guard_band_to_close(self.adder,
                                   0.5 * self.critical) > 0
        assert guard_band_to_close(self.adder,
                                   2.0 * self.critical) == 0.0

    def test_glitch_feeds_dfa_model(self):
        # A captured stale byte is exactly the XOR-differential DFA
        # consumes: differential = stale ^ fresh on the faulted bits.
        out = clock_glitch_capture(self.adder, self.prev, self.cur,
                                   period=0.5 * self.critical)
        differential = {
            o: out.captured[o] ^ out.correct[o]
            for o in out.faulted_outputs
        }
        assert all(v == 1 for v in differential.values())


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2000))
def test_verilog_roundtrip_property(seed):
    n = random_circuit(5, 30, 3, seed=seed)
    m = loads_verilog(dumps_verilog(n))
    for o in n.outputs:
        assert exhaustive_truth_table(m, o) == exhaustive_truth_table(n, o)
