"""Tests for the cryptographic substrate: AES-128, PRESENT-80, GF(2^8)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import (
    AES128,
    INV_SBOX,
    Present80,
    SBOX,
    SBOX4,
    aes_sbox_netlist,
    expand_key,
    gf_inv,
    gf_mul,
    gf_pow,
    present_sbox_netlist,
    recover_master_key,
    sbox_with_key_netlist,
    xtime,
)
from repro.netlist import decode_int, encode_int, simulate


class TestGF:
    def test_xtime_known(self):
        assert xtime(0x57) == 0xAE
        assert xtime(0xAE) == 0x47  # wraps modulo the AES polynomial

    def test_mul_known(self):
        # FIPS-197 example: {57} * {83} = {c1}
        assert gf_mul(0x57, 0x83) == 0xC1
        assert gf_mul(0x57, 0x13) == 0xFE

    def test_mul_identity_and_zero(self):
        for x in range(256):
            assert gf_mul(x, 1) == x
            assert gf_mul(x, 0) == 0

    def test_mul_commutative(self):
        rng = random.Random(0)
        for _ in range(50):
            a, b = rng.randrange(256), rng.randrange(256)
            assert gf_mul(a, b) == gf_mul(b, a)

    def test_inverse(self):
        assert gf_inv(0) == 0
        for x in range(1, 256):
            assert gf_mul(x, gf_inv(x)) == 1

    def test_pow(self):
        assert gf_pow(2, 0) == 1
        assert gf_pow(3, 1) == 3
        assert gf_pow(2, 8) == gf_mul(gf_pow(2, 4), gf_pow(2, 4))


class TestAes:
    KEY = list(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
    PT = list(bytes.fromhex("00112233445566778899aabbccddeeff"))
    CT = "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_fips197_vector(self):
        aes = AES128(self.KEY)
        assert bytes(aes.encrypt(self.PT)).hex() == self.CT

    def test_fips197_appendix_b(self):
        key = list(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        pt = list(bytes.fromhex("3243f6a8885a308d313198a2e0370734"))
        ct = AES128(key).encrypt(pt)
        assert bytes(ct).hex() == "3925841d02dc09fbdc118597196a0b32"

    def test_decrypt_inverts(self):
        rng = random.Random(1)
        key = [rng.randrange(256) for _ in range(16)]
        aes = AES128(key)
        for _ in range(10):
            pt = [rng.randrange(256) for _ in range(16)]
            assert aes.decrypt(aes.encrypt(pt)) == pt

    def test_sbox_involution_pair(self):
        assert SBOX[0x00] == 0x63
        assert SBOX[0x53] == 0xED
        for x in range(256):
            assert INV_SBOX[SBOX[x]] == x

    def test_key_schedule_first_word(self):
        rks = expand_key(list(bytes.fromhex(
            "2b7e151628aed2a6abf7158809cf4f3c")))
        # FIPS-197 A.1: w4 = a0fafe17
        assert bytes(rks[1][:4]).hex() == "a0fafe17"

    def test_recover_master_key(self):
        rng = random.Random(3)
        key = [rng.randrange(256) for _ in range(16)]
        rks = expand_key(key)
        assert recover_master_key(rks[10]) == key

    def test_traced_round_count(self):
        aes = AES128(self.KEY)
        trace = aes.encrypt_traced(self.PT)
        assert len(trace.round_states) == 11
        assert len(trace.sbox_outputs) == 10
        assert trace.ciphertext == trace.round_states[-1]

    def test_fault_injection_changes_ct(self):
        aes = AES128(self.KEY)
        good = aes.encrypt(self.PT)
        bad = aes.encrypt_with_fault(self.PT, round_index=10,
                                     byte_index=0, fault_value=0x41)
        assert good != bad
        # zero fault value is a no-op
        same = aes.encrypt_with_fault(self.PT, round_index=10,
                                      byte_index=0, fault_value=0)
        assert same == good

    def test_fault_round_bounds(self):
        aes = AES128(self.KEY)
        with pytest.raises(ValueError):
            aes.encrypt_with_fault(self.PT, round_index=0, byte_index=0,
                                   fault_value=1)

    def test_bad_lengths(self):
        with pytest.raises(ValueError):
            AES128([0] * 15)
        with pytest.raises(ValueError):
            AES128(self.KEY).encrypt([0] * 3)


class TestPresent:
    def test_paper_vectors(self):
        assert Present80(0).encrypt(0) == 0x5579C1387B228445
        assert Present80(0).encrypt((1 << 64) - 1) == 0xA112FFC72F68417B
        assert Present80((1 << 80) - 1).encrypt(0) == 0xE72C46C0F5945049
        assert (Present80((1 << 80) - 1).encrypt((1 << 64) - 1)
                == 0x3333DCD3213210D2)

    def test_decrypt_inverts(self):
        rng = random.Random(2)
        cipher = Present80(rng.getrandbits(80))
        for _ in range(10):
            pt = rng.getrandbits(64)
            assert cipher.decrypt(cipher.encrypt(pt)) == pt

    def test_traced(self):
        trace = Present80(0).encrypt_traced(0)
        assert len(trace.round_states) == 32

    def test_sbox_is_permutation(self):
        assert sorted(SBOX4) == list(range(16))

    def test_block_bounds(self):
        with pytest.raises(ValueError):
            Present80(1 << 81)
        with pytest.raises(ValueError):
            Present80(0).encrypt(1 << 64)


class TestSboxNetlists:
    def test_aes_sbox_netlist_exhaustive(self):
        net = aes_sbox_netlist()
        xs = [f"x{i}" for i in range(8)]
        ys = [f"y{i}" for i in range(8)]
        # bit-parallel over all 256 inputs
        stim = {name: 0 for name in xs}
        for v in range(256):
            for i in range(8):
                if (v >> i) & 1:
                    stim[xs[i]] |= 1 << v
        vals = simulate(net, stim, width=256)
        for v in range(256):
            got = 0
            for i in range(8):
                got |= ((vals[ys[i]] >> v) & 1) << i
            assert got == SBOX[v]

    def test_present_sbox_netlist(self):
        net = present_sbox_netlist()
        for v in range(16):
            vals = simulate(net, encode_int(v, [f"x{i}" for i in range(4)]))
            assert decode_int(vals, [f"y{i}" for i in range(4)]) == SBOX4[v]

    def test_keyed_sbox(self):
        net = sbox_with_key_netlist()
        rng = random.Random(4)
        for _ in range(20):
            p, k = rng.randrange(256), rng.randrange(256)
            stim = encode_int(p, [f"p{i}" for i in range(8)])
            stim.update(encode_int(k, [f"k{i}" for i in range(8)]))
            vals = simulate(net, stim)
            assert decode_int(vals, [f"y{i}" for i in range(8)]) == SBOX[p ^ k]


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 255), st.integers(0, 255), st.integers(0, 255))
def test_gf_mul_distributive(a, b, c):
    assert gf_mul(a, b ^ c) == gf_mul(a, b) ^ gf_mul(a, c)


@settings(max_examples=15, deadline=None)
@given(st.lists(st.integers(0, 255), min_size=16, max_size=16),
       st.lists(st.integers(0, 255), min_size=16, max_size=16))
def test_aes_roundtrip_property(key, pt):
    aes = AES128(key)
    assert aes.decrypt(aes.encrypt(pt)) == pt
