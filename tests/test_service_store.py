"""Content-addressed artifact store and canonical netlist hashing."""

import json
import multiprocessing
import os
import tempfile
import threading
import time

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    GateType,
    Netlist,
    c17,
    canonical_form,
    canonical_json,
    netlist_from_dict,
    netlist_hash,
    netlist_to_dict,
    random_circuit,
    ripple_carry_adder,
    stable_hash,
    simulate,
    transport_hash,
)
from repro.service import ArtifactStore, result_key


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_invariant(self):
        assert (stable_hash({"x": 1, "y": 2})
                == stable_hash({"y": 2, "x": 1}))

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": lambda: None})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestNetlistRoundTrip:
    @pytest.mark.parametrize("make", [c17,
                                      lambda: ripple_carry_adder(4)])
    def test_transport_round_trip_preserves_order(self, make):
        netlist = make()
        clone = netlist_from_dict(netlist_to_dict(netlist))
        # Insertion order is semantic (seeded site enumeration walks
        # it), so the transport form must preserve it exactly.
        assert list(clone.gates) == list(netlist.gates)
        assert clone.outputs == netlist.outputs
        for name, gate in netlist.gates.items():
            assert clone.gates[name].gate_type == gate.gate_type
            assert clone.gates[name].fanins == gate.fanins

    def test_round_trip_simulates_identically(self):
        netlist = ripple_carry_adder(4)
        clone = netlist_from_dict(netlist_to_dict(netlist))
        stim = {name: 0b1010 for name in netlist.inputs}
        assert simulate(clone, stim) == simulate(netlist, stim)


def _permuted_clone(netlist: Netlist, order) -> Netlist:
    """Same structure, gates inserted in a different order."""
    clone = Netlist(netlist.name)
    names = list(netlist.gates)
    for i in order:
        gate = netlist.gates[names[i]]
        clone.add_gate(gate.name, gate.gate_type, list(gate.fanins))
    for out in netlist.outputs:
        clone.add_output(out)
    return clone


class TestCanonicalHash:
    def test_name_excluded(self):
        a, b = c17(), c17()
        b.name = "other"
        assert netlist_hash(a) == netlist_hash(b)

    def test_structure_included(self):
        a = c17()
        b = c17()
        b.add_gate("extra", GateType.NOT, [b.outputs[0]])
        assert netlist_hash(a) != netlist_hash(b)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_insertion_order_independent(self, data):
        seed = data.draw(st.integers(0, 2**16), label="circuit seed")
        netlist = random_circuit(n_inputs=4, n_gates=12, n_outputs=3,
                                 seed=seed)
        order = data.draw(
            st.permutations(range(len(netlist.gates))),
            label="insertion order")
        clone = _permuted_clone(netlist, order)
        assert canonical_form(clone) == canonical_form(netlist)
        assert netlist_hash(clone) == netlist_hash(netlist)

    def test_output_order_is_semantic(self):
        a = ripple_carry_adder(2)
        b = _permuted_clone(a, range(len(a.gates)))
        b.outputs = list(reversed(b.outputs))
        assert netlist_hash(a) != netlist_hash(b)


class TestTransportHash:
    def test_name_excluded(self):
        a, b = c17(), c17()
        b.name = "other"
        assert transport_hash(a) == transport_hash(b)

    def test_same_order_same_digest(self):
        assert transport_hash(c17()) == transport_hash(c17())

    def test_insertion_order_included(self):
        # Gate order is observable downstream (seeded site
        # enumeration), so — unlike netlist_hash — the transport
        # digest must distinguish orderings.
        a = ripple_carry_adder(4)
        b = _permuted_clone(a, list(reversed(range(len(a.gates)))))
        assert netlist_hash(a) == netlist_hash(b)
        assert transport_hash(a) != transport_hash(b)


class TestArtifactStore:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        assert store.get("ab" * 32) == {"x": 1}
        assert store.get("cd" * 32) is None
        assert len(store) == 1

    def test_empty_store_is_truthy(self, tmp_path):
        assert bool(ArtifactStore(tmp_path))

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.put(digest, {"x": 1})
        assert (tmp_path / digest[:2] / f"{digest[2:]}.json").exists()

    def test_netlist_round_trip_content_addressed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        netlist = c17()
        digest = store.put_netlist(netlist)
        assert digest == transport_hash(netlist)
        # Re-putting the same content is a no-op, not a new artifact.
        assert store.put_netlist(c17()) == digest
        assert len(store) == 1
        clone = store.get_netlist(digest)
        assert list(clone.gates) == list(netlist.gates)
        assert clone.outputs == netlist.outputs

    def test_distinct_orderings_are_distinct_artifacts(self, tmp_path):
        # Two structurally identical netlists built in different gate
        # orders must not share a store slot: each client's jobs must
        # load back *its own* ordering, or seeded site enumeration in
        # the worker diverges from that client's serial run.
        store = ArtifactStore(tmp_path)
        a = ripple_carry_adder(4)
        b = _permuted_clone(a, list(reversed(range(len(a.gates)))))
        digest_a = store.put_netlist(a)
        digest_b = store.put_netlist(b)
        assert digest_a != digest_b
        assert len(store) == 2
        assert list(store.get_netlist(digest_a).gates) == list(a.gates)
        assert list(store.get_netlist(digest_b).gates) == list(b.gates)

    def test_cross_process_key_stability(self, tmp_path):
        # The same spec computed in another "process" (fresh objects)
        # addresses the same artifact.
        store = ArtifactStore(tmp_path)
        key = result_key(netlist_hash(c17()), "p" * 8, seed=3)
        store.put(key, {"result": 42})
        assert result_key(netlist_hash(c17()), "p" * 8, seed=3) == key
        assert ArtifactStore(tmp_path).get(key) == {"result": 42}

    def test_torn_write_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ef" * 32
        shard = tmp_path / digest[:2]
        shard.mkdir()
        (shard / f"{digest[2:]}.json").write_text('{"trunc')
        assert store.get(digest) is None

    def test_hit_miss_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        store.get("ab" * 32)
        store.get("cd" * 32)
        assert store.hits == 1
        assert store.misses == 1

    def test_concurrent_put_same_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "aa" * 32

        def put():
            for _ in range(20):
                store.put(digest, {"x": 1})

        threads = [threading.Thread(target=put) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get(digest) == {"x": 1}
        assert len(store) == 1

    def test_put_counters_distinguish_writes_from_skips(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.put(digest, {"x": 1})
        store.put(digest, {"x": 1})     # idempotent fast path
        store.put("cd" * 32, {"y": 2})
        assert store.writes == 2
        assert store.dedup_skips == 1

    def test_corrupt_artifact_is_unlinked_and_repairable(self, tmp_path):
        # With idempotent put, a corrupt file left in place would be
        # dedup-skipped forever; get() must evict it so a recompute
        # can repair the slot.
        store = ArtifactStore(tmp_path)
        digest = "ef" * 32
        shard = tmp_path / digest[:2]
        shard.mkdir()
        (shard / f"{digest[2:]}.json").write_text('{"trunc')
        assert store.get(digest) is None
        store.put(digest, {"x": 1})
        assert store.dedup_skips == 0
        assert store.get(digest) == {"x": 1}


def _expected_payload(digest):
    return {"digest": digest, "blob": digest * 4}


def _stress_writer(root, worker_id, shared, rounds):
    """Child process: republish shared digests and publish own ones."""
    store = ArtifactStore(root)
    for rnd in range(rounds):
        for digest in shared:
            store.put(digest, _expected_payload(digest))
        own = stable_hash({"writer": worker_id, "round": rnd})
        store.put(own, _expected_payload(own))


def _stress_reader(root, shared, deadline_s):
    """Child process: hammer get(); exit non-zero on any torn read."""
    store = ArtifactStore(root)
    end = time.time() + deadline_s
    seen = set()
    while time.time() < end and len(seen) < len(shared):
        for digest in shared:
            payload = store.get(digest)
            if payload is None:
                continue        # not yet published: a miss, never torn
            if payload != _expected_payload(digest):
                os._exit(2)     # torn or wrong content
            seen.add(digest)
    os._exit(0 if len(seen) == len(shared) else 3)


class TestMultiWriterStress:
    def test_processes_racing_on_same_and_distinct_digests(self, tmp_path):
        # Publication is lock-free by design: two writer processes
        # race 50 rounds over the same 8 shared digests (pure dedup
        # contention) while each also publishes 50 distinct ones, and
        # a reader process concurrently asserts it never observes a
        # torn artifact.
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        shared = [stable_hash({"shared": i}) for i in range(8)]
        rounds = 50
        writers = [
            ctx.Process(target=_stress_writer,
                        args=(str(tmp_path), w, shared, rounds))
            for w in range(2)]
        reader = ctx.Process(target=_stress_reader,
                             args=(str(tmp_path), shared, 10.0))
        for proc in writers + [reader]:
            proc.start()
        for proc in writers + [reader]:
            proc.join(timeout=30.0)
        assert all(p.exitcode == 0 for p in writers)
        assert reader.exitcode == 0, \
            f"reader exit {reader.exitcode} (2 = torn read)"
        store = ArtifactStore(tmp_path)
        assert len(store) == len(shared) + 2 * rounds
        for digest in shared:
            assert store.get(digest) == _expected_payload(digest)


class TestPinning:
    def test_pin_unpin_is_refcounted_across_refs(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.put(digest, {"x": 1})
        store.pin(digest, "run-1")
        store.pin(digest, "run-2")
        assert store.pins(digest) == ["run-1", "run-2"]
        assert store.unpin(digest, "run-1") is True
        assert store.is_pinned(digest)          # run-2 still holds it
        assert store.unpin(digest, "run-2") is True
        assert not store.is_pinned(digest)
        assert store.unpin(digest, "run-2") is False   # already gone

    def test_pin_is_idempotent(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.pin(digest, "r")
        store.pin(digest, "r")
        assert store.pins(digest) == ["r"]

    def test_traversal_refs_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        for bad in ("../evil", "a/b", "", "x" * 129):
            with pytest.raises(ValueError):
                store.pin("ab" * 32, bad)
            with pytest.raises(ValueError):
                store.unpin("ab" * 32, bad)

    def test_pins_are_not_artifacts(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        store.pin("ab" * 32, "r")
        assert len(store) == 1
        assert store.pinned_digests() == {"ab" * 32}


def _age(path, seconds=1000.0):
    old = time.time() - seconds
    os.utime(path, (old, old))


class TestGarbageCollection:
    def test_sweep_removes_only_unreachable(self, tmp_path):
        store = ArtifactStore(tmp_path)
        child = stable_hash({"c": 1})
        root_digest = stable_hash({"r": 1})
        garbage = stable_hash({"g": 1})
        store.put(child, {"v": 1})
        store.put(root_digest, {"input": child})
        store.put(garbage, {"v": 2})
        store.pin(root_digest, "keep")
        report = store.gc(grace_s=0.0)
        assert report.removed == [garbage]
        assert report.kept_pinned == 1
        assert report.kept_referenced == 1
        assert report.bytes_freed > 0
        assert garbage not in store
        assert child in store and root_digest in store

    def test_references_are_followed_transitively(self, tmp_path):
        store = ArtifactStore(tmp_path)
        c = stable_hash({"n": "c"})
        b = stable_hash({"n": "b"})
        a = stable_hash({"n": "a"})
        store.put(c, {"leaf": True})
        store.put(b, {"next": c})
        store.put(a, {"next": b})
        store.pin(a, "root")
        report = store.gc(grace_s=0.0)
        assert report.removed == []
        assert report.kept_referenced == 2

    def test_grace_window_protects_in_flight_artifacts(self, tmp_path):
        # A live campaign publishes before it pins: a just-written,
        # unpinned artifact must survive a concurrent GC.
        store = ArtifactStore(tmp_path)
        digest = stable_hash({"fresh": 1})
        store.put(digest, {"v": 1})
        report = store.gc(grace_s=300.0)
        assert report.removed == []
        assert report.kept_recent == 1
        assert digest in store

    def test_dry_run_reports_without_deleting(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = stable_hash({"doomed": 1})
        store.put(digest, {"v": 1})
        report = store.gc(dry_run=True, grace_s=0.0)
        assert report.dry_run
        assert report.removed == [digest]
        assert digest in store                   # still there
        assert store.gc(grace_s=0.0).removed == [digest]
        assert digest not in store

    def test_stale_tmp_and_empty_shards_swept(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = stable_hash({"doomed": 2})
        path = store.put(digest, {"v": 1})
        stale = path.parent / "leftover.tmp"
        stale.write_text("half a write")
        _age(stale)
        store.gc(grace_s=0.0)
        assert not stale.exists()
        assert not path.parent.exists()          # shard emptied out

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_gc_removes_exactly_the_unreachable_set(self, data):
        # Property: over random reference graphs and pin sets, GC
        # never collects a pinned or transitively-referenced artifact,
        # and with the grace window open it collects nothing at all
        # (the in-flight guarantee).
        n = data.draw(st.integers(2, 10), label="artifacts")
        digests = [stable_hash({"a": i}) for i in range(n)]
        edges = {
            i: data.draw(st.sets(st.integers(0, n - 1), max_size=3),
                         label=f"refs[{i}]")
            for i in range(n)}
        pinned = data.draw(
            st.sets(st.integers(0, n - 1), max_size=n), label="pinned")
        in_flight = data.draw(st.booleans(), label="in-flight")
        with tempfile.TemporaryDirectory() as root:
            store = ArtifactStore(root)
            for i, digest in enumerate(digests):
                store.put(digest, {
                    "refs": [digests[j] for j in sorted(edges[i])]})
            for i in pinned:
                store.pin(digests[i], "prop")
            reachable = set()
            frontier = list(pinned)
            while frontier:
                i = frontier.pop()
                if i in reachable:
                    continue
                reachable.add(i)
                frontier.extend(edges[i])
            report = store.gc(
                grace_s=300.0 if in_flight else 0.0)
            survivors = set(store.digests())
            assert {digests[i] for i in reachable} <= survivors
            if in_flight:
                assert report.removed == []
                assert survivors == set(digests)
            else:
                assert set(report.removed) == {
                    digests[i] for i in range(n) if i not in reachable}


class TestNetlistCacheIntegration:
    def test_warm_load_serves_the_cached_instance(self, tmp_path):
        from repro.netlist import reset_engine_cache

        reset_engine_cache()
        store = ArtifactStore(tmp_path)
        digest = store.put_netlist(c17())
        first = store.get_netlist(digest)
        assert store.get_netlist(digest) is first
        assert store.get_netlist(digest, cache=False) is not first

    def test_mutated_instance_is_reparsed(self, tmp_path):
        from repro.netlist import reset_engine_cache

        reset_engine_cache()
        store = ArtifactStore(tmp_path)
        original_gates = list(c17().gates)
        digest = store.put_netlist(c17())
        first = store.get_netlist(digest)
        first.add_gate("extra", GateType.NOT, [first.outputs[0]])
        fresh = store.get_netlist(digest)
        assert fresh is not first
        assert list(fresh.gates) == original_gates

    def test_collected_artifact_reads_absent_despite_warm_cache(
            self, tmp_path):
        from repro.netlist import reset_engine_cache

        reset_engine_cache()
        store = ArtifactStore(tmp_path)
        digest = store.put_netlist(c17())
        assert store.get_netlist(digest) is not None   # warm the cache
        report = store.gc(grace_s=0.0)
        assert digest in report.removed
        assert store.get_netlist(digest) is None


class TestDigestValidation:
    # Digests arrive over the network (gateway URL paths) and from the
    # CLI; syntax is enforced before any path construction so nothing
    # traversal-shaped ever reaches the filesystem layer.

    BAD = ["", "ab", "ab" * 31, "ab" * 33, "AB" * 32, "gg" * 32,
           "../" + "ab" * 31 + "x", "..", "../../etc/passwd",
           ("ab" * 32)[:-1] + "/", "ab/" + "cd" * 30 + "ef"]

    def test_validate_digest_accepts_canonical(self):
        from repro.service.store import validate_digest
        digest = stable_hash({"ok": 1})
        assert validate_digest(digest) == digest

    @pytest.mark.parametrize("bad", BAD)
    def test_malformed_digests_rejected_everywhere(self, bad, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.put(bad, {"x": 1})
        with pytest.raises(ValueError):
            store.get(bad)
        with pytest.raises(ValueError):
            store.pin(bad)
        with pytest.raises(ValueError):
            store.unpin(bad)
        with pytest.raises(ValueError):
            bad in store
        # Nothing was created anywhere under (or outside) the root.
        assert len(store) == 0
        assert not (tmp_path / ".pins").exists()

    def test_non_string_digest_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError):
            store.get(None)

    def test_error_message_is_clean(self, tmp_path):
        store = ArtifactStore(tmp_path)
        with pytest.raises(ValueError, match="64 lowercase hex"):
            store.get("../escape")
