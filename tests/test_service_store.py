"""Content-addressed artifact store and canonical netlist hashing."""

import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    GateType,
    Netlist,
    c17,
    canonical_form,
    canonical_json,
    netlist_from_dict,
    netlist_hash,
    netlist_to_dict,
    random_circuit,
    ripple_carry_adder,
    stable_hash,
    simulate,
    transport_hash,
)
from repro.service import ArtifactStore, result_key


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_json({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_key_order_invariant(self):
        assert (stable_hash({"x": 1, "y": 2})
                == stable_hash({"y": 2, "x": 1}))

    def test_rejects_non_json(self):
        with pytest.raises(TypeError):
            canonical_json({"fn": lambda: None})

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})


class TestNetlistRoundTrip:
    @pytest.mark.parametrize("make", [c17,
                                      lambda: ripple_carry_adder(4)])
    def test_transport_round_trip_preserves_order(self, make):
        netlist = make()
        clone = netlist_from_dict(netlist_to_dict(netlist))
        # Insertion order is semantic (seeded site enumeration walks
        # it), so the transport form must preserve it exactly.
        assert list(clone.gates) == list(netlist.gates)
        assert clone.outputs == netlist.outputs
        for name, gate in netlist.gates.items():
            assert clone.gates[name].gate_type == gate.gate_type
            assert clone.gates[name].fanins == gate.fanins

    def test_round_trip_simulates_identically(self):
        netlist = ripple_carry_adder(4)
        clone = netlist_from_dict(netlist_to_dict(netlist))
        stim = {name: 0b1010 for name in netlist.inputs}
        assert simulate(clone, stim) == simulate(netlist, stim)


def _permuted_clone(netlist: Netlist, order) -> Netlist:
    """Same structure, gates inserted in a different order."""
    clone = Netlist(netlist.name)
    names = list(netlist.gates)
    for i in order:
        gate = netlist.gates[names[i]]
        clone.add_gate(gate.name, gate.gate_type, list(gate.fanins))
    for out in netlist.outputs:
        clone.add_output(out)
    return clone


class TestCanonicalHash:
    def test_name_excluded(self):
        a, b = c17(), c17()
        b.name = "other"
        assert netlist_hash(a) == netlist_hash(b)

    def test_structure_included(self):
        a = c17()
        b = c17()
        b.add_gate("extra", GateType.NOT, [b.outputs[0]])
        assert netlist_hash(a) != netlist_hash(b)

    @settings(max_examples=25, deadline=None)
    @given(st.data())
    def test_insertion_order_independent(self, data):
        seed = data.draw(st.integers(0, 2**16), label="circuit seed")
        netlist = random_circuit(n_inputs=4, n_gates=12, n_outputs=3,
                                 seed=seed)
        order = data.draw(
            st.permutations(range(len(netlist.gates))),
            label="insertion order")
        clone = _permuted_clone(netlist, order)
        assert canonical_form(clone) == canonical_form(netlist)
        assert netlist_hash(clone) == netlist_hash(netlist)

    def test_output_order_is_semantic(self):
        a = ripple_carry_adder(2)
        b = _permuted_clone(a, range(len(a.gates)))
        b.outputs = list(reversed(b.outputs))
        assert netlist_hash(a) != netlist_hash(b)


class TestTransportHash:
    def test_name_excluded(self):
        a, b = c17(), c17()
        b.name = "other"
        assert transport_hash(a) == transport_hash(b)

    def test_same_order_same_digest(self):
        assert transport_hash(c17()) == transport_hash(c17())

    def test_insertion_order_included(self):
        # Gate order is observable downstream (seeded site
        # enumeration), so — unlike netlist_hash — the transport
        # digest must distinguish orderings.
        a = ripple_carry_adder(4)
        b = _permuted_clone(a, list(reversed(range(len(a.gates)))))
        assert netlist_hash(a) == netlist_hash(b)
        assert transport_hash(a) != transport_hash(b)


class TestArtifactStore:
    def test_put_get(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        assert store.get("ab" * 32) == {"x": 1}
        assert store.get("cd" * 32) is None
        assert len(store) == 1

    def test_empty_store_is_truthy(self, tmp_path):
        assert bool(ArtifactStore(tmp_path))

    def test_sharded_layout(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ab" * 32
        store.put(digest, {"x": 1})
        assert (tmp_path / digest[:2] / f"{digest[2:]}.json").exists()

    def test_netlist_round_trip_content_addressed(self, tmp_path):
        store = ArtifactStore(tmp_path)
        netlist = c17()
        digest = store.put_netlist(netlist)
        assert digest == transport_hash(netlist)
        # Re-putting the same content is a no-op, not a new artifact.
        assert store.put_netlist(c17()) == digest
        assert len(store) == 1
        clone = store.get_netlist(digest)
        assert list(clone.gates) == list(netlist.gates)
        assert clone.outputs == netlist.outputs

    def test_distinct_orderings_are_distinct_artifacts(self, tmp_path):
        # Two structurally identical netlists built in different gate
        # orders must not share a store slot: each client's jobs must
        # load back *its own* ordering, or seeded site enumeration in
        # the worker diverges from that client's serial run.
        store = ArtifactStore(tmp_path)
        a = ripple_carry_adder(4)
        b = _permuted_clone(a, list(reversed(range(len(a.gates)))))
        digest_a = store.put_netlist(a)
        digest_b = store.put_netlist(b)
        assert digest_a != digest_b
        assert len(store) == 2
        assert list(store.get_netlist(digest_a).gates) == list(a.gates)
        assert list(store.get_netlist(digest_b).gates) == list(b.gates)

    def test_cross_process_key_stability(self, tmp_path):
        # The same spec computed in another "process" (fresh objects)
        # addresses the same artifact.
        store = ArtifactStore(tmp_path)
        key = result_key(netlist_hash(c17()), "p" * 8, seed=3)
        store.put(key, {"result": 42})
        assert result_key(netlist_hash(c17()), "p" * 8, seed=3) == key
        assert ArtifactStore(tmp_path).get(key) == {"result": 42}

    def test_torn_write_is_a_miss(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "ef" * 32
        shard = tmp_path / digest[:2]
        shard.mkdir()
        (shard / f"{digest[2:]}.json").write_text('{"trunc')
        assert store.get(digest) is None

    def test_hit_miss_counters(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.put("ab" * 32, {"x": 1})
        store.get("ab" * 32)
        store.get("cd" * 32)
        assert store.hits == 1
        assert store.misses == 1

    def test_concurrent_put_same_key(self, tmp_path):
        store = ArtifactStore(tmp_path)
        digest = "aa" * 32

        def put():
            for _ in range(20):
                store.put(digest, {"x": 1})

        threads = [threading.Thread(target=put) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert store.get(digest) == {"x": 1}
        assert len(store) == 1
