"""Invariant tests for the multi-layer grid maze router."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import c17, random_circuit, ripple_carry_adder
from repro.physical import (
    RoutedLayout,
    RoutedNet,
    annealing_placement,
    maze_route,
    random_placement,
    reroute_nets,
    routing_nets,
)
from repro.physical.routing import is_via_edge


def _route(netlist, seed=0, **kwargs):
    placement = annealing_placement(netlist, seed=seed,
                                    iterations=800).placement
    return maze_route(netlist, placement, **kwargs), placement


def _assert_invariants(layout, netlist, placement):
    """The router's contract: connectivity, exclusivity, via sanity."""
    scale = layout.scale
    # Every routable net is either routed or reported failed.
    for name, driver_site, sinks in routing_nets(netlist, placement):
        assert name in layout.nets or name in layout.failed
        if name in layout.failed:
            continue
        routed = layout.nets[name]
        # Every sink pin got a branch.
        expected = {(s[0] * scale, s[1] * scale) for s in sinks}
        assert expected == set(routed.branches), name
        # Driver -> each sink: a connected path through the grid.
        # Branches attach in insertion order (each starts on the tree
        # built by its predecessors).
        root = (driver_site[0] * scale, driver_site[1] * scale, 1)
        tree_nodes = {root}
        for pin in routed.sink_pins:
            path = routed.branches[pin]
            assert path[0] in tree_nodes, (name, pin)  # attaches to tree
            assert path[-1] == (pin[0], pin[1], 1)
            for a, b in zip(path, path[1:]):
                dx = abs(a[0] - b[0])
                dy = abs(a[1] - b[1])
                dl = abs(a[2] - b[2])
                # unit steps: one lateral hop or one via
                assert sorted((dx, dy, dl)) == [0, 0, 1], (a, b)
                if dl:  # vias only join adjacent layers
                    assert (a[0], a[1]) == (b[0], b[1])
            tree_nodes.update(path)
    # No two nets share a grid edge (exclusivity).
    seen = {}
    for name, routed in layout.nets.items():
        for e in routed.edges():
            assert e not in seen or seen[e] == name, (e, name, seen[e])
            seen[e] = name
            assert layout.edge_owner.get(e) == name
    # Ownership map carries no stale entries.
    assert set(seen) == set(layout.edge_owner)


class TestRouterInvariants:
    def test_c17_routes_clean(self):
        n = c17()
        layout, placement = _route(n)
        assert layout.failed == []
        _assert_invariants(layout, n, placement)

    def test_rca16_routes_clean(self):
        n = ripple_carry_adder(16)
        layout, placement = _route(n)
        assert layout.failed == []
        _assert_invariants(layout, n, placement)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_random_circuits_hold_invariants(self, seed):
        n = random_circuit(4, 12, 3, seed=seed)
        placement = random_placement(n, seed=seed)
        layout = maze_route(n, placement)
        _assert_invariants(layout, n, placement)

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 100))
    def test_deterministic_for_fixed_inputs(self, seed):
        n = random_circuit(5, 16, 4, seed=seed)
        placement = random_placement(n, seed=seed)
        a = maze_route(n, placement)
        b = maze_route(n, placement)
        assert a.to_dict() == b.to_dict()

    def test_layer_limit_respected(self):
        n = ripple_carry_adder(8)
        layout, placement = _route(n)
        name = next(iter(layout.nets))
        reroute_nets(layout, n, placement, [name], max_layer=2)
        if name in layout.nets:
            assert layout.nets[name].max_layer <= 2
        _assert_invariants(layout, n, placement)

    def test_num_layers_bounds_all_nets(self):
        n = ripple_carry_adder(8)
        layout, _ = _route(n, num_layers=3)
        assert all(r.max_layer <= 3 for r in layout.nets.values())


class TestPartialRipUp:
    def test_rip_edges_drops_only_broken_branches(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        routed = RoutedNet("a", (0, 0), [])
        routed.sink_pins = [(4, 0), (4, 2)]
        trunk = [(x, 0, 1) for x in range(5)]
        spur = [(4, 0, 1), (4, 1, 1), (4, 2, 1)]
        routed.branches = {(4, 0): trunk, (4, 2): spur}
        layout.claim("a", routed)
        lost = layout.rip_edges("a", {((4, 1, 1), (4, 2, 1))})
        assert lost == [(4, 2)]
        assert layout.nets["a"].sink_pins == [(4, 0)]
        assert ((4, 1, 1), (4, 2, 1)) not in layout.edge_owner
        assert layout.edge_owner[((0, 0, 1), (1, 0, 1))] == "a"

    def test_rip_edges_cascades_to_disconnected_branches(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        routed = RoutedNet("a", (0, 0), [])
        routed.sink_pins = [(2, 0), (2, 2)]
        trunk = [(0, 0, 1), (1, 0, 1), (2, 0, 1)]
        spur = [(2, 0, 1), (2, 1, 1), (2, 2, 1)]
        routed.branches = {(2, 0): trunk, (2, 2): spur}
        layout.claim("a", routed)
        # Stealing a trunk edge orphans the spur attached downstream.
        lost = layout.rip_edges("a", {((0, 0, 1), (1, 0, 1))})
        assert lost == [(2, 0), (2, 2)]
        assert "a" not in layout.nets
        assert layout.edge_owner == {}


class TestSerialization:
    def test_round_trip(self):
        n = ripple_carry_adder(8)
        layout, _ = _route(n)
        layout.shields.add((1, 1, 3))
        layout.fillers.add((2, 2))
        clone = RoutedLayout.from_dict(layout.to_dict())
        assert clone.to_dict() == layout.to_dict()
        assert clone.edge_owner == layout.edge_owner

    def test_occupancy_matches_nets(self):
        n = c17()
        layout, _ = _route(n)
        stack = layout.occupancy_stack()
        for routed in layout.nets.values():
            for x, y, l in routed.nodes():
                assert stack[l - 1, x, y]
