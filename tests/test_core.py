"""Tests for the core secure-composition framework."""

import pytest

from repro.core import (
    AttackTime,
    ClassicalFlow,
    CompositionEngine,
    Design,
    DesignStage,
    EdaRole,
    MetricRegistry,
    SecureFlow,
    SecurityMetric,
    StepFunctionMetric,
    THREAT_CATALOG,
    ThreatVector,
    Direction,
    duplication_countermeasure,
    locking_candidates,
    masked_and_design,
    masking_order_steps,
    no_leaky_net_requirement,
    pareto_front,
    parity_countermeasure,
    render_table,
    render_table_i,
    run_cell,
    sat_attack_resistance_steps,
    sweep_locking,
    table_i,
    timing_reassociation_step,
    tvla_requirement,
    wddl_countermeasure,
)
from repro.core.dse import Candidate, dominates
from repro.netlist import random_circuit


class TestThreatModels:
    def test_catalog_covers_all_vectors(self):
        vectors = {m.vector for m in THREAT_CATALOG.values()}
        assert vectors == set(ThreatVector)

    def test_models_fully_specified(self):
        for model in THREAT_CATALOG.values():
            assert model.assets and model.capabilities and model.goals
            assert model.attack_times and model.eda_roles

    def test_table_i_rows(self):
        rows = table_i()
        assert len(rows) == 4
        assert rows[0].vector is ThreatVector.SIDE_CHANNEL
        sca_row = rows[0]
        assert EdaRole.EVALUATION in sca_row.roles
        assert AttackTime.RUNTIME in sca_row.attack_times

    def test_table_i_render(self):
        text = render_table_i(table_i())
        assert "side-channel" in text
        assert "repro.sca.tvla" in text


class TestClassicalFlow:
    def test_runs_and_reports(self):
        flow = ClassicalFlow(placement_iterations=1000)
        result = flow.run(random_circuit(8, 60, 3, seed=1))
        assert result.report.final_ppa is not None
        stages = [r.stage for r in result.report.records]
        assert DesignStage.LOGIC_SYNTHESIS in stages
        assert DesignStage.TESTING in stages

    def test_no_security_checks_by_construction(self):
        flow = ClassicalFlow(placement_iterations=500,
                             run_atpg_stage=False)
        result = flow.run(random_circuit(6, 40, 2, seed=2))
        assert result.report.total_security_checks == 0

    def test_render(self):
        flow = ClassicalFlow(placement_iterations=500,
                             run_atpg_stage=False)
        result = flow.run(random_circuit(6, 40, 2, seed=3))
        text = result.report.render()
        assert "(none)" in text  # the security-gap marker


class TestMetrics:
    def test_registry(self):
        registry = MetricRegistry()
        metric = SecurityMetric(
            "m1", ThreatVector.SIDE_CHANNEL,
            Direction.LOWER_IS_BETTER, lambda d: 1.0, target=4.5)
        registry.register(metric)
        assert "m1" in registry
        assert registry.for_threat(ThreatVector.SIDE_CHANNEL) == [metric]
        with pytest.raises(ValueError):
            registry.register(metric)

    def test_metric_result_satisfaction(self):
        metric = SecurityMetric(
            "tvla", ThreatVector.SIDE_CHANNEL,
            Direction.LOWER_IS_BETTER, lambda d: d, target=4.5)
        assert metric.evaluate(2.0).satisfied
        assert not metric.evaluate(9.0).satisfied

    def test_step_function_flat_segments(self):
        steps = sat_attack_resistance_steps()
        assert steps.level(0) == 0
        assert steps.level(8) == 1
        assert steps.level(9) == steps.level(15)
        assert steps.marginal_gain(9, 3) == 0
        assert steps.marginal_gain(9, 10) == 1

    def test_step_level_names(self):
        steps = masking_order_steps()
        assert steps.level_name(1) == "unprotected"
        assert steps.level_name(2) == "1st-order"

    def test_efficient_efforts_are_thresholds(self):
        steps = sat_attack_resistance_steps()
        assert steps.efficient_efforts() == [8, 16, 32, 64]


class TestComposition:
    @pytest.fixture(scope="class")
    def engine(self):
        return CompositionEngine(n_traces=3000, noise_sigma=0.25, seed=1)

    def test_baseline_masked_design_clean(self, engine):
        snapshot = engine.evaluate(masked_and_design())
        assert snapshot.tvla_max_t < 4.5
        assert snapshot.leaky_nets == 0

    def test_duplication_composes_safely(self, engine):
        _, report = engine.compose(masked_and_design(),
                                   [duplication_countermeasure()])
        assert not report.harmful_effects
        final = report.steps[-1][1]
        assert final.fia_coverage == 1.0
        assert final.tvla_max_t < 4.5

    def test_parity_breaks_masking(self, engine):
        _, report = engine.compose(masked_and_design(),
                                   [parity_countermeasure()])
        harmful = {e.metric for e in report.harmful_effects}
        assert "tvla_max_t" in harmful
        final = report.steps[-1][1]
        assert final.tvla_max_t > 4.5       # leakage introduced
        assert final.fia_coverage == 1.0    # while FIA goal achieved

    def test_reassociation_flagged(self, engine):
        _, report = engine.compose(masked_and_design(),
                                   [timing_reassociation_step()])
        assert report.harmful_effects

    def test_wddl_composes_safely(self, engine):
        _, report = engine.compose(masked_and_design(),
                                   [wddl_countermeasure()])
        assert not any(e.metric == "tvla_max_t" and e.harmful
                       for e in report.cross_effects)

    def test_report_render(self, engine):
        _, report = engine.compose(masked_and_design(),
                                   [parity_countermeasure()])
        text = report.render()
        assert "!!" in text
        assert "baseline" in text


class TestSecureFlow:
    def test_catches_parity_break(self):
        flow = SecureFlow(
            [tvla_requirement(n_traces=2500)],
            transforms=[parity_countermeasure()],
            placement_iterations=500)
        result = flow.run(masked_and_design())
        assert not result.all_passed
        assert any("after parity-detect" in f for f in result.failures)

    def test_passes_safe_composition(self):
        flow = SecureFlow(
            [tvla_requirement(n_traces=2500)],
            transforms=[duplication_countermeasure()],
            placement_iterations=500)
        result = flow.run(masked_and_design())
        assert result.all_passed

    def test_leaky_net_requirement_names_wire(self):
        flow = SecureFlow(
            [no_leaky_net_requirement(n_traces=2500)],
            transforms=[parity_countermeasure()],
            placement_iterations=500)
        result = flow.run(masked_and_design())
        assert any("leaking nets" in f for f in result.failures)


class TestDse:
    def test_dominates(self):
        a = Candidate("a", objectives={"sec": 2.0, "area": 10.0})
        b = Candidate("b", objectives={"sec": 1.0, "area": 12.0})
        assert dominates(a, b, maximize=["sec"], minimize=["area"])
        assert not dominates(b, a, maximize=["sec"], minimize=["area"])

    def test_pareto_front(self):
        candidates = [
            Candidate("cheap", objectives={"sec": 0.0, "area": 5.0}),
            Candidate("mid", objectives={"sec": 1.0, "area": 10.0}),
            Candidate("bad", objectives={"sec": 0.0, "area": 20.0}),
            Candidate("strong", objectives={"sec": 2.0, "area": 30.0}),
        ]
        front = pareto_front(candidates, maximize=["sec"],
                             minimize=["area"])
        names = {c.name for c in front}
        assert names == {"cheap", "mid", "strong"}

    def test_locking_sweep_monotone_area(self):
        points = sweep_locking(random_circuit(7, 50, 3, seed=4),
                               [0, 4, 8], seed=1)
        areas = [p.area for p in points]
        assert areas == sorted(areas)

    def test_locking_candidates_step_levels(self):
        points = sweep_locking(random_circuit(7, 50, 3, seed=4),
                               [0, 8], seed=1)
        candidates = locking_candidates(points)
        levels = [c.objectives["security_level"] for c in candidates]
        assert levels[0] <= levels[-1]


class TestTable2:
    def test_every_cell_has_demo(self):
        from repro.core import all_demos
        demos = all_demos()
        cells = {(d.stage, d.threat) for d in demos}
        assert len(cells) == 24  # full 6x4 grid

    @pytest.mark.parametrize("stage,threat", [
        (DesignStage.LOGIC_SYNTHESIS, ThreatVector.IP_PIRACY),
        (DesignStage.TESTING, ThreatVector.SIDE_CHANNEL),
        (DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.TROJAN),
        (DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.FAULT_INJECTION),
    ])
    def test_selected_cells_run(self, stage, threat):
        result = run_cell(stage, threat)
        assert result.stage is stage and result.threat is threat
        assert result.value >= 0.0 or True
        assert result.detail

    def test_render(self):
        results = [run_cell(DesignStage.TESTING,
                            ThreatVector.SIDE_CHANNEL)]
        text = render_table(results)
        assert "secure scan" in text
