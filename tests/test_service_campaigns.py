"""Campaign clients: serial/parallel parity, cache resubmission, run DB."""

import pytest

import test_service_scheduler  # noqa: F401  registers t-echo / t-sleep

from repro.core import CompositionEngine, sweep_locking
from repro.netlist import c17, ripple_carry_adder
from repro.service import (
    ArtifactStore,
    CampaignError,
    JobSpec,
    RunDatabase,
    Scheduler,
    composition_matrix_campaign,
    locking_sweep_campaign,
    security_closure_campaign,
)

WIDTHS = [0, 2, 4]
SEED = 5


def _point_tuple(p):
    # attack_seconds is wall time — excluded from parity on purpose.
    return (p.key_bits, p.area, p.sat_attack_iterations,
            p.attack_gave_up)


class TestLockingSweepParity:
    def test_campaign_matches_direct_sweep(self, tmp_path):
        netlist = ripple_carry_adder(4)
        direct = sweep_locking(netlist, WIDTHS, seed=SEED)
        via_service = locking_sweep_campaign(
            netlist, WIDTHS, seed=SEED,
            store=ArtifactStore(tmp_path / "store"))
        assert ([_point_tuple(p) for p in direct]
                == [_point_tuple(p) for p in via_service])

    def test_workers_bit_identical_to_serial(self, tmp_path):
        netlist = ripple_carry_adder(4)
        serial = locking_sweep_campaign(
            netlist, WIDTHS, seed=SEED, workers=0,
            store=ArtifactStore(tmp_path / "serial"))
        parallel = locking_sweep_campaign(
            netlist, WIDTHS, seed=SEED, workers=2,
            store=ArtifactStore(tmp_path / "parallel"))
        assert ([_point_tuple(p) for p in serial]
                == [_point_tuple(p) for p in parallel])

    def test_failure_surfaces_as_campaign_error(self, tmp_path):
        # Timeouts are enforced by polling live workers, so the budget
        # must be overrun by a job that is still running at the first
        # poll — a wide locked adder, not c17.
        netlist = ripple_carry_adder(8)
        with pytest.raises(CampaignError) as excinfo:
            locking_sweep_campaign(
                netlist, [12], seed=SEED, workers=2, timeout=0.01,
                store=ArtifactStore(tmp_path / "store"))
        assert excinfo.value.jobs    # the failing jobs ride along


class TestCacheResubmission:
    def test_resubmission_is_cache_served(self, tmp_path):
        netlist = ripple_carry_adder(4)
        store = ArtifactStore(tmp_path / "store")
        rundb = RunDatabase(tmp_path / "runs.jsonl")

        first = locking_sweep_campaign(netlist, WIDTHS, seed=SEED,
                                       store=store, rundb=rundb)
        second = locking_sweep_campaign(netlist, WIDTHS, seed=SEED,
                                        store=store, rundb=rundb)
        assert ([_point_tuple(p) for p in first]
                == [_point_tuple(p) for p in second])

        runs = rundb.run_ids()
        assert len(runs) == 2
        cold = rundb.summary(runs[0])
        warm = rundb.summary(runs[1])
        assert cold["cache_hit_rate"] == 0.0
        # The acceptance bar: resubmission served >=90% from cache.
        assert warm["cache_hit_rate"] >= 0.90

    def test_different_seed_is_not_cache_served(self, tmp_path):
        netlist = ripple_carry_adder(4)
        store = ArtifactStore(tmp_path / "store")
        rundb = RunDatabase(tmp_path / "runs.jsonl")
        locking_sweep_campaign(netlist, [2], seed=1,
                               store=store, rundb=rundb)
        locking_sweep_campaign(netlist, [2], seed=2,
                               store=store, rundb=rundb)
        warm = rundb.summary(rundb.run_ids()[1])
        assert warm["cache_hit_rate"] == 0.0


class TestCompositionCampaign:
    def test_matrix_matches_direct_engine(self, tmp_path):
        engine = CompositionEngine(seed=2, n_traces=400)
        direct = engine.evaluate_stack_row("masked-and", ["parity"])
        matrix = composition_matrix_campaign(
            stacks={"parity": ["parity"]},
            engine_params={"n_traces": 400}, seed=2,
            store=ArtifactStore(tmp_path / "store"))
        assert matrix["parity"]["flagged"] == direct["flagged"]
        assert (matrix["parity"]["final"]["tvla_max_t"]
                == direct["final"]["tvla_max_t"])
        assert matrix["parity"]["notes"] == direct["notes"]

    def test_parity_stack_flagged_duplication_clean(self, tmp_path):
        # Ref [61]: parity checkers break masking; duplication does not.
        matrix = composition_matrix_campaign(
            stacks={"parity": ["parity"],
                    "duplication": ["duplication"]},
            engine_params={"n_traces": 2000}, seed=1, workers=2,
            store=ArtifactStore(tmp_path / "store"))
        assert matrix["parity"]["flagged"]
        assert not matrix["duplication"]["flagged"]


class TestPassPipelineJob:
    def test_documented_sample_params_run(self, tmp_path):
        # The registry sample is the job's documentation — it must
        # actually execute (it once crashed on params round-trip and
        # named an unregistered pass).
        from repro.flow import FlowTrace
        from repro.service import (JobContext, registered_job_types,
                                   run_job)

        store = ArtifactStore(tmp_path / "store")
        digest = store.put_netlist(ripple_carry_adder(2))
        sample = dict(
            registered_job_types()["pass-pipeline"].sample_params)
        sample["netlist"] = digest
        spec = JobSpec("pass-pipeline", params=sample, seed=3)
        result = run_job(spec, JobContext(seed=3, store=store))
        assert result["result_netlist"] in store
        trace = FlowTrace.from_dict(result["trace"])
        assert [p.pass_name for p in trace.passes] == ["synthesis"]


class TestSecurityClosureCampaign:
    def test_closure_job_end_to_end_multiprocess(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        rundb = RunDatabase(tmp_path / "runs.jsonl")
        results = security_closure_campaign(
            [c17(), ripple_carry_adder(8)], seed=2, workers=2,
            store=store, rundb=rundb)
        assert set(results) == {"c17", "rca8"}
        for name, row in results.items():
            assert row["converged"], name
            assert row["equivalent"], name
            assert row["failed_nets"] == [], name
            assert row["metrics"]["probing"] <= 0.05
            assert row["metrics"]["fia"] <= 0.30
            assert row["metrics"]["trojan"] <= 0.05
            assert row["layout"] in store   # closed layout published
        by_type = [r for r in rundb.records() if r.job_type == "closure"]
        assert len(by_type) == 2
        assert all(r.status == "succeeded" for r in by_type)

    def test_workers_bit_identical_to_serial(self, tmp_path):
        # The closure job strips wall times, so the *entire* result
        # dict — per-iteration trace provenance included — must match.
        serial = security_closure_campaign(
            [c17()], seed=4, workers=0,
            store=ArtifactStore(tmp_path / "serial"))
        parallel = security_closure_campaign(
            [c17()], seed=4, workers=2,
            store=ArtifactStore(tmp_path / "parallel"))
        assert serial == parallel

    def test_route_job_publishes_layout(self, tmp_path):
        from repro.service import JobContext, run_job

        store = ArtifactStore(tmp_path / "store")
        digest = store.put_netlist(c17())
        spec = JobSpec("route", params={"netlist": digest}, seed=1)
        result = run_job(spec, JobContext(seed=1, store=store))
        assert result["failed_nets"] == []
        assert result["nets"] > 0
        doc = store.get(result["layout"])
        from repro.physical import RoutedLayout

        layout = RoutedLayout.from_dict(doc)
        assert len(layout.nets) == result["nets"]
        assert layout.total_wirelength == result["wirelength"]


class TestCliValidation:
    def test_compose_unknown_stack_exits_2(self, capsys):
        from repro.service.cli import main

        assert main(["compose", "--stacks", "parity,typo"]) == 2
        out = capsys.readouterr().out
        assert "typo" in out
        assert "parity" in out       # the valid choices are listed

    def test_sweep_unknown_bench_exits_2(self, capsys):
        from repro.service.cli import main

        assert main(["sweep", "--bench", "nope"]) == 2
        assert "nope" in capsys.readouterr().out

    def test_closure_unknown_bench_exits_2(self, capsys):
        from repro.service.cli import main

        assert main(["closure", "--benches", "c17,bogus"]) == 2
        out = capsys.readouterr().out
        assert "bogus" in out
        assert "c17" in out


class TestRunDatabase:
    def test_records_expose_policy_outcomes(self, tmp_path):
        rundb = RunDatabase(tmp_path / "runs.jsonl")
        s = Scheduler(workers=2, rundb=rundb,
                      store=ArtifactStore(tmp_path / "store"))
        ok = s.submit(JobSpec("t-echo", params={"value": 1}))
        slow = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                                timeout=0.2))
        blocked = s.submit(JobSpec("t-echo", params={"value": 2}),
                           deps=[slow])
        s.run()

        by_id = {r.job_id: r for r in rundb.records()}
        assert by_id[ok].status == "succeeded"
        assert by_id[slow].status == "timeout"
        assert "timeout" in by_id[slow].error
        assert by_id[blocked].status == "skipped"

        assert [r.job_id for r in rundb.query(status="timeout")] \
            == [slow]
        summary = rundb.summary()
        assert summary["by_status"] == {
            "succeeded": 1, "timeout": 1, "skipped": 1}

    def test_torn_tail_line_is_tolerated(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        rundb = RunDatabase(path)
        s = Scheduler(workers=0, rundb=rundb)
        s.submit(JobSpec("t-echo", params={"value": 1}))
        s.run()
        with open(path, "a") as handle:
            handle.write('{"run_id": "torn')   # crash mid-append
        assert len(RunDatabase(path).records()) == 1
