"""Tests for the formal substrate: SAT solver, encoding, equivalence, BMC."""

import itertools
import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal import (
    CircuitEncoder,
    Solver,
    bmc_reach,
    build_miter,
    check_equivalence,
    lit,
    neg,
    prove_implication,
    prove_output_constant,
    solve_circuit,
)
from repro.netlist import (
    GateType,
    Netlist,
    c17,
    exhaustive_truth_table,
    output_values,
    random_circuit,
)
from repro.synth import synthesize, to_nand_inv


def brute_force_sat(n_vars, clauses):
    for bits in itertools.product([0, 1], repeat=n_vars):
        if all(any((bits[l >> 1] ^ (l & 1)) == 1 for l in c) for c in clauses):
            return True
    return False


class TestSolver:
    def test_empty_formula_sat(self):
        s = Solver()
        s.new_var()
        assert s.solve() is True

    def test_unit_conflict(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a)])
        assert not s.add_clause([lit(a, True)]) or s.solve() is False

    def test_simple_unsat(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        s.add_clause([lit(a), lit(b, True)])
        s.add_clause([lit(a, True), lit(b)])
        s.add_clause([lit(a, True), lit(b, True)])
        assert s.solve() is False

    def test_model_satisfies(self):
        s = Solver()
        vs = [s.new_var() for _ in range(4)]
        clauses = [[lit(vs[0]), lit(vs[1], True)],
                   [lit(vs[2]), lit(vs[3])],
                   [lit(vs[0], True), lit(vs[2], True)]]
        for c in clauses:
            s.add_clause(c)
        assert s.solve() is True
        model = [s.model_value(v) for v in vs]
        for c in clauses:
            assert any(model[l >> 1] ^ (l & 1) for l in c)

    def test_random_cross_check(self):
        rng = random.Random(7)
        for _ in range(60):
            nv = rng.randint(3, 8)
            nc = rng.randint(5, 35)
            clauses = []
            for _ in range(nc):
                vs = rng.sample(range(nv), rng.randint(1, min(3, nv)))
                clauses.append([2 * v + rng.randint(0, 1) for v in vs])
            s = Solver()
            for _ in range(nv):
                s.new_var()
            ok = all(s.add_clause(c) for c in clauses)
            got = s.solve() if ok else False
            assert got == brute_force_sat(nv, clauses)

    def test_assumptions(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.solve([lit(a, True), lit(b, True)]) is False
        assert s.solve([lit(a, True)]) is True
        assert s.model_value(b) == 1
        assert s.solve() is True  # no assumptions: still SAT

    def test_incremental_clauses(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.solve() is True
        s.add_clause([lit(a, True)])
        assert s.solve() is True
        assert s.model_value(b) == 1
        s.add_clause([lit(b, True)])
        assert s.solve() is False

    def test_conflict_budget(self):
        # A hard pigeonhole-ish instance should exhaust a tiny budget.
        s = Solver()
        n = 6
        holes = 5
        vs = [[s.new_var() for _ in range(holes)] for _ in range(n)]
        for p in range(n):
            s.add_clause([lit(vs[p][h]) for h in range(holes)])
        for h in range(holes):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    s.add_clause([lit(vs[p1][h], True), lit(vs[p2][h], True)])
        assert s.solve(conflict_budget=3) is None

    def test_tautology_ignored(self):
        s = Solver()
        a = s.new_var()
        assert s.add_clause([lit(a), lit(a, True)])
        assert s.solve() is True

    def test_stats(self):
        s = Solver()
        a = s.new_var()
        s.add_clause([lit(a)])
        s.solve()
        stats = s.stats()
        assert stats["vars"] == 1


class TestEncoding:
    @pytest.mark.parametrize("gate_type,table", [
        (GateType.AND, [0, 0, 0, 1]),
        (GateType.NAND, [1, 1, 1, 0]),
        (GateType.OR, [0, 1, 1, 1]),
        (GateType.NOR, [1, 0, 0, 0]),
        (GateType.XOR, [0, 1, 1, 0]),
        (GateType.XNOR, [1, 0, 0, 1]),
    ])
    def test_two_input_gates(self, gate_type, table):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("y", gate_type, ["a", "b"])
        n.add_output("y")
        for minterm, want in enumerate(table):
            a, b = minterm & 1, (minterm >> 1) & 1
            sol = solve_circuit(n, {"a": a, "b": b}, {"y": want})
            if want == exhaustive_truth_table(n)[minterm]:
                assert sol is not None
            else:
                assert sol is None

    def test_mux_encoding(self):
        n = Netlist()
        for name in ("s", "a", "b"):
            n.add_input(name)
        n.add_gate("y", GateType.MUX, ["s", "a", "b"])
        n.add_output("y")
        sol = solve_circuit(n, {"s": 0, "a": 1}, {"y": 0})
        assert sol is None  # s=0 selects a=1, y must be 1

    def test_wide_xor_encoding(self):
        n = Netlist()
        for i in range(5):
            n.add_input(f"x{i}")
        n.add_gate("y", GateType.XOR, [f"x{i}" for i in range(5)])
        n.add_output("y")
        sol = solve_circuit(n, {}, {"y": 1})
        assert sol is not None
        assert sum(sol.values()) % 2 == 1

    def test_constants(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("z", GateType.CONST0)
        n.add_gate("y", GateType.OR, ["a", "z"])
        n.add_output("y")
        assert solve_circuit(n, {"a": 0}, {"y": 1}) is None


class TestEquivalence:
    def test_equivalent_after_synthesis(self):
        for seed in (1, 2):
            n = random_circuit(7, 60, 3, seed=seed)
            m = synthesize(n)
            assert check_equivalence(n, m).equivalent

    def test_equivalent_after_techmap(self):
        n = random_circuit(6, 40, 2, seed=11)
        m = n.copy()
        to_nand_inv(m)
        assert check_equivalence(n, m).equivalent

    def test_counterexample_is_real(self):
        n1 = c17()
        n2 = c17()
        n2.gates["G16"].gate_type = GateType.AND  # corrupt
        res = check_equivalence(n1, n2)
        assert not res.equivalent
        v1 = output_values(n1, res.counterexample)
        v2 = output_values(n2, res.counterexample)
        assert v1 != v2
        assert res.mismatched_output in ("G22", "G23")

    def test_fixed_inputs(self):
        # y = a AND k ; with k fixed to 1 it equals BUF(a).
        locked = Netlist()
        locked.add_input("a")
        locked.add_input("k")
        locked.add_gate("y", GateType.AND, ["a", "k"])
        locked.add_output("y")
        plain = Netlist()
        plain.add_input("a")
        plain.add_gate("y", GateType.BUF, ["a"])
        plain.add_output("y")
        assert check_equivalence(locked, plain,
                                 left_fixed={"k": 1}).equivalent
        assert not check_equivalence(locked, plain,
                                     left_fixed={"k": 0}).equivalent

    def test_unbound_right_inputs_rejected(self):
        left = Netlist()
        left.add_input("a")
        left.add_gate("y", GateType.BUF, ["a"])
        left.add_output("y")
        right = Netlist()
        right.add_input("a")
        right.add_input("extra")
        right.add_gate("y", GateType.AND, ["a", "extra"])
        right.add_output("y")
        with pytest.raises(ValueError):
            check_equivalence(left, right)

    def test_build_miter(self):
        n1 = c17()
        n2 = c17()
        miter = build_miter(n1, n2)
        miter.validate()
        # identical circuits: diff always 0
        assert prove_output_constant(miter, "diff", 0).holds


class TestProperties:
    def test_prove_constant_holds(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("y", GateType.XOR, ["a", "a"])
        n.add_output("y")
        assert prove_output_constant(n, "y", 0).holds

    def test_prove_constant_witness(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        res = prove_output_constant(n, "y", 0)
        assert not res.holds
        assert res.witness[0]["a"] == 1

    def test_implication(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("y", GateType.AND, ["a", "b"])
        n.add_output("y")
        assert prove_implication(n, {"y": 1}, {"a": 1, "b": 1}).holds
        assert not prove_implication(n, {"a": 1}, {"y": 1}).holds

    def build_counter(self):
        n = Netlist("cnt")
        n.add_input("en")
        n.add_gate("q0", GateType.DFF, ["d0"])
        n.add_gate("q1", GateType.DFF, ["d1"])
        n.add_gate("d0", GateType.XOR, ["q0", "en"])
        n.add_gate("c", GateType.AND, ["q0", "en"])
        n.add_gate("d1", GateType.XOR, ["q1", "c"])
        n.add_gate("both", GateType.AND, ["q0", "q1"])
        n.add_output("both")
        return n

    def test_bmc_unreachable_within_bound(self):
        assert bmc_reach(self.build_counter(), "both", 2).holds

    def test_bmc_reachable(self):
        res = bmc_reach(self.build_counter(), "both", 4)
        assert not res.holds
        assert all(frame["en"] == 1 for frame in res.witness[:3])

    def test_bmc_initial_state(self):
        res = bmc_reach(self.build_counter(), "both", 1,
                        initial_state={"q0": 1, "q1": 1})
        # state (1,1) already asserts 'both' in frame 0
        assert not res.holds

    def test_bmc_combinational_fallback(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("y", GateType.AND, ["a", "a"])
        n.add_output("y")
        assert not bmc_reach(n, "y", 3).holds  # reachable with a=1


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 1000))
def test_equivalence_random_property(seed):
    n = random_circuit(5, 30, 2, seed=seed)
    m = synthesize(n)
    assert check_equivalence(n, m).equivalent


class TestSolverRegistry:
    """Bounded process-local reuse of incremental solver engines."""

    def _registry(self):
        from repro.formal import SolverRegistry
        return SolverRegistry(max_entries=2)

    def test_get_or_create_builds_once(self):
        registry = self._registry()
        built = []

        def factory():
            built.append(1)
            return Solver()

        first = registry.get_or_create("k", factory)
        assert registry.get_or_create("k", factory) is first
        assert built == [1]
        assert registry.stats()["hits"] == 1
        assert registry.stats()["misses"] == 1

    def test_lru_eviction_is_bounded_and_counted(self):
        registry = self._registry()
        a = registry.get_or_create("a", Solver)
        registry.get_or_create("b", Solver)
        registry.get_or_create("a", Solver)    # touch: a most recent
        registry.get_or_create("c", Solver)    # evicts b
        assert "b" not in registry
        assert registry.get("a") is a
        assert len(registry) == 2
        assert registry.stats()["evictions"] == 1

    def test_discard_and_clear(self):
        registry = self._registry()
        registry.get_or_create("k", Solver)
        registry.discard("k")
        assert registry.get("k") is None
        registry.get_or_create("k", Solver)
        registry.clear()
        assert len(registry) == 0
        assert registry.stats()["hits"] == 0

    def test_singleton_is_resettable(self):
        from repro.formal import reset_solver_registry, solver_registry

        reset_solver_registry()
        first = solver_registry()
        assert solver_registry() is first
        reset_solver_registry()
        assert solver_registry() is not first

    def test_warm_solver_preserves_verdicts(self):
        # The determinism contract: reuse may change models, never
        # SAT/UNSAT verdicts.  Re-prove equivalence through one warm
        # encoder-backed check and a cold one.
        n = random_circuit(4, 15, 2, seed=11)
        m = synthesize(n)
        cold = check_equivalence(n, m).equivalent
        warm = check_equivalence(n, m).equivalent
        assert cold == warm is True
