"""Property tests for the compiled simulation engine.

The compiled engine (:mod:`repro.netlist.engine`) must be bit-exact
with the interpreted reference semantics
(:func:`repro.netlist.simulate_reference`) on arbitrary netlists, at
arbitrary pattern widths, and must transparently recompile after any
structural mutation.  Hypothesis generates the netlists; the reference
interpreter is the executable specification.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.netlist import (
    EngineCache,
    GateType,
    Netlist,
    engine_cache,
    get_compiled,
    reset_engine_cache,
    simulate,
    simulate_reference,
)
from repro.netlist.generators import c17

_VARIADIC = (
    GateType.AND, GateType.NAND, GateType.OR,
    GateType.NOR, GateType.XOR, GateType.XNOR,
)
_UNARY = (GateType.BUF, GateType.NOT)
_NULLARY = (GateType.CONST0, GateType.CONST1)


@st.composite
def combinational_netlists(draw) -> Netlist:
    """Random combinational DAG over every gate type (incl. MUX/CONST)."""
    n_inputs = draw(st.integers(min_value=1, max_value=6))
    n = Netlist("prop_comb")
    nets = [n.add_input(f"in{i}") for i in range(n_inputs)]
    n_gates = draw(st.integers(min_value=1, max_value=30))
    for k in range(n_gates):
        kind = draw(st.sampled_from(
            _VARIADIC + _UNARY + _NULLARY + (GateType.MUX,)))
        if kind in _NULLARY:
            fanins = []
        elif kind in _UNARY:
            fanins = [draw(st.sampled_from(nets))]
        elif kind is GateType.MUX:
            fanins = [draw(st.sampled_from(nets)) for _ in range(3)]
        else:
            arity = draw(st.integers(min_value=2, max_value=4))
            fanins = [draw(st.sampled_from(nets)) for _ in range(arity)]
        nets.append(n.add_gate(f"g{k}", kind, fanins))
    n.add_output(nets[-1])
    return n


@st.composite
def sequential_netlists(draw) -> Netlist:
    """Random netlist with DFFs feeding back into the logic."""
    n = draw(combinational_netlists())
    gate_nets = list(n.gates)
    n_flops = draw(st.integers(min_value=1, max_value=4))
    flop_outputs = []
    for k in range(n_flops):
        # D pin wired after the fact: forward references are legal.
        flop_outputs.append(n.add_gate(f"ff{k}", GateType.DFF, [f"d{k}"]))
    # State feeds back into fresh logic so flop values matter.
    for k, ff in enumerate(flop_outputs):
        other = draw(st.sampled_from(gate_nets))
        mixed = n.add_gate(f"mix{k}", GateType.XOR, [ff, other])
        n.add_gate(f"d{k}", GateType.BUF,
                   [draw(st.sampled_from(gate_nets + [mixed]))])
        n.add_output(mixed)
    return n


def _stimulus(draw, names, width):
    return {
        name: draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        for name in names
    }


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_compiled_matches_reference_combinational(data):
    netlist = data.draw(combinational_netlists())
    width = data.draw(st.integers(min_value=1, max_value=256))
    inputs = _stimulus(data.draw, netlist.inputs, width)
    assert simulate(netlist, inputs, width) == \
        simulate_reference(netlist, inputs, width)


@settings(max_examples=60, deadline=None)
@given(data=st.data())
def test_compiled_matches_reference_sequential(data):
    netlist = data.draw(sequential_netlists())
    width = data.draw(st.integers(min_value=1, max_value=256))
    state = _stimulus(data.draw, netlist.flops, width)
    mask = (1 << width) - 1
    # Multi-cycle: advance the reference state and compare every cycle.
    for _ in range(3):
        inputs = _stimulus(data.draw, netlist.inputs, width)
        got = simulate(netlist, inputs, width, state)
        want = simulate_reference(netlist, inputs, width, state)
        assert got == want
        state = {
            ff: want[netlist.gates[ff].fanins[0]] & mask
            for ff in netlist.flops
        }


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_mutation_invalidates_compiled_cache(data):
    """Mutate-then-resimulate must reflect the new structure exactly."""
    netlist = data.draw(combinational_netlists())
    width = data.draw(st.integers(min_value=1, max_value=64))
    inputs = _stimulus(data.draw, netlist.inputs, width)
    simulate(netlist, inputs, width)  # populate the compiled cache
    before = get_compiled(netlist)
    # Invert the output cone: rewire all consumers of some gate through
    # a fresh inverter, then re-simulate without any manual cache pokes.
    victim = data.draw(st.sampled_from(
        [g for g in netlist.gates
         if netlist.gates[g].gate_type is not GateType.INPUT]))
    inv = netlist.add_gate("prop_inv", GateType.NOT, [victim])
    netlist.rewire_consumers(victim, inv)
    netlist.replace_fanin(inv, inv, victim)  # undo self-loop
    got = simulate(netlist, inputs, width)
    assert get_compiled(netlist) is not before
    assert got == simulate_reference(netlist, inputs, width)


def test_mutation_changes_results():
    """A concrete end-to-end check that stale programs are never reused."""
    n = c17()
    inputs = {name: 0b1011 for name in n.inputs}
    first = simulate(n, inputs, width=4)
    inv = n.add_gate("flip", GateType.NOT, ["G22"])
    n.rewire_consumers("G22", inv)
    n.replace_fanin(inv, inv, "G22")  # undo self-loop
    second = simulate(n, inputs, width=4)
    assert n.outputs[0] == "flip"
    assert second["flip"] == (~first["G22"]) & 0b1111
    assert second == simulate_reference(n, inputs, width=4)


def test_input_and_flop_caches_invalidate():
    n = c17()
    assert n.inputs == ["G1", "G2", "G3", "G6", "G7"]
    n.add_input("G99")
    assert "G99" in n.inputs
    assert n.flops == []
    n.add_gate("ffq", GateType.DFF, ["G99"])
    assert n.flops == ["ffq"]
    # The property returns copies: callers cannot poison the cache.
    n.inputs.append("bogus")
    assert "bogus" not in n.inputs


def test_empty_and_input_only_netlists():
    empty = Netlist("empty")
    assert simulate(empty, {}) == {}
    wires = Netlist("wires")
    wires.add_input("a")
    wires.add_output("a")
    assert simulate(wires, {"a": 0b101}, width=3) == {"a": 0b101}


class TestEngineCache:
    """The process-local warm-state cache backing persistent workers."""

    def test_identical_sources_share_one_program(self):
        cache = EngineCache()
        src = "def _c(values, mask):\n    pass\n"
        first = cache.program([src])
        assert cache.program([src]) is first
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_program_lru_evicts_oldest(self):
        cache = EngineCache(max_programs=2)
        srcs = [f"def _c(values, mask):\n    x = {i}\n"
                for i in range(3)]
        a = cache.program([srcs[0]])
        cache.program([srcs[1]])
        cache.program([srcs[0]])     # touch: 0 is now most recent
        cache.program([srcs[2]])     # evicts 1, not 0
        assert cache.stats()["evictions"] == 1
        assert cache.program([srcs[0]]) is a      # still cached
        assert cache.stats()["programs"] == 2

    def test_netlist_round_trip_and_counters(self):
        cache = EngineCache()
        netlist = c17()
        assert cache.get_netlist("k") is None     # miss
        cache.put_netlist("k", netlist)
        assert cache.get_netlist("k") is netlist  # hit
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_mutated_netlist_is_dropped_not_served(self):
        # Callers treat cached netlists as read-only; a violation must
        # surface as a recompute, never as a stale structure.
        cache = EngineCache()
        netlist = c17()
        cache.put_netlist("k", netlist)
        netlist.add_gate("extra", GateType.NOT, [netlist.outputs[0]])
        assert cache.get_netlist("k") is None
        assert cache.stats()["netlists"] == 0     # entry dropped

    def test_netlist_builder_called_once(self):
        cache = EngineCache()
        built = []

        def build():
            built.append(1)
            return c17()

        first = cache.netlist("k", build)
        assert cache.netlist("k", build) is first
        assert built == [1]

    def test_netlist_lru_bound(self):
        cache = EngineCache(max_netlists=2)
        for i in range(3):
            cache.put_netlist(f"k{i}", c17())
        assert cache.get_netlist("k0") is None    # evicted
        assert cache.get_netlist("k2") is not None

    def test_clear_resets_pools_and_counters(self):
        cache = EngineCache()
        cache.put_netlist("k", c17())
        cache.get_netlist("k")
        cache.clear()
        assert cache.stats() == {
            "programs": 0, "netlists": 0,
            "hits": 0, "misses": 0, "evictions": 0}

    def test_singleton_is_process_local_and_resettable(self):
        reset_engine_cache()
        first = engine_cache()
        assert engine_cache() is first
        reset_engine_cache()
        assert engine_cache() is not first

    def test_simulate_warms_the_shared_program_pool(self):
        # The compiled-engine path routes through engine_cache(): two
        # structurally identical netlists compile one program.  Codegen
        # is lazy (second evaluation on), hence the repeat simulations.
        reset_engine_cache()
        first = c17()
        stim = {name: 1 for name in first.inputs}
        for _ in range(3):
            simulate(first, stim)
        warm = engine_cache().stats()
        assert warm["programs"] == 1
        second = c17()
        for _ in range(3):
            simulate(second, stim)
        after = engine_cache().stats()
        assert after["programs"] == 1     # shared, not recompiled
        assert after["hits"] > warm["hits"]
        reset_engine_cache()
