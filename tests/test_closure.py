"""Tests for layout attack-surface metrics and the security-closure loop."""

import pytest

from repro.netlist import c17, ripple_carry_adder
from repro.physical import (
    ClosureThresholds,
    RoutedLayout,
    RoutedNet,
    annealing_placement,
    bury_critical_nets,
    default_critical_nets,
    fia_exposure,
    insert_fillers,
    insert_shields,
    maze_route,
    probing_exposure,
    security_closure,
    trojan_insertability,
    uncovered_critical_nodes,
)


def _line_layout(num_layers=4, layer=4, width=9, height=9):
    """A single 3-node critical net routed laterally on ``layer``."""
    layout = RoutedLayout(width=width, height=height,
                          num_layers=num_layers)
    routed = RoutedNet("crit", (0, 0), [])
    path = [(0, 0, 1)]
    path += [(0, 0, l) for l in range(2, layer + 1)]
    path += [(1, 0, layer), (2, 0, layer)]
    path += [(2, 0, l) for l in range(layer - 1, 0, -1)]
    routed.sink_pins = [(2, 0)]
    routed.branches[(2, 0)] = path
    layout.claim("crit", routed)
    return layout


class TestProbing:
    def test_top_layer_wire_is_exposed(self):
        layout = _line_layout(num_layers=4, layer=4)
        report = probing_exposure(layout, ["crit"], probe_layers=2)
        assert report.exposure > 0
        assert all(n[2] >= 3 for n in report.exposed_nodes)

    def test_buried_wire_is_closed(self):
        layout = _line_layout(num_layers=4, layer=1)
        report = probing_exposure(layout, ["crit"], probe_layers=2)
        assert report.exposure == 0.0

    def test_shield_covers_node(self):
        layout = _line_layout(num_layers=4, layer=3)
        before = probing_exposure(layout, ["crit"], probe_layers=2)
        assert before.exposure > 0
        added = insert_shields(layout, ["crit"])
        assert added > 0
        after = probing_exposure(layout, ["crit"], probe_layers=2)
        assert after.exposure == 0.0
        assert uncovered_critical_nodes(layout, ["crit"]) == []

    def test_topmost_layer_needs_burying_not_shields(self):
        layout = _line_layout(num_layers=4, layer=4)
        insert_shields(layout, ["crit"])
        # No room above the top layer: exposure remains.
        assert probing_exposure(layout, ["crit"],
                                probe_layers=2).exposure > 0


class TestFia:
    def test_uncovered_wire_reachable(self):
        layout = _line_layout(num_layers=4, layer=2)
        report = fia_exposure(layout, ["crit"], spot_radius=2)
        assert 0 < report.exposure <= 1
        assert report.vulnerable_sites > 0

    def test_spot_radius_grows_exposure(self):
        layout = _line_layout(num_layers=4, layer=2)
        small = fia_exposure(layout, ["crit"], spot_radius=1)
        large = fia_exposure(layout, ["crit"], spot_radius=3)
        assert large.exposure >= small.exposure

    def test_shielded_wire_is_shadowed(self):
        layout = _line_layout(num_layers=4, layer=2)
        insert_shields(layout, ["crit"])
        assert fia_exposure(layout, ["crit"]).exposure == 0.0


class TestTrojan:
    def test_empty_die_fully_exploitable(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        report = trojan_insertability(layout, [])
        assert report.exposure == 1.0

    def test_fillers_close_regions(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        added = insert_fillers(layout, [])
        assert added == 81
        assert trojan_insertability(layout, []).exposure == 0.0

    def test_occupied_sites_not_free(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        occupied = [(x, y) for x in range(9) for y in range(9)
                    if x != 4]
        report = trojan_insertability(layout, occupied, min_sites=4)
        assert report.exploitable_sites == 9  # the free column
        assert report.exposure == pytest.approx(9 / 81)

    def test_small_regions_not_exploitable(self):
        layout = RoutedLayout(width=9, height=9, num_layers=2)
        occupied = [(x, y) for x in range(9) for y in range(9)
                    if (x, y) not in ((0, 0), (0, 1))]
        report = trojan_insertability(layout, occupied, min_sites=4)
        assert report.exposure == 0.0

    def test_site_coordinates_with_scaled_grid(self):
        n = ripple_carry_adder(8)
        placement = annealing_placement(n, seed=2,
                                        iterations=500).placement
        layout = maze_route(n, placement)
        assert layout.scale == 2
        report = trojan_insertability(layout,
                                      placement.positions.values())
        assert report.total_sites == placement.width * placement.height
        for region in report.regions:
            for x, y in region.sites:
                assert 0 <= x < placement.width
                assert 0 <= y < placement.height


class TestBury:
    def test_bury_caps_critical_layers(self):
        n = ripple_carry_adder(8)
        placement = annealing_placement(n, seed=0,
                                        iterations=800).placement
        layout = maze_route(n, placement, num_layers=3)
        critical = [name for name in default_critical_nets(n)
                    if name in layout.nets]
        assert critical
        bury_critical_nets(layout, n, placement, critical,
                           probe_depth=2)
        cap = layout.num_layers - 2
        for name in critical:
            if name in layout.nets:
                assert layout.nets[name].max_layer <= cap, name


class TestSecurityClosure:
    @pytest.mark.parametrize("make", [c17,
                                      lambda: ripple_carry_adder(8)])
    def test_closes_benchmark_designs(self, make):
        netlist = make()
        result = security_closure(netlist, seed=2)
        thresholds = result.thresholds
        assert result.converged
        assert result.metrics.probing <= thresholds.probing
        assert result.metrics.fia <= thresholds.fia
        assert result.metrics.trojan <= thresholds.trojan
        assert result.equivalent          # SAT CEC vs golden
        assert result.area_overhead <= 0.01
        assert result.failed_nets == []

    def test_trace_has_per_iteration_provenance(self):
        result = security_closure(c17(), seed=2)
        names = [p.pass_name for p in result.trace.passes]
        assert names[0] == "route"
        assert len(names) >= 2             # at least one ECO applied
        for prov in result.trace.passes[1:]:
            assert prov.rechecks           # every ECO re-checked
        final_props = {r.key for r in result.trace.final}
        assert "functional-equivalence" in final_props
        assert "probing-exposure" in final_props
        assert all(r.passed for r in result.trace.final)

    def test_closure_is_deterministic(self):
        a = security_closure(c17(), seed=3).to_dict()
        b = security_closure(c17(), seed=3).to_dict()
        for d in (a, b):                   # wall times may differ
            for p in d["trace"]["passes"]:
                p.pop("wall_ms", None)
            d["trace"].pop("total_wall_ms", None)
        assert a == b

    def test_bury_loop_on_shallow_stack(self):
        # With only 3 layers, probe depth 2 reaches layer 2 — burying
        # (not just shielding) must participate to converge.
        n = ripple_carry_adder(8)
        result = security_closure(n, num_layers=3, seed=0)
        assert result.metrics.probing <= result.thresholds.probing
        assert result.equivalent

    def test_impossible_thresholds_do_not_loop_forever(self):
        thresholds = ClosureThresholds(probing=-1.0, fia=-1.0,
                                       trojan=-1.0)
        result = security_closure(c17(), thresholds=thresholds,
                                  max_iterations=2, seed=0)
        assert not result.converged
        assert result.iterations == 2
