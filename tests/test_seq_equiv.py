"""Tests for bounded sequential equivalence checking."""

import pytest

from repro.dft import insert_scan
from repro.formal import check_sequential_equivalence
from repro.netlist import GateType, Netlist


def small_machine():
    n = Netlist("seq")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("q0", GateType.DFF, ["d0"])
    n.add_gate("q1", GateType.DFF, ["d1"])
    n.add_gate("d0", GateType.XOR, ["a", "q1"])
    n.add_gate("d1", GateType.AND, ["q0", "b"])
    n.add_gate("y", GateType.XOR, ["q0", "q1"])
    n.add_output("y")
    return n


class TestSequentialEquivalence:
    def test_self_equivalence(self):
        base = small_machine()
        assert check_sequential_equivalence(base, small_machine(),
                                            cycles=4).equivalent

    def test_scan_insertion_mission_mode(self):
        base = small_machine()
        scan = insert_scan(base)
        result = check_sequential_equivalence(
            base, scan.netlist, cycles=5,
            pinned={"scan_en": 0, "scan_in": 0},
            compare_outputs=["y"])
        assert result.equivalent
        assert result.cycles_checked == 5

    def test_scan_enable_free_diverges(self):
        base = small_machine()
        scan = insert_scan(base)
        result = check_sequential_equivalence(
            base, scan.netlist, cycles=3,
            pinned={"scan_in": 0},
            allow_free=["scan_en"],
            compare_outputs=["y"])
        assert not result.equivalent
        assert result.mismatch_frame is not None
        assert result.witness is not None

    def test_corrupted_machine_detected(self):
        base = small_machine()
        bad = small_machine()
        bad.gates["d1"].gate_type = GateType.OR
        bad.invalidate()
        result = check_sequential_equivalence(base, bad, cycles=4)
        assert not result.equivalent

    def test_divergence_below_bound_missed(self):
        # A bug reachable only at frame 3 is invisible at cycles=1:
        # bounded checking is bounded (documented behaviour).
        base = small_machine()
        bad = small_machine()
        bad.gates["d1"].gate_type = GateType.OR
        bad.invalidate()
        shallow = check_sequential_equivalence(base, bad, cycles=1)
        deep = check_sequential_equivalence(base, bad, cycles=4)
        assert not deep.equivalent
        # shallow may or may not catch it; it must never be *less*
        # sound than deep:
        if not shallow.equivalent:
            assert not deep.equivalent

    def test_unpinned_one_sided_input_rejected(self):
        base = small_machine()
        scan = insert_scan(base)
        with pytest.raises(ValueError):
            check_sequential_equivalence(base, scan.netlist, cycles=2,
                                         compare_outputs=["y"])

    def test_no_common_outputs_rejected(self):
        left = small_machine()
        right = small_machine()
        right.outputs = []
        right.add_gate("z", GateType.BUF, ["y"])
        right.add_output("z")
        with pytest.raises(ValueError):
            check_sequential_equivalence(left, right, cycles=2)
