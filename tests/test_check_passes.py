"""CI gates: the pass-registry static audit and the benchmark
overhead check, both runnable (and run) as tier-1 tests."""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_check_passes():
    spec = importlib.util.spec_from_file_location(
        "check_passes", REPO_ROOT / "scripts" / "check_passes.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestPassRegistryAudit:
    def test_registry_is_clean(self):
        assert load_check_passes().audit() == []

    def test_audit_catches_partial_declaration(self):
        from repro.core.stages import DesignStage
        from repro.flow import Pass, effects
        from repro.flow import passes as passes_mod
        from repro.flow.properties import SecurityProperty as P

        check_passes = load_check_passes()

        class Sloppy(Pass):
            """Declares only one property; the other five are implicit."""

            name = "sloppy-test-pass"

        Sloppy.stage = DesignStage.LOGIC_SYNTHESIS
        Sloppy.effects = effects(preserves=[P.MASKING])

        class Stageless(Pass):
            """No stage, no effects."""

            name = "stageless-test-pass"

        registry = passes_mod._REGISTRY
        registry["sloppy-test-pass"] = Sloppy
        registry["stageless-test-pass"] = Stageless
        try:
            problems = "\n".join(check_passes.audit())
        finally:
            del registry["sloppy-test-pass"]
            del registry["stageless-test-pass"]
        assert "sloppy-test-pass: undeclared effect" in problems
        assert "stageless-test-pass: missing stage" in problems
        assert "stageless-test-pass: missing effects" in problems
        assert check_passes.audit() == []   # cleanup verified

    def test_audit_enforces_layout_property_rules(self):
        from repro.core.stages import DesignStage
        from repro.flow import Pass, preserves_all
        from repro.flow import passes as passes_mod
        from repro.flow.properties import SecurityProperty as P

        check_passes = load_check_passes()

        class GeometryBlind(Pass):
            """Physical pass claiming zero layout-property effect."""

            name = "geometry-blind-test-pass"

        GeometryBlind.stage = DesignStage.PHYSICAL_SYNTHESIS
        GeometryBlind.effects = preserves_all()

        class LogicShield(Pass):
            """Logic-stage pass claiming to establish a layout metric."""

            name = "logic-shield-test-pass"

        LogicShield.stage = DesignStage.LOGIC_SYNTHESIS
        LogicShield.effects = preserves_all(
            establishes=[P.PROBING_EXPOSURE])

        registry = passes_mod._REGISTRY
        registry["geometry-blind-test-pass"] = GeometryBlind
        registry["logic-shield-test-pass"] = LogicShield
        try:
            problems = "\n".join(check_passes.audit())
        finally:
            del registry["geometry-blind-test-pass"]
            del registry["logic-shield-test-pass"]
        assert ("geometry-blind-test-pass: physical-synthesis pass "
                "declares no effect") in problems
        assert ("logic-shield-test-pass: establishes layout property "
                "probing-exposure outside") in problems
        assert check_passes.audit() == []

    def test_audit_enforces_closure_eco_contract(self):
        from repro.core.stages import DesignStage
        from repro.flow import Pass, effects
        from repro.flow import passes as passes_mod
        from repro.flow.properties import ALL_PROPERTIES
        from repro.flow.properties import SecurityProperty as P

        check_passes = load_check_passes()

        class RogueEco(Pass):
            """ECO that rewrites the netlist and closes nothing."""

            name = "rogue-eco-test-pass"
            is_closure_eco = True

        RogueEco.stage = DesignStage.LOGIC_SYNTHESIS
        RogueEco.effects = effects(
            invalidates=[P.FUNCTIONAL_EQUIVALENCE],
            preserves=[p for p in ALL_PROPERTIES
                       if p is not P.FUNCTIONAL_EQUIVALENCE])

        registry = passes_mod._REGISTRY
        registry["rogue-eco-test-pass"] = RogueEco
        try:
            problems = "\n".join(check_passes.audit())
        finally:
            del registry["rogue-eco-test-pass"]
        assert ("rogue-eco-test-pass: closure ECO must preserve "
                "functional equivalence") in problems
        assert ("rogue-eco-test-pass: closure ECO establishes no "
                "layout property") in problems
        assert ("rogue-eco-test-pass: closure ECO must belong to the "
                "physical-synthesis stage") in problems
        assert check_passes.audit() == []

    def test_registered_closure_ecos_satisfy_contract(self):
        from repro.core.stages import DesignStage
        from repro.flow import registered_passes
        from repro.flow.properties import SecurityProperty as P

        layout = {P.PROBING_EXPOSURE, P.FIA_EXPOSURE,
                  P.TROJAN_INSERTABILITY}
        ecos = {name: cls for name, cls in registered_passes().items()
                if getattr(cls, "is_closure_eco", False)}
        assert set(ecos) == {"bury-critical-nets", "shield-insertion",
                             "eco-filler"}
        for cls in ecos.values():
            assert cls.stage is DesignStage.PHYSICAL_SYNTHESIS
            assert P.FUNCTIONAL_EQUIVALENCE in cls.effects.preserves
            assert cls.effects.establishes & layout

    def test_script_exits_zero_on_clean_registry(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" /
                                 "check_passes.py")],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "all declarations total" in proc.stdout


class TestBenchmarkOverheadGate:
    """Pipeline overhead vs the PR-1 baseline must stay bounded.

    ``--check --compare-only`` deterministically compares the latest
    committed BENCH_*.json against BENCH_1.json on the shared flow
    benchmarks (fig1 / fig2 / AES) — no timing runs in tier-1, so the
    gate cannot flake on machine load.
    """

    def test_committed_benchmarks_within_threshold(self):
        runs = sorted(REPO_ROOT.glob("BENCH_*.json"))
        assert (REPO_ROOT / "BENCH_1.json").exists(), \
            "baseline BENCH_1.json missing"
        if len(runs) < 2:
            import pytest
            pytest.skip("no post-refactor BENCH_*.json committed yet")
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "benchmarks" /
                                 "run_bench.py"),
             "--check", "--compare-only"],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, \
            f"flow benchmarks regressed:\n{proc.stdout}{proc.stderr}"
