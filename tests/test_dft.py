"""Tests for the DFT substrate: scan, ATPG, BIST, scan attack, DFX."""

import random

import pytest

from repro.dft import (
    ChipState,
    DfxController,
    Lfsr,
    Misr,
    ScanChipModel,
    bist_detects_fault,
    compact_vectors,
    generate_test_for_fault,
    grade_vectors,
    insert_scan,
    run_atpg,
    run_bist,
    scan_attack,
    scan_capture,
    scan_load,
    scan_unload,
)
from repro.dft import test_access_still_works as scan_test_access
from repro.fia import Fault, FaultKind, attack_fault_stream, inject_fault, \
    natural_fault_stream
from repro.netlist import GateType, Netlist, c17, random_circuit


def sequential_example():
    n = Netlist("seq")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("q0", GateType.DFF, ["d0"])
    n.add_gate("q1", GateType.DFF, ["d1"])
    n.add_gate("q2", GateType.DFF, ["d2"])
    n.add_gate("d0", GateType.XOR, ["a", "q2"])
    n.add_gate("d1", GateType.AND, ["q0", "b"])
    n.add_gate("d2", GateType.OR, ["q1", "a"])
    n.add_gate("y", GateType.XOR, ["q0", "q1"])
    n.add_output("y")
    return n


class TestScan:
    def test_insertion_requires_flops(self):
        with pytest.raises(ValueError):
            insert_scan(c17())

    def test_load_unload_roundtrip(self):
        design = insert_scan(sequential_example())
        for bits in ([0, 0, 0], [1, 1, 1], [1, 0, 1], [0, 1, 0]):
            state = scan_load(design, bits)
            out, _ = scan_unload(design, state)
            assert out == bits

    def test_wrong_length_rejected(self):
        design = insert_scan(sequential_example())
        with pytest.raises(ValueError):
            scan_load(design, [1, 0])

    def test_capture_computes_functional_state(self):
        design = insert_scan(sequential_example())
        state = scan_load(design, [1, 1, 0])
        captured = scan_capture(design, {"a": 1, "b": 1}, state)
        # d0 = a ^ q2 = 1 ^ 0; d1 = q0 & b = 1 & 1; d2 = q1 | a = 1 | 1
        assert captured[design.chain[0]] == 1
        assert captured[design.chain[1]] == 1
        assert captured[design.chain[2]] == 1

    def test_functional_mode_unaffected(self):
        base = sequential_example()
        design = insert_scan(base)
        from repro.netlist import run_sequential
        stim = [{"a": 1, "b": 1}, {"a": 0, "b": 1}, {"a": 1, "b": 0}]
        scan_stim = [dict(s, scan_en=0, scan_in=0) for s in stim]
        base_out = run_sequential(base, stim)
        scan_out = run_sequential(design.netlist, scan_stim)
        for bo, so in zip(base_out, scan_out):
            assert bo["y"] == so["y"]


class TestFaultGrading:
    def test_no_vectors_zero_coverage(self):
        report = grade_vectors(c17(), [])
        assert report.coverage == 0.0 if report.total_faults else 1.0

    def test_exhaustive_vectors_high_coverage(self):
        n = c17()
        vectors = [
            {name: (m >> i) & 1 for i, name in enumerate(n.inputs)}
            for m in range(32)
        ]
        report = grade_vectors(n, vectors)
        assert report.coverage == 1.0

    def test_coverage_monotone_in_vectors(self):
        n = random_circuit(8, 60, 4, seed=1)
        rng = random.Random(2)
        vectors = [
            {name: rng.randint(0, 1) for name in n.inputs}
            for _ in range(32)
        ]
        low = grade_vectors(n, vectors[:4]).coverage
        high = grade_vectors(n, vectors).coverage
        assert high >= low


class TestAtpg:
    def test_full_coverage_on_c17(self):
        result = run_atpg(c17(), random_budget=8, seed=1)
        assert result.coverage == 1.0
        assert not result.aborted

    def test_redundant_fault_classified(self):
        n = Netlist()
        n.add_input("x")
        n.add_gate("inv", GateType.NOT, ["x"])
        n.add_gate("o", GateType.OR, ["x", "inv"])   # constant 1
        n.add_gate("y", GateType.AND, ["o", "x"])
        n.add_output("y")
        test, status = generate_test_for_fault(
            n, Fault("o", FaultKind.STUCK_AT_1))
        assert status == "untestable" and test is None

    def test_generated_test_detects(self):
        n = random_circuit(8, 50, 3, seed=3)
        fault = Fault(sorted(n.gates)[10], FaultKind.STUCK_AT_0)
        test, status = generate_test_for_fault(n, fault)
        if status == "detected":
            report = grade_vectors(n, [test], [fault])
            assert report.coverage == 1.0

    def test_compaction_keeps_coverage(self):
        n = c17()
        result = run_atpg(n, random_budget=16, seed=4)
        compacted = compact_vectors(n, result.vectors)
        assert len(compacted) <= len(result.vectors)
        assert grade_vectors(n, compacted).coverage == \
            grade_vectors(n, result.vectors).coverage


class TestBist:
    def test_lfsr_cycles_nonzero(self):
        lfsr = Lfsr(8, seed=1)
        seen = {lfsr.step() for _ in range(255)}
        assert 0 not in seen
        assert len(seen) > 100  # long period

    def test_lfsr_zero_seed_rejected(self):
        with pytest.raises(ValueError):
            Lfsr(8, seed=0)

    def test_misr_order_sensitive(self):
        a = Misr(8)
        for w in (1, 2, 3):
            a.absorb(w)
        b = Misr(8)
        for w in (3, 2, 1):
            b.absorb(w)
        assert a.signature != b.signature

    def test_bist_self_consistent(self):
        result = run_bist(c17(), 64)
        assert result.passed

    def test_bist_detects_stuck_fault(self):
        n = c17()
        faulty = inject_fault(n, Fault("G16", FaultKind.STUCK_AT_0))
        assert bist_detects_fault(n, faulty, 128)

    def test_bist_golden_signature_reuse(self):
        n = random_circuit(8, 50, 4, seed=5)
        golden = run_bist(n, 128)
        again = run_bist(n, 128, golden_signature=golden.signature)
        assert again.passed


class TestScanAttack:
    KEY = [random.Random(9).randrange(256) for _ in range(16)]

    def test_insecure_chip_leaks_key(self):
        result = scan_attack(ScanChipModel(self.KEY, secure=False))
        assert result.success
        assert result.recovered_key == self.KEY

    def test_secure_scan_blocks(self):
        chip = ScanChipModel(self.KEY, secure=True)
        assert not scan_attack(chip).success

    def test_secure_scan_preserves_testability(self):
        chip = ScanChipModel(self.KEY, secure=True)
        assert scan_test_access(chip)

    def test_mission_mode_guard(self):
        chip = ScanChipModel(self.KEY)
        with pytest.raises(RuntimeError):
            chip.scan_out()  # not in test mode
        chip.enter_test_mode()
        with pytest.raises(RuntimeError):
            chip.run_round([0] * 16)  # not in mission mode


class TestDfx:
    def test_key_provisioning_once(self):
        controller = DfxController()
        controller.provision_key(1)
        with pytest.raises(RuntimeError):
            controller.provision_key(2)

    def test_natural_faults_keep_mission(self):
        controller = DfxController()
        controller.provision_key(5)
        for event in natural_fault_stream(3, 100_000, ["m"], seed=2):
            controller.handle_alarm(event)
        assert controller.state is ChipState.MISSION
        assert controller.key_epoch == 0

    def test_attack_triggers_rekey_then_disable(self):
        controller = DfxController(max_rekey_events=2)
        controller.provision_key(5)
        for event in attack_fault_stream(10, 0, "aes"):
            controller.handle_alarm(event)
        assert controller.state is ChipState.DISABLED
        assert controller.unlock_key(controller.key_epoch) is None

    def test_epoch_diversifies_key(self):
        controller = DfxController(max_rekey_events=10)
        controller.provision_key(0xAB)
        k0 = controller.unlock_key(0)
        for event in attack_fault_stream(3, 0, "aes"):
            controller.handle_alarm(event)
        if controller.operational and controller.key_epoch > 0:
            assert controller.unlock_key(controller.key_epoch) != k0
            assert controller.unlock_key(0) is None

    def test_log_records_everything(self):
        controller = DfxController()
        events = natural_fault_stream(4, 1000, ["a"], seed=3)
        for event in events:
            controller.handle_alarm(event)
        assert len(controller.log) == 4


class TestSharedAtpgEngine:
    def test_same_structure_reuses_one_engine(self):
        from repro.dft import shared_atpg_engine
        from repro.formal import reset_solver_registry

        reset_solver_registry()
        engine = shared_atpg_engine(c17())
        assert shared_atpg_engine(c17()) is engine      # warm reuse
        other = random_circuit(4, 12, 2, seed=5)
        assert shared_atpg_engine(other) is not engine  # keyed by content
        reset_solver_registry()

    def test_warm_engine_verdicts_match_cold(self):
        # The registry's determinism contract: detectability verdicts
        # (not vectors) are what warm clients may surface.
        from repro.dft import shared_atpg_engine
        from repro.formal import reset_solver_registry

        reset_solver_registry()
        netlist = c17()
        fault = Fault("G10", FaultKind.STUCK_AT_0)
        cold = generate_test_for_fault(netlist, fault) is not None
        warm_engine = shared_atpg_engine(netlist)
        warm = warm_engine.test_for_fault(fault) is not None
        rewarm = warm_engine.test_for_fault(fault) is not None
        assert cold == warm == rewarm
        reset_solver_registry()
