"""Differential tests for the incremental two-watched-literal solver.

Three independent oracles keep the production solver honest:

* the frozen pre-rewrite CDCL solver in ``reference_sat.py`` (shares no
  code with the solver under test),
* exhaustive brute force on instances small enough to enumerate,
* the clauses themselves — every SAT verdict must come with a model
  that satisfies all of them.

Plus explicit tests for the incremental/assumption contract the SAT
clients (ATPG, SAT attack, equivalence) now rely on: UNSAT under
assumptions does not poison the solver, clauses can be added between
calls, and learned state survives across queries.
"""

import itertools
import random

from hypothesis import given, settings, strategies as st

from repro.formal.sat import Solver, lit, luby

from reference_sat import Solver as ReferenceSolver


def brute_force_sat(n_vars, clauses):
    """Exhaustive SAT check; only for small ``n_vars``."""
    for bits in itertools.product([0, 1], repeat=n_vars):
        if all(any((bits[l >> 1] ^ (l & 1)) == 1 for l in c)
               for c in clauses):
            return True
    return False


def random_cnf(rng, max_vars=20, max_clauses=90, max_width=3):
    """A random CNF instance as ``(n_vars, clauses)``."""
    n_vars = rng.randint(1, max_vars)
    n_clauses = rng.randint(1, max_clauses)
    clauses = []
    for _ in range(n_clauses):
        width = rng.randint(1, min(max_width, n_vars))
        variables = rng.sample(range(n_vars), width)
        clauses.append([2 * v + rng.randint(0, 1) for v in variables])
    return n_vars, clauses


def solve_with(solver_cls, n_vars, clauses):
    """Load an instance into a fresh solver; returns (verdict, solver)."""
    s = solver_cls()
    for _ in range(n_vars):
        s.new_var()
    ok = all(s.add_clause(c) for c in clauses)
    return (s.solve() if ok else False), s


def assert_model_satisfies(solver, n_vars, clauses):
    model = [solver.model_value(v) for v in range(n_vars)]
    for c in clauses:
        assert any(model[l >> 1] ^ (l & 1) == 1 for l in c), (
            f"model violates clause {c}")


class TestDifferential:
    def test_against_reference_500_instances(self):
        """Verdicts must agree with the frozen reference solver on 500
        generated instances; SAT models must satisfy every clause."""
        rng = random.Random(20260806)
        sat_count = 0
        for i in range(500):
            n_vars, clauses = random_cnf(rng)
            got, solver = solve_with(Solver, n_vars, clauses)
            want, _ = solve_with(ReferenceSolver, n_vars, clauses)
            assert got == want, (
                f"instance {i}: new solver says {got}, reference says "
                f"{want}: {n_vars} vars, clauses={clauses}")
            if got:
                sat_count += 1
                assert_model_satisfies(solver, n_vars, clauses)
        # The generator must exercise both verdicts to mean anything.
        assert 50 < sat_count < 450

    def test_against_brute_force_small(self):
        """Exhaustive ground truth on <= 12-variable instances."""
        rng = random.Random(7)
        for i in range(150):
            n_vars, clauses = random_cnf(rng, max_vars=12, max_clauses=50)
            got, solver = solve_with(Solver, n_vars, clauses)
            want = brute_force_sat(n_vars, clauses)
            assert got == want, f"instance {i}: {n_vars} vars, {clauses}"
            if got:
                assert_model_satisfies(solver, n_vars, clauses)

    @settings(max_examples=120, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_hypothesis_cross_check(self, seed):
        rng = random.Random(seed)
        n_vars, clauses = random_cnf(rng, max_vars=16, max_clauses=70)
        got, solver = solve_with(Solver, n_vars, clauses)
        want, _ = solve_with(ReferenceSolver, n_vars, clauses)
        assert got == want
        if got:
            assert_model_satisfies(solver, n_vars, clauses)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_hypothesis_assumptions_match_units(self, seed):
        """solve(assumptions=A) must equal solving with A as units."""
        rng = random.Random(seed)
        n_vars, clauses = random_cnf(rng, max_vars=12, max_clauses=40)
        assumptions = [2 * v + rng.randint(0, 1)
                       for v in rng.sample(range(n_vars),
                                           rng.randint(1, min(4, n_vars)))]
        s = Solver()
        for _ in range(n_vars):
            s.new_var()
        ok = all(s.add_clause(c) for c in clauses)
        if not ok:
            return  # trivially UNSAT at load time: nothing to compare
        under_assumptions = s.solve(assumptions)
        want = brute_force_sat(n_vars, clauses + [[a] for a in assumptions])
        assert under_assumptions == want
        # And the failed/passed query must not have corrupted anything:
        assert s.solve() == brute_force_sat(n_vars, clauses)


class TestAssumptionSemantics:
    def test_unsat_under_assumptions_stays_sat_without(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.solve([lit(a, True), lit(b, True)]) is False
        assert s.solve() is True
        assert s.solve([lit(a, True)]) is True
        assert s.model_value(b) == 1

    def test_solver_reusable_after_many_failed_solves(self):
        """The ATPG pattern: many UNSAT assumption queries, one solver."""
        s = Solver()
        variables = [s.new_var() for _ in range(8)]
        # Chain: v0 -> v1 -> ... -> v7
        for x, y in zip(variables, variables[1:]):
            s.add_clause([lit(x, True), lit(y)])
        for x in variables[1:]:
            # Assuming head true and any tail false is always UNSAT.
            assert s.solve([lit(variables[0]), lit(x, True)]) is False
        assert s.solve([lit(variables[0])]) is True
        assert all(s.model_value(x) == 1 for x in variables)
        assert s.solve([lit(variables[-1], True)]) is True
        assert s.model_value(variables[0]) == 0

    def test_contradictory_assumptions(self):
        s = Solver()
        a = s.new_var()
        s.new_var()
        assert s.solve([lit(a), lit(a, True)]) is False
        assert s.solve() is True

    def test_assumptions_then_incremental_clauses(self):
        """Interleave assumption queries and clause additions (the SAT
        attack's DIP loop shape)."""
        s = Solver()
        a, b, c = (s.new_var() for _ in range(3))
        s.add_clause([lit(a), lit(b)])
        assert s.solve([lit(c)]) is True
        s.add_clause([lit(c, True), lit(a, True)])  # c -> !a
        assert s.solve([lit(c)]) is True
        assert s.model_value(a) == 0 and s.model_value(b) == 1
        s.add_clause([lit(c, True), lit(b, True)])  # c -> !b
        assert s.solve([lit(c)]) is False
        assert s.solve() is True  # without c everything is fine
        s.add_clause([lit(c)])
        assert s.solve() is False

    def test_budget_exhaustion_keeps_solver_usable(self):
        s = Solver()
        n, holes = 7, 6
        vs = [[s.new_var() for _ in range(holes)] for _ in range(n)]
        for p in range(n):
            s.add_clause([lit(vs[p][h]) for h in range(holes)])
        for h in range(holes):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    s.add_clause([lit(vs[p1][h], True),
                                  lit(vs[p2][h], True)])
        assert s.solve(conflict_budget=3) is None
        assert s.solve() is False  # pigeonhole is genuinely UNSAT


class TestQualityFeatures:
    def test_luby_sequence(self):
        assert [luby(i) for i in range(1, 16)] == \
            [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]

    def test_phase_saving_recorded(self):
        s = Solver()
        a, b = s.new_var(), s.new_var()
        s.add_clause([lit(a), lit(b)])
        assert s.solve([lit(a)]) is True
        # A later unconstrained solve re-uses a's saved phase (True).
        assert s.solve() is True
        assert s.model_value(a) == 1

    def test_restarts_and_stats_on_hard_instance(self):
        rng = random.Random(3)
        s = Solver()
        n_vars = 60
        for _ in range(n_vars):
            s.new_var()
        # 4.3 clause/var random 3-SAT near the phase transition: hard
        # enough to force restarts, small enough to stay fast.
        for _ in range(int(4.3 * n_vars)):
            variables = rng.sample(range(n_vars), 3)
            s.add_clause([2 * v + rng.randint(0, 1) for v in variables])
        verdict = s.solve()
        stats = s.stats()
        assert verdict in (True, False)
        assert stats["conflicts"] > 0
        assert stats["restarts"] >= stats["conflicts"] // 1000
        assert set(stats) >= {"vars", "clauses", "learned", "conflicts",
                              "decisions", "propagations", "restarts",
                              "reductions"}

    def test_learned_db_reduction_preserves_verdict(self):
        """LBD-based reduction must fire and not corrupt the search.

        A pigeonhole instance (provably UNSAT) is solved with an
        aggressive reduction cadence; the verdict stays False and at
        least one reduction actually ran, so clause deletion and the
        watch-list sweep are exercised on a real refutation.
        """
        s = Solver()
        s.reduce_base = 100
        s.reduce_floor = 20
        n, holes = 7, 6
        vs = [[s.new_var() for _ in range(holes)] for _ in range(n)]
        for p in range(n):
            s.add_clause([lit(vs[p][h]) for h in range(holes)])
        for h in range(holes):
            for p1 in range(n):
                for p2 in range(p1 + 1, n):
                    s.add_clause([lit(vs[p1][h], True),
                                  lit(vs[p2][h], True)])
        assert s.solve() is False
        assert s.stats()["reductions"] >= 1
