"""Tests for repro.flow: registry, effects, incremental re-verification,
and FlowTrace provenance — including the executable Fig. 2 caught by
flow infrastructure rather than by a benchmark."""

import json
import random

import pytest

from repro.core.designs import masked_and_design
from repro.core.composition import Design
from repro.crypto.sboxes import aes_sbox_netlist
from repro.flow import (
    AnalysisCache,
    BufferSweepPass,
    Effects,
    MaskInsertionPass,
    Pass,
    PassManager,
    PassResult,
    PlacementPass,
    ReassociationPass,
    SecurePlacementPass,
    SecurityProperty as P,
    StaSignoffPass,
    conservative,
    create_pass,
    default_checkers,
    effects,
    netlist_design,
    preserves_all,
    register_pass,
    registered_passes,
    to_flow_report,
    tvla_checker,
)
from repro.netlist import GateType, Netlist


def small_checkers(n_traces=1200):
    return default_checkers(n_traces=n_traces)


def plain_and_design():
    """Unmasked 2-input AND with proper TVLA classes on plain inputs."""
    n = Netlist("plain-and")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("y", GateType.AND, ["a", "b"])
    n.add_output("y")
    return Design(
        name="plain-and", netlist=n,
        tvla_fixed=lambda rng: {"a": 1, "b": 1},
        tvla_random=lambda rng: {"a": rng.randint(0, 1),
                                 "b": rng.randint(0, 1)},
        payload_outputs=["y"])


class TestRegistry:
    def test_all_transforms_registered(self):
        names = set(registered_passes())
        # synth
        assert {"constprop", "strash", "inv2", "bufsweep", "sweep",
                "synthesis", "reassoc-timing"} <= names
        # sca
        assert {"mask-insertion", "wddl-hiding"} <= names
        # dft
        assert {"scan-insertion", "bist-signature", "atpg"} <= names
        # ip
        assert {"logic-locking", "sfll-lock", "camouflage"} <= names
        # physical + signoff
        assert {"placement", "sta-signoff"} <= names

    def test_create_pass_by_name(self):
        p = create_pass("placement", iterations=123)
        assert isinstance(p, PlacementPass)
        assert p.iterations == 123

    def test_unknown_pass_rejected(self):
        with pytest.raises(KeyError):
            create_pass("no-such-pass")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError):
            @register_pass
            class Clash(Pass):
                name = "placement"

    def test_unnamed_pass_rejected(self):
        with pytest.raises(ValueError):
            @register_pass
            class Anon(Pass):
                pass


class TestEffects:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError):
            Effects(preserves=frozenset({P.MASKING}),
                    invalidates=frozenset({P.MASKING}))

    def test_preserves_all_is_total(self):
        assert preserves_all().undeclared == frozenset()
        assert conservative().undeclared == frozenset()
        assert effects(
            preserves=[P.MASKING],
            establishes=[P.TVLA_BOUND],
            invalidates=[P.NO_FLOW, P.FAULT_DETECTION, P.SCAN_LEAKAGE,
                         P.FUNCTIONAL_EQUIVALENCE, P.PROBING_EXPOSURE,
                         P.FIA_EXPOSURE,
                         P.TROJAN_INSERTABILITY]).undeclared == frozenset()

    def test_undeclared_classifies_conservatively(self):
        e = effects(preserves=[P.MASKING])
        assert e.classify(P.MASKING) == "preserves"
        assert e.classify(P.TVLA_BOUND) == "invalidates"

    def test_non_property_rejected(self):
        with pytest.raises(TypeError):
            effects(preserves=["masking"])


class TestIncrementalReverification:
    def test_preserving_pass_skips_tvla_rerun(self):
        pm = PassManager(checkers=small_checkers(), seed=0)
        result = pm.run(masked_and_design(), [BufferSweepPass()],
                        goals=[P.TVLA_BOUND, P.MASKING],
                        assume=[P.TVLA_BOUND, P.MASKING])
        assert result.all_passed
        # preserves: masking/tvla -> zero re-checks after the pass
        assert result.trace.rechecked_properties("bufsweep") == []
        # ... and therefore no extra trace simulations beyond baseline
        assert pm.cache.misses == 2

    def test_fig2_reassociation_triggers_and_fails(self):
        pm = PassManager(checkers=small_checkers(), seed=0)
        result = pm.run(masked_and_design(),
                        [ReassociationPass(rng_prefix="r_")],
                        goals=[P.TVLA_BOUND, P.MASKING],
                        assume=[P.TVLA_BOUND, P.MASKING])
        rechecked = result.trace.rechecked_properties("reassoc-timing")
        assert "tvla-bound" in rechecked and "masking" in rechecked
        assert not result.all_passed
        assert any("tvla-bound" in f and "after reassoc-timing" in f
                   for f in result.failures)

    def test_mask_then_reassociate_property_pipeline(self):
        """Satellite: [mask_insertion, xor_reassociation] is flagged as
        invalidating masking and fails the scheduled TVLA re-check."""
        pm = PassManager(checkers=small_checkers(), seed=0)
        result = pm.run(
            plain_and_design(),
            [MaskInsertionPass(), ReassociationPass(rng_prefix="rnd")],
            goals=[P.TVLA_BOUND, P.MASKING])
        trace = result.trace

        # mask-insertion *establishes* both: checked right after, PASS.
        masked = [r for r in trace.passes[0].rechecks]
        assert {r.key for r in masked} == {"tvla-bound", "masking"}
        assert all(r.reason == "establishes" and r.passed for r in masked)

        # reassociation *invalidates* both: re-checked, and Fig. 2 says
        # the re-check fails.
        broken = trace.passes[1].rechecks
        assert {r.key for r in broken} == {"tvla-bound", "masking"}
        assert all(r.reason == "invalidates" for r in broken)
        assert not result.all_passed

    def test_invalidation_without_prior_establishment_skips_check(self):
        # Nothing held -> an invalidating pass has nothing to re-check.
        pm = PassManager(checkers=small_checkers(), seed=0)
        result = pm.run(plain_and_design(),
                        [ReassociationPass(rng_prefix="rnd")],
                        goals=[P.MASKING])
        assert result.trace.rechecked_properties("reassoc-timing") == []
        # ... but the goal is still measured once at the end.
        assert [r.key for r in result.trace.final] == ["masking"]

    def test_conservative_recheck_hits_analysis_cache(self):
        # An undeclared (conservative) pass that does not mutate the
        # netlist re-checks TVLA, but the traces come from the cache.
        pm = PassManager(checkers=small_checkers(), seed=0)
        result = pm.run(masked_and_design(),
                        [SecurePlacementPass(iterations=200)],
                        goals=[P.TVLA_BOUND], assume=[P.TVLA_BOUND])
        assert result.all_passed
        assert result.trace.rechecked_properties("placement") == \
            ["tvla-bound"]
        assert pm.cache.hits >= 2      # both classes served from cache
        assert pm.cache.misses == 2    # simulated exactly once

    def test_missing_checker_rejected(self):
        pm = PassManager(checkers={}, seed=0)
        with pytest.raises(KeyError):
            pm.run(plain_and_design(), [], goals=[P.TVLA_BOUND])


class TestSecureAesProvenance:
    @pytest.fixture(scope="class")
    def outcome(self):
        pm = PassManager(
            checkers={P.TVLA_BOUND: tvla_checker(n_traces=400)}, seed=0)
        design = netlist_design(aes_sbox_netlist(), name="aes-sbox")
        design.tvla_fixed = lambda rng: {f"x{i}": (0x53 >> i) & 1
                                         for i in range(8)}
        design.tvla_random = lambda rng: {f"x{i}": rng.randint(0, 1)
                                          for i in range(8)}
        pipeline = [MaskInsertionPass(), BufferSweepPass(),
                    PlacementPass(iterations=300), StaSignoffPass()]
        return pm.run(design, pipeline, goals=[P.TVLA_BOUND])

    def test_per_pass_provenance(self, outcome):
        trace = outcome.trace
        assert [p.pass_name for p in trace.passes] == \
            ["mask-insertion", "bufsweep", "placement", "sta-signoff"]
        for prov in trace.passes:
            assert prov.wall_ms >= 0.0
            assert prov.cells_before > 0 and prov.cells_after > 0
        mask = trace.passes[0]
        assert mask.cells_after > mask.cells_before   # shares + gadgets
        assert mask.details["randomness_bits"] > 0

    def test_establish_checked_once_then_carried(self, outcome):
        trace = outcome.trace
        assert [r.key for r in trace.passes[0].rechecks] == ["tvla-bound"]
        assert trace.passes[0].rechecks[0].reason == "establishes"
        # Downstream passes preserve the bound -> no further re-checks,
        # and no final goal measurement either.
        assert trace.rechecked_properties("bufsweep") == []
        assert trace.rechecked_properties("placement") == []
        assert trace.rechecked_properties("sta-signoff") == []
        assert trace.final == []
        assert outcome.all_passed

    def test_trace_is_machine_readable(self, outcome):
        blob = json.dumps(outcome.trace.to_dict())
        data = json.loads(blob)
        assert data["design"] == "aes-sbox"
        assert len(data["passes"]) == 4
        assert data["passes"][0]["effects"]["establishes"] == \
            ["masking", "tvla-bound"]
        assert data["failures"] == []
        assert data["total_wall_ms"] > 0

    def test_trace_round_trips_losslessly(self, outcome):
        from repro.flow import FlowTrace

        d = outcome.trace.to_dict()
        revived = FlowTrace.from_dict(json.loads(json.dumps(d)))
        # Dict-level fixed point: serialising the revived trace yields
        # byte-identical JSON — what the run database stores is exactly
        # what a client reconstructs.
        assert revived.to_dict() == d
        # Dataclass equality is a fixed point too (wall times are
        # ms-rounded by serialisation, so the original trace differs
        # only there; everything structural survives).
        assert FlowTrace.from_dict(revived.to_dict()) == revived
        assert revived.design_name == outcome.trace.design_name
        assert ([p.pass_name for p in revived.passes]
                == [p.pass_name for p in outcome.trace.passes])
        assert ([[r.key for r in p.rechecks] for p in revived.passes]
                == [[r.key for r in p.rechecks]
                    for p in outcome.trace.passes])
        assert revived.failures == outcome.trace.failures

    def test_render_mentions_passes_and_checks(self, outcome):
        text = outcome.trace.render()
        assert "mask-insertion" in text
        assert "re-check:establishes" in text
        assert "PASS" in text

    def test_to_flow_report_projection(self, outcome):
        report = to_flow_report(outcome.trace)
        assert report.total_security_checks == 1
        stages = [r.stage.value for r in report.records]
        assert "high-level synthesis" in stages
        assert "timing and power verification" in stages
        assert "hpwl" in report.records[2].metrics


class TestAnalysisCacheKeys:
    def test_parameterized_keys_do_not_collide(self):
        cache = AnalysisCache()
        n = Netlist("k")
        n.add_input("a")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        a = cache.get("x", n, lambda: "lo", key=(n, 1))
        b = cache.get("x", n, lambda: "hi", key=(n, 2))
        assert (a, b) == ("lo", "hi")
        assert cache.get("x", n, lambda: "??", key=(n, 1)) == "lo"

    def test_named_invalidation(self):
        cache = AnalysisCache()
        n = Netlist("k")
        n.add_input("a")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        cache.topo_order(n)
        cache.levels(n)
        cache.invalidate("topo-order")
        assert len(cache) == 1
        cache.invalidate()
        assert len(cache) == 0


class TestLegacyWrappers:
    def test_secure_flow_exposes_trace(self):
        from repro.core import SecureFlow, tvla_requirement
        from repro.core.designs import parity_countermeasure

        flow = SecureFlow([tvla_requirement(n_traces=1500)],
                          transforms=[parity_countermeasure()],
                          placement_iterations=200)
        result = flow.run(masked_and_design())
        assert result.trace is not None
        assert not result.all_passed
        assert any("after parity-detect" in f for f in result.failures)
        # Legacy transforms are conservative: the re-check ran.
        assert "tvla-first-order" in \
            result.trace.rechecked_properties("parity-detect")

    def test_classical_flow_records_pipeline_stages(self):
        from repro.core import ClassicalFlow
        from repro.netlist import random_circuit

        source = random_circuit(6, 40, 2, seed=5)
        epoch_before = source.mutation_epoch
        result = ClassicalFlow(placement_iterations=300).run(source)
        # Input netlist untouched (flow works on a copy).
        assert source.mutation_epoch == epoch_before
        assert result.report.total_security_checks == 0
        assert "(none)" in result.report.render()
