"""Documentation-coverage tests: every public item carries a docstring.

The documentation deliverable, enforced: all modules, all names exported
via ``__all__``, and all public methods of exported classes must be
documented.  Failing this test means a reader hit an undocumented API.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PACKAGES = [
    "repro.netlist", "repro.synth", "repro.physical", "repro.crypto",
    "repro.formal", "repro.sca", "repro.fia", "repro.ip", "repro.trojan",
    "repro.dft", "repro.hls", "repro.core",
]


def iter_modules():
    for package_name in PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        for info in pkgutil.iter_modules(package.__path__):
            yield importlib.import_module(
                f"{package_name}.{info.name}")


@pytest.mark.parametrize("module", list(iter_modules()),
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_names_documented(package_name):
    package = importlib.import_module(package_name)
    exported = getattr(package, "__all__", [])
    assert exported, f"{package_name} exports nothing"
    undocumented = []
    for name in exported:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
    assert not undocumented, (
        f"{package_name} exports undocumented items: {undocumented}"
    )


@pytest.mark.parametrize("package_name", PACKAGES)
def test_exported_classes_public_methods_documented(package_name):
    package = importlib.import_module(package_name)
    offenders = []
    for name in getattr(package, "__all__", []):
        obj = getattr(package, name)
        if not inspect.isclass(obj):
            continue
        for method_name, method in inspect.getmembers(
                obj, inspect.isfunction):
            if method_name.startswith("_"):
                continue
            if method.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited
            if method.__name__ == "<lambda>":
                continue  # default-value callable, not an API method
            if not (method.__doc__ and method.__doc__.strip()):
                offenders.append(f"{name}.{method_name}")
    assert not offenders, (
        f"{package_name} has undocumented public methods: {offenders}"
    )


def test_top_level_package_documented():
    assert repro.__doc__ and "secure" in repro.__doc__.lower()
