"""Tests for the gate-level AES-128: round netlist, datapath, scan attack."""

import random

import pytest

from repro.crypto import (
    AES128,
    add_round_key,
    aes_datapath_netlist,
    aes_round_netlist,
    decode_state,
    encode_state,
    expand_key,
    mix_columns,
    run_aes_datapath,
    shift_rows,
    sub_bytes,
)
from repro.dft import insert_scan, netlist_scan_attack
from repro.netlist import simulate


@pytest.fixture(scope="module")
def round_netlist():
    return aes_round_netlist()


@pytest.fixture(scope="module")
def datapath():
    return aes_datapath_netlist()


class TestRoundNetlist:
    def test_structure(self, round_netlist):
        round_netlist.validate()
        assert len(round_netlist.inputs) == 256   # state + round key
        assert len(round_netlist.outputs) == 128

    def test_matches_software_round(self, round_netlist):
        rng = random.Random(1)
        for _ in range(4):
            state = [rng.randrange(256) for _ in range(16)]
            key = [rng.randrange(256) for _ in range(16)]
            stim = {}
            stim.update(encode_state(state, "s"))
            stim.update(encode_state(key, "k"))
            got = decode_state(simulate(round_netlist, stim), "o")
            want = add_round_key(
                mix_columns(shift_rows(sub_bytes(state))), key)
            assert got == want

    def test_last_round_variant(self):
        last = aes_round_netlist(last_round=True)
        rng = random.Random(2)
        state = [rng.randrange(256) for _ in range(16)]
        key = [rng.randrange(256) for _ in range(16)]
        stim = {}
        stim.update(encode_state(state, "s"))
        stim.update(encode_state(key, "k"))
        got = decode_state(simulate(last, stim), "o")
        assert got == add_round_key(shift_rows(sub_bytes(state)), key)

    def test_bit_parallel_round(self, round_netlist):
        """Two independent states evaluated in one packed simulation."""
        rng = random.Random(3)
        states = [[rng.randrange(256) for _ in range(16)]
                  for _ in range(2)]
        key = [rng.randrange(256) for _ in range(16)]
        stim = {}
        for i in range(16):
            for b in range(8):
                word = 0
                for p, st in enumerate(states):
                    if (st[i] >> b) & 1:
                        word |= 1 << p
                stim[f"s{i}_{b}"] = word
        stim.update(encode_state(key, "k", width=2))
        values = simulate(round_netlist, stim, width=2)
        for p, st in enumerate(states):
            got = decode_state(values, "o", pattern=p)
            want = add_round_key(mix_columns(shift_rows(sub_bytes(st))),
                                 key)
            assert got == want


class TestDatapath:
    def test_fips197_vector(self, datapath):
        key = list(bytes.fromhex("000102030405060708090a0b0c0d0e0f"))
        pt = list(bytes.fromhex("00112233445566778899aabbccddeeff"))
        ct = run_aes_datapath(datapath, pt, key)
        assert bytes(ct).hex() == "69c4e0d86a7b0430d8cdb78070b4c55a"

    def test_matches_software_randomized(self, datapath):
        rng = random.Random(4)
        key = [rng.randrange(256) for _ in range(16)]
        pt = [rng.randrange(256) for _ in range(16)]
        assert run_aes_datapath(datapath, pt, key) == \
            AES128(key).encrypt(pt)

    def test_flop_count(self, datapath):
        assert len(datapath.flops) == 128


class TestNetlistScanAttack:
    def test_recovers_master_key(self):
        key = [random.Random(5).randrange(256) for _ in range(16)]
        result = netlist_scan_attack(key, seed=6)
        assert result.success
        assert result.recovered_key == key
        assert result.scanned_words == 128

    def test_scan_insertion_on_datapath(self, datapath):
        design = insert_scan(datapath)
        assert design.length == 128
        design.netlist.validate()
