"""Tests for automated masking synthesis (netlist-level ISW transform)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto import SBOX4, present_sbox_netlist
from repro.netlist import (
    GateType,
    Netlist,
    c17,
    output_values,
    random_circuit,
    simulate,
)
from repro.sca import leakage_traces, mask_netlist, tvla
from repro.synth import reassociate_for_timing


def check_functional(base, masked, n_trials=40, seed=0):
    rng = random.Random(seed)
    for _ in range(n_trials):
        plain = {name: rng.randint(0, 1) for name in base.inputs}
        stim = masked.stimulus(plain, rng)
        got = masked.decode_outputs(simulate(masked.netlist, stim))
        assert got == output_values(base, plain)


class TestMaskNetlist:
    def test_c17(self):
        base = c17()
        masked = mask_netlist(base)
        masked.netlist.validate()
        check_functional(base, masked)

    def test_present_sbox_exhaustive(self):
        base = present_sbox_netlist()
        masked = mask_netlist(base)
        rng = random.Random(1)
        for x in range(16):
            plain = {f"x{i}": (x >> i) & 1 for i in range(4)}
            got = masked.decode_outputs(
                simulate(masked.netlist, masked.stimulus(plain, rng)))
            assert got == {f"y{i}": (SBOX4[x] >> i) & 1
                           for i in range(4)}

    def test_every_gate_family(self):
        base = Netlist("allgates")
        for name in ("a", "b", "c"):
            base.add_input(name)
        base.add_gate("g_and", GateType.AND, ["a", "b"])
        base.add_gate("g_or", GateType.OR, ["b", "c"])
        base.add_gate("g_xor", GateType.XOR, ["g_and", "g_or"])
        base.add_gate("g_nand", GateType.NAND, ["a", "c"])
        base.add_gate("g_nor", GateType.NOR, ["g_xor", "g_nand"])
        base.add_gate("g_xnor", GateType.XNOR, ["g_nor", "a"])
        base.add_gate("g_mux", GateType.MUX, ["a", "g_xnor", "b"])
        base.add_gate("y", GateType.NOT, ["g_mux"])
        base.add_output("y")
        masked = mask_netlist(base)
        check_functional(base, masked, n_trials=64)

    def test_constants(self):
        base = Netlist("consts")
        base.add_input("a")
        base.add_gate("one", GateType.CONST1)
        base.add_gate("y", GateType.AND, ["a", "one"])
        base.add_output("y")
        masked = mask_netlist(base)
        check_functional(base, masked, n_trials=10)

    def test_randomness_one_bit_per_nonlinear_gadget(self):
        base = present_sbox_netlist()
        masked = mask_netlist(base)
        assert masked.randomness_bits > 0
        # all randomness inputs are primary inputs
        assert set(masked.random_inputs) <= set(masked.netlist.inputs)

    def test_interface_maps_every_port(self):
        base = c17()
        masked = mask_netlist(base)
        assert set(masked.input_shares) == set(base.inputs)
        assert set(masked.output_shares) == set(base.outputs)


class TestMaskedLeakage:
    def _classes(self, masked, n, fixed, seed):
        rng = random.Random(seed)
        stims = []
        for _ in range(n):
            x = 0xB if fixed else rng.randrange(16)
            plain = {f"x{i}": (x >> i) & 1 for i in range(4)}
            stims.append(masked.stimulus(plain, rng))
        return stims

    def test_masked_sbox_passes_tvla(self):
        masked = mask_netlist(present_sbox_netlist())
        fixed = leakage_traces(
            masked.netlist, self._classes(masked, 3000, True, 1),
            noise_sigma=0.3, seed=1)
        rand = leakage_traces(
            masked.netlist, self._classes(masked, 3000, False, 2),
            noise_sigma=0.3, seed=2)
        assert not tvla(fixed, rand).leaks

    def test_reassociation_breaks_masked_netlist(self):
        masked = mask_netlist(present_sbox_netlist())
        broken = masked.netlist.copy()
        late = {r: 1e5 for r in masked.random_inputs}
        rebuilt = reassociate_for_timing(broken, input_arrivals=late)
        assert rebuilt > 0
        # still functionally correct
        rng = random.Random(3)
        for x in range(16):
            plain = {f"x{i}": (x >> i) & 1 for i in range(4)}
            vals = simulate(broken, masked.stimulus(plain, rng))
            got = {
                name: vals[s0] ^ vals[s1]
                for name, (s0, s1) in masked.output_shares.items()
            }
            assert got == {f"y{i}": (SBOX4[x] >> i) & 1
                           for i in range(4)}
        # but now leaky
        fixed = leakage_traces(
            broken, self._classes(masked, 4000, True, 4),
            noise_sigma=0.3, seed=4)
        rand = leakage_traces(
            broken, self._classes(masked, 4000, False, 5),
            noise_sigma=0.3, seed=5)
        assert tvla(fixed, rand).leaks


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 300))
def test_mask_netlist_property(seed):
    base = random_circuit(5, 25, 2, seed=seed)
    masked = mask_netlist(base)
    check_functional(base, masked, n_trials=12, seed=seed)
