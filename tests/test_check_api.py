"""CI gate: the gateway API static audit, run as a tier-1 test.

Mirrors ``tests/test_check_jobs.py`` — the audit is importable for
in-process checks and runnable as a script with exit-code semantics.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_check_api():
    spec = importlib.util.spec_from_file_location(
        "check_api", REPO_ROOT / "scripts" / "check_api.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestApiAudit:
    def test_api_surface_is_clean(self):
        assert load_check_api().audit() == []

    def test_script_exits_zero(self):
        result = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" / "check_api.py")],
            capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": "/usr/bin"})
        assert result.returncode == 0, result.stdout + result.stderr
        assert "clean" in result.stdout

    def test_audit_catches_unscoped_and_undocumented_handler(self):
        # A route whose handler ignores tenancy or ships no error
        # table must fail the audit — that is the whole point of
        # auditing the table statically.
        from repro.service import gateway

        check_api = load_check_api()

        async def rogue(gw, params, body, query):
            """A handler with no tenant parameter and no error table."""
            return 200, {}

        gateway.ROUTES.append(gateway.Route("GET", "/v1/rogue", rogue))
        try:
            problems = "\n".join(check_api.audit())
        finally:
            gateway.ROUTES.pop()
        assert "rogue" in problems
        assert "tenant" in problems
        assert "Errors:" in problems

    def test_audit_catches_sync_handler_and_bad_method(self):
        from repro.service import gateway

        check_api = load_check_api()

        def sync_handler(gw, tenant, params, body, query):
            """Not a coroutine.

            Errors:
                400 bad_request  never
            """
            return 200, {}

        gateway.ROUTES.append(gateway.Route(
            "DELETE", "/v1/sync", sync_handler))
        try:
            problems = "\n".join(check_api.audit())
        finally:
            gateway.ROUTES.pop()
        assert "not async" in problems
        assert "GET or POST" in problems

    def test_audit_catches_unknown_error_vocabulary(self):
        from repro.service import gateway

        check_api = load_check_api()

        async def teapot(gw, tenant, params, body, query):
            """Documents an error outside the vocabulary.

            Errors:
                418 im_a_teapot  always
            """
            return 200, {}

        gateway.ROUTES.append(gateway.Route("GET", "/v1/teapot", teapot))
        try:
            problems = "\n".join(check_api.audit())
        finally:
            gateway.ROUTES.pop()
        assert "418 im_a_teapot" in problems
