"""Run database backends: dispatch, parity, migration, tail caching.

The SQLite backend must be observationally identical to the JSONL one
through the public API (``records``/``query``/``run_ids``/``summary``/
``render_records``) — the CLI and campaign clients never know which
they are talking to.
"""

import json
import sqlite3

import pytest

from repro.service import (
    JsonlRunDatabase,
    RunDatabase,
    RunRecord,
    SqliteRunDatabase,
    migrate_jsonl,
    render_records,
)


def _make_records():
    """A small, shape-diverse log spanning two runs."""
    return [
        RunRecord("run-a", "j0001-lock", "locking-point", "aa" * 32,
                  "succeeded", attempts=1, wall_s=0.5, cache_hit=False,
                  worker="pid100", seed=1, finished_at=1000.0),
        RunRecord("run-a", "j0002-lock", "locking-point", "bb" * 32,
                  "succeeded", attempts=2, wall_s=1.25, cache_hit=True,
                  worker="cache", seed=2, finished_at=1001.0),
        RunRecord("run-a", "j0003-route", "route", "cc" * 32,
                  "failed", attempts=3, wall_s=2.0, cache_hit=False,
                  worker="pid101", error="Traceback\nboom", seed=3,
                  finished_at=1002.0),
        RunRecord("run-b", "j0001-close", "closure", "dd" * 32,
                  "timeout", attempts=1, wall_s=5.0, cache_hit=False,
                  worker="pid102", error="timeout: exceeded", seed=4,
                  finished_at=1003.5),
        RunRecord("run-b", "j0002-close", "closure", "aa" * 32,
                  "skipped", attempts=0, wall_s=0.0, cache_hit=False,
                  error="dependency failed: j0001-close", seed=5,
                  finished_at=1004.0),
    ]


class TestBackendDispatch:
    def test_suffix_selects_backend_for_fresh_paths(self, tmp_path):
        assert isinstance(RunDatabase(tmp_path / "runs.jsonl"),
                          JsonlRunDatabase)
        assert isinstance(RunDatabase(tmp_path / "runs.db"),
                          SqliteRunDatabase)
        assert isinstance(RunDatabase(tmp_path / "runs.sqlite"),
                          SqliteRunDatabase)

    def test_content_overrides_suffix(self, tmp_path):
        # An existing file's header decides: a JSONL log named .db
        # must not be opened as SQLite (and vice versa) — suffixes
        # lie, headers do not.
        jsonl_named_db = tmp_path / "legacy.db"
        JsonlRunDatabase(jsonl_named_db).record(_make_records()[0])
        assert isinstance(RunDatabase(jsonl_named_db), JsonlRunDatabase)

        sqlite_named_jsonl = tmp_path / "modern.jsonl"
        db = SqliteRunDatabase(sqlite_named_jsonl)
        db.record(_make_records()[0])
        db.close()
        assert isinstance(RunDatabase(sqlite_named_jsonl),
                          SqliteRunDatabase)

    def test_direct_subclass_pins_backend(self, tmp_path):
        assert isinstance(JsonlRunDatabase(tmp_path / "x.db"),
                          JsonlRunDatabase)
        assert isinstance(SqliteRunDatabase(tmp_path / "x.jsonl"),
                          SqliteRunDatabase)

    def test_sqlite_is_indexed(self, tmp_path):
        db = SqliteRunDatabase(tmp_path / "runs.db")
        names = {row[0] for row in db._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'")}
        for column in ("run_id", "spec_hash", "status", "job_type"):
            assert f"idx_records_{column}" in names
        db.close()


@pytest.fixture(params=["jsonl", "sqlite"])
def db(request, tmp_path):
    if request.param == "jsonl":
        return JsonlRunDatabase(tmp_path / "runs.jsonl")
    return SqliteRunDatabase(tmp_path / "runs.db")


class TestBackendParity:
    """Every public read path, exercised identically on both backends."""

    def test_records_round_trip_in_order(self, db):
        records = _make_records()
        db.record_many(records)
        assert db.records() == records

    def test_query_filters(self, db):
        records = _make_records()
        db.record_many(records)
        assert db.query(run_id="run-a") == records[:3]
        assert db.query(job_type="closure") == records[3:]
        assert db.query(status="succeeded") == records[:2]
        assert db.query(cache_hit=True) == [records[1]]
        assert db.query(since=1002.0) == records[2:]
        assert db.query(spec_hash="aa" * 32) == [records[0], records[4]]
        assert db.query(run_id="run-a", status="failed") == [records[2]]
        assert db.query(run_id="run-z") == []

    def test_run_ids_first_seen_order(self, db):
        db.record_many(_make_records())
        assert db.run_ids() == ["run-a", "run-b"]

    def test_summary(self, db):
        db.record_many(_make_records())
        summary = db.summary()
        assert summary["records"] == 5
        assert summary["by_status"] == {
            "succeeded": 2, "failed": 1, "timeout": 1, "skipped": 1}
        assert summary["cache_hits"] == 1
        assert summary["cache_hit_rate"] == pytest.approx(0.2)
        # Wall time sums only finished work: skipped jobs never ran.
        assert summary["total_wall_s"] == pytest.approx(8.75)
        assert summary["total_attempts"] == 7
        assert summary["runs"] == 2

    def test_summary_scoped_to_run(self, db):
        db.record_many(_make_records())
        summary = db.summary(run_id="run-b")
        assert summary["records"] == 2
        assert summary["by_status"] == {"timeout": 1, "skipped": 1}
        assert summary["runs"] == 1

    def test_empty_database(self, db):
        assert db.records() == []
        assert db.run_ids() == []
        assert db.summary() == {
            "records": 0, "by_status": {}, "cache_hits": 0,
            "cache_hit_rate": 0.0, "total_wall_s": 0.0,
            "total_attempts": 0, "runs": 0}

    def test_render_is_backend_independent(self, db):
        db.record_many(_make_records())
        rendered = render_records(db.records())
        assert "j0001-lock" in rendered
        assert "boom" not in rendered          # only the first line
        assert "Traceback" in rendered


class TestMigration:
    def test_round_trip_is_lossless(self, tmp_path):
        src = tmp_path / "legacy.jsonl"
        dest = tmp_path / "runs.db"
        records = _make_records()
        JsonlRunDatabase(src).record_many(records)
        assert migrate_jsonl(src, dest) == len(records)
        migrated = RunDatabase(dest)
        assert isinstance(migrated, SqliteRunDatabase)
        # Every field survives, including timestamps and append order.
        assert migrated.records() == records
        assert migrated.summary() == JsonlRunDatabase(src).summary()
        assert render_records(migrated.records()) == \
            render_records(JsonlRunDatabase(src).records())
        # The source is untouched.
        assert JsonlRunDatabase(src).records() == records

    def test_refuses_non_empty_destination(self, tmp_path):
        src = tmp_path / "legacy.jsonl"
        dest = tmp_path / "runs.db"
        JsonlRunDatabase(src).record_many(_make_records())
        SqliteRunDatabase(dest).record(_make_records()[0])
        with pytest.raises(ValueError, match="refusing"):
            migrate_jsonl(src, dest)

    def test_empty_source_migrates_to_empty_database(self, tmp_path):
        assert migrate_jsonl(tmp_path / "none.jsonl",
                             tmp_path / "runs.db") == 0
        assert RunDatabase(tmp_path / "runs.db").records() == []


class TestJsonlTailCaching:
    def test_appends_are_parsed_incrementally(self, tmp_path):
        db = JsonlRunDatabase(tmp_path / "runs.jsonl")
        records = _make_records()
        db.record_many(records[:2])
        assert db.records() == records[:2]
        offset_after_two = db._offset
        db.record_many(records[2:])
        assert db.records() == records
        # The cached prefix was not re-read: the offset only advanced.
        assert db._offset > offset_after_two

    def test_torn_tail_line_stays_pending(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = JsonlRunDatabase(path)
        records = _make_records()
        db.record_many(records[:2])
        assert db.records() == records[:2]
        # A writer mid-append: no trailing newline yet.
        line = json.dumps(records[2].as_dict())
        with open(path, "a") as handle:
            handle.write(line[:20])
            handle.flush()
        assert db.records() == records[:2]      # torn tail not consumed
        with open(path, "a") as handle:
            handle.write(line[20:] + "\n")
        assert db.records() == records[:3]      # completed line lands

    def test_replaced_file_triggers_full_reparse(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = JsonlRunDatabase(path)
        records = _make_records()
        db.record_many(records)
        assert len(db.records()) == 5
        # Replace the log wholesale (rotation): shorter, new inode.
        replacement = tmp_path / "new.jsonl"
        JsonlRunDatabase(replacement).record_many(records[:1])
        replacement.rename(path)
        assert db.records() == records[:1]

    def test_deleted_file_resets_the_cache(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = JsonlRunDatabase(path)
        db.record_many(_make_records())
        assert len(db.records()) == 5
        path.unlink()
        assert db.records() == []

    def test_malformed_lines_are_skipped(self, tmp_path):
        path = tmp_path / "runs.jsonl"
        db = JsonlRunDatabase(path)
        records = _make_records()
        db.record(records[0])
        with open(path, "a") as handle:
            handle.write("not json\n")
            handle.write('{"run_id": "orphan"}\n')   # missing fields
        db.record(records[1])
        assert db.records() == records[:2]

    def test_two_handles_one_file(self, tmp_path):
        # A CLI reader and a live scheduler writer share the file; the
        # reader's cache must follow the writer's appends.
        path = tmp_path / "runs.jsonl"
        writer = JsonlRunDatabase(path)
        reader = JsonlRunDatabase(path)
        records = _make_records()
        writer.record_many(records[:3])
        assert reader.records() == records[:3]
        writer.record_many(records[3:])
        assert reader.records() == records


class TestSqliteConcurrency:
    def test_second_connection_sees_committed_writes(self, tmp_path):
        path = tmp_path / "runs.db"
        writer = SqliteRunDatabase(path)
        writer.record_many(_make_records())
        reader = SqliteRunDatabase(path)
        assert reader.records() == _make_records()
        writer.close()
        reader.close()

    def test_wal_mode_is_active(self, tmp_path):
        db = SqliteRunDatabase(tmp_path / "runs.db")
        (mode,) = db._conn.execute("PRAGMA journal_mode").fetchone()
        assert mode == "wal"
        db.close()

    def test_corrupt_sqlite_surfaces_loudly(self, tmp_path):
        # Unlike the forgiving JSONL parser, SQLite corruption is an
        # error, not silently empty results.
        path = tmp_path / "runs.db"
        path.write_bytes(b"SQLite format 3\x00" + b"\xff" * 64)
        with pytest.raises(sqlite3.DatabaseError):
            SqliteRunDatabase(path)


class TestSqliteConcurrency:
    # One SqliteRunDatabase instance may be shared by gateway threads
    # and inherited across fork() by pool workers; every statement is
    # serialized behind a lock and connections are pid-checked.

    def test_threads_share_one_instance_without_busy_errors(
            self, tmp_path):
        import threading

        db = SqliteRunDatabase(tmp_path / "runs.db")
        errors = []

        def hammer(thread_id):
            try:
                for i in range(25):
                    rec = RunRecord(
                        f"run-t{thread_id}", f"j{i:04d}", "locking-point",
                        "aa" * 32, "succeeded", seed=i)
                    db.record(rec)
                    db.query(run_id=f"run-t{thread_id}")
                    db.summary()
            except Exception as exc:   # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,))
                   for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(db.records()) == 4 * 25
        db.close()

    def test_forked_child_gets_fresh_connection(self, tmp_path):
        import multiprocessing
        import os

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        ctx = multiprocessing.get_context("fork")
        db = SqliteRunDatabase(tmp_path / "runs.db")
        db.record(_make_records()[0])
        parent_conn = db._conn

        def child(database):
            # The inherited handle belongs to the parent; the guard
            # must replace it before any statement runs.
            database.record(RunRecord(
                "run-child", "j-child", "locking-point", "bb" * 32,
                "succeeded", seed=7))
            os._exit(0 if database._conn is not None
                     and database._pid == os.getpid() else 1)

        proc = ctx.Process(target=child, args=(db,))
        proc.start()
        proc.join(timeout=10.0)
        assert proc.exitcode == 0
        # Parent keeps its own connection and sees the child's write.
        assert db._conn is parent_conn
        assert [r.run_id for r in db.query(run_id="run-child")] \
            == ["run-child"]
        db.close()
