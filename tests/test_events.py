"""Event bus: publish/subscribe semantics and watch-output parity.

The bus replaced the CLI's private ``on_event`` watch closure; the
regression contract is that ``--watch`` output is *byte for byte*
what the legacy closure printed, while the same event stream now
also feeds gateway SSE.
"""

import re
import threading

import pytest

from repro.service import Scheduler
from repro.service.events import EventBus, JobEvent, format_event
from repro.service.jobs import JobSpec

import test_service_scheduler  # noqa: F401  registers the t-* job types


def _legacy_watch_line(job) -> str:
    """The pre-bus CLI watcher, verbatim (the regression reference)."""
    cache = " (cache)" if job.cache_hit else ""
    extra = (f" — {job.error.splitlines()[-1][:60]}"
             if job.error and job.status in
             ("failed", "timeout", "pending") else "")
    return (f"[{job.status:>9}] {job.job_id} "
            f"attempt={job.attempts}{cache}{extra}")


class _FakeJob:
    def __init__(self, **kw):
        self.job_id = kw.get("job_id", "j1")
        self.status = kw.get("status", "succeeded")
        self.attempts = kw.get("attempts", 1)
        self.cache_hit = kw.get("cache_hit", False)
        self.error = kw.get("error", "")
        self.wall_s = 0.0
        self.worker = ""
        self.result = None

        class _Spec:
            job_type = "t-echo"
            spec_hash = "ab" * 32
        self.spec = _Spec()


class TestWatchFormatRegression:
    @pytest.mark.parametrize("fields", [
        {"status": "succeeded", "attempts": 1},
        {"status": "succeeded", "attempts": 2, "cache_hit": True},
        {"status": "failed", "attempts": 3,
         "error": "Traceback...\nValueError: boom"},
        {"status": "timeout", "attempts": 1,
         "error": "x" * 200},                   # truncation at 60
        {"status": "pending", "attempts": 1,
         "error": "worker crashed (signal 9)"},  # retry line
        {"status": "running", "attempts": 1,
         "error": "stale error not shown for running"},
        {"status": "cancelled", "attempts": 0},
    ])
    def test_format_event_matches_legacy_watcher(self, fields):
        job = _FakeJob(**fields)
        event = JobEvent.from_job(job)
        assert format_event(event) == _legacy_watch_line(job)

    def test_cli_watch_prints_bus_events(self, capsys):
        from repro.service.cli import main

        assert main(["sweep", "--widths", "0", "--watch",
                     "--max-iterations", "10"]) == 0
        out = capsys.readouterr().out
        lines = [l for l in out.splitlines() if l.startswith("[")]
        assert lines, out
        # Every watch line is the legacy format, ending succeeded.
        pattern = re.compile(r"^\[ *\w+\] \S+ attempt=\d+")
        assert all(pattern.match(l) for l in lines)
        assert any("succeeded" in l for l in lines)


class TestBusSemantics:
    def test_scheduler_publishes_lifecycle_to_bus(self):
        bus = EventBus()
        sub = bus.subscribe()
        s = Scheduler(workers=0, bus=bus)
        jid = s.submit(JobSpec("t-echo", params={"value": 5}))
        s.run()
        bus.close()
        events = list(sub)
        assert [e.job_id for e in events] == [jid] * len(events)
        statuses = [e.status for e in events]
        assert statuses[0] in ("pending", "running")
        assert statuses[-1] == "succeeded"
        # seq strictly increasing; terminal event carries the result.
        seqs = [e.seq for e in events]
        assert seqs == sorted(seqs) and len(set(seqs)) == len(seqs)
        assert events[-1].result["value"] == 5
        assert events[-1].terminal

    def test_job_id_filter_and_replay_after_seq(self):
        bus = EventBus()
        s = Scheduler(workers=0, bus=bus)
        a = s.submit(JobSpec("t-echo", params={"value": 1}))
        b = s.submit(JobSpec("t-echo", params={"value": 2}))
        s.run()
        # Late subscriber with replay sees only job b's history.
        history = bus.history(b)
        assert history
        sub = bus.subscribe(job_ids=[b], replay=True)
        bus.close()
        events = list(sub)
        assert events and all(e.job_id == b for e in events)
        assert [e.seq for e in events] == [e.seq for e in history]
        # after_seq resumes mid-stream: exactly-once delivery.
        sub2 = bus.subscribe(job_ids=[b], replay=True,
                             after_seq=history[0].seq)
        events2 = [e for e in iter(lambda: sub2.get(0.1), None)]
        assert [e.seq for e in events2] == \
            [e.seq for e in history[1:]]
        assert a != b

    def test_close_unblocks_waiting_reader(self):
        bus = EventBus()
        sub = bus.subscribe()
        got = []

        def reader():
            got.append(sub.get(timeout=10.0))

        thread = threading.Thread(target=reader)
        thread.start()
        bus.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [None]
        assert sub.closed
        # Publishing after close is a silent no-op.
        bus.publish(JobEvent(job_id="x", status="pending"))
        assert bus.history() == []

    def test_per_job_run_id_overrides_scheduler_run_id(self):
        bus = EventBus()
        sub = bus.subscribe()
        s = Scheduler(workers=0, bus=bus, run_id="shared")
        s.submit(JobSpec("t-echo", params={"value": 1}),
                 run_id="t/alice/s1")
        s.submit(JobSpec("t-echo", params={"value": 2}))
        s.run()
        bus.close()
        run_ids = {e.job_id: e.run_id for e in sub}
        assert set(run_ids.values()) == {"t/alice/s1", "shared"}
