"""Cache-invalidation guard: every public mutator must bump the epoch.

The compiled simulation engine and the flow-level
:class:`repro.flow.AnalysisCache` both key their entries on netlist
identity plus :attr:`Netlist.mutation_epoch`.  A mutator that forgets
to invalidate would serve stale programs/analyses silently — so this
suite drives the netlist through *every* public mutator and asserts
(a) the epoch advanced and (b) re-simulation through the compiled
engine is bit-exact against the interpreted reference afterwards.
"""

import pytest

from repro.netlist import GateType, Netlist, c17, random_circuit
from repro.netlist.engine import get_compiled
from repro.netlist.simulate import simulate, simulate_reference


def assert_bit_exact(netlist, width=8, seed=0):
    """Compiled re-simulation must match the interpreted reference."""
    import random

    rng = random.Random(seed)
    mask = (1 << width) - 1
    inputs = {name: rng.randint(0, mask) for name in netlist.inputs}
    state = {ff: rng.randint(0, mask) for ff in netlist.flops}
    compiled = simulate(netlist, inputs, width=width, state=state)
    reference = simulate_reference(netlist, inputs, width=width,
                                   state=state)
    assert compiled == reference


def fresh():
    n = Netlist("guard")
    n.add_input("a")
    n.add_input("b")
    n.add_input("c")
    n.add_gate("ab", GateType.AND, ["a", "b"])
    n.add_gate("bc", GateType.OR, ["b", "c"])
    n.add_gate("y", GateType.XOR, ["ab", "bc"])
    n.add_gate("buf1", GateType.BUF, ["y"])
    n.add_output("buf1")
    return n


class TestEpochBumps:
    """Each mutator advances mutation_epoch and drops the topo cache."""

    def warmed(self):
        n = fresh()
        n.topological_order()      # populate _topo_cache
        get_compiled(n)            # populate the compiled program
        return n, n.mutation_epoch

    def test_add_gate(self):
        n, epoch = self.warmed()
        n.add_gate("z", GateType.NOT, ["y"])
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_add_input(self):
        n, epoch = self.warmed()
        n.add_input("d")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_add_output(self):
        n, epoch = self.warmed()
        n.add_output("y")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_add_with_prefix(self):
        n, epoch = self.warmed()
        n.add(GateType.NAND, ["a", "c"], prefix="t")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_replace_fanin(self):
        n, epoch = self.warmed()
        n.replace_fanin("y", "ab", "a")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_rewire_consumers(self):
        n, epoch = self.warmed()
        n.rewire_consumers("ab", "bc")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_remove_gate(self):
        n, epoch = self.warmed()
        n.rewire_consumers("ab", "bc")
        n.remove_gate("ab")
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_sweep_dangling(self):
        n, epoch = self.warmed()
        n.add_gate("dead", GateType.NOT, ["a"])
        swept = n.sweep_dangling()
        assert swept >= 1
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_import_netlist(self):
        n, epoch = self.warmed()
        n.import_netlist(c17(), prefix="sub_",
                         port_map={i: "a" for i in c17().inputs})
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)

    def test_manual_fanin_mutation_with_invalidate(self):
        # The documented protocol for direct gate surgery (used by
        # dft.scan, ip.camouflage): mutate .fanins, then invalidate().
        n, epoch = self.warmed()
        n.gates["y"].fanins = ["ab", "a"]
        n.invalidate()
        assert n.mutation_epoch > epoch
        assert_bit_exact(n)


class TestStaleProgramNeverServed:
    """The compiled engine must recompile after any mutation."""

    def test_function_change_reflected_immediately(self):
        n = fresh()
        before = simulate(n, {"a": 1, "b": 1, "c": 0})["buf1"]
        assert before == (1 & 1) ^ (1 | 0)    # y = ab ^ bc = 0
        n.replace_fanin("y", "bc", "c")       # y = ab ^ c
        after = simulate(n, {"a": 1, "b": 1, "c": 0})["buf1"]
        assert after == (1 & 1) ^ 0
        assert_bit_exact(n)

    def test_copy_is_independent(self):
        n = fresh()
        get_compiled(n)
        twin = n.copy()
        twin.replace_fanin("y", "ab", "a")
        # The original's cached program must be untouched by the twin.
        assert simulate(n, {"a": 0, "b": 1, "c": 1})["y"] == \
            simulate_reference(n, {"a": 0, "b": 1, "c": 1})["y"]
        assert_bit_exact(twin)

    def test_epoch_monotonic_across_mutator_storm(self):
        n = random_circuit(6, 40, 2, seed=7)
        seen = [n.mutation_epoch]
        n.add_input("extra")
        seen.append(n.mutation_epoch)
        n.add(GateType.XOR, [n.inputs[0], "extra"], prefix="mix")
        seen.append(n.mutation_epoch)
        n.sweep_dangling()
        seen.append(n.mutation_epoch)
        assert seen == sorted(seen) and len(set(seen)) == len(seen)
        assert_bit_exact(n)


class TestAnalysisCacheInvalidation:
    """Flow-level AnalysisCache entries die with the epoch."""

    def test_epoch_invalidates_entry(self):
        from repro.flow import AnalysisCache

        n = fresh()
        cache = AnalysisCache()
        first = cache.topo_order(n)
        assert cache.topo_order(n) is first and cache.hits == 1
        n.add_gate("z", GateType.NOT, ["y"])
        second = cache.topo_order(n)
        assert "z" in second
        assert cache.misses == 2

    def test_distinct_netlists_do_not_alias(self):
        from repro.flow import AnalysisCache

        cache = AnalysisCache()
        a, b = fresh(), fresh()
        cache.topo_order(a)
        cache.topo_order(b)
        assert cache.misses == 2  # same epoch, different identity


def test_add_gate_rejects_duplicate_driver():
    from repro.netlist.netlist import NetlistError

    n = fresh()
    with pytest.raises(NetlistError):
        n.add_gate("a", GateType.AND, ["b", "c"])
