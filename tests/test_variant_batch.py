"""Property tests for batched multi-variant evaluation.

A :class:`~repro.netlist.VariantFamily` lowers the base netlist once
and scores every variant in one packed pass; the contract is that each
variant's slice is **bit-identical** to evaluating that variant alone.
The executable specification here is a dict-based reference
interpreter, written independently of the engine, that applies one
variant's deltas (input overrides, stuck-at forces, bit flips, patched
opcodes) while walking the netlist in topological order.

The same bit-exactness is asserted one level up for the ported
consumers: fault campaigns (batched vs serial strategy), leakage
traces / TVLA verdicts (family vs per-variant simulation), and the
service layer's per-variant artifact-cache keys.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.fia import FaultKind, enumerate_faults, fault_campaign
from repro.netlist import (
    GateType,
    Netlist,
    VariantFamily,
    VariantSpec,
    get_compiled,
)
from repro.netlist.generators import c17
from repro.sca import family_leakage_traces, leakage_traces, tvla

_VARIADIC = (
    GateType.AND, GateType.NAND, GateType.OR,
    GateType.NOR, GateType.XOR, GateType.XNOR,
)
_UNARY = (GateType.BUF, GateType.NOT)
_NULLARY = (GateType.CONST0, GateType.CONST1)


# ----------------------------------------------------------------------
# Reference semantics
# ----------------------------------------------------------------------

def _reference_gate(kind: GateType, fan, mask: int) -> int:
    """Packed value of one gate under the documented op semantics."""
    if kind is GateType.CONST0:
        return 0
    if kind is GateType.CONST1:
        return mask
    if kind is GateType.BUF:
        return fan[0]
    if kind is GateType.NOT:
        return ~fan[0] & mask
    if kind is GateType.MUX:
        s, d0, d1 = fan
        return (~s & d0) | (s & d1)
    word = fan[0]
    if kind in (GateType.AND, GateType.NAND):
        for f in fan[1:]:
            word &= f
    elif kind in (GateType.OR, GateType.NOR):
        for f in fan[1:]:
            word |= f
    else:  # XOR / XNOR
        for f in fan[1:]:
            word ^= f
    if kind in (GateType.NAND, GateType.NOR, GateType.XNOR):
        word = ~word & mask
    return word


def reference_eval(netlist: Netlist, spec: VariantSpec, stimulus,
                   width: int, state=None):
    """Serial single-variant evaluation: the executable specification.

    Delta order at a site is opcode-select, then flip, then force
    (force wins) — matching the engine's documented lowering.
    """
    mask = (1 << width) - 1
    state = state or {}
    values = {}
    for name in netlist.topological_order():
        gate = netlist.gates[name]
        if gate.gate_type is GateType.INPUT:
            word = int(spec.inputs.get(name, stimulus[name])) & mask
        elif gate.gate_type is GateType.DFF:
            word = state.get(name, 0) & mask
        else:
            kind = spec.opcodes.get(name, gate.gate_type)
            fan = [values[f] for f in gate.fanins]
            word = _reference_gate(kind, fan, mask)
        if name in spec.flips:
            word ^= mask
        if name in spec.forces:
            word = mask if spec.forces[name] else 0
        values[name] = word
    return values


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

@st.composite
def combinational_netlists(draw) -> Netlist:
    """Random combinational DAG over every gate type (incl. MUX/CONST)."""
    n_inputs = draw(st.integers(min_value=1, max_value=5))
    n = Netlist("variant_comb")
    nets = [n.add_input(f"in{i}") for i in range(n_inputs)]
    n_gates = draw(st.integers(min_value=1, max_value=25))
    for k in range(n_gates):
        kind = draw(st.sampled_from(
            _VARIADIC + _UNARY + _NULLARY + (GateType.MUX,)))
        if kind in _NULLARY:
            fanins = []
        elif kind in _UNARY:
            fanins = [draw(st.sampled_from(nets))]
        elif kind is GateType.MUX:
            fanins = [draw(st.sampled_from(nets)) for _ in range(3)]
        else:
            arity = draw(st.integers(min_value=2, max_value=4))
            fanins = [draw(st.sampled_from(nets)) for _ in range(arity)]
        nets.append(n.add_gate(f"g{k}", kind, fanins))
    n.add_output(nets[-1])
    return n


@st.composite
def sequential_netlists(draw) -> Netlist:
    """Random netlist with DFFs feeding back into the logic."""
    n = draw(combinational_netlists())
    gate_nets = list(n.gates)
    n_flops = draw(st.integers(min_value=1, max_value=3))
    flop_outputs = []
    for k in range(n_flops):
        flop_outputs.append(n.add_gate(f"ff{k}", GateType.DFF, [f"d{k}"]))
    for k, ff in enumerate(flop_outputs):
        other = draw(st.sampled_from(gate_nets))
        mixed = n.add_gate(f"mix{k}", GateType.XOR, [ff, other])
        n.add_gate(f"d{k}", GateType.BUF,
                   [draw(st.sampled_from(gate_nets + [mixed]))])
        n.add_output(mixed)
    return n


def _draw_spec(draw, netlist: Netlist, width: int) -> VariantSpec:
    """One random variant delta legal for ``netlist``."""
    names = list(netlist.gates)
    inputs = {}
    for name in draw(st.lists(st.sampled_from(netlist.inputs),
                              max_size=2, unique=True)):
        inputs[name] = draw(st.integers(0, (1 << width) - 1))
    forces = {}
    for name in draw(st.lists(st.sampled_from(names),
                              max_size=2, unique=True)):
        forces[name] = draw(st.integers(0, 1))
    flips = draw(st.lists(st.sampled_from(names), max_size=2, unique=True))
    opcodes = {}
    patchable = [
        name for name in names
        if netlist.gates[name].gate_type not in (GateType.INPUT,
                                                 GateType.DFF)
    ]
    if patchable:
        for name in draw(st.lists(st.sampled_from(patchable),
                                  max_size=2, unique=True)):
            arity = len(netlist.gates[name].fanins)
            candidates = list(_NULLARY)
            if arity >= 1:
                candidates += list(_UNARY) + list(_VARIADIC)
            if arity == 3:
                candidates.append(GateType.MUX)
            opcodes[name] = draw(st.sampled_from(candidates))
    return VariantSpec(inputs=inputs, forces=forces, flips=flips,
                       opcodes=opcodes)


def _stimulus(draw, names, width):
    return {
        name: draw(st.integers(min_value=0, max_value=(1 << width) - 1))
        for name in names
    }


# ----------------------------------------------------------------------
# Engine-level bit-exactness
# ----------------------------------------------------------------------

@settings(max_examples=50, deadline=None)
@given(data=st.data())
def test_family_matches_reference_combinational(data):
    netlist = data.draw(combinational_netlists())
    width = data.draw(st.integers(min_value=1, max_value=48))
    n_variants = data.draw(st.integers(min_value=1, max_value=5))
    specs = [VariantSpec()] + [
        _draw_spec(data.draw, netlist, width) for _ in range(n_variants - 1)
    ]
    stimulus = _stimulus(data.draw, netlist.inputs, width)
    family = VariantFamily(netlist, specs)
    # Both execution strategies: first call interprets, second runs the
    # generated program; each must match the reference slice-for-slice.
    for _ in range(2):
        words = family.eval_words(stimulus, width)
        for v, spec in enumerate(specs):
            want = reference_eval(netlist, spec, stimulus, width)
            for name, index in get_compiled(netlist).index.items():
                got = family.split_word(words[index], width)[v]
                assert got == want[name], (
                    f"variant {v}, net {name}: {got:#x} != {want[name]:#x}")


@settings(max_examples=30, deadline=None)
@given(data=st.data())
def test_family_matches_reference_sequential(data):
    netlist = data.draw(sequential_netlists())
    width = data.draw(st.integers(min_value=1, max_value=32))
    n_variants = data.draw(st.integers(min_value=1, max_value=4))
    specs = [_draw_spec(data.draw, netlist, width)
             for _ in range(n_variants)]
    stimulus = _stimulus(data.draw, netlist.inputs, width)
    state = _stimulus(data.draw, netlist.flops, width)
    family = VariantFamily(netlist, specs)
    words = family.eval_words(stimulus, width, state=state)
    compiled = get_compiled(netlist)
    for v, spec in enumerate(specs):
        want = reference_eval(netlist, spec, stimulus, width, state=state)
        for name in netlist.outputs:
            got = family.split_word(words[compiled.index[name]], width)[v]
            assert got == want[name]


@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_one_variant_identity_family_equals_plain_eval(data):
    """The degenerate single-identity family IS the base evaluation."""
    netlist = data.draw(combinational_netlists())
    width = data.draw(st.integers(min_value=1, max_value=64))
    stimulus = _stimulus(data.draw, netlist.inputs, width)
    family = VariantFamily(netlist, [VariantSpec()])
    base = get_compiled(netlist).eval_words(stimulus, width)
    for _ in range(2):  # interpreted, then generated
        assert family.eval_words(stimulus, width) == base


def test_spec_round_trip_and_validation():
    netlist = c17()
    spec = VariantSpec(inputs={"G1": 5}, forces={"G10": 2},
                       flips=["G22", "G16"],
                       opcodes={"G10": "AND", "G22": GateType.CONST1})
    assert spec.forces["G10"] == 1       # normalized to 0/1
    assert VariantSpec.from_dict(spec.to_dict()).to_dict() == spec.to_dict()
    assert VariantSpec().is_identity() and not spec.is_identity()
    with pytest.raises(Exception):
        VariantFamily(netlist, [])       # empty family
    with pytest.raises(Exception):       # INPUT sites are not patchable
        VariantFamily(netlist, [VariantSpec(opcodes={"G1": "AND"})])


# ----------------------------------------------------------------------
# Ported consumers
# ----------------------------------------------------------------------

@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_fault_campaign_batched_matches_serial(data):
    netlist = data.draw(combinational_netlists())
    faults = enumerate_faults(
        netlist, kinds=(FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1,
                        FaultKind.BIT_FLIP))
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    n_vectors = data.draw(st.sampled_from([1, 7, 32]))
    serial = fault_campaign(netlist, faults, n_vectors=n_vectors,
                            seed=seed, batch=False)
    batched = fault_campaign(netlist, faults, n_vectors=n_vectors,
                             seed=seed, batch=True)
    assert [
        (o.fault.net, o.fault.kind, o.propagated, o.detected,
         o.silent_corruption) for o in serial.outcomes
    ] == [
        (o.fault.net, o.fault.kind, o.propagated, o.detected,
         o.silent_corruption) for o in batched.outcomes
    ]
    assert serial.coverage == batched.coverage


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_family_leakage_traces_match_serial_sweep(data):
    """Batched traces — and hence TVLA verdicts — are byte-equal."""
    netlist = data.draw(combinational_netlists())
    seed = data.draw(st.integers(min_value=0, max_value=2**16))
    rng = np.random.default_rng(seed)
    n_traces = 24
    stimuli = [
        {name: int(rng.integers(0, 2)) for name in netlist.inputs}
        for _ in range(n_traces)
    ]
    # Variants flip a subset of inputs: the serial equivalent is the
    # same sweep on inverted stimulus bits.
    subsets = [[]] + [
        data.draw(st.lists(st.sampled_from(netlist.inputs),
                           min_size=1, max_size=3, unique=True))
        for _ in range(data.draw(st.integers(min_value=1, max_value=3)))
    ]
    family = VariantFamily(
        netlist, [VariantSpec(flips=subset) for subset in subsets])
    batched = family_leakage_traces(family, stimuli, noise_sigma=0.8,
                                    seed=seed)
    for v, subset in enumerate(subsets):
        flipped = [
            {name: value ^ (1 if name in subset else 0)
             for name, value in stim.items()}
            for stim in stimuli
        ]
        serial = leakage_traces(netlist, flipped, noise_sigma=0.8,
                                seed=seed + v)
        assert np.array_equal(batched[v], serial)
        half = n_traces // 2
        got = tvla(batched[v][:half], batched[v][half:])
        want = tvla(serial[:half], serial[half:])
        assert got.max_abs_t == want.max_abs_t
        assert got.leaking_sample == want.leaking_sample


def test_service_variant_hashes_and_cache_hits(tmp_path, monkeypatch):
    """Per-variant cache keys are served on resubmission, batched or not."""
    from repro.service import (
        ArtifactStore,
        evaluate_variants,
        variant_sweep_campaign,
    )
    import repro.service.campaigns as campaigns

    netlist = c17()
    variants = [
        {"flips": ["G10"]},
        {"forces": {"G16": 1}},
        {"inputs": {"G1": 3}},
        {},
    ]
    store = ArtifactStore(str(tmp_path / "store"))
    first = variant_sweep_campaign(netlist, variants, n_vectors=16,
                                   seed=3, store=store, batch=True)
    # Each batch entry equals the one-variant serial kernel (hash incl.)
    for variant, row in zip(variants, first):
        solo = evaluate_variants(netlist, [variant], n_vectors=16,
                                 seed=3)[0]
        assert row == solo
    # Resubmission must not schedule anything: every per-variant spec
    # hash is already in the store.
    def _no_scheduler(*args, **kwargs):
        raise AssertionError("cache miss: scheduler constructed")

    monkeypatch.setattr(campaigns, "Scheduler", _no_scheduler)
    again = variant_sweep_campaign(netlist, variants, n_vectors=16,
                                   seed=3, store=store, batch=False)
    assert again == first
