"""Scheduler semantics: DAG order, crash isolation, timeouts, retries.

The fault-injection job types registered here are process-hostile on
purpose (``os._exit`` mid-job, unbounded sleeps); each carries
``sample_params`` and a docstring so the ``check_jobs`` registry audit
stays clean when pytest imports this module.
"""

import os
import signal
import threading
import time

import pytest

from repro.service import (
    CANCELLED,
    FAILED,
    JobSpec,
    PENDING,
    RUNNING,
    RunDatabase,
    Scheduler,
    SchedulerError,
    SKIPPED,
    SUCCEEDED,
    TIMEOUT,
    WorkerPool,
    register_job_type,
)


@register_job_type("t-echo", sample_params={"value": 1},
                   sample_result={"value": 1, "seed": 0})
def _echo_job(params, ctx):
    """Test job: return its parameters and seed (pure, deterministic)."""
    return {"value": params["value"], "seed": ctx.seed}


@register_job_type("t-crash-once", sample_params={"marker": "/tmp/x"},
                   sample_result={"recovered": True})
def _crash_once_job(params, ctx):
    """Test job: die without cleanup on the first attempt, then succeed.

    The marker file records that the crash already happened, so the
    retried attempt — in a fresh worker process — completes.
    """
    del ctx
    if not os.path.exists(params["marker"]):
        with open(params["marker"], "w") as handle:
            handle.write("crashed")
        os._exit(13)     # no exception, no cleanup: a real crash
    return {"recovered": True}


@register_job_type("t-sleep", sample_params={"seconds": 0.01},
                   sample_result={"slept": 0.01})
def _sleep_job(params, ctx):
    """Test job: sleep, then return — the timeout-policy target."""
    del ctx
    time.sleep(float(params["seconds"]))
    return {"slept": params["seconds"]}


@register_job_type("t-fail", sample_params={"n": 1},
                   sample_result={"unreached": True})
def _fail_job(params, ctx):
    """Test job: always raise (exercises retry exhaustion)."""
    del ctx
    raise RuntimeError(f"deliberate failure {params['n']}")


@register_job_type("t-dep-sum", sample_params={"label": "sum"},
                   sample_result={"total": 5})
def _dep_sum_job(params, ctx):
    """Test job: sum the ``value`` field of all dependency results."""
    del params
    return {"total": sum(r["value"] for r in ctx.dep_results.values())}


@register_job_type("t-pid-sleep", sample_params={"pidfile": "/tmp/p"},
                   sample_result={"survived": True})
def _pid_sleep_job(params, ctx):
    """Test job: publish the worker pid, then sleep as a kill target.

    The first attempt drops a ``.done`` marker, writes its pid so the
    test can signal the worker from outside, and sleeps.  The retried
    attempt — in a fresh worker — sees the marker and returns at once.
    """
    del ctx
    marker = params["pidfile"] + ".done"
    if os.path.exists(marker):
        return {"survived": True}
    with open(marker, "w") as handle:
        handle.write("attempted")
    with open(params["pidfile"], "w") as handle:
        handle.write(str(os.getpid()))
    time.sleep(30.0)
    return {"survived": False}


#: Per-process call counter: a persistent worker carries it across
#: jobs, so its value observes worker reuse (and thus cache warmth).
_WORKER_CALLS = {"n": 0}


@register_job_type("t-warmth", sample_params={"tag": "a"},
                   sample_result={"pid": 1, "calls": 1})
def _warmth_job(params, ctx):
    """Test job: report the worker pid and its per-process call count."""
    del params, ctx
    _WORKER_CALLS["n"] += 1
    return {"pid": os.getpid(), "calls": _WORKER_CALLS["n"]}


@register_job_type("t-bad-return", sample_params={"n": 1},
                   sample_result={"never": True})
def _bad_return_job(params, ctx):
    """Test job: return a value that cannot cross the worker pipe."""
    del ctx
    return {"n": params["n"], "fn": lambda: None}


class TestJobSpecParams:
    @pytest.mark.parametrize("params", [
        {},
        {"empty-dict": {}},
        {"empty-list": []},
        # A list of [str, value] pairs must stay a list — the shape of
        # the pass-pipeline job's own documented params.
        {"passes": [["synthesis-stage", {}]]},
        {"a": [["k", 1], ["k2", 2]]},
        {"nested": {"list": [1, [2, {"d": []}]], "n": None}},
    ])
    def test_params_dict_round_trips(self, params):
        assert JobSpec("t-echo", params=params).params_dict == params

    def test_list_of_pairs_is_not_a_dict(self):
        # These name *different* computations; conflating them would
        # let the content-addressed cache serve one for the other.
        pairs = JobSpec("t-echo", params={"a": [["k", 1]]})
        mapping = JobSpec("t-echo", params={"a": {"k": 1}})
        assert pairs != mapping
        assert pairs.spec_hash != mapping.spec_hash
        assert pairs.params_dict == {"a": [["k", 1]]}
        assert mapping.params_dict == {"a": {"k": 1}}

    def test_key_order_canonical(self):
        a = JobSpec("t-echo", params={"x": 1, "y": 2})
        b = JobSpec("t-echo", params={"y": 2, "x": 1})
        assert a == b
        assert a.spec_hash == b.spec_hash


class TestDagExecution:
    def test_deps_run_first_and_feed_results(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 2}))
        b = s.submit(JobSpec("t-echo", params={"value": 3}))
        c = s.submit(JobSpec("t-dep-sum"), deps=[a, b])
        jobs = s.run()
        assert jobs[c].status == SUCCEEDED
        assert jobs[c].result == {"total": 5}

    def test_unknown_dep_rejected_at_submit(self):
        s = Scheduler(workers=0)
        with pytest.raises(SchedulerError):
            s.submit(JobSpec("t-echo", params={"value": 1}),
                     deps=["nope"])

    def test_cycle_rejected_at_run(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 1}))
        b = s.submit(JobSpec("t-echo", params={"value": 2}), deps=[a])
        s.jobs[a].deps = (b,)          # force a cycle
        with pytest.raises(SchedulerError):
            s.run()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_inline_and_pool_agree(self, workers):
        s = Scheduler(workers=workers)
        ids = [s.submit(JobSpec("t-echo", params={"value": v}, seed=9))
               for v in range(4)]
        jobs = s.run()
        assert [jobs[j].result for j in ids] == [
            {"value": v, "seed": 9} for v in range(4)]


class TestFaultInjection:
    def test_crash_is_retried_and_recovers(self, tmp_path):
        marker = tmp_path / "crashed"
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-crash-once",
                               params={"marker": str(marker)},
                               retries=1, retry_backoff=0.01))
        jobs = s.run()
        assert jobs[jid].status == SUCCEEDED
        assert jobs[jid].attempts == 2
        assert jobs[jid].result == {"recovered": True}

    def test_crash_without_retries_fails(self, tmp_path):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec(
            "t-crash-once",
            params={"marker": str(tmp_path / "never")},
            retries=0))
        # Make the job crash on *every* attempt by pointing the marker
        # somewhere unwritable-by-design: each fresh attempt rewrites
        # it, but retries=0 means the first crash is terminal anyway.
        jobs = s.run()
        assert jobs[jid].status == FAILED
        assert jobs[jid].attempts == 1
        # Depending on timing the crash shows up as a silent death or
        # as the result pipe tearing mid-send; both are crash reports.
        assert ("crash" in jobs[jid].error.lower()
                or "pipe" in jobs[jid].error.lower())

    def test_timeout_does_not_stall_siblings(self):
        s = Scheduler(workers=2)
        slow = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                                timeout=0.3))
        fast = [s.submit(JobSpec("t-echo", params={"value": v}))
                for v in range(3)]
        started = time.perf_counter()
        jobs = s.run()
        elapsed = time.perf_counter() - started
        assert jobs[slow].status == TIMEOUT
        assert all(jobs[j].status == SUCCEEDED for j in fast)
        assert elapsed < 10.0     # nowhere near the 30 s sleep

    def test_timeout_is_terminal_by_default(self):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                               timeout=0.2, retries=3))
        jobs = s.run()
        assert jobs[jid].status == TIMEOUT
        assert jobs[jid].attempts == 1     # retries not spent on timeouts

    def test_retry_on_timeout_opt_in(self):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                               timeout=0.2, retries=1,
                               retry_backoff=0.01,
                               retry_on_timeout=True))
        jobs = s.run()
        assert jobs[jid].status == TIMEOUT
        assert jobs[jid].attempts == 2

    @pytest.mark.parametrize("workers", [0, 2])
    def test_exception_retries_exhaust_to_failed(self, workers):
        s = Scheduler(workers=workers)
        jid = s.submit(JobSpec("t-fail", params={"n": 7}, retries=2,
                               retry_backoff=0.01))
        jobs = s.run()
        assert jobs[jid].status == FAILED
        assert jobs[jid].attempts == 3
        assert "deliberate failure 7" in jobs[jid].error

    @pytest.mark.parametrize("workers", [0, 2])
    def test_dependents_of_failures_are_skipped(self, workers):
        s = Scheduler(workers=workers)
        bad = s.submit(JobSpec("t-fail", params={"n": 1}))
        child = s.submit(JobSpec("t-echo", params={"value": 1}),
                         deps=[bad])
        grandchild = s.submit(JobSpec("t-echo", params={"value": 2}),
                              deps=[child])
        unrelated = s.submit(JobSpec("t-echo", params={"value": 3}))
        jobs = s.run()
        assert jobs[bad].status == FAILED
        assert jobs[child].status == SKIPPED
        assert jobs[grandchild].status == SKIPPED
        assert jobs[unrelated].status == SUCCEEDED


class TestCancellation:
    def test_cancel_cascades_to_dependents(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 1}))
        b = s.submit(JobSpec("t-echo", params={"value": 2}), deps=[a])
        s.cancel(a)
        jobs = s.run()
        assert jobs[a].status == CANCELLED
        assert jobs[b].status == SKIPPED

    def test_cancel_terminates_live_worker(self):
        # Cancelling a job whose worker is already running must kill
        # the worker: the 30 s sleep cannot hold up the run, and the
        # worker must not later report and flip the job to SUCCEEDED.
        s = Scheduler(workers=2)
        slow = s.submit(JobSpec("t-sleep", params={"seconds": 30.0}))
        fast = s.submit(JobSpec("t-echo", params={"value": 1}))

        def on_event(job):
            if job.job_id == fast and job.status == SUCCEEDED:
                s.cancel(slow)

        s.on_event = on_event
        started = time.perf_counter()
        jobs = s.run()
        assert jobs[slow].status == CANCELLED
        assert jobs[fast].status == SUCCEEDED
        assert time.perf_counter() - started < 10.0

    def test_cancel_at_running_event_records_once(self, tmp_path):
        # cancel() fired from the RUNNING transition itself (the watch
        # callback) races worker startup; the job must still end up
        # CANCELLED with exactly one terminal run-database record.
        db = RunDatabase(tmp_path / "runs.jsonl")
        s = Scheduler(workers=2, rundb=db)

        def on_event(job):
            if job.status == RUNNING:
                s.cancel(job.job_id)

        s.on_event = on_event
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0}))
        started = time.perf_counter()
        jobs = s.run()
        assert jobs[jid].status == CANCELLED
        assert time.perf_counter() - started < 10.0
        assert [r.status for r in db.records()] == [CANCELLED]

    def test_counts_summarise_terminal_states(self):
        s = Scheduler(workers=0)
        s.submit(JobSpec("t-echo", params={"value": 1}))
        s.submit(JobSpec("t-fail", params={"n": 2}))
        s.run()
        counts = s.counts()
        assert counts[SUCCEEDED] == 1
        assert counts[FAILED] == 1


def _kill_when_pid_appears(pidfile, sig) -> threading.Thread:
    """Background thread: wait for the worker's pidfile, then signal it."""
    def run():
        deadline = time.time() + 15.0
        while time.time() < deadline:
            try:
                text = pidfile.read_text().strip()
                if text:
                    os.kill(int(text), sig)
                    return
            except (FileNotFoundError, ValueError, ProcessLookupError):
                pass
            time.sleep(0.01)

    thread = threading.Thread(target=run)
    thread.start()
    return thread


class TestPersistentPool:
    def test_sigkill_respawns_retries_and_records_once(self, tmp_path):
        # SIGKILL a warm worker mid-job: the pool must replace it, the
        # job must retry and succeed, siblings must be untouched, and
        # the run database must hold exactly one terminal record per
        # job — a crash neither loses a record nor double-records.
        db = RunDatabase(tmp_path / "runs.jsonl")
        pidfile = tmp_path / "worker.pid"
        with WorkerPool(2) as pool:
            s = Scheduler(pool=pool, rundb=db)
            victim = s.submit(JobSpec(
                "t-pid-sleep", params={"pidfile": str(pidfile)},
                retries=1, retry_backoff=0.01))
            others = [s.submit(JobSpec("t-echo", params={"value": v}))
                      for v in range(3)]
            killer = _kill_when_pid_appears(pidfile, signal.SIGKILL)
            jobs = s.run()
            killer.join()
            assert pool.respawns >= 1
            assert len(pool.workers()) == 2     # still at size
        assert jobs[victim].status == SUCCEEDED
        assert jobs[victim].attempts == 2
        assert jobs[victim].result == {"survived": True}
        assert all(jobs[j].status == SUCCEEDED for j in others)
        records = db.records()
        assert sorted(r.job_id for r in records) == \
            sorted([victim] + others)
        assert all(r.status == SUCCEEDED for r in records)

    def test_sigkill_without_retries_is_a_clean_failure(self, tmp_path):
        db = RunDatabase(tmp_path / "runs.jsonl")
        pidfile = tmp_path / "worker.pid"
        with WorkerPool(1) as pool:
            s = Scheduler(pool=pool, rundb=db)
            jid = s.submit(JobSpec(
                "t-pid-sleep", params={"pidfile": str(pidfile)},
                retries=0))
            killer = _kill_when_pid_appears(pidfile, signal.SIGKILL)
            jobs = s.run()
            killer.join()
        assert jobs[jid].status == FAILED
        assert "crashed" in jobs[jid].error
        assert [r.status for r in db.records()] == [FAILED]

    def test_sigstop_wedge_is_detected_and_replaced(self, tmp_path):
        # A stopped process is alive but silent: only the heartbeat
        # can tell.  The scheduler must declare it wedged, replace it,
        # and retry the job on the fresh worker.
        pidfile = tmp_path / "worker.pid"
        errors = []

        def on_event(job):
            if job.status == PENDING and job.error:
                errors.append(job.error)

        with WorkerPool(1, heartbeat_interval=0.05,
                        heartbeat_timeout=0.5) as pool:
            s = Scheduler(pool=pool, on_event=on_event)
            jid = s.submit(JobSpec(
                "t-pid-sleep", params={"pidfile": str(pidfile)},
                retries=1, retry_backoff=0.01))
            stopper = _kill_when_pid_appears(pidfile, signal.SIGSTOP)
            jobs = s.run()
            stopper.join()
            assert pool.respawns >= 1
        assert jobs[jid].status == SUCCEEDED
        assert jobs[jid].attempts == 2
        assert any("wedged" in e for e in errors)

    def test_shared_pool_keeps_workers_warm(self):
        # Two schedulers over one pool reuse the same worker process —
        # the property that keeps engine caches and solver registries
        # warm across campaign resubmission.
        with WorkerPool(1) as pool:
            s1 = Scheduler(pool=pool)
            a = s1.submit(JobSpec("t-warmth", params={"tag": "a"}))
            r1 = s1.run()[a].result
            s2 = Scheduler(pool=pool)
            b = s2.submit(JobSpec("t-warmth", params={"tag": "b"}))
            r2 = s2.run()[b].result
        assert r1["pid"] == r2["pid"]
        assert r2["calls"] == r1["calls"] + 1

    def test_unpicklable_result_fails_without_killing_worker(self):
        # A result that cannot pickle must surface as a job error, not
        # poison the pipe or cost a worker respawn.
        with WorkerPool(1) as pool:
            s = Scheduler(pool=pool)
            bad = s.submit(JobSpec("t-bad-return", params={"n": 1}))
            good = s.submit(JobSpec("t-echo", params={"value": 4}))
            jobs = s.run()
            assert pool.respawns == 0
        assert jobs[bad].status == FAILED
        assert "picklable" in jobs[bad].error
        assert jobs[good].status == SUCCEEDED

    def test_execution_modes_agree_bit_for_bit(self):
        # Inline, per-job-process, and persistent-pool execution must
        # produce identical result payloads for the same DAG.
        def build(**kwargs):
            s = Scheduler(**kwargs)
            ids = [s.submit(JobSpec("t-echo", params={"value": v},
                                    seed=3))
                   for v in range(4)]
            total = s.submit(JobSpec("t-dep-sum"), deps=ids)
            jobs = s.run()
            return [jobs[j].result for j in ids + [total]]

        inline = build(workers=0)
        per_job = build(workers=2, persistent=False)
        pooled = build(workers=2)
        assert inline == per_job == pooled
