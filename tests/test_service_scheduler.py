"""Scheduler semantics: DAG order, crash isolation, timeouts, retries.

The fault-injection job types registered here are process-hostile on
purpose (``os._exit`` mid-job, unbounded sleeps); each carries
``sample_params`` and a docstring so the ``check_jobs`` registry audit
stays clean when pytest imports this module.
"""

import os
import time

import pytest

from repro.service import (
    CANCELLED,
    FAILED,
    JobSpec,
    RUNNING,
    RunDatabase,
    Scheduler,
    SchedulerError,
    SKIPPED,
    SUCCEEDED,
    TIMEOUT,
    register_job_type,
)


@register_job_type("t-echo", sample_params={"value": 1})
def _echo_job(params, ctx):
    """Test job: return its parameters and seed (pure, deterministic)."""
    return {"value": params["value"], "seed": ctx.seed}


@register_job_type("t-crash-once", sample_params={"marker": "/tmp/x"})
def _crash_once_job(params, ctx):
    """Test job: die without cleanup on the first attempt, then succeed.

    The marker file records that the crash already happened, so the
    retried attempt — in a fresh worker process — completes.
    """
    del ctx
    if not os.path.exists(params["marker"]):
        with open(params["marker"], "w") as handle:
            handle.write("crashed")
        os._exit(13)     # no exception, no cleanup: a real crash
    return {"recovered": True}


@register_job_type("t-sleep", sample_params={"seconds": 0.01})
def _sleep_job(params, ctx):
    """Test job: sleep, then return — the timeout-policy target."""
    del ctx
    time.sleep(float(params["seconds"]))
    return {"slept": params["seconds"]}


@register_job_type("t-fail", sample_params={"n": 1})
def _fail_job(params, ctx):
    """Test job: always raise (exercises retry exhaustion)."""
    del ctx
    raise RuntimeError(f"deliberate failure {params['n']}")


@register_job_type("t-dep-sum", sample_params={"label": "sum"})
def _dep_sum_job(params, ctx):
    """Test job: sum the ``value`` field of all dependency results."""
    del params
    return {"total": sum(r["value"] for r in ctx.dep_results.values())}


class TestJobSpecParams:
    @pytest.mark.parametrize("params", [
        {},
        {"empty-dict": {}},
        {"empty-list": []},
        # A list of [str, value] pairs must stay a list — the shape of
        # the pass-pipeline job's own documented params.
        {"passes": [["synthesis-stage", {}]]},
        {"a": [["k", 1], ["k2", 2]]},
        {"nested": {"list": [1, [2, {"d": []}]], "n": None}},
    ])
    def test_params_dict_round_trips(self, params):
        assert JobSpec("t-echo", params=params).params_dict == params

    def test_list_of_pairs_is_not_a_dict(self):
        # These name *different* computations; conflating them would
        # let the content-addressed cache serve one for the other.
        pairs = JobSpec("t-echo", params={"a": [["k", 1]]})
        mapping = JobSpec("t-echo", params={"a": {"k": 1}})
        assert pairs != mapping
        assert pairs.spec_hash != mapping.spec_hash
        assert pairs.params_dict == {"a": [["k", 1]]}
        assert mapping.params_dict == {"a": {"k": 1}}

    def test_key_order_canonical(self):
        a = JobSpec("t-echo", params={"x": 1, "y": 2})
        b = JobSpec("t-echo", params={"y": 2, "x": 1})
        assert a == b
        assert a.spec_hash == b.spec_hash


class TestDagExecution:
    def test_deps_run_first_and_feed_results(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 2}))
        b = s.submit(JobSpec("t-echo", params={"value": 3}))
        c = s.submit(JobSpec("t-dep-sum"), deps=[a, b])
        jobs = s.run()
        assert jobs[c].status == SUCCEEDED
        assert jobs[c].result == {"total": 5}

    def test_unknown_dep_rejected_at_submit(self):
        s = Scheduler(workers=0)
        with pytest.raises(SchedulerError):
            s.submit(JobSpec("t-echo", params={"value": 1}),
                     deps=["nope"])

    def test_cycle_rejected_at_run(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 1}))
        b = s.submit(JobSpec("t-echo", params={"value": 2}), deps=[a])
        s.jobs[a].deps = (b,)          # force a cycle
        with pytest.raises(SchedulerError):
            s.run()

    @pytest.mark.parametrize("workers", [0, 2])
    def test_inline_and_pool_agree(self, workers):
        s = Scheduler(workers=workers)
        ids = [s.submit(JobSpec("t-echo", params={"value": v}, seed=9))
               for v in range(4)]
        jobs = s.run()
        assert [jobs[j].result for j in ids] == [
            {"value": v, "seed": 9} for v in range(4)]


class TestFaultInjection:
    def test_crash_is_retried_and_recovers(self, tmp_path):
        marker = tmp_path / "crashed"
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-crash-once",
                               params={"marker": str(marker)},
                               retries=1, retry_backoff=0.01))
        jobs = s.run()
        assert jobs[jid].status == SUCCEEDED
        assert jobs[jid].attempts == 2
        assert jobs[jid].result == {"recovered": True}

    def test_crash_without_retries_fails(self, tmp_path):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec(
            "t-crash-once",
            params={"marker": str(tmp_path / "never")},
            retries=0))
        # Make the job crash on *every* attempt by pointing the marker
        # somewhere unwritable-by-design: each fresh attempt rewrites
        # it, but retries=0 means the first crash is terminal anyway.
        jobs = s.run()
        assert jobs[jid].status == FAILED
        assert jobs[jid].attempts == 1
        # Depending on timing the crash shows up as a silent death or
        # as the result pipe tearing mid-send; both are crash reports.
        assert ("crash" in jobs[jid].error.lower()
                or "pipe" in jobs[jid].error.lower())

    def test_timeout_does_not_stall_siblings(self):
        s = Scheduler(workers=2)
        slow = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                                timeout=0.3))
        fast = [s.submit(JobSpec("t-echo", params={"value": v}))
                for v in range(3)]
        started = time.perf_counter()
        jobs = s.run()
        elapsed = time.perf_counter() - started
        assert jobs[slow].status == TIMEOUT
        assert all(jobs[j].status == SUCCEEDED for j in fast)
        assert elapsed < 10.0     # nowhere near the 30 s sleep

    def test_timeout_is_terminal_by_default(self):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                               timeout=0.2, retries=3))
        jobs = s.run()
        assert jobs[jid].status == TIMEOUT
        assert jobs[jid].attempts == 1     # retries not spent on timeouts

    def test_retry_on_timeout_opt_in(self):
        s = Scheduler(workers=2)
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0},
                               timeout=0.2, retries=1,
                               retry_backoff=0.01,
                               retry_on_timeout=True))
        jobs = s.run()
        assert jobs[jid].status == TIMEOUT
        assert jobs[jid].attempts == 2

    @pytest.mark.parametrize("workers", [0, 2])
    def test_exception_retries_exhaust_to_failed(self, workers):
        s = Scheduler(workers=workers)
        jid = s.submit(JobSpec("t-fail", params={"n": 7}, retries=2,
                               retry_backoff=0.01))
        jobs = s.run()
        assert jobs[jid].status == FAILED
        assert jobs[jid].attempts == 3
        assert "deliberate failure 7" in jobs[jid].error

    @pytest.mark.parametrize("workers", [0, 2])
    def test_dependents_of_failures_are_skipped(self, workers):
        s = Scheduler(workers=workers)
        bad = s.submit(JobSpec("t-fail", params={"n": 1}))
        child = s.submit(JobSpec("t-echo", params={"value": 1}),
                         deps=[bad])
        grandchild = s.submit(JobSpec("t-echo", params={"value": 2}),
                              deps=[child])
        unrelated = s.submit(JobSpec("t-echo", params={"value": 3}))
        jobs = s.run()
        assert jobs[bad].status == FAILED
        assert jobs[child].status == SKIPPED
        assert jobs[grandchild].status == SKIPPED
        assert jobs[unrelated].status == SUCCEEDED


class TestCancellation:
    def test_cancel_cascades_to_dependents(self):
        s = Scheduler(workers=0)
        a = s.submit(JobSpec("t-echo", params={"value": 1}))
        b = s.submit(JobSpec("t-echo", params={"value": 2}), deps=[a])
        s.cancel(a)
        jobs = s.run()
        assert jobs[a].status == CANCELLED
        assert jobs[b].status == SKIPPED

    def test_cancel_terminates_live_worker(self):
        # Cancelling a job whose worker is already running must kill
        # the worker: the 30 s sleep cannot hold up the run, and the
        # worker must not later report and flip the job to SUCCEEDED.
        s = Scheduler(workers=2)
        slow = s.submit(JobSpec("t-sleep", params={"seconds": 30.0}))
        fast = s.submit(JobSpec("t-echo", params={"value": 1}))

        def on_event(job):
            if job.job_id == fast and job.status == SUCCEEDED:
                s.cancel(slow)

        s.on_event = on_event
        started = time.perf_counter()
        jobs = s.run()
        assert jobs[slow].status == CANCELLED
        assert jobs[fast].status == SUCCEEDED
        assert time.perf_counter() - started < 10.0

    def test_cancel_at_running_event_records_once(self, tmp_path):
        # cancel() fired from the RUNNING transition itself (the watch
        # callback) races worker startup; the job must still end up
        # CANCELLED with exactly one terminal run-database record.
        db = RunDatabase(tmp_path / "runs.jsonl")
        s = Scheduler(workers=2, rundb=db)

        def on_event(job):
            if job.status == RUNNING:
                s.cancel(job.job_id)

        s.on_event = on_event
        jid = s.submit(JobSpec("t-sleep", params={"seconds": 30.0}))
        started = time.perf_counter()
        jobs = s.run()
        assert jobs[jid].status == CANCELLED
        assert time.perf_counter() - started < 10.0
        assert [r.status for r in db.records()] == [CANCELLED]

    def test_counts_summarise_terminal_states(self):
        s = Scheduler(workers=0)
        s.submit(JobSpec("t-echo", params={"value": 1}))
        s.submit(JobSpec("t-fail", params={"n": 2}))
        s.run()
        counts = s.counts()
        assert counts[SUCCEEDED] == 1
        assert counts[FAILED] == 1
