"""Tests for GLIFT and the security-constraint compiler."""

import pytest

from repro.core import (
    CompilationReport,
    DetectionConstraint,
    LeakageConstraint,
    MaskingConstraint,
    NoFlowConstraint,
    compile_and_check,
    duplication_countermeasure,
    masked_and_design,
    parity_countermeasure,
)
from repro.formal import (
    glift_simulate,
    prove_no_flow,
    taint_reachable_outputs,
)
from repro.netlist import GateType, Netlist, c17, random_circuit


def gated_leak_circuit():
    n = Netlist("dbg")
    n.add_input("key")
    n.add_input("data")
    n.add_input("debug_en")
    n.add_gate("mix", GateType.XOR, ["key", "data"])
    n.add_gate("dbg_mux", GateType.MUX, ["debug_en", "data", "mix"])
    n.add_gate("debug_out", GateType.BUF, ["dbg_mux"])
    n.add_gate("ct", GateType.BUF, ["mix"])
    n.add_output("debug_out")
    n.add_output("ct")
    return n


class TestGliftDynamic:
    def test_controlling_value_blocks_taint(self):
        n = Netlist()
        n.add_input("s")
        n.add_input("g")
        n.add_gate("y", GateType.AND, ["s", "g"])
        n.add_output("y")
        _, taints = glift_simulate(n, {"s": 1, "g": 0}, ["s"])
        assert taints["y"] == 0
        _, taints = glift_simulate(n, {"s": 1, "g": 1}, ["s"])
        assert taints["y"] == 1

    def test_or_controlling_one(self):
        n = Netlist()
        n.add_input("s")
        n.add_input("g")
        n.add_gate("y", GateType.OR, ["s", "g"])
        n.add_output("y")
        _, taints = glift_simulate(n, {"s": 0, "g": 1}, ["s"])
        assert taints["y"] == 0  # the 1 dominates

    def test_xor_always_propagates(self):
        n = Netlist()
        n.add_input("s")
        n.add_input("g")
        n.add_gate("y", GateType.XOR, ["s", "g"])
        n.add_output("y")
        for g in (0, 1):
            _, taints = glift_simulate(n, {"s": 0, "g": g}, ["s"])
            assert taints["y"] == 1

    def test_two_tainted_inputs_can_cancel(self):
        # y = AND(s1, s2) with s1=0, s2=0: flipping either alone or
        # both can change y -> tainted.
        n = Netlist()
        n.add_input("s1")
        n.add_input("s2")
        n.add_gate("y", GateType.AND, ["s1", "s2"])
        n.add_output("y")
        _, taints = glift_simulate(n, {"s1": 0, "s2": 0}, ["s1", "s2"])
        assert taints["y"] == 1

    def test_untainted_run_clean(self):
        n = c17()
        _, taints = glift_simulate(n, {k: 1 for k in n.inputs}, [])
        assert all(t == 0 for t in taints.values())


class TestNoFlowProof:
    def test_gated_isolation(self):
        n = gated_leak_circuit()
        assert prove_no_flow(n, "key", "debug_out",
                             fixed={"debug_en": 0}).isolated
        result = prove_no_flow(n, "key", "debug_out",
                               fixed={"debug_en": 1})
        assert result.flows
        assert result.witness is not None

    def test_reachable_outputs(self):
        n = gated_leak_circuit()
        assert taint_reachable_outputs(
            n, "key", fixed={"debug_en": 0}) == ["ct"]
        assert set(taint_reachable_outputs(n, "key")) == \
            {"debug_out", "ct"}

    def test_nonexistent_source_rejected(self):
        with pytest.raises(ValueError):
            prove_no_flow(c17(), "nope", "G22")

    def test_dead_input_isolated(self):
        n = Netlist()
        n.add_input("s")
        n.add_input("a")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        assert prove_no_flow(n, "s", "y").isolated


class TestConstraintCompiler:
    def test_safe_stack_signs_off(self):
        design = duplication_countermeasure().apply(masked_and_design())
        report = compile_and_check(design, [
            LeakageConstraint(n_traces=2000),
            MaskingConstraint(n_traces=2000),
            DetectionConstraint(),
        ])
        assert report.satisfied
        assert "signoff clean" in report.render()

    def test_unsafe_stack_blocked(self):
        design = parity_countermeasure().apply(masked_and_design())
        report = compile_and_check(design, [
            LeakageConstraint(n_traces=2000),
            MaskingConstraint(n_traces=2000),
        ])
        assert not report.satisfied
        text = report.render()
        assert "VIOLATED" in text and "signoff BLOCKED" in text

    def test_detection_requires_alarm(self):
        design = masked_and_design()   # no alarm yet
        report = compile_and_check(design, [DetectionConstraint()])
        assert not report.satisfied
        assert "no alarm" in report.obligations[0].evidence

    def test_noflow_constraint(self):
        from repro.core.composition import Design
        import random

        n = gated_leak_circuit()
        design = Design(
            name="dbg",
            netlist=n,
            tvla_fixed=lambda rng: {"key": 1, "data": 1, "debug_en": 0},
            tvla_random=lambda rng: {
                "key": rng.randint(0, 1), "data": rng.randint(0, 1),
                "debug_en": 0},
        )
        good = compile_and_check(design, [
            NoFlowConstraint("key", "debug_out", when={"debug_en": 0}),
        ])
        assert good.satisfied
        bad = compile_and_check(design, [
            NoFlowConstraint("key", "debug_out"),
        ])
        assert not bad.satisfied
