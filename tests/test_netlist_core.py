"""Unit tests for the netlist IR: construction, topology, mutation."""

import pytest

from repro.netlist import (
    Gate,
    GateType,
    Netlist,
    NetlistError,
    c17,
    check_arity,
    cone_extract,
    evaluate,
)


def build_simple():
    n = Netlist("t")
    n.add_input("a")
    n.add_input("b")
    n.add_gate("g1", GateType.AND, ["a", "b"])
    n.add_gate("g2", GateType.NOT, ["g1"])
    n.add_output("g2")
    return n


class TestGateTypes:
    def test_inverting_flags(self):
        assert GateType.NAND.is_inverting
        assert GateType.NOR.is_inverting
        assert GateType.XNOR.is_inverting
        assert GateType.NOT.is_inverting
        assert not GateType.AND.is_inverting

    def test_base_mapping(self):
        assert GateType.NAND.base is GateType.AND
        assert GateType.XNOR.base is GateType.XOR
        assert GateType.NOT.base is GateType.BUF
        assert GateType.AND.base is GateType.AND

    def test_arity_checks(self):
        with pytest.raises(ValueError):
            check_arity(GateType.AND, 1)
        with pytest.raises(ValueError):
            check_arity(GateType.NOT, 2)
        with pytest.raises(ValueError):
            check_arity(GateType.MUX, 2)
        check_arity(GateType.AND, 5)
        check_arity(GateType.MUX, 3)

    @pytest.mark.parametrize("t,vals,expected", [
        (GateType.AND, [0b1100, 0b1010], 0b1000),
        (GateType.NAND, [0b1100, 0b1010], 0b0111),
        (GateType.OR, [0b1100, 0b1010], 0b1110),
        (GateType.NOR, [0b1100, 0b1010], 0b0001),
        (GateType.XOR, [0b1100, 0b1010], 0b0110),
        (GateType.XNOR, [0b1100, 0b1010], 0b1001),
        (GateType.NOT, [0b1100], 0b0011),
        (GateType.BUF, [0b1100], 0b1100),
    ])
    def test_evaluate_bitparallel(self, t, vals, expected):
        assert evaluate(t, vals, 0b1111) == expected

    def test_evaluate_mux(self):
        # sel=0 -> d0, sel=1 -> d1, bit-parallel over 4 patterns
        sel, d0, d1 = 0b0101, 0b0011, 0b1100
        assert evaluate(GateType.MUX, [sel, d0, d1], 0b1111) == 0b0110

    def test_evaluate_nary(self):
        assert evaluate(GateType.AND, [0b111, 0b110, 0b011], 0b111) == 0b010
        assert evaluate(GateType.XOR, [1, 1, 1], 1) == 1

    def test_evaluate_constants(self):
        assert evaluate(GateType.CONST0, [], 0b11) == 0
        assert evaluate(GateType.CONST1, [], 0b11) == 0b11

    def test_cannot_evaluate_input(self):
        with pytest.raises(ValueError):
            evaluate(GateType.INPUT, [], 1)


class TestNetlistConstruction:
    def test_basic(self):
        n = build_simple()
        assert len(n) == 4
        assert n.inputs == ["a", "b"]
        assert n.outputs == ["g2"]
        assert n.num_cells() == 2

    def test_duplicate_driver_rejected(self):
        n = build_simple()
        with pytest.raises(NetlistError):
            n.add_gate("g1", GateType.OR, ["a", "b"])

    def test_unknown_output_rejected(self):
        n = build_simple()
        with pytest.raises(NetlistError):
            n.add_output("nope")

    def test_gate_bad_arity_rejected(self):
        with pytest.raises(ValueError):
            Gate("x", GateType.AND, ["a"])

    def test_new_name_is_fresh(self):
        n = build_simple()
        names = {n.new_name() for _ in range(10)}
        assert len(names) == 10
        assert not names & set(n.gates)

    def test_add_auto_names(self):
        n = build_simple()
        net = n.add(GateType.OR, ["a", "b"])
        assert net in n.gates

    def test_contains(self):
        n = build_simple()
        assert "g1" in n
        assert "zz" not in n


class TestTopology:
    def test_topological_order(self):
        n = build_simple()
        order = n.topological_order()
        assert order.index("g1") < order.index("g2")
        assert order.index("a") < order.index("g1")

    def test_cycle_detection(self):
        n = Netlist()
        n.add_input("a")
        n.gates["g1"] = Gate("g1", GateType.AND, ["a", "g2"])
        n.gates["g2"] = Gate("g2", GateType.NOT, ["g1"])
        with pytest.raises(NetlistError):
            n.topological_order()

    def test_dff_breaks_cycle(self):
        n = Netlist()
        n.add_input("a")
        n.add_gate("q", GateType.DFF, ["d"])
        n.add_gate("d", GateType.XOR, ["a", "q"])
        n.add_output("q")
        n.validate()  # no combinational cycle

    def test_levels_and_depth(self):
        n = build_simple()
        lv = n.levels()
        assert lv["a"] == 0 and lv["g1"] == 1 and lv["g2"] == 2
        assert n.depth() == 2

    def test_transitive_fanin(self):
        n = c17()
        cone = n.transitive_fanin(["G22"])
        assert "G1" in cone and "G19" not in cone

    def test_transitive_fanout(self):
        n = c17()
        fo = n.transitive_fanout(["G11"])
        assert "G22" in fo and "G23" in fo and "G10" not in fo

    def test_validate_catches_undriven(self):
        n = Netlist()
        n.add_input("a")
        n.gates["g"] = Gate("g", GateType.NOT, ["missing"])
        with pytest.raises(NetlistError):
            n.validate()


class TestMutation:
    def test_replace_fanin(self):
        n = build_simple()
        n.add_input("c")
        n.replace_fanin("g1", "b", "c")
        assert n.gate("g1").fanins == ["a", "c"]

    def test_rewire_consumers(self):
        n = build_simple()
        n.add_input("c")
        n.rewire_consumers("g1", "c")
        assert n.gate("g2").fanins == ["c"]

    def test_rewire_updates_outputs(self):
        n = build_simple()
        n.add_input("c")
        n.rewire_consumers("g2", "c")
        assert n.outputs == ["c"]

    def test_remove_gate_guards(self):
        n = build_simple()
        with pytest.raises(NetlistError):
            n.remove_gate("g1")  # still consumed
        with pytest.raises(NetlistError):
            n.remove_gate("g2")  # is an output

    def test_sweep_dangling(self):
        n = build_simple()
        n.add_gate("dead", GateType.OR, ["a", "b"])
        n.add_gate("dead2", GateType.NOT, ["dead"])
        assert n.sweep_dangling() == 2
        assert "dead" not in n and "dead2" not in n

    def test_sweep_keeps_inputs(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("unused")
        n.add_gate("y", GateType.BUF, ["a"])
        n.add_output("y")
        n.sweep_dangling()
        assert "unused" in n


class TestCopyCompose:
    def test_copy_is_deep(self):
        n = build_simple()
        dup = n.copy()
        dup.gate("g1").fanins[0] = "b"
        assert n.gate("g1").fanins[0] == "a"

    def test_import_netlist(self):
        host = Netlist("host")
        host.add_input("p")
        host.add_input("q")
        sub = build_simple()
        rename = host.import_netlist(sub, "u0_", {"a": "p", "b": "q"})
        assert rename["g2"] == "u0_g2"
        assert host.gate("u0_g1").fanins == ["p", "q"]

    def test_import_unbound_input_raises(self):
        host = Netlist("host")
        host.add_input("p")
        with pytest.raises(NetlistError):
            host.import_netlist(build_simple(), "u_", {"a": "p"})

    def test_cone_extract(self):
        n = c17()
        cone = cone_extract(n, "G22")
        assert cone.outputs == ["G22"]
        assert "G19" not in cone
        cone.validate()

    def test_repr(self):
        assert "c17" in repr(c17())
