"""CI gate: the service job-registry static audit, run as a tier-1 test.

Mirrors ``tests/test_check_passes.py`` — the audit is importable for
in-process checks and runnable as a script with exit-code semantics.
"""

import importlib.util
import subprocess
import sys
from pathlib import Path

import test_service_scheduler  # noqa: F401  registers the t-* job types

REPO_ROOT = Path(__file__).resolve().parent.parent


def load_check_jobs():
    spec = importlib.util.spec_from_file_location(
        "check_jobs", REPO_ROOT / "scripts" / "check_jobs.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestJobRegistryAudit:
    def test_registry_is_clean(self):
        # Includes the fault-injection job types the scheduler tests
        # register: even process-hostile test jobs must ship auditable
        # specs.
        assert load_check_jobs().audit() == []

    def test_audit_catches_unpicklable_and_undocumented(self):
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import JobType

        check_jobs = load_check_jobs()

        def lambda_like(params, ctx):
            return None

        lambda_like.__qualname__ = "make.<locals>.lambda_like"
        jobs_mod._JOB_TYPES["t-bad-audit"] = JobType(
            "t-bad-audit", lambda_like, {})
        try:
            problems = "\n".join(check_jobs.audit())
        finally:
            del jobs_mod._JOB_TYPES["t-bad-audit"]
        assert "t-bad-audit" in problems
        assert "docstring" in problems
        assert "no sample_params" in problems
        assert check_jobs.audit() == []   # cleanup verified

    def test_audit_catches_non_json_sample_params(self):
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import JobType

        check_jobs = load_check_jobs()

        def documented(params, ctx):
            """Documented but with an unserialisable sample."""
            return None

        jobs_mod._JOB_TYPES["t-bad-params"] = JobType(
            "t-bad-params", documented, {"fn": object()})
        try:
            problems = "\n".join(check_jobs.audit())
        finally:
            del jobs_mod._JOB_TYPES["t-bad-params"]
        assert "t-bad-params" in problems
        assert "JSON" in problems

    def test_audit_catches_unportable_sample_result(self):
        # A result that cannot pickle or JSON-serialise would smuggle
        # a process-local handle out of a warm worker.
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import JobType

        check_jobs = load_check_jobs()

        def documented(params, ctx):
            """Documented, but declares a handle-bearing result."""
            return None

        jobs_mod._JOB_TYPES["t-bad-result"] = JobType(
            "t-bad-result", documented, {"n": 1},
            sample_result={"engine": object()})
        try:
            problems = "\n".join(check_jobs.audit())
        finally:
            del jobs_mod._JOB_TYPES["t-bad-result"]
        assert "t-bad-result" in problems
        assert "sample_result is not JSON-able" in problems
        assert check_jobs.audit() == []

    def test_audit_catches_missing_sample_result(self):
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import JobType

        check_jobs = load_check_jobs()

        def documented(params, ctx):
            """Documented, but declares no result shape."""
            return None

        jobs_mod._JOB_TYPES["t-no-result"] = JobType(
            "t-no-result", documented, {"n": 1})
        try:
            problems = "\n".join(check_jobs.audit())
        finally:
            del jobs_mod._JOB_TYPES["t-no-result"]
        assert "t-no-result: no sample_result declared" in problems

    def test_audit_catches_closure_capture(self):
        # A warm worker runs many jobs; captured mutable state would
        # make results depend on execution history.
        from repro.service import jobs as jobs_mod
        from repro.service.jobs import JobType

        check_jobs = load_check_jobs()
        state = {"calls": 0}

        def capturing(params, ctx):
            """Documented, but drags closure state into the worker."""
            state["calls"] += 1
            return {"calls": state["calls"]}

        jobs_mod._JOB_TYPES["t-closure"] = JobType(
            "t-closure", capturing, {"n": 1},
            sample_result={"calls": 1})
        try:
            problems = "\n".join(check_jobs.audit())
        finally:
            del jobs_mod._JOB_TYPES["t-closure"]
        assert "t-closure" in problems
        assert "captures closure state" in problems

    def test_script_exits_zero_on_clean_registry(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "scripts" /
                                 "check_jobs.py")],
            capture_output=True, text=True, cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "picklable and hash-stable" in proc.stdout
