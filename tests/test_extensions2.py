"""Tests for Anti-SAT locking, sequential leakage, and the risk register."""

import random

import numpy as np
import pytest

from repro.core import (
    CompositionEngine,
    RiskRegister,
    RiskEntry,
    Severity,
    ThreatVector,
    duplication_countermeasure,
    masked_and_design,
    parity_countermeasure,
    register_from_composition,
)
from repro.formal import check_equivalence
from repro.ip import (
    antisat_lock,
    apply_key,
    attack_locked_circuit,
    lock_xor,
    verify_recovered_key,
)
from repro.netlist import GateType, Netlist, random_circuit
from repro.sca import sequential_leakage_traces, sequential_power_trace


class TestAntiSat:
    def test_correct_key_restores_function(self):
        base = random_circuit(8, 60, 3, seed=4)
        locked = antisat_lock(base, width=4, seed=4)
        assert check_equivalence(apply_key(locked), base).equivalent

    def test_any_equal_key_pair_works(self):
        base = random_circuit(8, 60, 3, seed=5)
        locked = antisat_lock(base, width=3, seed=5)
        # K1 == K2 == arbitrary value is also functionally correct.
        other = {}
        for i in range(3):
            other[f"keyin{i}"] = 1
            other[f"keyin{3 + i}"] = 1
        assert check_equivalence(apply_key(locked, other),
                                 base).equivalent

    def test_unequal_keys_corrupt(self):
        base = random_circuit(8, 60, 3, seed=6)
        locked = antisat_lock(base, width=3, seed=6)
        wrong = dict(locked.key)
        wrong["keyin0"] ^= 1  # K1 != K2 now
        assert not check_equivalence(apply_key(locked, wrong),
                                     base).equivalent

    def test_sat_attack_effort_scales_exponentially(self):
        base = random_circuit(8, 60, 3, seed=4)
        iterations = {}
        for width in (3, 4, 5):
            locked = antisat_lock(base, width=width, seed=4)
            result = attack_locked_circuit(locked, max_iterations=200)
            iterations[width] = result.iterations
            if result.success:
                assert verify_recovered_key(locked, result.recovered_key)
        # ~2^width growth: each step roughly doubles
        assert iterations[4] >= 1.5 * iterations[3]
        assert iterations[5] >= 1.5 * iterations[4]

    def test_more_resilient_than_epic_at_equal_bits(self):
        base = random_circuit(8, 60, 3, seed=7)
        antisat = antisat_lock(base, width=5, seed=7)   # 10 key bits
        epic = lock_xor(base, 10, seed=7)
        anti_iters = attack_locked_circuit(antisat,
                                           max_iterations=200).iterations
        epic_iters = attack_locked_circuit(epic).iterations
        assert anti_iters > epic_iters

    def test_needs_enough_inputs(self):
        small = Netlist()
        small.add_input("a")
        small.add_gate("y", GateType.BUF, ["a"])
        small.add_output("y")
        with pytest.raises(ValueError):
            antisat_lock(small, width=4)


class TestSequentialLeakage:
    def build_register(self):
        n = Netlist("reg4")
        for i in range(4):
            n.add_input(f"d{i}")
            n.add_gate(f"q{i}", GateType.DFF, [f"d{i}"])
            n.add_output(f"q{i}")
        return n

    def test_hd_counting(self):
        n = self.build_register()
        seq = [
            {f"d{i}": 1 for i in range(4)},   # 0000 -> 1111: HD 4
            {f"d{i}": 1 for i in range(4)},   # 1111 -> 1111: HD 0
            {f"d{i}": 0 for i in range(4)},   # 1111 -> 0000: HD 4
        ]
        trace = sequential_power_trace(n, seq, hd_weight=1.0,
                                       hw_weight=0.0)
        assert list(trace) == [4.0, 0.0, 4.0]

    def test_hw_term(self):
        n = self.build_register()
        seq = [{f"d{i}": 1 for i in range(4)}]
        trace = sequential_power_trace(n, seq, hd_weight=0.0,
                                       hw_weight=1.0)
        assert list(trace) == [4.0]

    def test_batch_shape_and_noise(self):
        n = self.build_register()
        runs = [[{f"d{i}": 1 for i in range(4)}] * 3] * 5
        traces = sequential_leakage_traces(n, runs, noise_sigma=0.5,
                                           seed=1)
        assert traces.shape == (5, 3)
        clean = sequential_leakage_traces(n, runs, noise_sigma=0.0)
        assert not np.allclose(traces, clean)
        assert np.allclose(clean[0], clean[1])

    def test_distinguishes_data(self):
        """HW of loaded data is visible in the first sample."""
        n = self.build_register()
        low = sequential_leakage_traces(
            n, [[{f"d{i}": 0 for i in range(4)}]] * 50,
            noise_sigma=0.1, seed=2)
        high = sequential_leakage_traces(
            n, [[{f"d{i}": 1 for i in range(4)}]] * 50,
            noise_sigma=0.1, seed=3)
        assert high[:, 0].mean() > low[:, 0].mean() + 2.0


class TestRiskRegister:
    def test_parity_composition_is_critical(self):
        engine = CompositionEngine(n_traces=2500, seed=1)
        _, report = engine.compose(masked_and_design(),
                                   [parity_countermeasure()])
        register = register_from_composition("demo", report)
        assert register.worst is Severity.CRITICAL
        sca_entries = register.by_threat(ThreatVector.SIDE_CHANNEL)
        assert any("parity-detect" in e.title for e in sca_entries)
        text = register.render()
        assert "CRITICAL" in text and "residual:" in text

    def test_safe_composition_is_clean(self):
        engine = CompositionEngine(n_traces=2500, seed=2)
        _, report = engine.compose(masked_and_design(),
                                   [duplication_countermeasure()])
        register = register_from_composition("demo", report)
        assert register.worst in (Severity.INFO, Severity.LOW)

    def test_manual_entries(self):
        register = RiskRegister("manual")
        register.add(RiskEntry(
            threat=ThreatVector.TROJAN,
            title="unscreened die area",
            severity=Severity.MEDIUM,
            measured="12 free sites in a 3x3 window",
            residual="sub-variation Trojans unmodeled",
        ))
        assert register.worst is Severity.MEDIUM
        assert "unscreened" in register.render()

    def test_empty_register(self):
        assert RiskRegister("empty").worst is Severity.INFO
