"""Tests for bit-parallel simulation, BENCH I/O, generators, and PPA."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.netlist import (
    GateType,
    Netlist,
    NetlistError,
    area,
    arrival_times,
    c17,
    count_by_type,
    critical_path_delay,
    decode_int,
    dumps,
    encode_int,
    equality_comparator,
    exhaustive_truth_table,
    from_truth_table,
    from_truth_tables,
    loads,
    output_values,
    pack_patterns,
    ppa_report,
    parity_tree,
    random_circuit,
    random_stimulus,
    ripple_carry_adder,
    run_sequential,
    simulate,
    step_sequential,
    toggle_counts,
    unpack_word,
)


class TestSimulate:
    def test_missing_input_raises(self):
        n = c17()
        with pytest.raises(NetlistError):
            simulate(n, {"G1": 1})

    def test_c17_known_vector(self):
        n = c17()
        # all inputs 1: G10=NAND(1,1)=0, G11=0, G16=NAND(1,0)=1,
        # G19=NAND(0,1)=1, G22=NAND(0,1)=1, G23=NAND(1,1)=0
        vals = output_values(n, {k: 1 for k in n.inputs})
        assert vals == {"G22": 1, "G23": 0}

    def test_bitparallel_matches_scalar(self):
        n = random_circuit(6, 40, 3, seed=7)
        rng = random.Random(0)
        width = 32
        stim = random_stimulus(n.inputs, width, rng)
        packed = simulate(n, stim, width)
        for p in range(width):
            scalar = simulate(n, {k: (stim[k] >> p) & 1 for k in n.inputs})
            for out in n.outputs:
                assert (packed[out] >> p) & 1 == scalar[out]

    def test_pack_unpack_roundtrip(self):
        patterns = [{"a": 1, "b": 0}, {"a": 0, "b": 1}, {"a": 1, "b": 1}]
        packed = pack_patterns(patterns, ["a", "b"])
        assert unpack_word(packed["a"], 3) == [1, 0, 1]
        assert unpack_word(packed["b"], 3) == [0, 1, 1]

    def test_encode_decode_roundtrip(self):
        bits = [f"b{i}" for i in range(8)]
        for v in (0, 1, 170, 255):
            assert decode_int(encode_int(v, bits), bits) == v

    def test_encode_replicates_across_width(self):
        enc = encode_int(0b101, ["x0", "x1", "x2"], width=4)
        assert enc["x0"] == 0b1111 and enc["x1"] == 0 and enc["x2"] == 0b1111


class TestSequential:
    def build_counter(self):
        """1-bit toggle flop."""
        n = Netlist("tff")
        n.add_input("en")
        n.add_gate("q", GateType.DFF, ["d"])
        n.add_gate("d", GateType.XOR, ["q", "en"])
        n.add_output("q")
        return n

    def test_toggle_flop(self):
        n = self.build_counter()
        outs = run_sequential(n, [{"en": 1}] * 4)
        assert [o["q"] for o in outs] == [0, 1, 0, 1]

    def test_hold_when_disabled(self):
        n = self.build_counter()
        outs = run_sequential(n, [{"en": 1}, {"en": 0}, {"en": 0}])
        assert [o["q"] for o in outs] == [0, 1, 1]

    def test_initial_state(self):
        n = self.build_counter()
        vals, nxt = step_sequential(n, {"en": 0}, {"q": 1})
        assert vals["q"] == 1 and nxt["q"] == 1


class TestExhaustive:
    def test_exhaustive_and(self):
        n = Netlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("y", GateType.AND, ["a", "b"])
        n.add_output("y")
        assert exhaustive_truth_table(n) == [0, 0, 0, 1]

    def test_too_many_inputs(self):
        n = Netlist()
        for i in range(21):
            n.add_input(f"i{i}")
        n.add_gate("y", GateType.AND, [f"i{k}" for k in range(21)])
        n.add_output("y")
        with pytest.raises(NetlistError):
            exhaustive_truth_table(n)


class TestBench:
    def test_roundtrip_c17(self):
        n = c17()
        m = loads(dumps(n))
        assert exhaustive_truth_table(m, "G22") == exhaustive_truth_table(n, "G22")
        assert exhaustive_truth_table(m, "G23") == exhaustive_truth_table(n, "G23")

    def test_parse_comments_and_blanks(self):
        text = """
        # a comment
        INPUT(a)

        INPUT(b)
        OUTPUT(y)
        y = NAND(a, b)  # trailing comment
        """
        n = loads(text)
        assert n.inputs == ["a", "b"]
        assert output_values(n, {"a": 1, "b": 1}) == {"y": 0}

    def test_parse_dff(self):
        n = loads("INPUT(x)\nOUTPUT(q)\nq = DFF(d)\nd = NOT(q)\nzz = AND(x, q)\nOUTPUT(zz)\n")
        assert n.is_sequential

    def test_bad_line_raises(self):
        with pytest.raises(NetlistError):
            loads("y <- AND(a, b)")

    def test_unknown_op_raises(self):
        with pytest.raises(NetlistError):
            loads("INPUT(a)\nOUTPUT(y)\ny = FROB(a)\n")


class TestGenerators:
    @pytest.mark.parametrize("width", [1, 2, 4, 8])
    def test_adder(self, width):
        n = ripple_carry_adder(width)
        hi = 1 << width
        rng = random.Random(width)
        for _ in range(20):
            a, b = rng.randrange(hi), rng.randrange(hi)
            stim = {}
            stim.update(encode_int(a, [f"a{i}" for i in range(width)]))
            stim.update(encode_int(b, [f"b{i}" for i in range(width)]))
            vals = simulate(n, stim)
            got = decode_int(vals, [f"s{i}" for i in range(width)] + ["cout"])
            assert got == a + b

    def test_adder_with_cin(self):
        n = ripple_carry_adder(4, with_cin=True)
        stim = {"cin": 1}
        stim.update(encode_int(7, [f"a{i}" for i in range(4)]))
        stim.update(encode_int(8, [f"b{i}" for i in range(4)]))
        vals = simulate(n, stim)
        assert decode_int(vals, [f"s{i}" for i in range(4)] + ["cout"]) == 16

    def test_equality_comparator(self):
        n = equality_comparator(4)
        for a, b, want in [(5, 5, 1), (5, 6, 0), (0, 0, 1), (15, 14, 0)]:
            stim = {}
            stim.update(encode_int(a, [f"a{i}" for i in range(4)]))
            stim.update(encode_int(b, [f"b{i}" for i in range(4)]))
            assert output_values(n, stim)["eq"] == want

    @pytest.mark.parametrize("balanced", [True, False])
    def test_parity(self, balanced):
        n = parity_tree(5, balanced=balanced)
        tt = exhaustive_truth_table(n)
        assert all(tt[m] == bin(m).count("1") % 2 for m in range(32))

    def test_parity_depth_differs(self):
        assert parity_tree(16, True).depth() < parity_tree(16, False).depth()

    def test_random_circuit_reproducible(self):
        a = random_circuit(8, 60, 4, seed=11)
        b = random_circuit(8, 60, 4, seed=11)
        assert dumps(a) == dumps(b)
        c = random_circuit(8, 60, 4, seed=12)
        assert dumps(a) != dumps(c)

    def test_from_truth_tables_shares_logic(self):
        table = [i & 1 for i in range(16)]
        multi = from_truth_tables(4, {"f": table, "g": table})
        # identical functions share the entire cone
        single = from_truth_tables(4, {"f": table})
        assert multi.num_cells() <= single.num_cells() + 2

    def test_from_truth_table_wrong_size(self):
        with pytest.raises(ValueError):
            from_truth_table(3, [0, 1])


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 5), st.data())
def test_truth_table_synthesis_property(n_inputs, data):
    """from_truth_table() realizes exactly the requested function."""
    size = 1 << n_inputs
    table = data.draw(st.lists(st.integers(0, 1), min_size=size, max_size=size))
    netlist = from_truth_table(n_inputs, table)
    assert exhaustive_truth_table(netlist) == table


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 6), st.integers(0, 63), st.integers(0, 63))
def test_adder_property(width, a, b):
    a &= (1 << width) - 1
    b &= (1 << width) - 1
    n = ripple_carry_adder(width)
    stim = {}
    stim.update(encode_int(a, [f"a{i}" for i in range(width)]))
    stim.update(encode_int(b, [f"b{i}" for i in range(width)]))
    vals = simulate(n, stim)
    assert decode_int(vals, [f"s{i}" for i in range(width)] + ["cout"]) == a + b


class TestMetrics:
    def test_area_positive_and_monotone(self):
        small = ripple_carry_adder(2)
        big = ripple_carry_adder(8)
        assert 0 < area(small) < area(big)

    def test_arrival_monotone_along_paths(self):
        n = c17()
        at = arrival_times(n)
        for g in n.gates.values():
            for fi in g.fanins:
                assert at[g.name] > at[fi]

    def test_critical_path_endpoint(self):
        n = ripple_carry_adder(8)
        at = arrival_times(n)
        assert critical_path_delay(n) == max(at[o] for o in n.outputs)

    def test_count_by_type(self):
        counts = count_by_type(c17())
        assert counts[GateType.NAND] == 6
        assert counts[GateType.INPUT] == 5

    def test_ppa_report_fields(self):
        rep = ppa_report(ripple_carry_adder(4))
        d = rep.as_dict()
        assert d["area"] > 0 and d["delay"] > 0 and d["cell_count"] > 0
        assert rep.flop_count == 0

    def test_toggle_counts(self):
        n = c17()
        stim = [
            {k: 0 for k in n.inputs},
            {k: 1 for k in n.inputs},
            {k: 1 for k in n.inputs},
        ]
        tc = toggle_counts(n, stim)
        assert len(tc) == 2
        assert sum(tc[0].values()) > 0       # everything switched
        assert sum(tc[1].values()) == 0      # steady state
