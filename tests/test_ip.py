"""Tests for IP protection: locking, SAT attack, camouflage, split, PUFs."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.formal import check_equivalence
from repro.ip import (
    ArbiterPuf,
    CamouflagedCircuit,
    MeteringAuthority,
    RingOscillatorPuf,
    apply_key,
    attack_locked_circuit,
    build_feol_view,
    camouflage,
    decamouflage_to_locked,
    embed_watermark,
    evaluate_arbiter_population,
    evaluate_ro_population,
    extract_watermark,
    lift_critical_nets,
    lock_xor,
    model_attack_arbiter,
    overbuild_attack,
    perturb_placement,
    proximity_attack,
    reconstruction_error_rate,
    sfll_hd_lock,
    verify_recovered_key,
    verify_watermark,
    wrong_key_error_rate,
)
from repro.ip.split import high_fanout_nets
from repro.netlist import GateType, random_circuit, ripple_carry_adder
from repro.physical import annealing_placement
from repro.synth import synthesize, to_nand_inv

import numpy as np


class TestLocking:
    def test_correct_key_restores_function(self):
        base = random_circuit(8, 60, 4, seed=2)
        locked = lock_xor(base, 10, seed=3)
        assert check_equivalence(apply_key(locked), base).equivalent

    def test_wrong_key_corrupts(self):
        base = random_circuit(8, 60, 4, seed=2)
        locked = lock_xor(base, 10, seed=3)
        wrong = dict(locked.key)
        first = locked.key_inputs[0]
        wrong[first] ^= 1
        rate = wrong_key_error_rate(locked)
        assert rate > 0.01

    def test_key_inputs_ordering(self):
        locked = lock_xor(random_circuit(6, 40, 2, seed=1), 5, seed=1)
        assert locked.key_inputs == [f"keyin{i}" for i in range(5)]
        assert locked.key_bits == 5
        assert len(locked.key_vector()) == 5

    def test_too_many_key_bits_rejected(self):
        from repro.netlist import c17
        with pytest.raises(ValueError):
            lock_xor(c17(), 100)

    def test_output_names_preserved(self):
        base = random_circuit(6, 40, 3, seed=4)
        locked = lock_xor(base, 8, seed=4)
        assert locked.netlist.outputs == base.outputs


class TestSatAttack:
    def test_breaks_epic_locking(self):
        base = random_circuit(8, 60, 4, seed=5)
        locked = lock_xor(base, 12, seed=5)
        result = attack_locked_circuit(locked)
        assert result.success
        assert verify_recovered_key(locked, result.recovered_key)

    def test_dip_count_reasonable(self):
        base = random_circuit(8, 60, 4, seed=6)
        locked = lock_xor(base, 8, seed=6)
        result = attack_locked_circuit(locked)
        # The attack should need far fewer DIPs than brute force keys.
        assert result.iterations < 2 ** 8

    def test_gives_up_on_budget(self):
        base = random_circuit(6, 40, 2, seed=7)
        sf = sfll_hd_lock(base, base.outputs[0], h=0, seed=7)
        result = attack_locked_circuit(sf.locked, max_iterations=2)
        assert result.gave_up or result.iterations <= 2

    def test_recovered_key_may_differ_but_equivalent(self):
        base = random_circuit(7, 50, 3, seed=8)
        locked = lock_xor(base, 10, seed=8)
        result = attack_locked_circuit(locked)
        assert result.success
        # functional correctness is the criterion, not bit equality
        assert verify_recovered_key(locked, result.recovered_key)


class TestSfll:
    def test_correct_key_restores(self):
        base = random_circuit(6, 40, 2, seed=9)
        sf = sfll_hd_lock(base, base.outputs[0], h=0, seed=9)
        assert check_equivalence(apply_key(sf.locked), base).equivalent

    def test_wrong_key_corrupts_sparsely(self):
        base = random_circuit(6, 40, 2, seed=10)
        sf = sfll_hd_lock(base, base.outputs[0], h=0, seed=10)
        wrong = dict(sf.locked.key)
        wrong[sf.locked.key_inputs[0]] ^= 1
        rate = wrong_key_error_rate(sf.locked, trials=16, vectors=64)
        assert 0 < rate < 0.2  # low corruption: SFLL's signature

    def test_more_sat_resilient_than_epic(self):
        base = random_circuit(5, 30, 2, seed=11)
        epic = lock_xor(base, 5, seed=11)
        sf = sfll_hd_lock(base, base.outputs[0], h=0,
                          n_protect_bits=5, seed=11)
        epic_iters = attack_locked_circuit(epic).iterations
        sfll_iters = attack_locked_circuit(
            sf.locked, max_iterations=80).iterations
        assert sfll_iters > epic_iters

    def test_hd_one_variant(self):
        base = random_circuit(5, 30, 2, seed=12)
        sf = sfll_hd_lock(base, base.outputs[0], h=1,
                          n_protect_bits=4, seed=12)
        assert check_equivalence(apply_key(sf.locked), base).equivalent


class TestCamouflage:
    def build(self, seed=13):
        base = random_circuit(8, 60, 3, seed=seed)
        to_nand_inv(base)
        return base, camouflage(base, 5, seed=seed)

    def test_attacker_view_hides_functions(self):
        base, camo = self.build()
        view = camo.attacker_view()
        for cell in camo.camo_cells:
            assert view.gates[cell].gate_type is GateType.NAND

    def test_reduction_to_locking_correct_key(self):
        base, camo = self.build()
        locked = decamouflage_to_locked(camo)
        assert check_equivalence(apply_key(locked), base).equivalent

    def test_sat_attack_decamouflages(self):
        base, camo = self.build(seed=14)
        locked = decamouflage_to_locked(camo)
        result = attack_locked_circuit(locked)
        assert result.success
        assert verify_recovered_key(locked, result.recovered_key)

    def test_too_many_cells_rejected(self):
        base = random_circuit(5, 20, 2, seed=15)
        with pytest.raises(ValueError):
            camouflage(base, 500)


class TestSplitManufacturing:
    def setup_method(self):
        self.netlist = ripple_carry_adder(8)
        self.placement = annealing_placement(
            self.netlist, iterations=5000, seed=2).placement

    def test_via_attack_beats_cell_attack(self):
        view = build_feol_view(self.netlist, self.placement, split_layer=1)
        via = proximity_attack(view, mode="via")
        cell = proximity_attack(view, mode="cell")
        assert via.ccr > cell.ccr

    def test_undefended_ccr_high(self):
        view = build_feol_view(self.netlist, self.placement, split_layer=1)
        assert proximity_attack(view).ccr > 0.6

    def test_lifting_reduces_ccr(self):
        naive = proximity_attack(build_feol_view(
            self.netlist, self.placement, split_layer=1)).ccr
        lifted = lift_critical_nets(
            self.netlist, high_fanout_nets(self.netlist, 25))
        defended = proximity_attack(build_feol_view(
            self.netlist, self.placement, split_layer=1,
            lifted=lifted)).ccr
        assert defended < naive

    def test_perturbation_reduces_cell_ccr(self):
        base_view = build_feol_view(self.netlist, self.placement,
                                    split_layer=0)
        base_ccr = proximity_attack(base_view, mode="cell").ccr
        perturbed = perturb_placement(self.placement, amount=6,
                                      fraction=0.6, seed=3)
        pert_view = build_feol_view(self.netlist, perturbed, split_layer=0)
        pert_ccr = proximity_attack(pert_view, mode="cell").ccr
        assert pert_ccr < base_ccr

    def test_reconstruction_error(self):
        view = build_feol_view(self.netlist, self.placement, split_layer=1)
        result = proximity_attack(view)
        error = reconstruction_error_rate(view, result)
        assert 0.0 <= error <= 1.0

    def test_unknown_lift_net_rejected(self):
        with pytest.raises(ValueError):
            lift_critical_nets(self.netlist, ["not_a_net"])

    def test_higher_split_hides_fewer(self):
        low = build_feol_view(self.netlist, self.placement, split_layer=1)
        high = build_feol_view(self.netlist, self.placement, split_layer=4)
        assert len(high.open_sinks) <= len(low.open_sinks)


class TestPuf:
    def test_arbiter_metrics_in_range(self):
        metrics = evaluate_arbiter_population(
            n_chips=8, n_challenges=150, n_repeats=3)
        assert 0.35 < metrics.uniformity < 0.65
        assert metrics.reliability > 0.9
        assert 0.35 < metrics.uniqueness < 0.65

    def test_response_deterministic_without_noise(self):
        puf = ArbiterPuf(32, seed=1)
        rng = np.random.default_rng(0)
        challenges = rng.integers(0, 2, (50, 32))
        assert (puf.respond(challenges) == puf.respond(challenges)).all()

    def test_noise_causes_some_flips(self):
        puf = ArbiterPuf(32, seed=2)
        rng = np.random.default_rng(1)
        challenges = rng.integers(0, 2, (500, 32))
        clean = puf.respond(challenges)
        noisy = puf.respond(challenges, noisy=True, seed=3)
        flips = int(np.sum(clean != noisy))
        assert 0 <= flips < 100  # reliable but not perfect

    def test_modeling_attack_succeeds(self):
        accuracy = model_attack_arbiter(ArbiterPuf(32, seed=4),
                                        n_train=3000)
        assert accuracy > 0.9  # bare arbiter PUFs are clonable

    def test_ro_metrics(self):
        metrics = evaluate_ro_population(n_chips=8, n_rings=32)
        assert 0.3 < metrics.uniqueness < 0.7
        assert metrics.reliability > 0.9

    def test_single_challenge_shape(self):
        puf = ArbiterPuf(16, seed=5)
        response = puf.respond(np.zeros(16, dtype=int))
        assert response.shape == (1,)


class TestWatermark:
    def test_embed_extract_roundtrip(self):
        netlist = random_circuit(8, 80, 4, seed=30)
        golden = {o: None for o in netlist.outputs}
        from repro.netlist import exhaustive_truth_table
        golden = {o: exhaustive_truth_table(netlist, o)
                  for o in netlist.outputs}
        embed_watermark(netlist, "acme-ip", n_bits=12)
        # function unchanged
        for out, table in golden.items():
            assert exhaustive_truth_table(netlist, out) == table
        assert verify_watermark(netlist, "acme-ip", 12)
        assert not verify_watermark(netlist, "mallory", 12)

    def test_resynthesis_destroys_watermark(self):
        netlist = random_circuit(8, 80, 4, seed=31)
        embed_watermark(netlist, "acme-ip", n_bits=12)
        resynthesized = synthesize(netlist)
        assert extract_watermark(resynthesized, 12) is None

    def test_not_enough_sites(self):
        from repro.netlist import c17
        with pytest.raises(ValueError):
            embed_watermark(c17(), "sig", n_bits=100)


class TestMetering:
    def test_activation_protocol(self):
        authority = MeteringAuthority()
        chips = authority.fabricate(2, seed=40)
        assert authority.activate(chips[0])
        assert chips[0].compute(7) is not None
        assert chips[1].compute(7) is None  # never activated

    def test_overbuild_replay_fails(self):
        authority = MeteringAuthority()
        chips = authority.fabricate(2, seed=41)
        authority.activate(chips[0])
        assert not overbuild_attack(authority, chips[0], chips[1])
        assert chips[1].failed_attempts > 0

    def test_chip_ids_unique(self):
        authority = MeteringAuthority()
        chips = authority.fabricate(4, seed=42)
        ids = {chip.chip_id() for chip in chips}
        assert len(ids) == 4


@settings(max_examples=8, deadline=None)
@given(st.integers(0, 500), st.integers(2, 10))
def test_locking_equivalence_property(seed, bits):
    from hypothesis import assume
    base = random_circuit(6, 40, 3, seed=seed)
    try:
        locked = lock_xor(base, bits, seed=seed)
    except ValueError:
        # Not enough live internal nets for that many key gates.
        assume(False)
        return
    assert check_equivalence(apply_key(locked), base).equivalent


class TestSplitWithRoutedGeometry:
    """The FEOL view consumes real routed geometry when supplied; the
    heuristic path stays bit-identical to the pre-router behavior."""

    # Pinned outputs of the router-less (heuristic) flow.  These MUST
    # NOT change: routing integration is opt-in via the ``routing``
    # parameter, and the default path must stay bit-identical.
    RCA8_WIRES = 87
    RCA8_SIG = "ba1b4b99c1b364b7"
    RCA8_VIA_CCR = 0.8333333333333334
    RCA8_CELL_CCR = 0.0
    C17_WIRES = 12
    C17_SIG = "3cf1a616c981d0fe"

    @staticmethod
    def _wire_sig(wires):
        import hashlib
        import json

        data = sorted((w.driver, w.sink, w.length, w.layer)
                      for w in wires)
        return hashlib.sha256(
            json.dumps(data).encode()).hexdigest()[:16]

    def test_heuristic_path_pinned_rca8(self):
        from repro.physical import assign_layers

        n = ripple_carry_adder(8)
        p = annealing_placement(n, iterations=3000, seed=2).placement
        wires = assign_layers(n, p)
        assert len(wires) == self.RCA8_WIRES
        assert self._wire_sig(wires) == self.RCA8_SIG
        view = build_feol_view(n, p, split_layer=1)
        assert proximity_attack(view, mode="via").ccr == self.RCA8_VIA_CCR
        assert proximity_attack(view, mode="cell").ccr == self.RCA8_CELL_CCR

    def test_heuristic_path_pinned_c17(self):
        from repro.netlist import c17
        from repro.physical import assign_layers

        n = c17()
        p = annealing_placement(n, iterations=3000, seed=1).placement
        wires = assign_layers(n, p)
        assert len(wires) == self.C17_WIRES
        assert self._wire_sig(wires) == self.C17_SIG

    def test_routed_layers_reflect_real_geometry(self):
        from repro.physical import assign_layers, maze_route

        n = ripple_carry_adder(8)
        p = annealing_placement(n, iterations=3000, seed=2).placement
        layout = maze_route(n, p)
        wires = assign_layers(n, p, routing=layout)
        assert len(wires) == self.RCA8_WIRES
        scale = layout.scale
        for w in wires:
            routed = layout.nets.get(w.driver)
            if routed is None:
                continue
            sx, sy = p.positions[w.sink]
            pin = (sx * scale, sy * scale)
            if pin in routed.branches:
                assert w.layer == routed.branch_max_layer(pin)
                assert w.length == routed.branch_length(pin) / scale

    def test_routed_via_hints_are_exact_crossings(self):
        from repro.physical import maze_route

        n = ripple_carry_adder(8)
        p = annealing_placement(n, iterations=3000, seed=2).placement
        layout = maze_route(n, p)
        view = build_feol_view(n, p, split_layer=1, routing=layout)
        # Deterministic: no jitter in routed mode.
        again = build_feol_view(n, p, split_layer=1, routing=layout)
        assert view.sink_vias == again.sink_vias
        assert view.driver_vias == again.driver_vias
        result = proximity_attack(view, mode="via")
        assert 0.0 <= result.ccr <= 1.0
