"""Fault-injection sensors on the layout.

Physical-synthesis stage countermeasure of Table II ([9], [26]):
distribute sensors over the die so every security-critical cell lies
within some sensor's detection radius, modeling laser/EM detectors.
The module evaluates coverage for a given placement and greedily places
sensors to close gaps — the "embedding sensors" task the paper assigns
to PnR tools.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

Point = Tuple[float, float]


@dataclass
class Sensor:
    """One FIA sensor instance at a die location."""

    x: float
    y: float
    radius: float

    def covers(self, point: Point) -> bool:
        """Is ``point`` inside this sensor's detection radius?"""
        return math.hypot(self.x - point[0], self.y - point[1]) <= self.radius


@dataclass
class SensorPlan:
    """A set of sensors plus the cells they are meant to guard."""

    sensors: List[Sensor] = field(default_factory=list)
    critical_cells: Dict[str, Point] = field(default_factory=dict)

    def coverage(self) -> float:
        """Fraction of critical cells inside at least one sensor radius."""
        if not self.critical_cells:
            return 1.0
        covered = sum(
            1 for p in self.critical_cells.values()
            if any(s.covers(p) for s in self.sensors)
        )
        return covered / len(self.critical_cells)

    def uncovered(self) -> List[str]:
        """Critical cells outside every sensor's radius."""
        return [
            name for name, p in self.critical_cells.items()
            if not any(s.covers(p) for s in self.sensors)
        ]

    def detects(self, point: Point) -> bool:
        """Would an injection aimed at ``point`` trip a sensor?"""
        return any(s.covers(point) for s in self.sensors)


def greedy_sensor_placement(critical_cells: Mapping[str, Point],
                            radius: float,
                            max_sensors: Optional[int] = None) -> SensorPlan:
    """Greedy disk cover: repeatedly place a sensor on the cell position
    covering the most still-uncovered critical cells.

    Disk cover is NP-hard; the greedy heuristic gives the familiar
    (1 - 1/e) guarantee and is what a PnR security pass would run.
    """
    plan = SensorPlan(critical_cells=dict(critical_cells))
    remaining: Set[str] = set(critical_cells)
    budget = max_sensors if max_sensors is not None else len(critical_cells)
    while remaining and len(plan.sensors) < budget:
        best_pos: Optional[Point] = None
        best_cover: Set[str] = set()
        for candidate in critical_cells.values():
            covered = {
                name for name in remaining
                if math.hypot(candidate[0] - critical_cells[name][0],
                              candidate[1] - critical_cells[name][1])
                <= radius
            }
            if len(covered) > len(best_cover):
                best_cover = covered
                best_pos = candidate
        if best_pos is None:
            break
        plan.sensors.append(Sensor(best_pos[0], best_pos[1], radius))
        remaining -= best_cover
    return plan


def injection_campaign(plan: SensorPlan,
                       targets: Sequence[Point]) -> Dict[str, float]:
    """Simulate aimed injections; report detection statistics."""
    detected = sum(1 for p in targets if plan.detects(p))
    total = len(targets)
    return {
        "attempts": float(total),
        "detected": float(detected),
        "detection_rate": detected / total if total else 1.0,
    }
