"""Automatic fault analysis: propagation and detection coverage.

Implements the "red team vs. blue team" evaluation style of the paper's
Sec. III: inject every fault, and ask (i) can it corrupt an output, and
(ii) does the countermeasure's alarm fire whenever it does?  Both a
fast simulation campaign and an exhaustive SAT-based proof are
provided — the formal variant is the paper's [32]-style robustness
analysis, able to *demonstrate the absence* of undetected faults.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..formal import CircuitEncoder
from ..netlist import (
    GateType, Netlist, VariantFamily, VariantSpec, get_compiled,
    random_stimulus,
)
from .injector import inject_fault
from .models import Fault, FaultKind

#: Total packed-word budget (faults-per-family x vectors) for the
#: batched campaign path.  Large on purpose: the batched win comes from
#: amortizing per-gate dispatch over many variants per word.
_FAMILY_CHUNK_BITS = 1 << 15

#: Below this many faults the event-driven serial path (which only
#: touches each fault's combinational cone) wins; above it, whole-family
#: evaluation amortizes better.
_BATCH_THRESHOLD = 8


@dataclass
class FaultOutcome:
    """Campaign result for one fault."""

    fault: Fault
    propagated: bool       # some output differed on some tested vector
    detected: bool         # alarm fired on every corrupting vector
    silent_corruption: bool  # some vector corrupted outputs w/o alarm


@dataclass
class CampaignReport:
    """Aggregate results of a fault campaign."""

    outcomes: List[FaultOutcome] = field(default_factory=list)

    @property
    def n_faults(self) -> int:
        return len(self.outcomes)

    @property
    def propagating(self) -> int:
        return sum(1 for o in self.outcomes if o.propagated)

    @property
    def detected(self) -> int:
        return sum(1 for o in self.outcomes if o.propagated and o.detected)

    @property
    def silent(self) -> int:
        return sum(1 for o in self.outcomes if o.silent_corruption)

    @property
    def coverage(self) -> float:
        """Detected fraction of propagating faults (1.0 if none propagate)."""
        if self.propagating == 0:
            return 1.0
        return self.detected / self.propagating

    def summary(self) -> str:
        """One-line campaign summary for reports."""
        return (
            f"faults={self.n_faults} propagating={self.propagating} "
            f"detected={self.detected} silent={self.silent} "
            f"coverage={self.coverage:.3f}"
        )


def _fault_spec(fault: Fault) -> VariantSpec:
    """The variant delta equivalent to one injected fault."""
    if fault.kind is FaultKind.STUCK_AT_0:
        return VariantSpec(forces={fault.net: 0})
    if fault.kind is FaultKind.STUCK_AT_1:
        return VariantSpec(forces={fault.net: 1})
    if fault.kind is FaultKind.BIT_FLIP:
        return VariantSpec(flips=[fault.net])
    raise ValueError(f"unsupported fault kind {fault.kind}")


def fault_campaign(netlist: Netlist, faults: Sequence[Fault],
                   n_vectors: int = 64,
                   alarm: Optional[str] = None,
                   payload_outputs: Optional[Sequence[str]] = None,
                   seed: int = 0,
                   batch: object = "auto") -> CampaignReport:
    """Random-vector fault simulation campaign.

    ``alarm`` names the detection output (if the design has one);
    ``payload_outputs`` restricts which outputs count as corruption
    (default: all outputs except the alarm).

    Two bit-identical execution strategies share one random stimulus:

    * serial — one fault-free bit-parallel simulation covers all
      vectors, then each fault is propagated event-driven through its
      combinational cone
      (:meth:`~repro.netlist.CompiledNetlist.propagate_force`);
    * batched — faults become variant deltas of a
      :class:`~repro.netlist.VariantFamily` (stuck-ats as force planes,
      bit-flips as xor planes) and whole chunks of the fault list are
      scored in one packed evaluation alongside a golden variant.

    ``batch`` selects the strategy: ``True``/``False`` force it,
    ``"auto"`` (default) batches once the fault list is large enough to
    amortize full-netlist evaluation over many variants.

    Results match the ``inject_fault``-then-``simulate`` formulation
    exactly, including its name-resolution detail: a BIT_FLIP (or a
    stuck-at on a primary input) interposes a new net between the
    victim and its consumers, so the victim's *own name* keeps its
    healthy value when read as an output or alarm; a stuck-at on an
    internal gate rewrites the gate itself and is visible under its
    own name.
    """
    rng = random.Random(seed)
    width = n_vectors
    stimulus = random_stimulus(netlist.inputs, width, rng)
    compiled = get_compiled(netlist)
    outputs = list(payload_outputs) if payload_outputs else [
        o for o in netlist.outputs if o != alarm
    ]
    output_indices = [compiled.index[o] for o in outputs]
    alarm_index = compiled.index[alarm] if alarm is not None else None
    gates = netlist.gates
    mask = (1 << width) - 1
    report = CampaignReport()
    if batch is True or (batch == "auto" and len(faults) >= _BATCH_THRESHOLD):
        chunk = max(1, _FAMILY_CHUNK_BITS // max(1, width))
        for start in range(0, len(faults), chunk):
            group = faults[start:start + chunk]
            # Variant 0 is the golden (fault-free) design; fault k of
            # the group occupies slice k+1 of every packed word.
            family = VariantFamily(
                netlist, [VariantSpec()] + [_fault_spec(f) for f in group])
            words = family.eval_words(stimulus, width)
            for k, fault in enumerate(group, start=1):
                site = compiled.index[fault.net]
                shift = k * width
                site_visible = (
                    fault.kind is not FaultKind.BIT_FLIP
                    and gates[fault.net].gate_type is not GateType.INPUT)
                corrupt = 0
                for o in output_indices:
                    if o == site and not site_visible:
                        continue
                    word = words[o]
                    corrupt |= ((word >> shift) ^ word) & mask
                propagated = corrupt != 0
                if alarm is not None:
                    word = words[alarm_index]
                    if alarm_index == site and not site_visible:
                        alarm_word = word & mask
                    else:
                        alarm_word = (word >> shift) & mask
                    undetected_corruption = corrupt & ~alarm_word & mask
                    detected = propagated and undetected_corruption == 0
                    silent = undetected_corruption != 0
                else:
                    detected = False
                    silent = propagated
                report.outcomes.append(
                    FaultOutcome(fault, propagated, detected, silent)
                )
        return report
    golden = compiled.eval_words(stimulus, width)
    for fault in faults:
        site = compiled.index[fault.net]
        if fault.kind is FaultKind.STUCK_AT_0:
            forced = 0
        elif fault.kind is FaultKind.STUCK_AT_1:
            forced = mask
        elif fault.kind is FaultKind.BIT_FLIP:
            forced = ~golden[site] & mask
        else:
            raise ValueError(f"unsupported fault kind {fault.kind}")
        site_visible = (fault.kind is not FaultKind.BIT_FLIP
                        and gates[fault.net].gate_type is not GateType.INPUT)
        changed = compiled.propagate_force(golden, site, forced, width)
        corrupt = 0
        for o in output_indices:
            if o == site and not site_visible:
                continue
            new = changed.get(o)
            if new is not None:
                corrupt |= (golden[o] ^ new) & mask
        propagated = corrupt != 0
        if alarm is not None:
            if alarm_index == site and not site_visible:
                alarm_word = golden[alarm_index]
            else:
                alarm_word = changed.get(alarm_index, golden[alarm_index])
            undetected_corruption = corrupt & ~alarm_word & mask
            detected = propagated and undetected_corruption == 0
            silent = undetected_corruption != 0
        else:
            detected = False
            silent = propagated
        report.outcomes.append(
            FaultOutcome(fault, propagated, detected, silent)
        )
    return report


@dataclass
class FormalFaultResult:
    """SAT verdict for one fault."""

    fault: Fault
    provably_detected: bool
    witness: Optional[Dict[str, int]] = None  # silent-corruption input


def prove_fault_detected(netlist: Netlist, fault: Fault, alarm: str,
                         payload_outputs: Optional[Sequence[str]] = None,
                         ) -> FormalFaultResult:
    """Prove no input lets ``fault`` corrupt outputs without the alarm.

    Builds golden and faulty copies over shared inputs and asks SAT for
    an input where some payload output differs while the faulty copy's
    alarm stays low.  UNSAT = the detector provably catches this fault.
    """
    faulty = inject_fault(netlist, fault)
    outputs = list(payload_outputs) if payload_outputs else [
        o for o in netlist.outputs if o != alarm
    ]
    enc = CircuitEncoder()
    gold_vars = enc.encode(netlist)
    shared = {name: gold_vars[name] for name in netlist.inputs
              if name in faulty.gates}
    fault_vars = enc.encode(faulty, bind=shared)
    diffs = [enc.xor_of(gold_vars[o], fault_vars[o]) for o in outputs]
    enc.assert_equal(enc.or_of(diffs), 1)
    enc.assert_equal(fault_vars[alarm], 0)
    if not enc.solver.solve():
        return FormalFaultResult(fault, True)
    witness = {
        name: enc.solver.model_value(gold_vars[name])
        for name in netlist.inputs
    }
    return FormalFaultResult(fault, False, witness=witness)


def formal_coverage(netlist: Netlist, faults: Sequence[Fault], alarm: str,
                    payload_outputs: Optional[Sequence[str]] = None,
                    ) -> Tuple[float, List[FormalFaultResult]]:
    """Exhaustive formal detection coverage over a fault list.

    Faults that cannot propagate at all count as covered (they are
    harmless).  Returns (coverage, per-fault results for the misses).
    """
    missed: List[FormalFaultResult] = []
    covered = 0
    for fault in faults:
        result = prove_fault_detected(netlist, fault, alarm,
                                      payload_outputs)
        if result.provably_detected:
            covered += 1
        else:
            missed.append(result)
    total = len(faults)
    return (covered / total if total else 1.0), missed
