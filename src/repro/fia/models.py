"""Fault models for injection campaigns.

The paper (Sec. II-A.2, III-B) distinguishes direct physical injection
(laser, EM) from architectural faults, and stresses that security
analysis must consider the *attacker-chosen* fault, not only random
ones.  A :class:`Fault` names a net and an effect; campaigns enumerate
or sample these over a netlist.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import List, Sequence

from ..netlist import GateType, Netlist


class FaultKind(enum.Enum):
    """Supported netlist-level fault effects."""

    STUCK_AT_0 = "sa0"
    STUCK_AT_1 = "sa1"
    BIT_FLIP = "flip"      # transient inversion of the net value


@dataclass(frozen=True)
class Fault:
    """One fault site: an effect applied to the named net."""

    net: str
    kind: FaultKind

    def describe(self) -> str:
        """Short human-readable fault label (e.g. ``sa0@G16``)."""
        return f"{self.kind.value}@{self.net}"


def enumerate_faults(netlist: Netlist,
                     kinds: Sequence[FaultKind] = (
                         FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1),
                     include_inputs: bool = True) -> List[Fault]:
    """All single faults of the given kinds over the netlist's nets."""
    faults: List[Fault] = []
    for g in netlist.gates.values():
        if g.gate_type is GateType.INPUT and not include_inputs:
            continue
        if g.gate_type in (GateType.CONST0, GateType.CONST1):
            continue
        for kind in kinds:
            faults.append(Fault(g.name, kind))
    return faults


def sample_faults(netlist: Netlist, count: int,
                  kinds: Sequence[FaultKind] = (FaultKind.BIT_FLIP,),
                  seed: int = 0) -> List[Fault]:
    """Uniform random sample of fault sites (a natural-fault scenario)."""
    rng = random.Random(seed)
    population = enumerate_faults(netlist, kinds)
    if count >= len(population):
        return population
    return rng.sample(population, count)
