"""Detection-response countermeasures against DFA.

Two classical blue-team responses wrapped around AES (paper refs [10],
[18]): *detect-and-suppress* (temporal redundancy; mute the output on
mismatch) and the *infective* countermeasure (never branch on
detection — instead amplify any fault into a random-looking ciphertext,
so the faulty output carries no exploitable differential).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..crypto import AES128


class DetectAndSuppressAES:
    """Temporal redundancy: encrypt twice, output only when equal.

    ``encrypt_with_fault`` models an attacker faulting the *first*
    computation; the redundant computation is clean, so any effective
    fault is detected and the output suppressed (returns None).
    """

    def __init__(self, key: Sequence[int]) -> None:
        self._aes = AES128(key)
        self.detected_faults = 0

    def encrypt(self, plaintext: Sequence[int]) -> List[int]:
        """Fault-free encryption (single computation)."""
        return self._aes.encrypt(plaintext)

    def encrypt_with_fault(self, plaintext: Sequence[int],
                           byte_index: int, fault_value: int,
                           round_index: int = 10) -> Optional[List[int]]:
        """Faulted encryption; returns None when detection suppresses."""
        faulty = self._aes.encrypt_with_fault(
            plaintext, round_index=round_index, byte_index=byte_index,
            fault_value=fault_value)
        redundant = self._aes.encrypt(plaintext)
        if faulty != redundant:
            self.detected_faults += 1
            return None
        return faulty


class InfectiveAES:
    """Infective countermeasure: faults randomize the ciphertext.

    On mismatch between the two computations, the output is *infected*:
    each differing byte is replaced by fresh randomness, destroying the
    single-byte differential structure DFA needs while never exposing a
    detection branch an attacker could glitch over.
    """

    def __init__(self, key: Sequence[int], seed: int = 0) -> None:
        self._aes = AES128(key)
        self._rng = random.Random(seed)
        self.infections = 0

    def encrypt(self, plaintext: Sequence[int]) -> List[int]:
        """Fault-free encryption."""
        return self._aes.encrypt(plaintext)

    def encrypt_with_fault(self, plaintext: Sequence[int],
                           byte_index: int, fault_value: int,
                           round_index: int = 10) -> List[int]:
        """Faulted encryption; infected (randomized) on detection."""
        faulty = self._aes.encrypt_with_fault(
            plaintext, round_index=round_index, byte_index=byte_index,
            fault_value=fault_value)
        redundant = self._aes.encrypt(plaintext)
        if faulty == redundant:
            return faulty
        self.infections += 1
        # Infect: every byte of the output becomes random, so the
        # attacker cannot even locate the faulted byte.
        return [self._rng.randrange(256) for _ in range(16)]
