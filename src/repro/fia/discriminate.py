"""Distinguishing natural from malicious faults.

Paper Sec. III-F (ref [59]): a security-aware DFX infrastructure must
respond differently to radiation-induced soft errors (recover and
resume) versus fault *attacks* (re-key or halt) — but first it has to
tell them apart.  Natural faults are rare, spatially and temporally
uniform; attacks cluster on the same target, repeat quickly, and align
with sensitive operations.

:class:`FaultDiscriminator` consumes a stream of detection events and
applies rate / locality / phase heuristics to produce a verdict and the
corresponding response policy.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence


class Verdict(enum.Enum):
    """Classification of an observed fault stream."""

    NATURAL = "natural"
    MALICIOUS = "malicious"


class Response(enum.Enum):
    """Responses per the paper: recovery for nature, re-key for attack."""

    RECOVER_AND_RESUME = "recover"
    REKEY = "rekey"
    DISCONTINUE = "discontinue"


@dataclass(frozen=True)
class FaultEvent:
    """One detected fault: when, where, and in which operation phase."""

    time: float
    location: str            # module/net identifier
    sensitive_phase: bool    # did it hit a crypto-sensitive operation?


@dataclass
class Assessment:
    verdict: Verdict
    response: Response
    score: float             # maliciousness score in [0, 1]
    reasons: List[str] = field(default_factory=list)


class FaultDiscriminator:
    """Heuristic classifier over a sliding window of fault events.

    Tunables mirror the engineering trade-off the paper describes:
    a paranoid threshold re-keys on every cosmic ray (availability
    loss); a lax one lets a patient attacker through.
    """

    def __init__(self, window: float = 1000.0,
                 rate_threshold: float = 3.0,
                 locality_threshold: float = 0.6,
                 phase_threshold: float = 0.7,
                 malicious_score: float = 0.5) -> None:
        self.window = window
        self.rate_threshold = rate_threshold
        self.locality_threshold = locality_threshold
        self.phase_threshold = phase_threshold
        self.malicious_score = malicious_score
        self.events: List[FaultEvent] = []

    def observe(self, event: FaultEvent) -> Assessment:
        """Record an event and (re)assess the stream."""
        self.events.append(event)
        return self.assess(now=event.time)

    def assess(self, now: float) -> Assessment:
        """Classify the recent event window at time ``now``."""
        recent = [e for e in self.events if now - e.time <= self.window]
        reasons: List[str] = []
        score = 0.0
        if not recent:
            return Assessment(Verdict.NATURAL,
                              Response.RECOVER_AND_RESUME, 0.0)
        # Rate: events per window vs expected natural rate.
        if len(recent) >= self.rate_threshold:
            score += 0.4
            reasons.append(
                f"{len(recent)} faults within window (>= "
                f"{self.rate_threshold})"
            )
        # Locality: repeated hits on one location.
        counts: Dict[str, int] = {}
        for e in recent:
            counts[e.location] = counts.get(e.location, 0) + 1
        top_fraction = max(counts.values()) / len(recent)
        if len(recent) >= 2 and top_fraction >= self.locality_threshold:
            score += 0.35
            reasons.append(
                f"{top_fraction:.0%} of recent faults hit one location"
            )
        # Phase alignment: faults timed at sensitive operations.
        phase_fraction = (sum(1 for e in recent if e.sensitive_phase)
                          / len(recent))
        if len(recent) >= 2 and phase_fraction >= self.phase_threshold:
            score += 0.25
            reasons.append(
                f"{phase_fraction:.0%} of recent faults hit sensitive phases"
            )
        if score >= self.malicious_score:
            verdict = Verdict.MALICIOUS
            response = (Response.DISCONTINUE if score >= 0.9
                        else Response.REKEY)
        else:
            verdict = Verdict.NATURAL
            response = Response.RECOVER_AND_RESUME
        return Assessment(verdict, response, min(1.0, score), reasons)


def natural_fault_stream(n_events: int, duration: float,
                         locations: Sequence[str],
                         seed: int = 0) -> List[FaultEvent]:
    """Poisson-like uniform soft-error stream (the benign scenario)."""
    rng = random.Random(seed)
    times = sorted(rng.uniform(0, duration) for _ in range(n_events))
    return [
        FaultEvent(t, rng.choice(list(locations)),
                   sensitive_phase=rng.random() < 0.2)
        for t in times
    ]


def attack_fault_stream(n_events: int, start: float, target: str,
                        interval: float = 50.0,
                        seed: int = 0) -> List[FaultEvent]:
    """Repeated, targeted, phase-aligned injections (the DFA scenario)."""
    rng = random.Random(seed)
    return [
        FaultEvent(start + i * interval + rng.uniform(0, 5), target,
                   sensitive_phase=True)
        for i in range(n_events)
    ]
