"""Error-detecting and error-correcting architectures.

The HLS-stage countermeasures of Table II ([10], [18]): concurrent
error detection by duplication or parity prediction, and error
*correction* by triplication (TMR).  All are netlist transformers that
attach the protection around an arbitrary combinational payload —
letting the composition experiments measure their side effects on SCA
resistance (Sec. IV, ref [61]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist import GateType, Netlist


@dataclass
class ProtectedDesign:
    """A payload wrapped with a detection/correction architecture."""

    netlist: Netlist
    alarm: Optional[str]          # detection output (None for TMR)
    payload_outputs: List[str]    # functional outputs
    scheme: str
    overhead_cells: int           # extra cells vs. the bare payload


def _copy_into(host: Netlist, payload: Netlist, prefix: str) -> Dict[str, str]:
    port_map = {inp: inp for inp in payload.inputs}
    return host.import_netlist(payload, prefix, port_map)


def duplicate_and_compare(payload: Netlist) -> ProtectedDesign:
    """Duplication with comparison: two payload copies, XOR comparator.

    Detects any fault confined to one copy (or the comparator input
    side); the classical high-coverage, 2x-area scheme.
    """
    host = Netlist(payload.name + "_dup")
    for inp in payload.inputs:
        host.add_input(inp)
    main = _copy_into(host, payload, "m_")
    shadow = _copy_into(host, payload, "s_")
    outputs: List[str] = []
    mismatches: List[str] = []
    for out in payload.outputs:
        pub = f"o_{out}"
        host.add_gate(pub, GateType.BUF, [main[out]])
        host.add_output(pub)
        outputs.append(pub)
        mismatches.append(
            host.add(GateType.XOR, [main[out], shadow[out]], prefix="cmp")
        )
    alarm_body = (mismatches[0] if len(mismatches) == 1
                  else host.add(GateType.OR, mismatches, prefix="alrm"))
    host.add_gate("alarm", GateType.BUF, [alarm_body])
    host.add_output("alarm")
    return ProtectedDesign(
        netlist=host, alarm="alarm", payload_outputs=outputs,
        scheme="duplication",
        overhead_cells=host.num_cells() - payload.num_cells(),
    )


def parity_protect(payload: Netlist) -> ProtectedDesign:
    """Parity prediction: a shadow cone predicts the XOR of all outputs.

    Built here as a full shadow copy reduced to its parity (logic
    synthesis would shrink the predictor to just the parity cone); the
    scheme's defining property is that it is blind to *even-weight*
    output errors — the campaign in ``benchmarks/bench_table2.py``
    quantifies exactly that gap versus duplication.
    """
    host = Netlist(payload.name + "_par")
    for inp in payload.inputs:
        host.add_input(inp)
    main = _copy_into(host, payload, "m_")
    predictor = _copy_into(host, payload, "p_")
    outputs: List[str] = []
    for out in payload.outputs:
        pub = f"o_{out}"
        host.add_gate(pub, GateType.BUF, [main[out]])
        host.add_output(pub)
        outputs.append(pub)
    main_outs = [main[o] for o in payload.outputs]
    pred_outs = [predictor[o] for o in payload.outputs]
    if len(main_outs) == 1:
        actual = main_outs[0]
        predicted = pred_outs[0]
    else:
        actual = host.add(GateType.XOR, main_outs, prefix="par_a")
        predicted = host.add(GateType.XOR, pred_outs, prefix="par_p")
    body = host.add(GateType.XOR, [actual, predicted], prefix="alrm")
    host.add_gate("alarm", GateType.BUF, [body])
    host.add_output("alarm")
    return ProtectedDesign(
        netlist=host, alarm="alarm", payload_outputs=outputs,
        scheme="parity",
        overhead_cells=host.num_cells() - payload.num_cells(),
    )


def tmr_protect(payload: Netlist) -> ProtectedDesign:
    """Triple modular redundancy with per-output majority voting.

    Corrects (not merely detects) any single-copy fault; ~3x area.
    An optional disagreement alarm is also emitted so the DFX layer can
    count corrected events (paper Sec. III-F).
    """
    host = Netlist(payload.name + "_tmr")
    for inp in payload.inputs:
        host.add_input(inp)
    copies = [_copy_into(host, payload, f"r{i}_") for i in range(3)]
    outputs: List[str] = []
    disagreements: List[str] = []
    for out in payload.outputs:
        a, b, c = (copies[i][out] for i in range(3))
        ab = host.add(GateType.AND, [a, b], prefix="v")
        ac = host.add(GateType.AND, [a, c], prefix="v")
        bc = host.add(GateType.AND, [b, c], prefix="v")
        voted = host.add(GateType.OR, [ab, ac, bc], prefix="vote")
        pub = f"o_{out}"
        host.add_gate(pub, GateType.BUF, [voted])
        host.add_output(pub)
        outputs.append(pub)
        dis_ab = host.add(GateType.XOR, [a, b], prefix="d")
        dis_ac = host.add(GateType.XOR, [a, c], prefix="d")
        disagreements.append(
            host.add(GateType.OR, [dis_ab, dis_ac], prefix="dis")
        )
    body = (disagreements[0] if len(disagreements) == 1
            else host.add(GateType.OR, disagreements, prefix="alrm"))
    host.add_gate("alarm", GateType.BUF, [body])
    host.add_output("alarm")
    return ProtectedDesign(
        netlist=host, alarm="alarm", payload_outputs=outputs,
        scheme="tmr",
        overhead_cells=host.num_cells() - payload.num_cells(),
    )


def residue_mod3_net(host: Netlist, bits: List[str], prefix: str
                     ) -> Tuple[str, str]:
    """Two-bit mod-3 residue of a bit vector (LSB first).

    Returns nets ``(r0, r1)`` encoding value % 3 in binary.  Built by
    iteratively folding each bit's residue contribution (2^i mod 3
    alternates 1, 2, 1, 2, ...) into a 2-bit accumulator via a small
    mod-3 adder.
    """
    zero = host.add(GateType.CONST0, [], prefix=f"{prefix}z")
    r0, r1 = zero, zero
    for i, bit in enumerate(bits):
        # Contribution of this bit: 1 if i even, 2 if i odd (mod 3).
        if i % 2 == 0:
            c0, c1 = bit, zero
        else:
            c0, c1 = zero, bit
        r0, r1 = _mod3_add(host, r0, r1, c0, c1, f"{prefix}{i}_")
    return r0, r1


def _mod3_add(host: Netlist, a0: str, a1: str, b0: str, b1: str,
              prefix: str) -> Tuple[str, str]:
    """Add two mod-3 residues (00, 01, 10 encodings; 11 never occurs).

    Truth-table derived two-bit modular adder:
    s = (a + b) mod 3 with a, b in {0, 1, 2}.
    """
    # s0 = (a0 & ~b0 & ~b1) | (~a0 & ~a1 & b0) | (a1 & b1)
    na0 = host.add(GateType.NOT, [a0], prefix=prefix + "n")
    na1 = host.add(GateType.NOT, [a1], prefix=prefix + "n")
    nb0 = host.add(GateType.NOT, [b0], prefix=prefix + "n")
    nb1 = host.add(GateType.NOT, [b1], prefix=prefix + "n")
    t1 = host.add(GateType.AND, [a0, nb0, nb1], prefix=prefix + "t")
    t2 = host.add(GateType.AND, [na0, na1, b0], prefix=prefix + "t")
    t3 = host.add(GateType.AND, [a1, b1], prefix=prefix + "t")
    s0 = host.add(GateType.OR, [t1, t2, t3], prefix=prefix + "s0_")
    # s1 = (a1 & ~b0 & ~b1) | (~a0 & ~a1 & b1) | (a0 & b0)
    u1 = host.add(GateType.AND, [a1, nb0, nb1], prefix=prefix + "u")
    u2 = host.add(GateType.AND, [na0, na1, b1], prefix=prefix + "u")
    u3 = host.add(GateType.AND, [a0, b0], prefix=prefix + "u")
    s1 = host.add(GateType.OR, [u1, u2, u3], prefix=prefix + "s1_")
    return s0, s1


def residue_protect_adder(width: int) -> ProtectedDesign:
    """Mod-3 residue-checked ripple-carry adder.

    Checks ``residue(a) + residue(b) == residue(sum)`` — an arithmetic
    code detecting any fault that shifts the sum by a non-multiple of 3,
    at far lower cost than duplication.
    """
    from ..netlist import ripple_carry_adder

    payload = ripple_carry_adder(width)
    host = Netlist(f"rca{width}_res3")
    for inp in payload.inputs:
        host.add_input(inp)
    main = _copy_into(host, payload, "m_")
    outputs: List[str] = []
    for out in payload.outputs:
        pub = f"o_{out}"
        host.add_gate(pub, GateType.BUF, [main[out]])
        host.add_output(pub)
        outputs.append(pub)
    a_bits = [f"a{i}" for i in range(width)]
    b_bits = [f"b{i}" for i in range(width)]
    s_bits = [main[f"s{i}"] for i in range(width)] + [main["cout"]]
    ra0, ra1 = residue_mod3_net(host, a_bits, "ra")
    rb0, rb1 = residue_mod3_net(host, b_bits, "rb")
    rs0, rs1 = residue_mod3_net(host, s_bits, "rs")
    exp0, exp1 = _mod3_add(host, ra0, ra1, rb0, rb1, "re_")
    d0 = host.add(GateType.XOR, [exp0, rs0], prefix="rd")
    d1 = host.add(GateType.XOR, [exp1, rs1], prefix="rd")
    body = host.add(GateType.OR, [d0, d1], prefix="alrm")
    host.add_gate("alarm", GateType.BUF, [body])
    host.add_output("alarm")
    return ProtectedDesign(
        netlist=host, alarm="alarm", payload_outputs=outputs,
        scheme="residue3",
        overhead_cells=host.num_cells() - payload.num_cells(),
    )
