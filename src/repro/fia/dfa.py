"""Differential fault analysis (DFA) on AES-128.

The archetypal fault *attack* of the paper's threat model (Sec. II-A.2):
inject a fault into the state just before the final SubBytes, observe
the ciphertext pair (correct, faulty), and solve the last-round key
byte-by-byte.  With a restricted fault model (e.g. single-bit flips)
each injection leaves only a handful of key candidates; intersecting a
few injections isolates the key uniquely.  The recovered round-10 key
is inverted to the master key via the key schedule.

This module is used both as the red-team evaluation (how many faults
until key loss?) and as the adversary against which the countermeasures
of :mod:`repro.fia.codes` / :mod:`repro.fia.infective` are scored.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..crypto import AES128, INV_SBOX, SHIFT_ROWS, recover_master_key

#: Single-bit fault model: the fault XORs one bit into the state byte.
BIT_FAULTS = tuple(1 << b for b in range(8))


def last_round_candidates(correct_byte: int, faulty_byte: int,
                          fault_set: Sequence[int] = BIT_FAULTS
                          ) -> Set[int]:
    """Key-byte candidates from one (correct, faulty) ciphertext byte.

    A fault ``delta`` before the last SubBytes satisfies
    ``INV_SBOX[c ^ k] ^ INV_SBOX[c* ^ k] = delta``; every key guess
    consistent with some allowed ``delta`` survives.
    """
    candidates: Set[int] = set()
    for k in range(256):
        delta = INV_SBOX[correct_byte ^ k] ^ INV_SBOX[faulty_byte ^ k]
        if delta in fault_set:
            candidates.add(k)
    return candidates


@dataclass
class DfaResult:
    """Outcome of a DFA campaign against one AES instance."""

    recovered_round_key: Optional[List[int]]
    recovered_master_key: Optional[List[int]]
    faults_used: int
    candidates_per_byte: List[int]   # surviving candidates after attack

    @property
    def success(self) -> bool:
        return self.recovered_master_key is not None


class DfaAttacker:
    """Oracle-driven DFA: asks for faulty encryptions, solves the key.

    The oracle is any callable ``(plaintext, byte_index, fault_value) ->
    ciphertext`` (normally ``AES128.encrypt_with_fault`` bound to round
    10); countermeasures replace the oracle with a protected
    implementation that suppresses or infects faulty outputs.

    ``batch_oracle``, if given, is a callable taking a list of
    ``(plaintext, byte_index, fault_value)`` queries and returning the
    faulty ciphertexts (or ``None`` entries) in order — e.g.
    :func:`repro.crypto.run_aes_datapath_batch` against a gate-level
    datapath.  The attack then asks for all its faulty encryptions in
    one call instead of one oracle round trip per injection; the
    recovered key, survivor counts, and fault budget accounting are
    identical to the per-query path.
    """

    def __init__(self, encrypt, encrypt_with_fault,
                 fault_set: Sequence[int] = BIT_FAULTS,
                 seed: int = 0, batch_oracle=None) -> None:
        self.encrypt = encrypt
        self.encrypt_with_fault = encrypt_with_fault
        self.fault_set = tuple(fault_set)
        self.rng = random.Random(seed)
        self.batch_oracle = batch_oracle

    def attack(self, max_faults_per_byte: int = 8) -> DfaResult:
        """Run the campaign; returns the recovered keys (or failure)."""
        faults_used = 0
        round_key: List[Optional[int]] = [None] * 16
        survivors: List[int] = [256] * 16
        # Every injection is drawn up front, in byte order, so the rng
        # stream does not depend on how many attempts each byte ends up
        # consuming — the contract that lets the serial and batched
        # oracle paths return bit-identical results.
        attempts = [
            [([self.rng.randrange(256) for _ in range(16)],
              self.rng.choice(self.fault_set))
             for _ in range(max_faults_per_byte)]
            for _ in range(16)
        ]
        faulty: Optional[List[List[Optional[List[int]]]]] = None
        if self.batch_oracle is not None:
            queries = [
                (pt, state_byte, fault_value)
                for state_byte in range(16)
                for pt, fault_value in attempts[state_byte]
            ]
            answers = iter(self.batch_oracle(queries))
            faulty = [[next(answers) for _ in attempts[state_byte]]
                      for state_byte in range(16)]
        for state_byte in range(16):
            ct_pos = SHIFT_ROWS.index(state_byte)
            candidates: Optional[Set[int]] = None
            for attempt, (pt, fault_value) in enumerate(
                    attempts[state_byte]):
                good = self.encrypt(pt)
                if faulty is not None:
                    bad = faulty[state_byte][attempt]
                else:
                    bad = self.encrypt_with_fault(pt, state_byte,
                                                  fault_value)
                faults_used += 1
                if bad is None or bad == good:
                    continue  # countermeasure suppressed the fault
                if bad[ct_pos] == good[ct_pos]:
                    continue  # fault did not reach this byte (infected?)
                new = last_round_candidates(good[ct_pos], bad[ct_pos],
                                            self.fault_set)
                candidates = new if candidates is None else candidates & new
                if candidates is not None and len(candidates) <= 1:
                    break
            if candidates and len(candidates) == 1:
                round_key[state_byte] = next(iter(candidates))
            survivors[state_byte] = (len(candidates)
                                     if candidates is not None else 256)
        if any(k is None for k in round_key):
            return DfaResult(None, None, faults_used, survivors)
        # Round key bytes were indexed by pre-ShiftRows state position;
        # ciphertext position ct_pos carries state byte, and AddRoundKey
        # XORs K10 in ciphertext order — so reorder accordingly.
        k10 = [0] * 16
        for state_byte in range(16):
            ct_pos = SHIFT_ROWS.index(state_byte)
            k10[ct_pos] = round_key[state_byte]
        master = recover_master_key(k10)
        return DfaResult(k10, master, faults_used, survivors)


def dfa_on_unprotected(key: Sequence[int], seed: int = 0,
                       max_faults_per_byte: int = 8) -> DfaResult:
    """Convenience: full DFA against a bare AES-128 implementation."""
    aes = AES128(key)

    def faulty(pt, byte_index, fault_value):
        return aes.encrypt_with_fault(
            pt, round_index=10, byte_index=byte_index,
            fault_value=fault_value)

    attacker = DfaAttacker(aes.encrypt, faulty, seed=seed)
    return attacker.attack(max_faults_per_byte=max_faults_per_byte)
