"""Fault-injection attacks and countermeasures: injection, DFA, codes, sensors."""

from .models import Fault, FaultKind, enumerate_faults, sample_faults
from .injector import inject_fault, with_fault_control
from .analysis import (
    CampaignReport,
    FaultOutcome,
    FormalFaultResult,
    fault_campaign,
    formal_coverage,
    prove_fault_detected,
)
from .codes import (
    ProtectedDesign,
    duplicate_and_compare,
    parity_protect,
    residue_mod3_net,
    residue_protect_adder,
    tmr_protect,
)
from .glitch_attack import (
    GlitchOutcome,
    clock_glitch_capture,
    guard_band_to_close,
    vulnerability_profile,
)
from .dfa import (
    BIT_FAULTS,
    DfaAttacker,
    DfaResult,
    dfa_on_unprotected,
    last_round_candidates,
)
from .infective import DetectAndSuppressAES, InfectiveAES
from .sensors import (
    Sensor,
    SensorPlan,
    greedy_sensor_placement,
    injection_campaign,
)
from .discriminate import (
    Assessment,
    FaultDiscriminator,
    FaultEvent,
    Response,
    Verdict,
    attack_fault_stream,
    natural_fault_stream,
)

__all__ = [
    "Fault", "FaultKind", "enumerate_faults", "sample_faults",
    "inject_fault", "with_fault_control",
    "CampaignReport", "FaultOutcome", "FormalFaultResult",
    "fault_campaign", "formal_coverage", "prove_fault_detected",
    "ProtectedDesign", "duplicate_and_compare", "parity_protect",
    "residue_mod3_net", "residue_protect_adder", "tmr_protect",
    "GlitchOutcome", "clock_glitch_capture", "guard_band_to_close",
    "vulnerability_profile",
    "BIT_FAULTS", "DfaAttacker", "DfaResult", "dfa_on_unprotected",
    "last_round_candidates",
    "DetectAndSuppressAES", "InfectiveAES",
    "Sensor", "SensorPlan", "greedy_sensor_placement", "injection_campaign",
    "Assessment", "FaultDiscriminator", "FaultEvent", "Response", "Verdict",
    "attack_fault_stream", "natural_fault_stream",
]
