"""Clock-glitch fault attacks via the timing model (paper ref [38]).

"Detailed modeling of fault injections" at the timing-verification
stage: a clock glitch shortens one cycle below the critical path, so
late-arriving outputs latch stale/wrong values.  Which bits fault is
fully determined by the STA arrival times — letting design-time
analysis predict the attacker-reachable fault space, size shields
(timing guard bands), and place detectors.

The model: for a glitched period ``T``, every output with arrival time
above ``T`` captures its *previous* value (the classical setup-violation
model).  :func:`clock_glitch_capture` exposes the resulting
differential, connecting the electrical layer to the DFA key-recovery
layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist import Netlist, simulate
from ..netlist.metrics import arrival_times
from ..physical import Placement, arrival_times_placed


@dataclass
class GlitchOutcome:
    """Result of one glitched capture."""

    period: float
    captured: Dict[str, int]     # output values actually latched
    correct: Dict[str, int]      # values a full cycle would latch
    faulted_outputs: List[str]

    @property
    def fault_count(self) -> int:
        return len(self.faulted_outputs)


def clock_glitch_capture(netlist: Netlist,
                         previous_inputs: Mapping[str, int],
                         current_inputs: Mapping[str, int],
                         period: float,
                         placement: Optional[Placement] = None
                         ) -> GlitchOutcome:
    """Latch outputs after a shortened cycle.

    Outputs whose (placed) arrival exceeds ``period`` capture the value
    from the *previous* evaluation; the rest capture correctly.
    """
    if placement is not None:
        at = arrival_times_placed(netlist, placement)
    else:
        at = arrival_times(netlist)
    stale = simulate(netlist, previous_inputs)
    fresh = simulate(netlist, current_inputs)
    captured: Dict[str, int] = {}
    faulted: List[str] = []
    for out in netlist.outputs:
        if at[out] > period:
            captured[out] = stale[out]
            if stale[out] != fresh[out]:
                faulted.append(out)
        else:
            captured[out] = fresh[out]
    return GlitchOutcome(
        period=period,
        captured=captured,
        correct={o: fresh[o] for o in netlist.outputs},
        faulted_outputs=faulted,
    )


def vulnerability_profile(netlist: Netlist,
                          periods: Sequence[float],
                          placement: Optional[Placement] = None
                          ) -> Dict[float, int]:
    """Outputs at risk per glitch period (pure STA, no simulation).

    The design-time artifact: how aggressive must the attacker's glitch
    be to reach 1, 2, ... n output bits — and symmetrically, how much
    timing margin a guard band must add to push all bits out of reach.
    """
    if placement is not None:
        at = arrival_times_placed(netlist, placement)
    else:
        at = arrival_times(netlist)
    return {
        period: sum(1 for o in netlist.outputs if at[o] > period)
        for period in periods
    }


def guard_band_to_close(netlist: Netlist, attacker_min_period: float,
                        placement: Optional[Placement] = None) -> float:
    """Extra timing slack needed so no output faults at the attacker's
    shortest achievable glitch period.

    Returns 0 when the design is already safe.  A positive value is the
    delay reduction (or clock-period increase) the mitigation must buy.
    """
    if placement is not None:
        at = arrival_times_placed(netlist, placement)
    else:
        at = arrival_times(netlist)
    worst = max((at[o] for o in netlist.outputs), default=0.0)
    return max(0.0, worst - attacker_min_period)
