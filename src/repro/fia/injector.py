"""Netlist-level fault injection.

Faults can be *baked in* (a faulty netlist copy, for equivalence-based
analysis) or made *controllable* (an added ``fault_en`` input arms the
fault, so one netlist serves a whole campaign and formal queries can
quantify over fault activation — the "automatic fault analysis" support
of Table II's logic-synthesis row).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from ..netlist import GateType, Netlist
from .models import Fault, FaultKind


def inject_fault(netlist: Netlist, fault: Fault,
                 name: Optional[str] = None) -> Netlist:
    """Return a copy of ``netlist`` with ``fault`` permanently applied."""
    faulty = netlist.copy(name or f"{netlist.name}_{fault.describe()}")
    victim = faulty.gate(fault.net)
    if fault.kind in (FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1):
        const = (GateType.CONST0 if fault.kind is FaultKind.STUCK_AT_0
                 else GateType.CONST1)
        if victim.gate_type is GateType.INPUT:
            # Keep the port; stuck value overrides it downstream.
            stuck = faulty.add(const, [], prefix="stuck")
            faulty.rewire_consumers(fault.net, stuck, keep_outputs=False)
        else:
            victim.gate_type = const
            victim.fanins = []
        faulty.invalidate()
        faulty.sweep_dangling()
    elif fault.kind is FaultKind.BIT_FLIP:
        healthy = fault.net
        flipped = faulty.add(GateType.NOT, [healthy], prefix="flip")
        faulty.rewire_consumers(healthy, flipped, keep_outputs=False)
        # rewire_consumers also redirected the NOT gate's own fanin; fix it.
        faulty.gate(flipped).fanins = [healthy]
        faulty.invalidate()
    else:
        raise ValueError(f"unsupported fault kind {fault.kind}")
    return faulty


def with_fault_control(netlist: Netlist, faults: Iterable[Fault],
                       prefix: str = "fault_en",
                       ) -> Tuple[Netlist, Dict[Fault, str]]:
    """Instrument the netlist with one enable input per fault.

    A ``BIT_FLIP`` fault on net ``s`` becomes ``s' = s XOR enable``;
    stuck-at faults become a MUX between the healthy value and the stuck
    constant.  All downstream consumers see the controlled value.
    Returns ``(instrumented netlist, fault -> enable input name)``.
    """
    inst = netlist.copy(netlist.name + "_fi")
    enables: Dict[Fault, str] = {}
    for index, fault in enumerate(faults):
        enable = f"{prefix}{index}"
        inst.add_input(enable)
        healthy = fault.net
        if fault.kind is FaultKind.BIT_FLIP:
            controlled = inst.add(GateType.XOR, [healthy, enable],
                                  prefix="fi_x")
        else:
            const = inst.add(
                GateType.CONST0 if fault.kind is FaultKind.STUCK_AT_0
                else GateType.CONST1, [], prefix="fi_c")
            controlled = inst.add(GateType.MUX, [enable, healthy, const],
                                  prefix="fi_m")
        inst.rewire_consumers(healthy, controlled, keep_outputs=False)
        # Undo the self-rewire of the controlled gate's own fanin.
        g = inst.gate(controlled)
        g.fanins = [healthy if fi == controlled else fi for fi in g.fanins]
        inst.invalidate()
        enables[fault] = enable
    return inst, enables
