"""The pass manager: pipelines, incremental re-verification, provenance.

:class:`PassManager` is the paper's re-verification loop made
incremental.  It runs a pipeline of registered passes over a
:class:`~repro.core.composition.Design`, and after each pass consults
the pass's declared :class:`~repro.flow.passes.Effects` to decide which
tracked security properties must be re-measured:

* *establishes* — the property is checked right after the pass (did the
  countermeasure actually work?);
* *invalidates* (or undeclared — the conservative default) — the
  property is re-checked, but only if it currently held;
* *preserves* — the property is carried forward with **no** re-check.

Everything the run did — wall time per pass, cell deltas, which
properties were re-checked and why, cache hit rates, netlist mutation
epochs — lands in a machine-readable :class:`FlowTrace`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from ..core.composition import Design
from ..core.stages import DesignStage, FlowReport, StageRecord
from .analysis import AnalysisCache
from .passes import Pass, PassResult
from .properties import PropertyCheck, SecurityProperty


def _key(prop) -> str:
    """Display/dict key for a property (enum value or custom string)."""
    return prop.value if isinstance(prop, SecurityProperty) else str(prop)


class FlowContext:
    """Mutable state threaded through a pipeline run.

    Passes read and update ``design`` (via their returned
    :class:`~repro.flow.passes.PassResult`), share analyses through
    ``cache``, publish side artifacts (placement, scan chain, ATPG
    results) into ``placement`` / ``notes``, and derive determinism
    from ``seed``.
    """

    def __init__(self, design: Design, cache: Optional[AnalysisCache] = None,
                 seed: int = 0) -> None:
        self.design = design
        self.cache = cache if cache is not None else AnalysisCache()
        self.seed = seed
        self.placement = None
        self.routing = None          # RoutedLayout, set by the route pass
        self.notes: Dict[str, object] = {}


@dataclass
class PropertyRecheck:
    """One property measurement scheduled by the manager."""

    key: str                   # property key ("masking", "tvla-bound", ...)
    when: str                  # "baseline" | "after <pass>" | "final"
    reason: str                # "baseline" | "establishes" | "invalidates"
    passed: bool
    value: float
    message: str

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"

    @property
    def line(self) -> str:
        """Legacy-format check line (matches SecureFlow reports)."""
        return f"{self.key} [{self.when}]: {self.status} — {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {"property": self.key, "when": self.when,
                "reason": self.reason, "status": self.status,
                "value": self.value, "message": self.message}

    @classmethod
    def from_dict(cls, data: Mapping) -> "PropertyRecheck":
        """Inverse of :meth:`as_dict` (``status`` back to ``passed``)."""
        return cls(key=str(data["property"]), when=str(data["when"]),
                   reason=str(data["reason"]),
                   passed=data["status"] == "PASS",
                   value=float(data["value"]),
                   message=str(data["message"]))


@dataclass
class PassProvenance:
    """What one pass did: timing, size delta, re-checks, cache traffic."""

    pass_name: str
    stage: Optional[DesignStage]
    effects: Dict[str, List[str]]
    wall_ms: float
    cells_before: int
    cells_after: int
    rewrites: int
    summary: str
    details: Dict[str, object] = field(default_factory=dict)
    rechecks: List[PropertyRecheck] = field(default_factory=list)
    epoch_before: int = 0
    epoch_after: int = 0
    cache_hits: int = 0
    cache_misses: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "pass": self.pass_name,
            "stage": self.stage.value if self.stage else None,
            "effects": self.effects,
            "wall_ms": round(self.wall_ms, 3),
            "cells_before": self.cells_before,
            "cells_after": self.cells_after,
            "rewrites": self.rewrites,
            "summary": self.summary,
            "details": {k: v for k, v in self.details.items()
                        if isinstance(v, (int, float, str, bool))},
            "rechecks": [r.as_dict() for r in self.rechecks],
            "epoch": [self.epoch_before, self.epoch_after],
            "cache": {"hits": self.cache_hits, "misses": self.cache_misses},
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "PassProvenance":
        """Inverse of :meth:`as_dict`.

        ``wall_ms`` comes back at the serialized (millisecond-rounded)
        precision; re-serializing yields the identical dict, which is
        the round-trip contract the run database relies on.
        """
        cache = data.get("cache", {})
        epoch = data.get("epoch", [0, 0])
        return cls(
            pass_name=str(data["pass"]),
            stage=(DesignStage(data["stage"]) if data.get("stage")
                   else None),
            effects={k: list(v) for k, v in data["effects"].items()},
            wall_ms=float(data["wall_ms"]),
            cells_before=int(data["cells_before"]),
            cells_after=int(data["cells_after"]),
            rewrites=int(data["rewrites"]),
            summary=str(data["summary"]),
            details=dict(data.get("details", {})),
            rechecks=[PropertyRecheck.from_dict(r)
                      for r in data.get("rechecks", [])],
            epoch_before=int(epoch[0]), epoch_after=int(epoch[1]),
            cache_hits=int(cache.get("hits", 0)),
            cache_misses=int(cache.get("misses", 0)),
        )


@dataclass
class FlowTrace:
    """Machine-readable provenance of a full pipeline run."""

    design_name: str
    baseline: List[PropertyRecheck] = field(default_factory=list)
    passes: List[PassProvenance] = field(default_factory=list)
    final: List[PropertyRecheck] = field(default_factory=list)

    def all_rechecks(self) -> List[PropertyRecheck]:
        out = list(self.baseline)
        for p in self.passes:
            out.extend(p.rechecks)
        out.extend(self.final)
        return out

    @property
    def failures(self) -> List[str]:
        return [r.line for r in self.all_rechecks() if not r.passed]

    @property
    def total_wall_ms(self) -> float:
        return sum(p.wall_ms for p in self.passes)

    def rechecked_properties(self, pass_name: str) -> List[str]:
        """Property keys re-measured after the named pass."""
        for p in self.passes:
            if p.pass_name == pass_name:
                return [r.key for r in p.rechecks]
        raise KeyError(f"no pass {pass_name!r} in trace")

    def to_dict(self) -> Dict[str, object]:
        # The serialized total is derived from the *serialized* (ms-
        # rounded) per-pass times, so dict -> from_dict -> to_dict is a
        # fixed point even though in-memory wall_ms keeps full
        # precision.
        return {
            "design": self.design_name,
            "baseline": [r.as_dict() for r in self.baseline],
            "passes": [p.as_dict() for p in self.passes],
            "final": [r.as_dict() for r in self.final],
            "failures": self.failures,
            "total_wall_ms": round(
                sum(round(p.wall_ms, 3) for p in self.passes), 3),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "FlowTrace":
        """Rebuild a trace from :meth:`to_dict` output.

        Derived fields (``failures``, ``total_wall_ms``) are ignored on
        input and recomputed; everything else round-trips losslessly,
        so traces pulled back out of the run database are full
        :class:`FlowTrace` objects, not dict blobs.
        """
        return cls(
            design_name=str(data["design"]),
            baseline=[PropertyRecheck.from_dict(r)
                      for r in data.get("baseline", [])],
            passes=[PassProvenance.from_dict(p)
                    for p in data.get("passes", [])],
            final=[PropertyRecheck.from_dict(r)
                   for r in data.get("final", [])],
        )

    def render(self) -> str:
        """Human-readable provenance trace."""
        lines = [f"=== flow trace: {self.design_name} ==="]
        for r in self.baseline:
            lines.append(f"  [baseline] {r.key}: {r.status} — {r.message}")
        for p in self.passes:
            stage = p.stage.value if p.stage else "?"
            lines.append(
                f"[{p.pass_name}] ({stage}) {p.cells_before} -> "
                f"{p.cells_after} cells, {p.wall_ms:.1f} ms")
            if p.summary:
                lines.append(f"  - {p.summary}")
            for r in p.rechecks:
                lines.append(
                    f"  [re-check:{r.reason}] {r.key}: {r.status} — "
                    f"{r.message}")
        for r in self.final:
            lines.append(f"  [final] {r.key}: {r.status} — {r.message}")
        status = "FAIL" if self.failures else "PASS"
        lines.append(f"=== {status}: {len(self.failures)} failing "
                     f"check(s), {self.total_wall_ms:.1f} ms in passes ===")
        return "\n".join(lines)


@dataclass
class FlowRunResult:
    """Outcome of :meth:`PassManager.run`."""

    design: Design
    trace: FlowTrace
    context: FlowContext

    @property
    def failures(self) -> List[str]:
        return self.trace.failures

    @property
    def all_passed(self) -> bool:
        return not self.trace.failures


class PassManager:
    """Runs pass pipelines with effect-driven incremental re-verification.

    ``checkers`` maps property keys (usually
    :class:`~repro.flow.properties.SecurityProperty` members, but any
    hashable key works for custom requirements) to callables
    ``checker(ctx) -> PropertyCheck``.

    :meth:`run` tracks the properties named in ``goals`` and
    ``assume``:

    * ``assume`` properties are measured once up front (the baseline) —
      they are expected to hold on the input design;
    * ``goals`` properties are expected to hold at the *end*; if a run
      finishes without any pass establishing (and thus checking) a
      goal, it is measured once at the end.

    Custom string-keyed properties have no effect declarations, so every
    pass conservatively re-checks them — which is exactly the legacy
    ``SecureFlow`` re-run-everything loop.
    """

    def __init__(self, checkers: Optional[Mapping] = None, seed: int = 0,
                 cache: Optional[AnalysisCache] = None) -> None:
        self.checkers: Dict[object, Callable] = dict(checkers or {})
        self.seed = seed
        self.cache = cache if cache is not None else AnalysisCache()

    # -- internals -----------------------------------------------------

    def _measure(self, prop, ctx: FlowContext, when: str,
                 reason: str) -> PropertyRecheck:
        check: PropertyCheck = self.checkers[prop](ctx)
        return PropertyRecheck(_key(prop), when, reason, check.passed,
                               check.value, check.message)

    def _tracked(self, goals: Iterable, assume: Iterable) -> List:
        wanted = list(assume) + [g for g in goals if g not in set(assume)]
        missing = [p for p in wanted if p not in self.checkers]
        if missing:
            raise KeyError(
                "no checker registered for tracked properties: "
                + ", ".join(_key(p) for p in missing))
        return wanted

    # -- entry point ---------------------------------------------------

    def run(self, design: Design, passes: Sequence[Pass],
            goals: Iterable = (), assume: Iterable = ()) -> FlowRunResult:
        """Run ``passes`` over ``design`` with incremental re-verification."""
        goals = tuple(goals)
        assume = tuple(assume)
        tracked = self._tracked(goals, assume)
        ctx = FlowContext(design, cache=self.cache, seed=self.seed)
        trace = FlowTrace(design.name)

        held: set = set()
        checked_ever: set = set()
        for prop in assume:
            recheck = self._measure(prop, ctx, "baseline", "baseline")
            trace.baseline.append(recheck)
            checked_ever.add(prop)
            if recheck.passed:
                held.add(prop)

        for p in passes:
            netlist = ctx.design.netlist
            cells_before = len(netlist.gates)
            epoch_before = netlist.mutation_epoch
            hits0, misses0 = self.cache.hits, self.cache.misses
            start = time.perf_counter()
            result: PassResult = p.apply(netlist, ctx)
            if result.design is not None:
                ctx.design = result.design
            wall_pass = time.perf_counter() - start
            after = ctx.design.netlist
            prov = PassProvenance(
                pass_name=p.name, stage=p.stage,
                effects=p.effects.as_dict() if p.effects else
                {"preserves": [], "establishes": [], "invalidates": []},
                wall_ms=0.0,
                cells_before=cells_before, cells_after=len(after.gates),
                rewrites=result.rewrites, summary=result.summary,
                details=dict(result.details),
                epoch_before=epoch_before,
                epoch_after=after.mutation_epoch)

            start_checks = time.perf_counter()
            when = f"after {p.name}"
            for prop in tracked:
                if isinstance(prop, SecurityProperty) and p.effects:
                    action = p.effects.classify(prop)
                else:
                    # Custom properties carry no effect declarations:
                    # conservatively re-check (legacy SecureFlow loop).
                    action = "invalidates"
                if action == "preserves":
                    continue
                if action == "invalidates" and prop not in held:
                    continue  # nothing established yet -> nothing to lose
                reason = ("establishes" if action == "establishes"
                          else "invalidates")
                recheck = self._measure(prop, ctx, when, reason)
                prov.rechecks.append(recheck)
                checked_ever.add(prop)
                if recheck.passed:
                    held.add(prop)
                else:
                    held.discard(prop)
            wall_checks = time.perf_counter() - start_checks
            prov.wall_ms = (wall_pass + wall_checks) * 1000.0
            prov.cache_hits = self.cache.hits - hits0
            prov.cache_misses = self.cache.misses - misses0
            trace.passes.append(prov)

        for prop in goals:
            if prop in checked_ever:
                continue
            recheck = self._measure(prop, ctx, "final", "baseline")
            trace.final.append(recheck)
            if recheck.passed:
                held.add(prop)

        return FlowRunResult(ctx.design, trace, ctx)


def to_flow_report(trace: FlowTrace,
                   stage_order: Optional[Tuple[DesignStage, ...]] = None
                   ) -> FlowReport:
    """Project a :class:`FlowTrace` onto the legacy stage-record report.

    Each pass becomes one :class:`~repro.core.stages.StageRecord` under
    its declared stage, with its summary as the action line, numeric
    details as metrics, and re-check lines as security checks — so
    legacy consumers (tests, benchmarks, ``render()``) keep working on
    pipeline-produced flows.
    """
    del stage_order  # passes already carry their stage; order = pipeline
    report = FlowReport(trace.design_name)
    if trace.baseline:
        record = StageRecord(DesignStage.LOGIC_SYNTHESIS)
        record.actions.append("baseline property measurement")
        record.security_checks.extend(r.line for r in trace.baseline)
        report.records.append(record)
    for p in trace.passes:
        record = StageRecord(p.stage if p.stage else
                             DesignStage.LOGIC_SYNTHESIS)
        record.actions.append(p.summary or f"applied pass: {p.pass_name}")
        for k, v in p.details.items():
            if isinstance(v, (int, float)) and not isinstance(v, bool):
                record.metrics[k] = float(v)
        record.security_checks.extend(r.line for r in p.rechecks)
        report.records.append(record)
    if trace.final:
        record = StageRecord(DesignStage.TIMING_POWER_VERIFICATION)
        record.actions.append("final goal verification")
        record.security_checks.extend(r.line for r in trace.final)
        report.records.append(record)
    return report
