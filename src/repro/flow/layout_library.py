"""Registered routing and security-closure ECO passes.

The physical-design row of Table II, as passes: ``route`` turns the
current placement into routed geometry (``ctx.routing``), and three
closure ECOs — ``bury-critical-nets``, ``shield-insertion``,
``eco-filler`` — edit that geometry to close the layout attack-surface
metrics measured by :mod:`repro.physical.attack_surface`.

The ECOs carry ``is_closure_eco = True`` and a contract the static
audit (``scripts/check_passes.py``) enforces: they never touch the
netlist (functional equivalence *preserved*, not merely re-checked),
they establish at least one layout property, and they belong to the
physical-synthesis stage.  :func:`repro.physical.closure.
security_closure` drives them iteratively; they are equally usable as
ordinary pipeline passes after ``placement`` + ``route``.
"""

from __future__ import annotations

from typing import Optional

from ..core.stages import DesignStage
from ..physical.attack_surface import (
    DEFAULT_MIN_FREE_CAPACITY,
    DEFAULT_MIN_TROJAN_SITES,
    DEFAULT_PROBE_LAYERS,
)
from ..physical.closure import (
    bury_critical_nets,
    insert_fillers,
    insert_shields,
)
from ..physical.routing import DEFAULT_NUM_LAYERS, DEFAULT_VIA_COST, maze_route
from .passes import Pass, PassResult, preserves_all, register_pass
from .properties import SecurityProperty as P

_LAYOUT = (P.PROBING_EXPOSURE, P.FIA_EXPOSURE, P.TROJAN_INSERTABILITY)


def _require_routing(ctx, name: str):
    if getattr(ctx, "routing", None) is None:
        raise ValueError(f"{name} requires a prior 'route' pass")
    return ctx.routing


@register_pass
class RoutingPass(Pass):
    """Maze-route the placed netlist; publishes ``ctx.routing``.

    Replaces any previous routed geometry wholesale, so the layout
    properties are invalidated (fresh geometry, unmeasured); the
    netlist itself is untouched.
    """

    name = "route"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    effects = preserves_all(invalidates=_LAYOUT)

    def __init__(self, num_layers: Optional[int] = None,
                 via_cost: int = DEFAULT_VIA_COST) -> None:
        self.num_layers = num_layers or DEFAULT_NUM_LAYERS
        self.via_cost = via_cost

    def apply(self, netlist, ctx) -> PassResult:
        if ctx.placement is None:
            raise ValueError("route requires a prior placement pass")
        layout = maze_route(netlist, ctx.placement,
                            num_layers=self.num_layers,
                            via_cost=self.via_cost)
        ctx.routing = layout
        return PassResult(
            self.name, rewrites=len(layout.nets),
            summary=f"routed {len(layout.nets)} nets: "
                    f"{layout.total_wirelength} wire units, "
                    f"{layout.total_vias} vias, "
                    f"{len(layout.failed)} failed",
            details={"nets": len(layout.nets),
                     "wirelength": layout.total_wirelength,
                     "vias": layout.total_vias,
                     "failed_nets": len(layout.failed)})


@register_pass
class BuryCriticalNetsPass(Pass):
    """Re-route critical nets below the probe-reachable top metals.

    Establishes the probing bound by construction (buried wires cannot
    sit on probe-reachable layers); the re-route moves geometry, so the
    other two layout metrics must be re-measured.
    """

    name = "bury-critical-nets"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    is_closure_eco = True
    effects = preserves_all(
        establishes=[P.PROBING_EXPOSURE],
        invalidates=[P.FIA_EXPOSURE, P.TROJAN_INSERTABILITY])

    def __init__(self, probe_depth: int = DEFAULT_PROBE_LAYERS) -> None:
        self.probe_depth = probe_depth

    def apply(self, netlist, ctx) -> PassResult:
        layout = _require_routing(ctx, self.name)
        critical = list(ctx.notes.get("critical-nets", []))
        buried = bury_critical_nets(layout, netlist, ctx.placement,
                                    critical,
                                    probe_depth=self.probe_depth)
        ctx.notes["buried-nets"] = buried
        cap = max(1, layout.num_layers - self.probe_depth)
        return PassResult(
            self.name, rewrites=len(buried),
            summary=f"buried {len(buried)} critical net(s) at or below "
                    f"layer {cap}",
            details={"buried_nets": len(buried), "layer_cap": cap})


@register_pass
class ShieldInsertionPass(Pass):
    """Shield cells over every exposed critical wire node.

    Covering a node closes both the probing and the laser path to it;
    the added shield geometry consumes routing capacity, so Trojan
    insertability is re-measured.
    """

    name = "shield-insertion"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    is_closure_eco = True
    effects = preserves_all(
        establishes=[P.PROBING_EXPOSURE, P.FIA_EXPOSURE],
        invalidates=[P.TROJAN_INSERTABILITY])

    def apply(self, netlist, ctx) -> PassResult:
        layout = _require_routing(ctx, self.name)
        critical = list(ctx.notes.get("critical-nets", []))
        added = insert_shields(layout, critical)
        ctx.notes["shields-added"] = added
        return PassResult(
            self.name, rewrites=added,
            summary=f"inserted {added} shield cell(s) over exposed "
                    f"critical wires",
            details={"shields_added": added})


@register_pass
class EcoFillerPass(Pass):
    """ECO filler cells into every exploitable free region.

    Fillers occupy placement sites only — no netlist cells, no wire
    moves — so everything except the Trojan metric is untouched.
    """

    name = "eco-filler"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    is_closure_eco = True
    effects = preserves_all(establishes=[P.TROJAN_INSERTABILITY])

    def __init__(self, min_sites: int = DEFAULT_MIN_TROJAN_SITES,
                 min_free_capacity: float = DEFAULT_MIN_FREE_CAPACITY
                 ) -> None:
        self.min_sites = min_sites
        self.min_free_capacity = min_free_capacity

    def apply(self, netlist, ctx) -> PassResult:
        layout = _require_routing(ctx, self.name)
        if ctx.placement is None:
            raise ValueError("eco-filler requires a prior placement pass")
        added = insert_fillers(layout, ctx.placement.positions.values(),
                               min_sites=self.min_sites,
                               min_free_capacity=self.min_free_capacity)
        ctx.notes["filler-sites"] = added
        return PassResult(
            self.name, rewrites=added,
            summary=f"filled {added} free site(s) with ECO fillers",
            details={"filler_sites": added})
