"""Security properties and their shared checkers.

The paper's secure-composition thesis needs a vocabulary for *what a
transform may destroy*: masking-domain separation, the TVLA bound,
no-flow (GLIFT) obligations, fault-detection coverage, scan leakage,
and functional equivalence.  :class:`SecurityProperty` names them;
the ``*_check`` functions in this module are the **single**
implementation of each property's measurement, shared by

* the pass manager's re-verification loop (:mod:`repro.flow.manager`),
* the legacy :class:`repro.core.flow.SecureFlow` requirements, and
* the constraint compiler (:mod:`repro.core.constraints`),

so the TVLA logic — previously duplicated between
``core.flow.tvla_requirement`` and ``core.constraints.LeakageConstraint``
— now exists exactly once.

This module deliberately imports nothing from :mod:`repro.core` at
module level (only under ``TYPE_CHECKING``): ``repro.core`` submodules
import it at their own import time, and keeping this side of the edge
core-free is what makes that cycle-safe.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Optional

from ..sca import TVLA_THRESHOLD, leakage_traces, locate_leaking_nets, tvla

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.composition import Design
    from .analysis import AnalysisCache


class SecurityProperty(enum.Enum):
    """The security/functional properties the flow tracks (Table II).

    Every registered pass must classify each of these as preserved,
    established, or invalidated — ``scripts/check_passes.py`` enforces
    the totality of that declaration.
    """

    MASKING = "masking"
    TVLA_BOUND = "tvla-bound"
    NO_FLOW = "no-flow"
    FAULT_DETECTION = "fault-detection"
    SCAN_LEAKAGE = "scan-leakage"
    FUNCTIONAL_EQUIVALENCE = "functional-equivalence"
    #: Layout properties (physical-design stage; measured on a routed
    #: layout — ``ctx.routing`` — rather than on the netlist).  Each
    #: "holds" when its attack-surface metric is under threshold.
    PROBING_EXPOSURE = "probing-exposure"
    FIA_EXPOSURE = "fia-exposure"
    TROJAN_INSERTABILITY = "trojan-insertability"


#: All tracked properties, in declaration order.
ALL_PROPERTIES = tuple(SecurityProperty)


@dataclass
class PropertyCheck:
    """Outcome of one property measurement."""

    prop: object               # SecurityProperty or a custom string key
    passed: bool
    value: float
    message: str

    @property
    def status(self) -> str:
        return "PASS" if self.passed else "FAIL"


def _class_traces(design: "Design", fixed: bool, n_traces: int,
                  noise_sigma: float, seed: int,
                  cache: Optional["AnalysisCache"]):
    """Leakage traces for one TVLA class, via the analysis cache.

    The cache entry is keyed on the stimulus parameters and validated
    against both the design object and the netlist mutation epoch, so a
    re-check on an unchanged netlist (e.g. after a placement pass) is a
    cache hit instead of a full re-simulation.
    """
    def build():
        stimuli = design.make_stimuli(n_traces, fixed,
                                      seed if fixed else seed + 1)
        return leakage_traces(design.netlist, stimuli,
                              noise_sigma=noise_sigma,
                              seed=seed if fixed else seed + 1)

    if cache is None:
        return build()
    return cache.get("leakage-traces", design.netlist, build,
                     key=(design, fixed, n_traces, noise_sigma, seed))


def tvla_check(design: "Design", n_traces: int = 3000,
               noise_sigma: float = 0.25,
               threshold: float = TVLA_THRESHOLD, seed: int = 0,
               cache: Optional["AnalysisCache"] = None) -> PropertyCheck:
    """Fixed-vs-random first-order TVLA against ``threshold``.

    The one shared implementation of the TVLA bound check.
    """
    result = tvla(
        _class_traces(design, True, n_traces, noise_sigma, seed, cache),
        _class_traces(design, False, n_traces, noise_sigma, seed, cache))
    return PropertyCheck(
        SecurityProperty.TVLA_BOUND,
        result.max_abs_t <= threshold,
        result.max_abs_t,
        f"TVLA max|t| = {result.max_abs_t:.2f} (threshold {threshold}) "
        f"at {n_traces} traces/class")


def masking_check(design: "Design", n_traces: int = 2500,
                  threshold: float = TVLA_THRESHOLD, seed: int = 0,
                  cache: Optional["AnalysisCache"] = None) -> PropertyCheck:
    """Per-wire leakage test: no individual net may distinguish the
    fixed class from the random class — the observable definition of
    intact share encoding."""
    del cache  # per-net values are not trace-shaped; no cache reuse yet
    fixed = design.make_stimuli(n_traces, True, seed + 2)
    rand = design.make_stimuli(n_traces, False, seed + 3)
    entries = locate_leaking_nets(design.netlist, fixed, rand, seed=seed)
    leaky = [e for e in entries if abs(e.t_statistic) > threshold]
    worst = abs(entries[0].t_statistic) if entries else 0.0
    message = (f"{len(leaky)} leaking nets"
               + (f", worst {entries[0].net} |t|={worst:.1f}"
                  if leaky else f" (worst per-net |t| = {worst:.2f})"))
    return PropertyCheck(SecurityProperty.MASKING, not leaky,
                         float(len(leaky)), message)


def no_flow_check(design: "Design", source: str, target: str,
                  when: Optional[Dict[str, int]] = None,
                  cache: Optional["AnalysisCache"] = None) -> PropertyCheck:
    """Two-copy SAT proof that ``source`` cannot influence ``target``."""
    from ..formal.glift import prove_no_flow

    del cache
    result = prove_no_flow(design.netlist, source, target,
                           fixed=dict(when or {}))
    if result.isolated:
        return PropertyCheck(
            SecurityProperty.NO_FLOW, True, 0.0,
            f"SAT-proved non-interference {source} -/-> {target}")
    return PropertyCheck(
        SecurityProperty.NO_FLOW, False, 1.0,
        f"flow witness found for {source} -> {target}: {result.witness}")


def fault_detection_check(design: "Design", min_coverage: float = 0.99,
                          n_vectors: int = 64, seed: int = 0,
                          cache: Optional["AnalysisCache"] = None
                          ) -> PropertyCheck:
    """Fault campaign over the protected region against a coverage floor."""
    from ..fia import fault_campaign

    del cache
    if design.alarm is None:
        return PropertyCheck(SecurityProperty.FAULT_DETECTION, False, 0.0,
                             "design has no alarm output")
    faults = design.fault_sites()
    if not faults:
        return PropertyCheck(SecurityProperty.FAULT_DETECTION, True, 1.0,
                             "no fault sites in protected region")
    report = fault_campaign(
        design.netlist, faults, n_vectors=n_vectors, alarm=design.alarm,
        payload_outputs=design.payload_outputs, seed=seed)
    ok = report.coverage >= min_coverage and report.silent == 0
    return PropertyCheck(SecurityProperty.FAULT_DETECTION, ok,
                         report.coverage, report.summary())


def scan_leakage_check(design: "Design",
                       cache: Optional["AnalysisCache"] = None
                       ) -> PropertyCheck:
    """Scan access must not expose internal state to an attacker.

    Structural: a design with no scan chain trivially satisfies the
    property; one with a plain (non-secured) chain fails it, since the
    scan attack of :mod:`repro.dft.scan_attack` reads state directly.
    A secure-scan wrapper records itself in ``design.applied``.
    """
    del cache
    if "scan_en" not in design.netlist:
        return PropertyCheck(SecurityProperty.SCAN_LEAKAGE, True, 0.0,
                             "no scan access present")
    if any("secure-scan" in step for step in design.applied):
        return PropertyCheck(SecurityProperty.SCAN_LEAKAGE, True, 0.0,
                             "scan chain gated by secure-scan wrapper")
    return PropertyCheck(
        SecurityProperty.SCAN_LEAKAGE, False, 1.0,
        "plain scan chain exposes internal state (scan attack applies)")


def make_equivalence_check(golden: "Design", max_inputs: int = 12
                           ) -> Callable:
    """Checker factory: exhaustive equivalence against ``golden``'s
    current function, for small combinational netlists.

    Captures the truth tables *now*; the returned checker compares the
    design-under-flow against them.  Designs whose port interface has
    changed (masking, WDDL) or that exceed ``max_inputs`` report a
    skipped-but-passing check, mirroring the classical flow's "trusted
    certified rewrites" stance.
    """
    from ..netlist import exhaustive_truth_table

    netlist = golden.netlist
    if len(netlist.inputs) > max_inputs or netlist.is_sequential:
        tables = None
    else:
        tables = {out: exhaustive_truth_table(netlist, out)
                  for out in netlist.outputs}
    golden_inputs = sorted(netlist.inputs)

    def check(design: "Design",
              cache: Optional["AnalysisCache"] = None) -> PropertyCheck:
        del cache
        current = design.netlist
        if tables is None:
            return PropertyCheck(
                SecurityProperty.FUNCTIONAL_EQUIVALENCE, True, 0.0,
                "equivalence assumed (design too large for exhaustive "
                "check)")
        if (sorted(current.inputs) != golden_inputs
                or set(tables) - set(current.gates.keys())):
            return PropertyCheck(
                SecurityProperty.FUNCTIONAL_EQUIVALENCE, True, 0.0,
                "port interface changed; equivalence tracked modulo "
                "re-encoding")
        mismatches = sum(
            1 for out, table in tables.items()
            if exhaustive_truth_table(current, out) != table)
        return PropertyCheck(
            SecurityProperty.FUNCTIONAL_EQUIVALENCE, mismatches == 0,
            float(mismatches),
            "exhaustive truth tables match" if mismatches == 0 else
            f"{mismatches} output(s) changed function")

    return check


# ----------------------------------------------------------------------
# Checker factories for the pass manager
# ----------------------------------------------------------------------
#
# A *checker* as the manager consumes it is ``checker(ctx) ->
# PropertyCheck`` where ``ctx`` is a :class:`repro.flow.manager.
# FlowContext` (``ctx.design``, ``ctx.cache``, ``ctx.seed``).  The
# factories below bind measurement budgets once and close over them.

def tvla_checker(n_traces: int = 3000, noise_sigma: float = 0.25,
                 threshold: float = TVLA_THRESHOLD) -> Callable:
    """Manager checker for :data:`SecurityProperty.TVLA_BOUND`."""
    def check(ctx) -> PropertyCheck:
        return tvla_check(ctx.design, n_traces=n_traces,
                          noise_sigma=noise_sigma, threshold=threshold,
                          seed=ctx.seed, cache=ctx.cache)
    return check


def masking_checker(n_traces: int = 2500,
                    threshold: float = TVLA_THRESHOLD) -> Callable:
    """Manager checker for :data:`SecurityProperty.MASKING`."""
    def check(ctx) -> PropertyCheck:
        return masking_check(ctx.design, n_traces=n_traces,
                             threshold=threshold, seed=ctx.seed,
                             cache=ctx.cache)
    return check


def fault_detection_checker(min_coverage: float = 0.99,
                            n_vectors: int = 64) -> Callable:
    """Manager checker for :data:`SecurityProperty.FAULT_DETECTION`."""
    def check(ctx) -> PropertyCheck:
        return fault_detection_check(ctx.design, min_coverage=min_coverage,
                                     n_vectors=n_vectors, seed=ctx.seed,
                                     cache=ctx.cache)
    return check


def scan_leakage_checker() -> Callable:
    """Manager checker for :data:`SecurityProperty.SCAN_LEAKAGE`."""
    def check(ctx) -> PropertyCheck:
        return scan_leakage_check(ctx.design, cache=ctx.cache)
    return check


def _routing_of(ctx) -> Optional[object]:
    """The routed layout of a flow context (``None`` when not routed)."""
    return getattr(ctx, "routing", None)


def probing_exposure_checker(threshold: float = 0.05,
                             probe_layers: int = 2) -> Callable:
    """Manager checker for :data:`SecurityProperty.PROBING_EXPOSURE`.

    Reads the routed layout from ``ctx.routing`` and the critical-net
    list from ``ctx.notes['critical-nets']`` (published by the route /
    closure pipeline).
    """
    def check(ctx) -> PropertyCheck:
        from ..physical.attack_surface import probing_exposure

        layout = _routing_of(ctx)
        if layout is None:
            return PropertyCheck(
                SecurityProperty.PROBING_EXPOSURE, False, 1.0,
                "no routed layout (run the 'route' pass first)")
        report = probing_exposure(layout,
                                  ctx.notes.get("critical-nets", []),
                                  probe_layers=probe_layers)
        return PropertyCheck(
            SecurityProperty.PROBING_EXPOSURE,
            report.exposure <= threshold, report.exposure,
            f"{report.summary()} (threshold {threshold})")
    return check


def fia_exposure_checker(threshold: float = 0.30,
                         spot_radius: int = 2) -> Callable:
    """Manager checker for :data:`SecurityProperty.FIA_EXPOSURE`."""
    def check(ctx) -> PropertyCheck:
        from ..physical.attack_surface import fia_exposure

        layout = _routing_of(ctx)
        if layout is None:
            return PropertyCheck(
                SecurityProperty.FIA_EXPOSURE, False, 1.0,
                "no routed layout (run the 'route' pass first)")
        report = fia_exposure(layout, ctx.notes.get("critical-nets", []),
                              spot_radius=spot_radius)
        return PropertyCheck(
            SecurityProperty.FIA_EXPOSURE,
            report.exposure <= threshold, report.exposure,
            f"{report.summary()} (threshold {threshold})")
    return check


def trojan_insertability_checker(threshold: float = 0.05,
                                 min_trojan_sites: int = 4,
                                 min_free_capacity: float = 0.2
                                 ) -> Callable:
    """Manager checker for :data:`SecurityProperty.TROJAN_INSERTABILITY`.

    Needs ``ctx.placement`` in addition to ``ctx.routing`` — occupied
    standard-cell sites bound the free regions a Trojan could claim.
    """
    def check(ctx) -> PropertyCheck:
        from ..physical.attack_surface import trojan_insertability

        layout = _routing_of(ctx)
        if layout is None or ctx.placement is None:
            return PropertyCheck(
                SecurityProperty.TROJAN_INSERTABILITY, False, 1.0,
                "no routed layout/placement (run placement + route)")
        report = trojan_insertability(
            layout, ctx.placement.positions.values(),
            min_sites=min_trojan_sites,
            min_free_capacity=min_free_capacity)
        return PropertyCheck(
            SecurityProperty.TROJAN_INSERTABILITY,
            report.exposure <= threshold, report.exposure,
            f"{report.summary()} (threshold {threshold})")
    return check


def layout_checkers(probing_threshold: float = 0.05,
                    fia_threshold: float = 0.30,
                    trojan_threshold: float = 0.05,
                    probe_layers: int = 2, spot_radius: int = 2,
                    min_trojan_sites: int = 4,
                    min_free_capacity: float = 0.2
                    ) -> Dict[SecurityProperty, Callable]:
    """The stock checker set for the three layout properties."""
    return {
        SecurityProperty.PROBING_EXPOSURE:
            probing_exposure_checker(probing_threshold, probe_layers),
        SecurityProperty.FIA_EXPOSURE:
            fia_exposure_checker(fia_threshold, spot_radius),
        SecurityProperty.TROJAN_INSERTABILITY:
            trojan_insertability_checker(trojan_threshold,
                                         min_trojan_sites,
                                         min_free_capacity),
    }


def default_checkers(n_traces: int = 3000,
                     noise_sigma: float = 0.25) -> Dict[SecurityProperty,
                                                        Callable]:
    """The stock checker set for pipelines over masked designs."""
    return {
        SecurityProperty.TVLA_BOUND: tvla_checker(n_traces, noise_sigma),
        SecurityProperty.MASKING: masking_checker(min(n_traces, 2500)),
        SecurityProperty.FAULT_DETECTION: fault_detection_checker(),
        SecurityProperty.SCAN_LEAKAGE: scan_leakage_checker(),
    }
