"""The registered pass library: every repo transform as a `Pass`.

One wrapper per substrate transform — synthesis rewrites
(:mod:`repro.synth.passes`), restructuring, masking and WDDL insertion
(:mod:`repro.sca`), DFT insertion (:mod:`repro.dft`), IP protection
(:mod:`repro.ip`), and placement / sign-off / ATPG
(:mod:`repro.physical`, :mod:`repro.dft.atpg`) — each with its stage
(Table II row) and a *total* effect declaration over
:data:`~repro.flow.properties.ALL_PROPERTIES`
(``scripts/check_passes.py`` rejects partial ones).

The declarations encode the paper's cross-effect matrix: PPA rewrites
that merge or re-order logic invalidate masking-domain separation and
the TVLA bound (Fig. 2); error-detection and locking insertion touch
the very wires masking protects; scan insertion opens the Sec. III
scan-leakage channel; sweeps of provably-dead logic preserve
everything.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Dict, Optional

from ..core.composition import Design
from ..core.stages import DesignStage
from ..dft import insert_scan, run_atpg, run_bist
from ..ip import camouflage, lock_xor, sfll_hd_lock
from ..physical import (
    annealing_placement,
    critical_path_placed,
    power_density_map,
)
from ..sca.masked_synthesis import mask_netlist
from ..sca.wddl import dual_rail_stimulus, wddl_transform
from ..synth import (
    BufferSweep,
    ConstantPropagation,
    DeadGateSweep,
    DoubleInversionElimination,
    StructuralHashing,
    SynthesisFlow,
    reassociate_for_timing,
    standard_library,
)
from .passes import (
    Pass,
    PassResult,
    effects,
    preserves_all,
    register_pass,
)
from .properties import SecurityProperty as P

#: The routed-layout properties (physical-design Table II row).  Any
#: pass that changes the netlist or placement makes existing routed
#: geometry stale, so netlist-mutating passes below invalidate all
#: three; pure analyses preserve them.
_LAYOUT = (P.PROBING_EXPOSURE, P.FIA_EXPOSURE, P.TROJAN_INSERTABILITY)


# ----------------------------------------------------------------------
# Logic-synthesis rewrites (wrapping repro.synth.passes)
# ----------------------------------------------------------------------

class _SynthRewritePass(Pass):
    """Shared apply() for single synthesis-rewrite wrappers."""

    stage = DesignStage.LOGIC_SYNTHESIS
    rewrite_cls = None

    def apply(self, netlist, ctx) -> PassResult:
        report = self.rewrite_cls()(netlist)
        return PassResult(
            self.name, rewrites=report.rewrites,
            summary=f"{report.pass_name}: {report.rewrites} rewrites, "
                    f"{report.cells_before} -> {report.cells_after} cells",
            details={"cells_removed":
                     report.cells_before - report.cells_after})


@register_pass
class ConstantPropagationPass(_SynthRewritePass):
    """Constant folding can collapse a share onto a constant wire."""

    name = "constprop"
    rewrite_cls = ConstantPropagation
    effects = effects(
        preserves=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW, P.SCAN_LEAKAGE,
                   P.FAULT_DETECTION],
        invalidates=[P.MASKING, P.TVLA_BOUND, *_LAYOUT])


@register_pass
class StructuralHashingPass(_SynthRewritePass):
    """Sharing logic across masking domains is the classic break; merged
    checker logic also voids duplication-based detection."""

    name = "strash"
    rewrite_cls = StructuralHashing
    effects = effects(
        preserves=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW, P.SCAN_LEAKAGE],
        invalidates=[P.MASKING, P.TVLA_BOUND, P.FAULT_DETECTION,
                     *_LAYOUT])


@register_pass
class DoubleInversionPass(_SynthRewritePass):
    """Dropping inverter pairs is local and value-preserving per wire."""

    name = "inv2"
    rewrite_cls = DoubleInversionElimination
    effects = preserves_all(invalidates=_LAYOUT)


@register_pass
class BufferSweepPass(_SynthRewritePass):
    """Buffers carry the same value as their fanin; removal is inert."""

    name = "bufsweep"
    rewrite_cls = BufferSweep
    effects = preserves_all(invalidates=_LAYOUT)


@register_pass
class DeadGateSweepPass(_SynthRewritePass):
    """Dead logic is unobservable by construction."""

    name = "sweep"
    rewrite_cls = DeadGateSweep
    effects = preserves_all(invalidates=_LAYOUT)


@register_pass
class SynthesisStagePass(Pass):
    """Full PPA synthesis + technology mapping, in place.

    Contains constprop/strash, so it inherits their invalidations.
    """

    name = "synthesis"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = effects(
        preserves=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW, P.SCAN_LEAKAGE],
        invalidates=[P.MASKING, P.TVLA_BOUND, P.FAULT_DETECTION,
                     *_LAYOUT])

    def __init__(self, iterations: int = 2, map_library=True) -> None:
        self.iterations = iterations
        self.map_library = map_library

    def apply(self, netlist, ctx) -> PassResult:
        flow = SynthesisFlow(
            library=standard_library() if self.map_library else None,
            iterations=self.iterations)
        result = flow.run(netlist, in_place=True)
        return PassResult(
            self.name,
            rewrites=sum(r.rewrites for r in result.pass_reports),
            summary=f"optimized {result.ppa_before.cell_count} -> "
                    f"{result.ppa_after.cell_count} cells, mapped to "
                    f"std library",
            details={"area": result.ppa_after.area,
                     "area_reduction": result.area_reduction})


@register_pass
class ReassociationPass(Pass):
    """Fig. 2: timing-driven XOR re-association, oblivious to masking.

    With the RNG inputs arriving late, the rebuilt trees compute sums
    of share products on real wires — functionally equivalent, masking
    destroyed.
    """

    name = "reassoc-timing"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = effects(
        preserves=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW, P.SCAN_LEAKAGE,
                   P.FAULT_DETECTION],
        invalidates=[P.MASKING, P.TVLA_BOUND, *_LAYOUT])

    def __init__(self, rng_prefix: str = "r", rng_arrival: float = 1e5
                 ) -> None:
        self.rng_prefix = rng_prefix
        self.rng_arrival = rng_arrival

    def apply(self, netlist, ctx) -> PassResult:
        late = {name: self.rng_arrival for name in netlist.inputs
                if name.startswith(self.rng_prefix)}
        rewrites = reassociate_for_timing(netlist, input_arrivals=late)
        return PassResult(
            self.name, rewrites=rewrites,
            summary=f"re-associated {rewrites} tree(s) for timing "
                    f"({len(late)} late RNG arrivals)")


@register_pass
class SecureSynthesisPass(Pass):
    """Security-aware synthesis stance: restructuring suppressed inside
    masked regions (marker pass; the suppression *is* doing nothing)."""

    name = "secure-synthesis"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = preserves_all()

    def apply(self, netlist, ctx) -> PassResult:
        return PassResult(
            self.name,
            summary="security-aware synthesis: restructuring suppressed "
                    "inside masked regions")


# ----------------------------------------------------------------------
# SCA countermeasure insertion (repro.sca)
# ----------------------------------------------------------------------

@register_pass
class MaskInsertionPass(Pass):
    """Automated first-order ISW masking of the whole netlist.

    Establishes masking-domain separation and the TVLA bound; replaces
    the port interface (share pairs + fresh randomness), so equivalence
    and any existing no-flow/fault-detection arguments are void.
    """

    name = "mask-insertion"
    stage = DesignStage.HIGH_LEVEL_SYNTHESIS
    effects = effects(
        preserves=[P.SCAN_LEAKAGE],
        establishes=[P.MASKING, P.TVLA_BOUND],
        invalidates=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW,
                     P.FAULT_DETECTION, *_LAYOUT])

    def apply(self, netlist, ctx) -> PassResult:
        masked = mask_netlist(netlist)
        previous = ctx.design.stimulus_adapter
        share_rng = random.Random(ctx.seed ^ 0x5EED)

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            return masked.stimulus(previous(stimulus), share_rng)

        design = replace(
            ctx.design,
            name=ctx.design.name + "+masked",
            netlist=masked.netlist,
            stimulus_adapter=adapter,
            alarm=None,
            payload_outputs=list(masked.netlist.outputs),
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["masked-circuit"] = masked
        return PassResult(
            self.name, rewrites=len(masked.netlist.gates),
            summary=f"ISW-masked {len(netlist.gates)} -> "
                    f"{len(masked.netlist.gates)} cells, "
                    f"{masked.randomness_bits} fresh random bits",
            details={"randomness_bits": masked.randomness_bits},
            design=design)


@register_pass
class WddlPass(Pass):
    """WDDL dual-rail hiding: constant switching activity per cycle."""

    name = "wddl-hiding"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = effects(
        preserves=[P.MASKING, P.SCAN_LEAKAGE],
        establishes=[P.TVLA_BOUND],
        invalidates=[P.FUNCTIONAL_EQUIVALENCE, P.NO_FLOW,
                     P.FAULT_DETECTION, *_LAYOUT])

    def apply(self, netlist, ctx) -> PassResult:
        dual, rails = wddl_transform(netlist)
        previous = ctx.design.stimulus_adapter

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            return dual_rail_stimulus(previous(stimulus))

        design = replace(
            ctx.design,
            name=ctx.design.name + "+wddl",
            netlist=dual,
            stimulus_adapter=adapter,
            alarm=None,
            payload_outputs=list(dual.outputs),
            protected_region_prefix="",
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["wddl-rails"] = rails
        return PassResult(
            self.name, rewrites=len(dual.gates),
            summary=f"WDDL dual-rail: {len(netlist.gates)} -> "
                    f"{len(dual.gates)} cells",
            design=design)


# ----------------------------------------------------------------------
# DFT insertion (repro.dft)
# ----------------------------------------------------------------------

@register_pass
class ScanInsertionPass(Pass):
    """Stitch all flops into one scan chain.

    Functionally transparent in capture mode, but a plain chain is the
    Sec. III scan-attack channel — it invalidates scan-leakage and
    every confidentiality argument (state becomes readable).
    """

    name = "scan-insertion"
    stage = DesignStage.TESTING
    effects = effects(
        preserves=[P.FUNCTIONAL_EQUIVALENCE, P.FAULT_DETECTION],
        invalidates=[P.MASKING, P.TVLA_BOUND, P.NO_FLOW,
                     P.SCAN_LEAKAGE, *_LAYOUT])

    def apply(self, netlist, ctx) -> PassResult:
        scan = insert_scan(netlist)
        previous = ctx.design.stimulus_adapter

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            adapted = dict(previous(stimulus))
            adapted.setdefault("scan_en", 0)
            adapted.setdefault("scan_in", 0)
            return adapted

        design = replace(
            ctx.design,
            name=ctx.design.name + "+scan",
            netlist=scan.netlist,
            stimulus_adapter=adapter,
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["scan-chain"] = scan
        return PassResult(
            self.name, rewrites=scan.length,
            summary=f"scan chain over {scan.length} flops",
            details={"chain_length": scan.length},
            design=design)


@register_pass
class BistSignaturePass(Pass):
    """LFSR/MISR BIST characterization — pure analysis, no mutation."""

    name = "bist-signature"
    stage = DesignStage.TESTING
    effects = preserves_all()

    def __init__(self, n_patterns: int = 256) -> None:
        self.n_patterns = n_patterns

    def apply(self, netlist, ctx) -> PassResult:
        result = run_bist(netlist, n_patterns=self.n_patterns)
        ctx.notes["bist"] = result
        return PassResult(
            self.name,
            summary=f"BIST signature {result.signature:#x} over "
                    f"{self.n_patterns} patterns",
            details={"n_patterns": self.n_patterns})


@register_pass
class AtpgPass(Pass):
    """Stuck-at ATPG — pure analysis over the current netlist."""

    name = "atpg"
    stage = DesignStage.TESTING
    effects = preserves_all()

    def __init__(self, random_budget: int = 32) -> None:
        self.random_budget = random_budget

    def apply(self, netlist, ctx) -> PassResult:
        atpg = run_atpg(netlist, random_budget=self.random_budget,
                        seed=ctx.seed)
        ctx.notes["atpg"] = atpg
        return PassResult(
            self.name,
            summary=f"ATPG: {len(atpg.vectors)} vectors, "
                    f"{len(atpg.untestable)} redundant faults",
            details={"stuck_at_coverage": atpg.coverage})


# ----------------------------------------------------------------------
# IP protection (repro.ip)
# ----------------------------------------------------------------------

@register_pass
class LogicLockingPass(Pass):
    """EPIC-style XOR/XNOR locking.

    Key gates sit on internal nets inside the masked cone, so every
    prior functional and side-channel argument is void until re-shown
    under the correct key (the stimulus adapter supplies it).
    """

    name = "logic-locking"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = effects(
        preserves=[P.SCAN_LEAKAGE],
        invalidates=[P.FUNCTIONAL_EQUIVALENCE, P.MASKING, P.TVLA_BOUND,
                     P.NO_FLOW, P.FAULT_DETECTION, *_LAYOUT])

    def __init__(self, key_bits: int = 8) -> None:
        self.key_bits = key_bits

    def apply(self, netlist, ctx) -> PassResult:
        locked = lock_xor(netlist, self.key_bits, seed=ctx.seed)
        previous = ctx.design.stimulus_adapter

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            adapted = dict(previous(stimulus))
            adapted.update(locked.key)
            return adapted

        design = replace(
            ctx.design,
            name=ctx.design.name + "+locked",
            netlist=locked.netlist,
            stimulus_adapter=adapter,
            key_bits=ctx.design.key_bits + locked.key_bits,
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["locked-circuit"] = locked
        return PassResult(
            self.name, rewrites=locked.key_bits,
            summary=f"inserted {locked.key_bits} XOR/XNOR key gates",
            details={"key_bits": locked.key_bits},
            design=design)


@register_pass
class SfllLockPass(Pass):
    """SFLL-HD point-function locking on one output."""

    name = "sfll-lock"
    stage = DesignStage.LOGIC_SYNTHESIS
    effects = effects(
        preserves=[P.SCAN_LEAKAGE],
        invalidates=[P.FUNCTIONAL_EQUIVALENCE, P.MASKING, P.TVLA_BOUND,
                     P.NO_FLOW, P.FAULT_DETECTION, *_LAYOUT])

    def __init__(self, output: Optional[str] = None, h: int = 0,
                 n_protect_bits: Optional[int] = None) -> None:
        self.output = output
        self.h = h
        self.n_protect_bits = n_protect_bits

    def apply(self, netlist, ctx) -> PassResult:
        output = self.output or netlist.outputs[0]
        sfll = sfll_hd_lock(netlist, output, h=self.h,
                            n_protect_bits=self.n_protect_bits,
                            seed=ctx.seed)
        locked = sfll.locked
        previous = ctx.design.stimulus_adapter

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            adapted = dict(previous(stimulus))
            adapted.update(locked.key)
            return adapted

        design = replace(
            ctx.design,
            name=ctx.design.name + "+sfll",
            netlist=locked.netlist,
            stimulus_adapter=adapter,
            key_bits=ctx.design.key_bits + locked.key_bits,
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["sfll-circuit"] = sfll
        return PassResult(
            self.name, rewrites=locked.key_bits,
            summary=f"SFLL-HD (h={sfll.h}) on {output}: "
                    f"{locked.key_bits} key bits",
            details={"key_bits": locked.key_bits},
            design=design)


@register_pass
class CamouflagePass(Pass):
    """Cell camouflaging: function hidden from imaging, not changed."""

    name = "camouflage"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    effects = preserves_all(invalidates=_LAYOUT)

    def __init__(self, n_cells: int = 4) -> None:
        self.n_cells = n_cells

    def apply(self, netlist, ctx) -> PassResult:
        camo = camouflage(netlist, self.n_cells, seed=ctx.seed)
        design = replace(
            ctx.design,
            name=ctx.design.name + "+camo",
            netlist=camo.netlist,
            applied=list(ctx.design.applied) + [self.name])
        ctx.notes["camouflage"] = camo
        return PassResult(
            self.name, rewrites=camo.n_cells,
            summary=f"camouflaged {camo.n_cells} cells "
                    f"({len(camo.candidates)}-way candidate set)",
            details={"camo_cells": camo.n_cells},
            design=design)


# ----------------------------------------------------------------------
# Physical synthesis and sign-off (repro.physical, analysis-only)
# ----------------------------------------------------------------------

@register_pass
class PlacementPass(Pass):
    """Simulated-annealing placement; publishes ``ctx.placement``."""

    name = "placement"
    stage = DesignStage.PHYSICAL_SYNTHESIS
    effects = preserves_all(invalidates=_LAYOUT)

    def __init__(self, iterations: int = 3000) -> None:
        self.iterations = iterations

    def apply(self, netlist, ctx) -> PassResult:
        placed = annealing_placement(netlist, iterations=self.iterations,
                                     seed=ctx.seed)
        ctx.placement = placed.placement
        ctx.notes["placement"] = placed
        return PassResult(
            self.name,
            summary=f"annealing placement: HPWL {placed.initial_hpwl:.0f}"
                    f" -> {placed.final_hpwl:.0f}",
            details={"hpwl": placed.final_hpwl})


@register_pass
class StaSignoffPass(Pass):
    """Wire-aware STA + IR-drop proxy over the current placement."""

    name = "sta-signoff"
    stage = DesignStage.TIMING_POWER_VERIFICATION
    effects = preserves_all()

    def apply(self, netlist, ctx) -> PassResult:
        if ctx.placement is None:
            raise ValueError("sta-signoff requires a prior placement pass")
        delay = critical_path_placed(netlist, ctx.placement)
        density = power_density_map(netlist, ctx.placement)
        return PassResult(
            self.name,
            summary="wire-aware STA and IR-drop proxy check",
            details={"critical_path_ps": delay,
                     "max_power_density": float(density.max())})


@register_pass
class AtpgSkipPass(Pass):
    """Explicit record that the flow configuration skipped ATPG."""

    name = "atpg-skip"
    stage = DesignStage.TESTING
    effects = preserves_all()

    def apply(self, netlist, ctx) -> PassResult:
        return PassResult(self.name,
                          summary="ATPG skipped (flow configuration)")


@register_pass
class FunctionalValidationPass(Pass):
    """The classical flow's validation stance made explicit."""

    name = "lec-assume"
    stage = DesignStage.FUNCTIONAL_VALIDATION
    effects = preserves_all()

    def apply(self, netlist, ctx) -> PassResult:
        return PassResult(
            self.name,
            summary="logic equivalence assumed from certified rewrites "
                    "(no security properties checked)")
