"""repro.flow — the unified pass-manager IR for secure flows.

Every netlist transform in the repo is a registered
:class:`~repro.flow.passes.Pass` declaring which security properties it
preserves, establishes, or invalidates; :class:`~repro.flow.manager.
PassManager` runs pipelines, re-verifies only what a pass invalidated
(the paper's re-check loop, made incremental), shares expensive
analyses through an epoch-keyed :class:`~repro.flow.analysis.
AnalysisCache`, and records machine-readable provenance in a
:class:`~repro.flow.manager.FlowTrace`.
"""

from .properties import (
    ALL_PROPERTIES,
    PropertyCheck,
    SecurityProperty,
    default_checkers,
    fault_detection_check,
    fault_detection_checker,
    make_equivalence_check,
    masking_check,
    masking_checker,
    no_flow_check,
    fia_exposure_checker,
    layout_checkers,
    probing_exposure_checker,
    scan_leakage_check,
    scan_leakage_checker,
    trojan_insertability_checker,
    tvla_check,
    tvla_checker,
)
from .analysis import AnalysisCache
from .passes import (
    Effects,
    Pass,
    PassResult,
    conservative,
    create_pass,
    effects,
    preserves_all,
    register_pass,
    registered_passes,
)
from .manager import (
    FlowContext,
    FlowRunResult,
    FlowTrace,
    PassManager,
    PassProvenance,
    PropertyRecheck,
    to_flow_report,
)
from . import library as library  # noqa: F401  (populates the registry)
from . import layout_library as layout_library  # noqa: F401  (registry)
from .layout_library import (
    BuryCriticalNetsPass,
    EcoFillerPass,
    RoutingPass,
    ShieldInsertionPass,
)
from .library import (
    AtpgPass,
    AtpgSkipPass,
    BistSignaturePass,
    BufferSweepPass,
    CamouflagePass,
    ConstantPropagationPass,
    DeadGateSweepPass,
    DoubleInversionPass,
    FunctionalValidationPass,
    LogicLockingPass,
    MaskInsertionPass,
    PlacementPass,
    ReassociationPass,
    ScanInsertionPass,
    SecureSynthesisPass,
    SfllLockPass,
    StaSignoffPass,
    StructuralHashingPass,
    SynthesisStagePass,
    WddlPass,
)
from .pipelines import (
    ConservativeTransformPass,
    SecurePlacementPass,
    classical_pipeline,
    netlist_design,
    secure_masking_pipeline,
    secure_pipeline,
)

__all__ = [
    "ALL_PROPERTIES", "PropertyCheck", "SecurityProperty",
    "default_checkers", "fault_detection_check", "fault_detection_checker",
    "make_equivalence_check", "masking_check", "masking_checker",
    "no_flow_check", "scan_leakage_check", "scan_leakage_checker",
    "tvla_check", "tvla_checker",
    "fia_exposure_checker", "layout_checkers",
    "probing_exposure_checker", "trojan_insertability_checker",
    "AnalysisCache",
    "Effects", "Pass", "PassResult", "conservative", "create_pass",
    "effects", "preserves_all", "register_pass", "registered_passes",
    "FlowContext", "FlowRunResult", "FlowTrace", "PassManager",
    "PassProvenance", "PropertyRecheck", "to_flow_report",
    "AtpgPass", "AtpgSkipPass", "BistSignaturePass", "BufferSweepPass",
    "CamouflagePass", "ConstantPropagationPass", "DeadGateSweepPass",
    "DoubleInversionPass", "FunctionalValidationPass", "LogicLockingPass",
    "MaskInsertionPass", "PlacementPass", "ReassociationPass",
    "ScanInsertionPass", "SecureSynthesisPass", "SfllLockPass",
    "StaSignoffPass", "StructuralHashingPass", "SynthesisStagePass",
    "WddlPass",
    "BuryCriticalNetsPass", "EcoFillerPass", "RoutingPass",
    "ShieldInsertionPass",
    "ConservativeTransformPass", "SecurePlacementPass",
    "classical_pipeline", "netlist_design", "secure_masking_pipeline",
    "secure_pipeline",
]
