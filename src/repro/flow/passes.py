"""The Pass contract: named, staged transforms with declared effects.

The paper's central observation (Sec. II-B, Fig. 2) is that *any*
transform — a PPA rewrite, a countermeasure, DFT insertion — can
silently destroy a security property established earlier.  The fix is
structural: every transform becomes a :class:`Pass` that declares, for
**every** tracked :class:`~repro.flow.properties.SecurityProperty`,
whether it *preserves*, *establishes*, or *invalidates* it.  The pass
manager (:mod:`repro.flow.manager`) turns those declarations into an
incremental re-verification schedule; ``scripts/check_passes.py``
statically rejects passes whose declarations are incomplete.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, Optional, Type

from ..core.stages import DesignStage
from .properties import ALL_PROPERTIES, SecurityProperty

if TYPE_CHECKING:  # pragma: no cover - annotations only
    from ..core.composition import Design
    from ..netlist import Netlist
    from .manager import FlowContext


def _propset(props: Iterable) -> FrozenSet[SecurityProperty]:
    out = frozenset(props)
    for p in out:
        if not isinstance(p, SecurityProperty):
            raise TypeError(f"not a SecurityProperty: {p!r}")
    return out


@dataclass(frozen=True)
class Effects:
    """A pass's declared action on each tracked security property.

    ``preserves``  — the pass provably cannot destroy the property;
    ``establishes`` — the pass is meant to make the property hold
    (the manager checks it right after the pass to confirm);
    ``invalidates`` — the pass may destroy the property; if it held
    before the pass, the manager schedules a re-check.

    The three sets must be disjoint; a pass with an *undeclared*
    property is treated as invalidating it (conservative), and flagged
    by the static audit.
    """

    preserves: FrozenSet[SecurityProperty] = frozenset()
    establishes: FrozenSet[SecurityProperty] = frozenset()
    invalidates: FrozenSet[SecurityProperty] = frozenset()

    def __post_init__(self) -> None:
        if (self.preserves & self.establishes
                or self.preserves & self.invalidates
                or self.establishes & self.invalidates):
            raise ValueError("effects sets must be disjoint")

    @property
    def declared(self) -> FrozenSet[SecurityProperty]:
        return self.preserves | self.establishes | self.invalidates

    @property
    def undeclared(self) -> FrozenSet[SecurityProperty]:
        return frozenset(ALL_PROPERTIES) - self.declared

    def classify(self, prop: SecurityProperty) -> str:
        """'preserves' | 'establishes' | 'invalidates' for ``prop``.

        Undeclared properties classify as ``'invalidates'`` — the safe
        default the paper's re-verification loop demands.
        """
        if prop in self.preserves:
            return "preserves"
        if prop in self.establishes:
            return "establishes"
        return "invalidates"

    def as_dict(self) -> Dict[str, list]:
        """JSON-friendly view for :class:`~repro.flow.manager.FlowTrace`."""
        return {
            "preserves": sorted(p.value for p in self.preserves),
            "establishes": sorted(p.value for p in self.establishes),
            "invalidates": sorted(p.value for p in self.invalidates),
        }


def effects(preserves: Iterable = (), establishes: Iterable = (),
            invalidates: Iterable = ()) -> Effects:
    """Explicit effect declaration (sets must jointly cover everything
    for the static audit to accept the pass)."""
    return Effects(_propset(preserves), _propset(establishes),
                   _propset(invalidates))


def preserves_all(establishes: Iterable = (),
                  invalidates: Iterable = ()) -> Effects:
    """Everything not named is declared preserved (analysis passes,
    provably-local rewrites)."""
    named = _propset(establishes) | _propset(invalidates)
    return Effects(frozenset(ALL_PROPERTIES) - named,
                   _propset(establishes), _propset(invalidates))


def conservative(establishes: Iterable = (),
                 preserves: Iterable = ()) -> Effects:
    """Everything not named is declared invalidated — the paper's
    non-incremental "re-run everything" loop, used for transforms
    nobody has proven anything about."""
    named = _propset(establishes) | _propset(preserves)
    return Effects(_propset(preserves), _propset(establishes),
                   frozenset(ALL_PROPERTIES) - named)


@dataclass
class PassResult:
    """Structured outcome of one pass application.

    ``design`` is set when the pass replaced the design wholesale
    (masking, WDDL, locking: new netlist + new stimulus interface);
    in-place passes leave it ``None`` and mutate the netlist they were
    handed.  ``details`` carries per-pass metrics (numeric values are
    surfaced as stage metrics in legacy flow reports); ``summary`` is
    the one-line human trace entry.
    """

    pass_name: str
    rewrites: int = 0
    summary: str = ""
    details: Dict[str, object] = field(default_factory=dict)
    design: Optional["Design"] = None


class Pass:
    """Base class for all registered flow transforms.

    Subclasses set ``name`` (registry key), ``stage`` (the Table II row
    the transform belongs to) and ``effects``, and implement
    :meth:`apply`, which receives the *current netlist* and the flow
    context (``ctx.design``, ``ctx.cache``, ``ctx.placement``,
    ``ctx.seed``) and returns a :class:`PassResult`.
    """

    name: str = ""
    stage: Optional[DesignStage] = None
    effects: Optional[Effects] = None
    #: Closure ECO passes edit routed geometry only (shields, fillers,
    #: re-routing) — never the netlist.  The static audit holds them to
    #: that contract: they must declare functional equivalence
    #: preserved, establish at least one layout property, and sit in
    #: the physical-synthesis stage.
    is_closure_eco: bool = False

    def apply(self, netlist: "Netlist", ctx: "FlowContext") -> PassResult:
        raise NotImplementedError

    def __repr__(self) -> str:
        stage = self.stage.value if self.stage else "?"
        return f"<Pass {self.name or type(self).__name__} [{stage}]>"


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Pass]] = {}


def register_pass(cls: Type[Pass]) -> Type[Pass]:
    """Class decorator: add a Pass subclass to the global registry.

    Registration requires a unique ``name``; the *completeness* of the
    stage/effects declaration is checked by ``scripts/check_passes.py``
    (and the test that imports it) rather than here, so a half-written
    pass fails the audit instead of breaking import.
    """
    if not cls.name:
        raise ValueError(f"pass class {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ValueError(f"duplicate pass name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def registered_passes() -> Dict[str, Type[Pass]]:
    """Name -> class view of the registry (copy; mutation-safe)."""
    return dict(_REGISTRY)


def create_pass(name: str, **params) -> Pass:
    """Instantiate a registered pass by name."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown pass {name!r}; registered: {known}") \
            from None
    return cls(**params)
