"""Epoch-keyed analysis cache for the pass manager.

Every expensive derived view of a netlist — topological order,
levelization, PPA, the compiled simulation program, leakage traces —
is an *analysis*.  :class:`AnalysisCache` stores one entry per
``(analysis name, extra key)`` pair, validated against the identity of
the netlist it was computed from **and** the netlist's
:attr:`~repro.netlist.Netlist.mutation_epoch` at computation time.
Any structural mutation bumps the epoch (see ``Netlist.invalidate``),
so stale entries can never be served; passes that merely *read* the
netlist (placement, sign-off, re-verification of preserved properties)
get their analyses back for free.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from ..netlist import Netlist, ppa_report
from ..netlist.engine import get_compiled


class AnalysisCache:
    """Memoized netlist analyses, invalidated by mutation epoch."""

    def __init__(self) -> None:
        self._entries: Dict[Tuple, Tuple[Any, int, Netlist, Any]] = {}
        self.hits = 0
        self.misses = 0

    def get(self, name: str, netlist: Netlist, build: Callable[[], Any],
            key: Tuple = ()) -> Any:
        """Cached ``build()`` result for ``(name, key)`` on ``netlist``.

        ``key`` disambiguates parameterized analyses (e.g. leakage
        traces at different budgets); entries additionally pin the exact
        anchor object passed in ``key[0]`` (if any) by identity, so a
        recycled ``id()`` can never alias a stale result.
        """
        anchor = key[0] if key else netlist
        full_key = (name,) + tuple(
            k if isinstance(k, (int, float, str, bool, type(None)))
            else id(k) for k in key)
        entry = self._entries.get(full_key)
        if (entry is not None and entry[0] is anchor
                and entry[1] == netlist.mutation_epoch
                and entry[2] is netlist):
            self.hits += 1
            return entry[3]
        self.misses += 1
        value = build()
        self._entries[full_key] = (anchor, netlist.mutation_epoch,
                                   netlist, value)
        return value

    def invalidate(self, name: Optional[str] = None) -> None:
        """Drop entries for one analysis name, or everything."""
        if name is None:
            self._entries.clear()
            return
        for full_key in [k for k in self._entries if k[0] == name]:
            del self._entries[full_key]

    def __len__(self) -> int:
        return len(self._entries)

    # -- stock analyses ------------------------------------------------

    def topo_order(self, netlist: Netlist):
        """Cached topological order."""
        return self.get("topo-order", netlist, netlist.topological_order)

    def levels(self, netlist: Netlist):
        """Cached logic levelization."""
        return self.get("levels", netlist, netlist.levels)

    def ppa(self, netlist: Netlist):
        """Cached PPA report."""
        return self.get("ppa", netlist, lambda: ppa_report(netlist))

    def compiled(self, netlist: Netlist):
        """Cached compiled simulation program.

        ``get_compiled`` already keeps one program per netlist keyed on
        topo-list identity; routing it through the cache also counts
        hits/misses into the flow provenance.
        """
        return self.get("compiled-engine", netlist,
                        lambda: get_compiled(netlist))
