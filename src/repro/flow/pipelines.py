"""Stock pipelines: the classical and secure flows as pass sequences.

``ClassicalFlow`` and ``SecureFlow`` in :mod:`repro.core` are now thin
wrappers over these definitions — the flows *are* pipelines, and
everything they do is visible in the resulting
:class:`~repro.flow.manager.FlowTrace`.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..core.composition import Countermeasure, Design
from ..core.stages import DesignStage
from ..netlist import Netlist
from .library import (
    AtpgPass,
    AtpgSkipPass,
    FunctionalValidationPass,
    MaskInsertionPass,
    PlacementPass,
    SecureSynthesisPass,
    StaSignoffPass,
    SynthesisStagePass,
)
from .passes import Pass, PassResult, conservative


def netlist_design(netlist: Netlist, name: Optional[str] = None,
                   seed: int = 0) -> Design:
    """Wrap a bare netlist as a Design with generic TVLA classes.

    For flows that never run leakage checks (the classical pipeline)
    the classes are irrelevant; for quick experiments, "fixed" pins
    every input to the seed-derived constant and "random" draws fresh
    bits per trace.
    """
    inputs = list(netlist.inputs)
    pinned = {name_: random.Random(seed).randint(0, 1)
              for name_ in inputs}

    def fixed(rng: random.Random) -> Dict[str, int]:
        del rng
        return dict(pinned)

    def rand(rng: random.Random) -> Dict[str, int]:
        return {name_: rng.randint(0, 1) for name_ in inputs}

    return Design(name=name or netlist.name, netlist=netlist,
                  tvla_fixed=fixed, tvla_random=rand,
                  payload_outputs=list(netlist.outputs))


class ConservativeTransformPass(Pass):
    """A legacy :class:`~repro.core.composition.Countermeasure` run as a
    pass that declares nothing — so the manager conservatively
    re-checks every tracked property after it.

    This is the exact semantics of the paper's (and the legacy
    ``SecureFlow``'s) re-run-everything loop; transforms migrate to
    registered passes with real declarations to become incremental.
    """

    stage = DesignStage.LOGIC_SYNTHESIS
    effects = conservative()

    def __init__(self, transform: Countermeasure) -> None:
        self.transform = transform
        self.name = transform.name

    def apply(self, netlist, ctx) -> PassResult:
        design = self.transform.apply(ctx.design)
        design.applied.append(self.transform.name)
        return PassResult(
            self.name,
            summary=f"applied transform: {self.transform.name}",
            design=design)


class SecurePlacementPass(PlacementPass):
    """Placement inside the conservative secure flow: declares nothing,
    so all requirements are re-run post-placement (legacy semantics).
    Adds the placed critical path to the stage metrics."""

    effects = conservative()

    def apply(self, netlist, ctx) -> PassResult:
        from ..physical import critical_path_placed

        result = super().apply(netlist, ctx)
        result.summary = "placement (security checks re-run)"
        result.details["critical_path_ps"] = critical_path_placed(
            netlist, ctx.placement)
        return result


def classical_pipeline(placement_iterations: int = 6000,
                       run_atpg_stage: bool = True) -> List[Pass]:
    """Fig. 1 as a pipeline: synthesis, validation, PnR, sign-off, test.

    Run with ``goals=()`` — no security property is ever tracked, which
    is the classical flow's defining gap.
    """
    return [
        SynthesisStagePass(),
        FunctionalValidationPass(),
        PlacementPass(iterations=placement_iterations),
        StaSignoffPass(),
        AtpgPass() if run_atpg_stage else AtpgSkipPass(),
    ]


def secure_pipeline(transforms: Sequence[Countermeasure] = (),
                    placement_iterations: int = 3000) -> List[Pass]:
    """The legacy secure flow as a pipeline of conservative passes.

    Every transform is undeclared, so the manager re-checks all tracked
    requirements after each — the paper's full re-verification loop.
    """
    return [
        SecureSynthesisPass(),
        *(ConservativeTransformPass(t) for t in transforms),
        SecurePlacementPass(iterations=placement_iterations),
    ]


def secure_masking_pipeline(placement_iterations: int = 2000) -> List[Pass]:
    """Masking-first secure flow with *declared* effects end to end:
    mask, clean up (preserving passes — no re-checks), place, sign off.
    """
    from .library import BufferSweepPass, DeadGateSweepPass

    return [
        MaskInsertionPass(),
        BufferSweepPass(),
        DeadGateSweepPass(),
        PlacementPass(iterations=placement_iterations),
        StaSignoffPass(),
    ]
