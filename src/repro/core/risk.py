"""Risk register: the flow's residual-risk output (paper Sec. II-C).

    "EDA tools should assist the designer with automated integration of
    security features and countermeasures but also need to formulate
    the related limitations and remaining risks clearly, to enable
    effective risk management."

A :class:`RiskRegister` collects quantified findings from the
composition engine and the secure flow into exactly that artifact: per
threat, what was checked, what the measured exposure is, what residual
risk remains outside the modeled attacker (the paper's "impossible to
hinder an adversary from going beyond the modeled means").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .composition import CompositionReport
from .threats import ThreatVector


class Severity(enum.Enum):
    """Finding severity ladder for the risk register."""

    INFO = "info"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    CRITICAL = "critical"


@dataclass
class RiskEntry:
    """One finding with its quantification and residual statement."""

    threat: ThreatVector
    title: str
    severity: Severity
    measured: str                 # the quantitative evidence
    residual: str                 # what remains outside the model
    mitigation: Optional[str] = None


#: Residual-risk statements per threat — the model's declared edges.
MODEL_LIMITS = {
    ThreatVector.SIDE_CHANNEL: (
        "leakage model is gate-level switching/value activity; "
        "analog effects (coupling, supply filtering) and higher-order/"
        "multivariate combinations beyond order 2 are unmodeled"),
    ThreatVector.FAULT_INJECTION: (
        "fault model covers transient bit/byte upsets and clock "
        "glitches; multi-fault combined attacks and analog fault "
        "shapes are unmodeled"),
    ThreatVector.IP_PIRACY: (
        "attacker models: oracle-guided SAT, structural matching, "
        "via/cell proximity; learned attacks with richer features may "
        "exceed measured rates"),
    ThreatVector.TROJAN: (
        "screens are statistical against process variation; a Trojan "
        "below the variation floor or triggered by unmodeled events "
        "may escape"),
}


@dataclass
class RiskRegister:
    """The flow's hand-off artifact to risk management."""

    design_name: str
    entries: List[RiskEntry] = field(default_factory=list)

    def add(self, entry: RiskEntry) -> None:
        """Record one finding."""
        self.entries.append(entry)

    @property
    def worst(self) -> Severity:
        order = list(Severity)
        if not self.entries:
            return Severity.INFO
        return max((e.severity for e in self.entries),
                   key=order.index)

    def by_threat(self, threat: ThreatVector) -> List[RiskEntry]:
        """Findings for one threat vector."""
        return [e for e in self.entries if e.threat is threat]

    def render(self) -> str:
        """Human-readable register grouped by threat."""
        lines = [f"=== risk register: {self.design_name} "
                 f"(worst: {self.worst.value}) ==="]
        for vector in ThreatVector:
            entries = self.by_threat(vector)
            if not entries:
                continue
            lines.append(f"\n[{vector.value}]")
            for e in entries:
                lines.append(f"  ({e.severity.value.upper()}) {e.title}")
                lines.append(f"      measured: {e.measured}")
                if e.mitigation:
                    lines.append(f"      mitigation: {e.mitigation}")
                lines.append(f"      residual: {e.residual}")
        return "\n".join(lines)


def register_from_composition(design_name: str,
                              report: CompositionReport) -> RiskRegister:
    """Convert a composition audit into a risk register.

    Harmful cross-effects become HIGH/CRITICAL findings; clean steps
    become INFO entries with the model-limit residual attached.
    """
    register = RiskRegister(design_name)
    final = report.steps[-1][1] if report.steps else None
    for effect in report.cross_effects:
        if effect.harmful:
            severity = (Severity.CRITICAL
                        if effect.metric == "tvla_max_t"
                        else Severity.HIGH)
            threat = (ThreatVector.SIDE_CHANNEL
                      if "tvla" in effect.metric or "leak" in effect.metric
                      else ThreatVector.FAULT_INJECTION)
            register.add(RiskEntry(
                threat=threat,
                title=f"{effect.countermeasure} degrades {effect.metric}",
                severity=severity,
                measured=f"{effect.metric}: {effect.before:.2f} -> "
                         f"{effect.after:.2f} ({effect.note})",
                residual=MODEL_LIMITS[threat],
                mitigation="reorder/replace the countermeasure; re-run "
                           "the composition audit",
            ))
    if final is not None:
        register.add(RiskEntry(
            threat=ThreatVector.SIDE_CHANNEL,
            title="first-order leakage assessment",
            severity=(Severity.CRITICAL if final.tvla_max_t > 4.5
                      else Severity.INFO),
            measured=f"TVLA max|t| = {final.tvla_max_t:.2f} at the "
                     f"configured trace budget",
            residual=MODEL_LIMITS[ThreatVector.SIDE_CHANNEL],
        ))
        register.add(RiskEntry(
            threat=ThreatVector.FAULT_INJECTION,
            title="fault-detection coverage",
            severity=(Severity.INFO if final.fia_coverage >= 0.99
                      else Severity.MEDIUM
                      if final.fia_coverage >= 0.9 else Severity.HIGH),
            measured=f"detection coverage {final.fia_coverage:.2f}, "
                     f"{final.fia_silent} silent corruptions in the "
                     f"campaign",
            residual=MODEL_LIMITS[ThreatVector.FAULT_INJECTION],
        ))
    return register
