"""Report generation: regenerate the paper's Table I from the framework.

Table I maps threat vectors to attack times and EDA roles.  Rather than
hard-coding the table, :func:`table_i` derives it from the registered
threat models — and :func:`table_i_with_evidence` attaches, per row, the
names of this repository's modules that *implement* each role, so the
table doubles as a capability index.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from .threats import (
    THREAT_CATALOG,
    AttackTime,
    EdaRole,
    ThreatVector,
)

#: Which repro modules realize each EDA role per threat vector.
ROLE_EVIDENCE: Dict[Tuple[ThreatVector, EdaRole], List[str]] = {
    (ThreatVector.SIDE_CHANNEL, EdaRole.EVALUATION): [
        "repro.sca.tvla", "repro.sca.cpa", "repro.sca.localize",
        "repro.sca.glitch", "repro.hls.ift",
    ],
    (ThreatVector.SIDE_CHANNEL, EdaRole.MITIGATION): [
        "repro.sca.masking", "repro.sca.wddl", "repro.hls.secure",
        "repro.dft.scan_attack (secure scan)",
    ],
    (ThreatVector.FAULT_INJECTION, EdaRole.EVALUATION): [
        "repro.fia.analysis", "repro.fia.dfa", "repro.formal.properties",
    ],
    (ThreatVector.FAULT_INJECTION, EdaRole.MITIGATION): [
        "repro.fia.codes", "repro.fia.infective", "repro.fia.sensors",
        "repro.dft.dfx",
    ],
    (ThreatVector.IP_PIRACY, EdaRole.MITIGATION): [
        "repro.ip.locking", "repro.ip.sfll", "repro.ip.camouflage",
        "repro.ip.split", "repro.ip.watermark", "repro.ip.metering",
        "repro.ip.puf",
    ],
    (ThreatVector.TROJAN, EdaRole.MITIGATION): [
        "repro.trojan.monitors (TPAD, BISA)",
    ],
    (ThreatVector.TROJAN, EdaRole.VERIFICATION): [
        "repro.formal.equivalence", "repro.core.table2 (proof-carrying)",
    ],
    (ThreatVector.TROJAN, EdaRole.TEST_PREPARATION): [
        "repro.trojan.mero", "repro.trojan.fingerprint",
        "repro.trojan.sidechannel",
    ],
}


@dataclass
class TableIRow:
    vector: ThreatVector
    attack_times: List[AttackTime]
    roles: List[EdaRole]
    evidence: Dict[EdaRole, List[str]]


def table_i() -> List[TableIRow]:
    """Derive Table I's rows from the threat-model catalog."""
    rows: Dict[ThreatVector, TableIRow] = {}
    for model in THREAT_CATALOG.values():
        row = rows.get(model.vector)
        if row is None:
            row = TableIRow(model.vector, [], [], {})
            rows[row.vector] = row
        for t in model.attack_times:
            if t not in row.attack_times:
                row.attack_times.append(t)
        for role in model.eda_roles:
            if role not in row.roles:
                row.roles.append(role)
    for row in rows.values():
        for role in row.roles:
            row.evidence[role] = ROLE_EVIDENCE.get(
                (row.vector, role), [])
    order = [ThreatVector.SIDE_CHANNEL, ThreatVector.FAULT_INJECTION,
             ThreatVector.IP_PIRACY, ThreatVector.TROJAN]
    return [rows[v] for v in order if v in rows]


def render_table_i(rows: List[TableIRow],
                   with_evidence: bool = True) -> str:
    """Text rendering of Table I (optionally with implementing modules)."""
    lines = ["=== Table I: security threats and the roles of EDA ==="]
    for row in rows:
        lines.append(f"\nThreat vector: {row.vector.value}")
        lines.append("  time of attack: "
                     + ", ".join(t.value for t in row.attack_times))
        lines.append("  roles of EDA:")
        for role in row.roles:
            lines.append(f"    - {role.value}")
            if with_evidence:
                for module in row.evidence.get(role, []):
                    lines.append(f"        implemented by {module}")
    return "\n".join(lines)
