"""Threat vectors and threat models (paper Table I and Sec. II-C).

The paper insists every security scheme starts from an explicit threat
model: the adversary's assets, capabilities, constraints, and goals,
plus when in the IC life cycle the attack happens.  These dataclasses
make that first-class in the flow: every security pass declares the
threats it addresses, every metric the threat it quantifies, and the
composition engine slices reports by these vectors.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple


class ThreatVector(enum.Enum):
    """The four threat columns of Table I / Table II."""

    SIDE_CHANNEL = "side-channel attacks"
    FAULT_INJECTION = "fault-injection attacks"
    IP_PIRACY = "IP piracy and counterfeiting"
    TROJAN = "hardware Trojans"


class AttackTime(enum.Enum):
    """When in the life cycle the attack occurs (Table I column 2)."""

    DESIGN = "design"
    MANUFACTURING = "manufacturing"
    RUNTIME = "runtime"
    IN_FIELD = "in the field"


class EdaRole(enum.Enum):
    """What EDA can contribute (Table I column 3)."""

    EVALUATION = "evaluation at design time"
    MITIGATION = "mitigation at design time"
    VERIFICATION = "verification at design time"
    TEST_PREPARATION = "preparing for testing and inspection"


@dataclass(frozen=True)
class ThreatModel:
    """A fully specified adversary (paper Sec. II-C)."""

    name: str
    vector: ThreatVector
    attack_times: Tuple[AttackTime, ...]
    adversary: str                   # who
    assets: Tuple[str, ...]          # what they want
    capabilities: Tuple[str, ...]    # what they can do
    constraints: Tuple[str, ...]     # what they cannot do
    goals: Tuple[str, ...]
    eda_roles: Tuple[EdaRole, ...]


#: The standard adversaries used throughout the experiments — one (or
#: two) per Table I row.
THREAT_CATALOG: Dict[str, ThreatModel] = {}


def _register(model: ThreatModel) -> ThreatModel:
    THREAT_CATALOG[model.name] = model
    return model


POWER_SCA_ADVERSARY = _register(ThreatModel(
    name="power-sca",
    vector=ThreatVector.SIDE_CHANNEL,
    attack_times=(AttackTime.RUNTIME,),
    adversary="physical attacker with oscilloscope access to the device",
    assets=("cryptographic keys", "processed secrets"),
    capabilities=(
        "measure power/EM traces for chosen plaintexts",
        "average millions of measurements",
        "profile identical devices",
    ),
    constraints=("cannot open the package", "no fault injection"),
    goals=("recover key bytes via CPA/DPA", "distinguish secrets via TVLA"),
    eda_roles=(EdaRole.EVALUATION, EdaRole.MITIGATION),
))

FIA_ADVERSARY = _register(ThreatModel(
    name="dfa",
    vector=ThreatVector.FAULT_INJECTION,
    attack_times=(AttackTime.RUNTIME,),
    adversary="physical attacker with laser/EM/clock-glitch equipment",
    assets=("cryptographic keys",),
    capabilities=(
        "inject byte/bit faults at chosen rounds",
        "repeat injections at the same location",
        "collect correct/faulty ciphertext pairs",
    ),
    constraints=("fault model limited to transient byte/bit upsets",),
    goals=("recover the key via differential fault analysis",),
    eda_roles=(EdaRole.EVALUATION, EdaRole.MITIGATION),
))

FOUNDRY_ADVERSARY = _register(ThreatModel(
    name="untrusted-foundry",
    vector=ThreatVector.IP_PIRACY,
    attack_times=(AttackTime.MANUFACTURING,),
    adversary="malicious foundry or test-facility insider",
    assets=("gate-level design IP", "overproduced dies"),
    capabilities=(
        "full FEOL layout access",
        "SAT/SMT solvers and oracle access to an activated chip",
        "machine-learning proximity attacks on split layouts",
    ),
    constraints=("no knowledge of the locking key or BEOL routing",),
    goals=("pirate the netlist", "unlock and overbuild chips"),
    eda_roles=(EdaRole.MITIGATION,),
))

END_USER_ADVERSARY = _register(ThreatModel(
    name="malicious-end-user",
    vector=ThreatVector.IP_PIRACY,
    attack_times=(AttackTime.IN_FIELD,),
    adversary="end-user with physical device access",
    assets=("design IP via reverse engineering", "secrets via scan"),
    capabilities=(
        "delayer and image the chip (defeated by camouflage candidates)",
        "drive the scan chain",
    ),
    constraints=("imaging cannot resolve camouflaged cell function",),
    goals=("reverse engineer the netlist", "read out keys via scan"),
    eda_roles=(EdaRole.MITIGATION, EdaRole.TEST_PREPARATION),
))

TROJAN_ADVERSARY = _register(ThreatModel(
    name="trojan-insertion",
    vector=ThreatVector.TROJAN,
    attack_times=(AttackTime.DESIGN, AttackTime.MANUFACTURING),
    adversary="rogue designer, 3rd-party IP vendor, or foundry insider",
    assets=("device integrity", "processed secrets"),
    capabilities=(
        "insert rare-trigger logic before tape-out",
        "add parasitic (always-on) logic at fabrication",
    ),
    constraints=(
        "must evade functional test, delay and IDDQ screening",
        "limited free die area (BISA)",
    ),
    goals=("leak information", "degrade or disrupt in the field"),
    eda_roles=(EdaRole.MITIGATION, EdaRole.VERIFICATION,
               EdaRole.TEST_PREPARATION),
))
