"""Executable Table II: one working scheme per (design stage, threat).

The paper's Table II surveys which security schemes belong at which EDA
stage.  Here every cell is an executable demo over the shared
substrates, returning a measured metric — running :func:`run_all`
regenerates the table with evidence instead of citations.
Demos are sized to finish in about a second each.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, List

from .stages import DesignStage
from .threats import ThreatVector


@dataclass
class CellResult:
    """Outcome of one Table II cell demo."""

    stage: DesignStage
    threat: ThreatVector
    scheme: str
    metric: str
    value: float
    detail: str = ""


@dataclass
class CellDemo:
    stage: DesignStage
    threat: ThreatVector
    scheme: str
    run: Callable[[], CellResult]


_DEMOS: List[CellDemo] = []


def _demo(stage: DesignStage, threat: ThreatVector, scheme: str):
    def decorator(fn: Callable[[], CellResult]):
        _DEMOS.append(CellDemo(stage, threat, scheme, fn))
        return fn
    return decorator


def _result(stage, threat, scheme, metric, value, detail=""):
    return CellResult(stage, threat, scheme, metric, float(value), detail)


# ----------------------------------------------------------------------
# Row 1: high-level synthesis
# ----------------------------------------------------------------------

@_demo(DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
       "IFT [14] + masking [5] + register flushing")
def hls_sca() -> CellResult:
    from ..hls import (aes_first_round_dfg, flushed_exposure,
                       insert_register_flushes, list_schedule,
                       mask_sbox_kernel, taint_analysis)
    resources = {"alu": 1, "sbox": 1, "mul": 1, "rng": 1}
    plain = aes_first_round_dfg()
    masked = mask_sbox_kernel()
    tainted_plain = len(taint_analysis(plain).tainted_outputs)
    tainted_masked = len(taint_analysis(masked).tainted_outputs)
    labels = taint_analysis(masked).labels
    before = flushed_exposure(list_schedule(masked, resources), labels)
    flushed, _ = insert_register_flushes(masked, labels)
    after = flushed_exposure(list_schedule(flushed, resources), labels)
    return _result(
        DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
        "IFT+masking+flushing", "secret_exposure_cycles_saved",
        before - after,
        f"tainted outputs {tainted_plain}->{tainted_masked} after "
        f"masking; exposure {before}->{after} cycles after flushing")


@_demo(DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.FAULT_INJECTION,
       "error-detecting architectures [10] / infective [18]")
def hls_fia() -> CellResult:
    from ..fia import DfaAttacker, InfectiveAES, dfa_on_unprotected
    key = [random.Random(7).randrange(256) for _ in range(16)]
    bare = dfa_on_unprotected(key, seed=1, max_faults_per_byte=6)
    infective = InfectiveAES(key, seed=2)
    attacker = DfaAttacker(
        infective.encrypt,
        lambda pt, b, f: infective.encrypt_with_fault(pt, b, f), seed=3)
    protected = attacker.attack(max_faults_per_byte=4)
    return _result(
        DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.FAULT_INJECTION,
        "infective countermeasure", "dfa_blocked",
        1.0 if (bare.success and not protected.success) else 0.0,
        f"bare AES: key recovered with {bare.faults_used} faults; "
        f"infective: attack failed after {protected.faults_used} faults")


@_demo(DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.IP_PIRACY,
       "metering IP incl. PUFs [19]")
def hls_piracy() -> CellResult:
    from ..ip import MeteringAuthority, overbuild_attack
    authority = MeteringAuthority()
    chips = authority.fabricate(3, seed=11)
    legit = authority.activate(chips[0])
    pirated = overbuild_attack(authority, chips[0], chips[1])
    return _result(
        DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.IP_PIRACY,
        "active metering", "overbuild_blocked",
        1.0 if (legit and not pirated) else 0.0,
        "legit chip activates; replayed sequence fails on overbuilt chip")


@_demo(DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.TROJAN,
       "self-authentication / BISA [20]")
def hls_trojan() -> CellResult:
    from ..netlist import random_circuit
    from ..physical import annealing_placement
    from ..trojan import bisa_fill, insertion_feasibility
    netlist = random_circuit(10, 80, 4, seed=3)
    placement = annealing_placement(netlist, iterations=2000, seed=3).placement
    before = insertion_feasibility(
        placement, bisa_fill(placement, 0.0), trojan_sites_needed=4)
    fill = bisa_fill(placement, 1.0)
    after = insertion_feasibility(placement, fill, trojan_sites_needed=4)
    return _result(
        DesignStage.HIGH_LEVEL_SYNTHESIS, ThreatVector.TROJAN,
        "BISA fill", "insertion_space_closed",
        1.0 if (before and not after) else 0.0,
        f"free sites {fill.free_sites_before}->{fill.free_sites_after}")


# ----------------------------------------------------------------------
# Row 2: logic synthesis
# ----------------------------------------------------------------------

@_demo(DesignStage.LOGIC_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
       "gate-level protections (WDDL) [21] + leaking-gate identification")
def synth_sca() -> CellResult:
    from ..crypto import present_sbox_netlist
    from ..netlist import encode_int, simulate
    from ..sca import dual_rail_stimulus, leakage_traces, tvla, wddl_transform
    sbox = present_sbox_netlist()
    xs = [f"x{i}" for i in range(4)]
    rng = random.Random(5)
    fixed = [encode_int(0xB, xs) for _ in range(1200)]
    rand = [encode_int(rng.randrange(16), xs) for _ in range(1200)]
    plain_t = tvla(
        leakage_traces(sbox, fixed, noise_sigma=0.6, seed=1),
        leakage_traces(sbox, rand, noise_sigma=0.6, seed=2)).max_abs_t
    dual, _ = wddl_transform(sbox)
    dual_t = tvla(
        leakage_traces(dual, [dual_rail_stimulus(s) for s in fixed],
                       noise_sigma=0.6, seed=3),
        leakage_traces(dual, [dual_rail_stimulus(s) for s in rand],
                       noise_sigma=0.6, seed=4)).max_abs_t
    return _result(
        DesignStage.LOGIC_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
        "WDDL", "tvla_t_reduction", plain_t - dual_t,
        f"plain S-box |t|={plain_t:.1f} (fails); WDDL |t|={dual_t:.1f}")


@_demo(DesignStage.LOGIC_SYNTHESIS, ThreatVector.FAULT_INJECTION,
       "automatic fault analysis [22]")
def synth_fia() -> CellResult:
    from ..fia import Fault, FaultKind, duplicate_and_compare, formal_coverage
    from ..netlist import ripple_carry_adder
    protected = duplicate_and_compare(ripple_carry_adder(4))
    faults = [
        Fault(name, FaultKind.STUCK_AT_0)
        for name in protected.netlist.gates if name.startswith("m_")
    ][:12]
    coverage, missed = formal_coverage(protected.netlist, faults, "alarm")
    return _result(
        DesignStage.LOGIC_SYNTHESIS, ThreatVector.FAULT_INJECTION,
        "formal fault analysis", "proven_coverage", coverage,
        f"{len(faults)} faults formally analyzed, {len(missed)} missed")


@_demo(DesignStage.LOGIC_SYNTHESIS, ThreatVector.IP_PIRACY,
       "camouflaging [23] / logic locking [24]")
def synth_piracy() -> CellResult:
    from ..ip import lock_xor, wrong_key_error_rate
    from ..netlist import random_circuit
    locked = lock_xor(random_circuit(8, 80, 4, seed=9), 16, seed=9)
    error_rate = wrong_key_error_rate(locked, trials=16, vectors=64)
    return _result(
        DesignStage.LOGIC_SYNTHESIS, ThreatVector.IP_PIRACY,
        "EPIC locking", "wrong_key_error_rate", error_rate,
        f"{locked.key_bits} key bits inserted")


@_demo(DesignStage.LOGIC_SYNTHESIS, ThreatVector.TROJAN,
       "automatic insertion of security monitors [25]")
def synth_trojan() -> CellResult:
    from ..formal import CircuitEncoder
    from ..netlist import random_circuit
    from ..trojan import insert_monitors, insert_rare_trigger_trojan
    base = random_circuit(10, 100, 4, seed=21)
    monitored = insert_monitors(base)
    trojan = insert_rare_trigger_trojan(monitored.netlist, trigger_width=2,
                                        seed=2, victim=None)
    # Prove silent corruption is impossible: no input makes a monitored
    # output diverge from the clean design while the alarm stays 0.
    enc = CircuitEncoder()
    clean_vars = enc.encode(base)
    shared = {name: clean_vars[name] for name in base.inputs}
    dirty_vars = enc.encode(trojan.netlist, bind=shared)
    diffs = [enc.xor_of(clean_vars[o], dirty_vars[o])
             for o in base.outputs]
    enc.assert_equal(enc.or_of(diffs), 1)
    enc.assert_equal(dirty_vars["monitor_alarm"], 0)
    silent_corruption_possible = enc.solver.solve()
    caught = 0.0 if silent_corruption_possible else 1.0
    return _result(
        DesignStage.LOGIC_SYNTHESIS, ThreatVector.TROJAN,
        "security monitors (TPAD)", "silent_payload_proven_impossible",
        caught,
        f"monitor overhead {monitored.overhead_cells} cells; SAT proof "
        "over all inputs")


# ----------------------------------------------------------------------
# Row 3: physical synthesis
# ----------------------------------------------------------------------

@_demo(DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
       "low-level leakage analysis (TVLA) [16]")
def phys_sca() -> CellResult:
    from ..crypto import sbox_with_key_netlist
    from ..netlist import encode_int
    from ..sca import leakage_traces, tvla
    netlist = sbox_with_key_netlist()
    rng = random.Random(2)
    key = 0x5A

    def stim(pt):
        s = encode_int(pt, [f"p{i}" for i in range(8)])
        s.update(encode_int(key, [f"k{i}" for i in range(8)]))
        return s

    fixed = [stim(0x3C) for _ in range(1200)]
    rand = [stim(rng.randrange(256)) for _ in range(1200)]
    result = tvla(
        leakage_traces(netlist, fixed, noise_sigma=1.0, seed=5),
        leakage_traces(netlist, rand, noise_sigma=1.0, seed=6))
    return _result(
        DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.SIDE_CHANNEL,
        "pre-silicon TVLA", "max_abs_t", result.max_abs_t,
        f"unprotected keyed S-box fails TVLA "
        f"(threshold {result.threshold})")


@_demo(DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.FAULT_INJECTION,
       "embedding FIA sensors [9], [26] / shielding [29]")
def phys_fia() -> CellResult:
    from ..fia import greedy_sensor_placement, injection_campaign
    rng = random.Random(4)
    cells = {f"g{i}": (rng.uniform(0, 60), rng.uniform(0, 60))
             for i in range(40)}
    plan = greedy_sensor_placement(cells, radius=15)
    campaign = injection_campaign(plan, list(cells.values()))
    return _result(
        DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.FAULT_INJECTION,
        "sensor placement", "injection_detection_rate",
        campaign["detection_rate"],
        f"{len(plan.sensors)} sensors cover {len(cells)} critical cells")


@_demo(DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.IP_PIRACY,
       "split manufacturing [27] + entropy primitives [30]")
def phys_piracy() -> CellResult:
    from ..ip import build_feol_view, lift_critical_nets, proximity_attack
    from ..ip.split import high_fanout_nets
    from ..netlist import ripple_carry_adder
    from ..physical import annealing_placement
    adder = ripple_carry_adder(8)
    placement = annealing_placement(adder, iterations=4000, seed=2).placement
    naive = proximity_attack(
        build_feol_view(adder, placement, split_layer=1)).ccr
    lifted = lift_critical_nets(adder, high_fanout_nets(adder, 25))
    defended = proximity_attack(
        build_feol_view(adder, placement, split_layer=1,
                        lifted=lifted)).ccr
    return _result(
        DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.IP_PIRACY,
        "split mfg + wire lifting", "ccr_reduction", naive - defended,
        f"proximity attack CCR {naive:.2f} -> {defended:.2f} after lifting")


@_demo(DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.TROJAN,
       "embedding sensors (RO network) [26], [28]")
def phys_trojan() -> CellResult:
    from ..netlist import random_circuit
    from ..physical import annealing_placement
    from ..trojan import (build_ro_network, insert_rare_trigger_trojan,
                          ro_detection)
    base = random_circuit(12, 120, 6, seed=8)
    placement = annealing_placement(base, iterations=2000, seed=8).placement
    trojan = insert_rare_trigger_trojan(base, trigger_width=3, seed=1)
    compromised_placement = placement.copy()
    occupied = set(compromised_placement.positions.values())
    free = sorted(
        (x, y)
        for x in range(compromised_placement.width)
        for y in range(compromised_placement.height)
        if (x, y) not in occupied)
    trojan_cells = [g for g in trojan.netlist.gates if g.startswith("tj_")]
    for cell, site in zip(trojan_cells, free):
        compromised_placement.positions[cell] = site
    network = build_ro_network(placement)
    detected, max_z = ro_detection(
        network, base, placement, trojan.netlist, compromised_placement,
        trojan_cells)
    return _result(
        DesignStage.PHYSICAL_SYNTHESIS, ThreatVector.TROJAN,
        "RO sensor network", "trojan_detected", 1.0 if detected else 0.0,
        f"max |z| = {max_z:.1f} across the RO grid")


# ----------------------------------------------------------------------
# Row 4: functional validation
# ----------------------------------------------------------------------

@_demo(DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.SIDE_CHANNEL,
       "identification of architectural covert channels [31]")
def validation_sca() -> CellResult:
    from ..crypto import sbox_with_key_netlist
    from ..formal import check_equivalence
    # UPEC-style 2-copy check: does any output depend on the secret?
    netlist = sbox_with_key_netlist()
    result = check_equivalence(
        netlist, netlist,
        left_fixed={f"k{i}": 0 for i in range(8)},
        right_fixed={f"k{i}": (0xA5 >> i) & 1 for i in range(8)})
    found = 0.0 if result.equivalent else 1.0
    return _result(
        DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.SIDE_CHANNEL,
        "2-copy information-flow check", "secret_dependence_found", found,
        "two-key miter SAT: outputs depend on the key "
        "(a channel the checker must report)")


@_demo(DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.FAULT_INJECTION,
       "validation of error-detection properties [32]")
def validation_fia() -> CellResult:
    from ..fia import Fault, FaultKind, parity_protect, prove_fault_detected
    from ..netlist import ripple_carry_adder
    protected = parity_protect(ripple_carry_adder(3))
    faults = [
        Fault(name, FaultKind.STUCK_AT_1)
        for name in protected.netlist.gates if name.startswith("m_")
    ][:10]
    proven = sum(
        1 for f in faults
        if prove_fault_detected(protected.netlist, f, "alarm")
        .provably_detected)
    return _result(
        DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.FAULT_INJECTION,
        "bounded robustness proof", "parity_proven_fraction",
        proven / len(faults),
        "formal analysis exposes parity's even-weight blind spot "
        f"({len(faults) - proven}/{len(faults)} faults escape)")


@_demo(DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.IP_PIRACY,
       "locked-logic correctness + de-obfuscation attacks [33]")
def validation_piracy() -> CellResult:
    from ..formal import check_equivalence
    from ..ip import apply_key, attack_locked_circuit, lock_xor
    from ..netlist import random_circuit
    base = random_circuit(8, 60, 3, seed=13)
    locked = lock_xor(base, 12, seed=13)
    correct = check_equivalence(apply_key(locked), base).equivalent
    attack = attack_locked_circuit(locked)
    return _result(
        DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.IP_PIRACY,
        "verification as attacker", "sat_attack_dips",
        attack.iterations,
        f"correct-key equivalence {'holds' if correct else 'FAILS'}; "
        f"SAT attack recovers the key in {attack.iterations} DIPs")


@_demo(DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.TROJAN,
       "proof-carrying hardware [34]")
def validation_trojan() -> CellResult:
    from ..formal import prove_output_constant
    from ..netlist import random_circuit
    from ..trojan import insert_monitors, insert_rare_trigger_trojan
    base = random_circuit(10, 100, 4, seed=17)
    clean = insert_monitors(base)
    clean_proof = prove_output_constant(clean.netlist, "monitor_alarm", 0)
    trojaned = insert_rare_trigger_trojan(
        insert_monitors(base).netlist, trigger_width=2, seed=5)
    dirty_proof = prove_output_constant(
        trojaned.netlist, "monitor_alarm", 0)
    value = 1.0 if (clean_proof.holds and not dirty_proof.holds) else 0.0
    return _result(
        DesignStage.FUNCTIONAL_VALIDATION, ThreatVector.TROJAN,
        "embedded property proof", "trojan_violates_carried_proof", value,
        "clean design proves 'alarm always 0'; Trojaned design yields a "
        "SAT witness (the trigger input)")


# ----------------------------------------------------------------------
# Row 5: timing and power verification
# ----------------------------------------------------------------------

@_demo(DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.SIDE_CHANNEL,
       "pre-silicon power/timing simulation [36], [37] (glitches [55])")
def timing_sca() -> CellResult:
    from ..netlist import parity_tree
    from ..sca import glitch_simulate
    chain = parity_tree(8, balanced=False)
    balanced = parity_tree(8, balanced=True)
    before = {f"x{i}": 0 for i in range(8)}
    after = {f"x{i}": 1 for i in range(8)}
    chain_glitches = glitch_simulate(chain, before, after).glitch_count()
    balanced_glitches = glitch_simulate(balanced, before,
                                        after).glitch_count()
    return _result(
        DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.SIDE_CHANNEL,
        "glitch-aware simulation", "chain_glitches",
        chain_glitches,
        f"unbalanced XOR chain glitches {chain_glitches}x vs "
        f"{balanced_glitches}x balanced — extra data-dependent activity")


@_demo(DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.FAULT_INJECTION,
       "detailed modeling of fault injections [38]")
def timing_fia() -> CellResult:
    from ..netlist import ripple_carry_adder, encode_int, simulate
    from ..physical import annealing_placement, arrival_times_placed
    adder = ripple_carry_adder(8)
    placement = annealing_placement(adder, iterations=2000, seed=6).placement
    arrivals = arrival_times_placed(adder, placement)
    critical = max(arrivals[o] for o in adder.outputs)
    # A clock glitch shrinking the period below an output's arrival
    # captures a wrong value there: count vulnerable outputs per period.
    glitch_period = 0.7 * critical
    vulnerable = sum(
        1 for o in adder.outputs if arrivals[o] > glitch_period)
    return _result(
        DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.FAULT_INJECTION,
        "electrical fault modeling", "outputs_vulnerable_to_clock_glitch",
        vulnerable,
        f"clock glitch at 70% of T_crit ({critical:.0f} ps) corrupts "
        f"{vulnerable}/{len(adder.outputs)} outputs")


@_demo(DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.IP_PIRACY,
       "validation of low-level PUF properties")
def timing_piracy() -> CellResult:
    from ..ip import evaluate_arbiter_population
    metrics = evaluate_arbiter_population(
        n_chips=10, n_challenges=150, n_repeats=5)
    score = (1.0 - abs(metrics.uniformity - 0.5)
             ) * metrics.reliability * (1.0 - abs(metrics.uniqueness - 0.5))
    return _result(
        DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.IP_PIRACY,
        "PUF characterization", "quality_score", score,
        f"uniformity {metrics.uniformity:.2f}, reliability "
        f"{metrics.reliability:.3f}, uniqueness {metrics.uniqueness:.2f}")


@_demo(DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.TROJAN,
       "path-delay fingerprinting [35]")
def timing_trojan() -> CellResult:
    from ..netlist import random_circuit
    from ..trojan import (build_fingerprint, insert_rare_trigger_trojan,
                          screen_population)
    base = random_circuit(12, 120, 6, seed=19)
    trojan = insert_rare_trigger_trojan(base, trigger_width=3, seed=19)
    fingerprint = build_fingerprint(base, n_chips=25, seed=19)
    fpr, detection = screen_population(
        fingerprint, base, trojan.netlist, n_chips=12)
    return _result(
        DesignStage.TIMING_POWER_VERIFICATION, ThreatVector.TROJAN,
        "delay fingerprint", "detection_rate", detection,
        f"false-positive rate {fpr:.2f} on golden chips")


# ----------------------------------------------------------------------
# Row 6: testing
# ----------------------------------------------------------------------

@_demo(DesignStage.TESTING, ThreatVector.SIDE_CHANNEL,
       "securing DFT against read-out (scan attacks [39])")
def testing_sca() -> CellResult:
    from ..dft import ScanChipModel, scan_attack, test_access_still_works
    key = [random.Random(23).randrange(256) for _ in range(16)]
    insecure = scan_attack(ScanChipModel(key, secure=False))
    secure_chip = ScanChipModel(key, secure=True)
    secure = scan_attack(secure_chip)
    value = 1.0 if (insecure.success and not secure.success
                    and test_access_still_works(secure_chip)) else 0.0
    return _result(
        DesignStage.TESTING, ThreatVector.SIDE_CHANNEL,
        "secure scan", "readout_blocked_test_preserved", value,
        "plain scan leaks the full key in one capture; secure scan "
        "wipes state on mode switch, testability retained")


@_demo(DesignStage.TESTING, ThreatVector.FAULT_INJECTION,
       "DFX handling malicious vs natural failures [59]")
def testing_fia() -> CellResult:
    from ..dft import ChipState, DfxController
    from ..fia import attack_fault_stream, natural_fault_stream
    controller = DfxController()
    controller.provision_key(0x1234)
    for event in natural_fault_stream(3, 100_000, ["u1", "u2"], seed=1):
        controller.handle_alarm(event)
    survived_natural = controller.state is ChipState.MISSION
    for event in attack_fault_stream(8, 0, "crypto"):
        controller.handle_alarm(event)
    reacted = controller.key_epoch > 0 or not controller.operational
    return _result(
        DesignStage.TESTING, ThreatVector.FAULT_INJECTION,
        "security-aware DFX", "discrimination_correct",
        1.0 if (survived_natural and reacted) else 0.0,
        f"natural faults: resume; attack: epoch {controller.key_epoch}, "
        f"state {controller.state.value}")


@_demo(DesignStage.TESTING, ThreatVector.IP_PIRACY,
       "IP protection integrated into DFX")
def testing_piracy() -> CellResult:
    from ..dft import DfxController
    from ..fia import attack_fault_stream
    controller = DfxController()
    controller.provision_key(0xC0FFEE)
    key_before = controller.unlock_key(0)
    for event in attack_fault_stream(4, 0, "keyvault"):
        controller.handle_alarm(event)
    old_epoch_dead = controller.unlock_key(0) is None
    new_epoch_live = (controller.operational
                      and controller.unlock_key(controller.key_epoch)
                      is not None)
    value = 1.0 if (key_before is not None and old_epoch_dead) else 0.0
    return _result(
        DesignStage.TESTING, ThreatVector.IP_PIRACY,
        "DFX key management", "stale_key_revoked", value,
        f"epoch advanced to {controller.key_epoch}; old-epoch unlock "
        f"refused; current epoch "
        f"{'live' if new_epoch_live else 'disabled'}")


@_demo(DesignStage.TESTING, ThreatVector.TROJAN,
       "pattern generation for Trojan detection (MERO) [40]")
def testing_trojan() -> CellResult:
    from ..netlist import random_circuit
    from ..trojan import (generate_mero_tests, pair_trigger_coverage,
                          random_test_set)
    base = random_circuit(12, 150, 6, seed=8)
    mero = generate_mero_tests(base, n_detect=10, n_initial=200, seed=3)
    budget = max(1, len(mero.vectors))
    mero_cov = pair_trigger_coverage(base, mero.vectors)
    random_cov = pair_trigger_coverage(
        base, random_test_set(base, budget, seed=4))
    return _result(
        DesignStage.TESTING, ThreatVector.TROJAN,
        "MERO N-detect tests", "pair_coverage_gain", mero_cov - random_cov,
        f"rare-pair coverage {mero_cov:.2f} (MERO) vs {random_cov:.2f} "
        f"(random) at {budget} vectors")


# ----------------------------------------------------------------------
# Runners
# ----------------------------------------------------------------------

def all_demos() -> List[CellDemo]:
    """All registered Table II cell demos, in table order."""
    return list(_DEMOS)


def run_cell(stage: DesignStage, threat: ThreatVector) -> CellResult:
    """Execute the demo of one (stage, threat) cell."""
    for demo in _DEMOS:
        if demo.stage is stage and demo.threat is threat:
            return demo.run()
    raise KeyError(f"no demo for ({stage.value}, {threat.value})")


def run_all() -> List[CellResult]:
    """Execute every Table II cell; returns results in table order."""
    return [demo.run() for demo in _DEMOS]


def render_table(results: List[CellResult]) -> str:
    """Text rendering of the executed Table II."""
    lines = ["=== Table II, executed ==="]
    current_stage = None
    for r in results:
        if r.stage is not current_stage:
            current_stage = r.stage
            lines.append(f"\n[{r.stage.value}]")
        lines.append(
            f"  {r.threat.value:<32} {r.scheme:<28} "
            f"{r.metric} = {r.value:.3f}")
        if r.detail:
            lines.append(f"      {r.detail}")
    return "\n".join(lines)
