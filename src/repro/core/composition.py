"""The secure-composition engine (paper Sec. IV).

    "not all types or implementations of countermeasures are
    composable, e.g., adding error-detecting logic can deteriorate
    resilience against SCAs [61]. Thus, tools for joint compilation of
    countermeasures and, even more importantly, for verifying their
    effectiveness are required."

:class:`CompositionEngine` is that tool: it holds a :class:`Design`
(netlist + security interface), applies countermeasures through
:class:`Countermeasure` adapters, and — after *every* application —
re-evaluates the metrics of **all** threat vectors, flagging negative
cross-effects.  The flagship instance this engine catches: wrapping an
ISW-masked gadget with parity-based error detection physically computes
the XOR of the shares — the unmasked secret — on a wire, and TVLA
lights up (ref [61] made executable).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..fia import Fault, FaultKind, fault_campaign
from ..netlist import Netlist, ppa_report
from ..sca import TVLA_THRESHOLD, leakage_traces, locate_leaking_nets, tvla
from .threats import ThreatVector

#: A stimulus transformer: adapts base-circuit stimuli to the current
#: (possibly wrapped/transformed) netlist's input names.
StimulusAdapter = Callable[[Dict[str, int]], Dict[str, int]]


@dataclass
class Design:
    """A netlist plus its security evaluation interface.

    ``tvla_fixed`` / ``tvla_random`` generate single-bit stimulus dicts
    for the *original* primary inputs; ``stimulus_adapter`` rewrites
    them for the current netlist (identity until a transform like WDDL
    renames ports).  ``protected_region_prefix`` marks which gates the
    FIA campaign faults (the functional core, not the checker).
    """

    name: str
    netlist: Netlist
    tvla_fixed: Callable[[random.Random], Dict[str, int]]
    tvla_random: Callable[[random.Random], Dict[str, int]]
    #: Rewrites base-circuit stimuli for the current netlist's ports.
    stimulus_adapter: StimulusAdapter = staticmethod(lambda s: s)
    alarm: Optional[str] = None
    payload_outputs: Optional[List[str]] = None
    protected_region_prefix: str = ""
    key_bits: int = 0
    applied: List[str] = field(default_factory=list)

    def fault_sites(self, kinds=(FaultKind.STUCK_AT_0,
                                 FaultKind.STUCK_AT_1)) -> List[Fault]:
        """Single-fault list over the protected functional region."""
        sites = []
        for g in self.netlist.gates.values():
            if not g.gate_type.is_combinational or g.gate_type.is_source:
                continue
            if (self.protected_region_prefix
                    and not g.name.startswith(self.protected_region_prefix)):
                continue
            for kind in kinds:
                sites.append(Fault(g.name, kind))
        return sites

    def make_stimuli(self, n: int, fixed: bool,
                     seed: int) -> List[Dict[str, int]]:
        """Generate adapted TVLA-class stimuli for the current netlist."""
        rng = random.Random(seed)
        generator = self.tvla_fixed if fixed else self.tvla_random
        return [self.stimulus_adapter(generator(rng)) for _ in range(n)]


@dataclass
class Countermeasure:
    """An adapter turning a substrate transform into a composable pass."""

    name: str
    threat: ThreatVector
    apply: Callable[[Design], Design]
    description: str = ""


@dataclass
class EvaluationSnapshot:
    """All-threat metric values for one design state."""

    tvla_max_t: float
    leaky_nets: int
    fia_coverage: float
    fia_silent: int
    area: float
    delay: float
    key_bits: int

    def as_dict(self) -> Dict[str, float]:
        """Flat numeric view for tabular reports."""
        return {
            "tvla_max_t": self.tvla_max_t,
            "leaky_nets": float(self.leaky_nets),
            "fia_coverage": self.fia_coverage,
            "fia_silent": float(self.fia_silent),
            "area": self.area,
            "delay": self.delay,
            "key_bits": float(self.key_bits),
        }


@dataclass
class CrossEffect:
    """One detected interaction of a countermeasure with a metric."""

    countermeasure: str
    metric: str
    before: float
    after: float
    harmful: bool
    note: str = ""


@dataclass
class CompositionReport:
    """Audit trail of one composition session."""

    steps: List[Tuple[str, EvaluationSnapshot]] = field(default_factory=list)
    cross_effects: List[CrossEffect] = field(default_factory=list)

    @property
    def harmful_effects(self) -> List[CrossEffect]:
        return [e for e in self.cross_effects if e.harmful]

    def render(self) -> str:
        """Human-readable audit table with cross-effect flags."""
        lines = ["=== composition audit ==="]
        header = f"{'step':<28}" + "".join(
            f"{k:>12}" for k in self.steps[0][1].as_dict()) if self.steps \
            else "(empty)"
        lines.append(header)
        for name, snap in self.steps:
            lines.append(f"{name:<28}" + "".join(
                f"{v:>12.2f}" for v in snap.as_dict().values()))
        for effect in self.cross_effects:
            marker = "!! " if effect.harmful else "   "
            lines.append(
                f"{marker}{effect.countermeasure} -> {effect.metric}: "
                f"{effect.before:.2f} -> {effect.after:.2f}  {effect.note}"
            )
        return "\n".join(lines)


class CompositionEngine:
    """Apply countermeasures one at a time; re-verify everything.

    ``n_traces`` / ``n_fault_vectors`` bound the evaluation effort.
    """

    def __init__(self, n_traces: int = 4000,
                 noise_sigma: float = 0.25,
                 n_fault_vectors: int = 64,
                 tvla_threshold: float = TVLA_THRESHOLD,
                 seed: int = 0) -> None:
        self.n_traces = n_traces
        self.noise_sigma = noise_sigma
        self.n_fault_vectors = n_fault_vectors
        self.tvla_threshold = tvla_threshold
        self.seed = seed

    # -- individual evaluations -----------------------------------------

    def evaluate_sca(self, design: Design,
                     seed_offset: int = 0) -> Tuple[float, int]:
        """(max |t|, count of individually leaking nets)."""
        fixed = design.make_stimuli(self.n_traces, True,
                                    self.seed + seed_offset)
        rand = design.make_stimuli(self.n_traces, False,
                                   self.seed + seed_offset + 1)
        fixed_traces = leakage_traces(design.netlist, fixed,
                                      noise_sigma=self.noise_sigma,
                                      seed=self.seed + seed_offset)
        rand_traces = leakage_traces(design.netlist, rand,
                                     noise_sigma=self.noise_sigma,
                                     seed=self.seed + seed_offset + 1)
        result = tvla(fixed_traces, rand_traces)
        per_net = locate_leaking_nets(design.netlist, fixed, rand,
                                      seed=self.seed)
        leaky = sum(1 for entry in per_net
                    if abs(entry.t_statistic) > self.tvla_threshold)
        return result.max_abs_t, leaky

    def evaluate_fia(self, design: Design) -> Tuple[float, int]:
        """(detection coverage, silent corruptions) over the region."""
        faults = design.fault_sites()
        if not faults:
            return 1.0, 0
        report = fault_campaign(
            design.netlist, faults, n_vectors=self.n_fault_vectors,
            alarm=design.alarm, payload_outputs=design.payload_outputs,
            seed=self.seed)
        return report.coverage, report.silent

    def evaluate(self, design: Design,
                 seed_offset: int = 0) -> EvaluationSnapshot:
        """All-threat snapshot: SCA, FIA, and PPA in one record."""
        max_t, leaky = self.evaluate_sca(design, seed_offset)
        coverage, silent = self.evaluate_fia(design)
        ppa = ppa_report(design.netlist)
        return EvaluationSnapshot(
            tvla_max_t=max_t,
            leaky_nets=leaky,
            fia_coverage=coverage,
            fia_silent=silent,
            area=ppa.area,
            delay=ppa.delay,
            key_bits=design.key_bits,
        )

    # -- composition loop -------------------------------------------------

    def compose(self, design: Design,
                countermeasures: Sequence[Countermeasure]
                ) -> Tuple[Design, CompositionReport]:
        """Apply each countermeasure, re-verifying all threats after each.

        Harmful cross-effects are flagged when a countermeasure for one
        threat makes another threat's metric materially worse:
        TVLA flipping from pass to fail, FIA coverage dropping, or new
        individually-leaking nets appearing.
        """
        report = CompositionReport()
        snapshot = self.evaluate(design)
        report.steps.append(("baseline", snapshot))
        current = design
        for index, cm in enumerate(countermeasures, start=1):
            current = cm.apply(current)
            current.applied.append(cm.name)
            new_snapshot = self.evaluate(current, seed_offset=10 * index)
            report.steps.append((cm.name, new_snapshot))
            self._diff(report, cm, snapshot, new_snapshot)
            snapshot = new_snapshot
        return current, report

    def compose_named(self, design_name: str,
                      stack_names: Sequence[str]
                      ) -> Tuple[Design, CompositionReport]:
        """Compose a *named* design with a *named* countermeasure stack.

        The declarative twin of :meth:`compose`: both the design and
        the stack are referenced by registry name
        (:data:`~repro.core.designs.DESIGN_FACTORIES` /
        :data:`~repro.core.designs.COUNTERMEASURE_FACTORIES`), so the
        whole invocation is a picklable, hashable spec — this is the
        entry point the :mod:`repro.service` ``composition-stack`` job
        calls inside worker processes.
        """
        from .designs import build_design, build_stack

        return self.compose(build_design(design_name),
                            build_stack(stack_names))

    def evaluate_stack_row(self, design_name: str,
                           stack_names: Sequence[str]) -> Dict[str, object]:
        """One JSON-able row of a cross-effect matrix.

        Captures the baseline and final snapshots plus the harmful
        cross-effect flags — the exact shape the composition benchmarks
        tabulate, now computable anywhere a (design name, stack names)
        pair can be shipped.
        """
        _, report = self.compose_named(design_name, stack_names)
        baseline = report.steps[0][1]
        final = report.steps[-1][1]
        return {
            "design": design_name,
            "stack": list(stack_names),
            "baseline": baseline.as_dict(),
            "final": final.as_dict(),
            "area_factor": (final.area / baseline.area
                            if baseline.area else float("inf")),
            "flagged": bool(report.harmful_effects),
            "notes": [e.note for e in report.harmful_effects],
            "cross_effects": [
                {"countermeasure": e.countermeasure, "metric": e.metric,
                 "before": e.before, "after": e.after,
                 "harmful": e.harmful, "note": e.note}
                for e in report.cross_effects
            ],
        }

    def _diff(self, report: CompositionReport, cm: Countermeasure,
              before: EvaluationSnapshot,
              after: EvaluationSnapshot) -> None:
        tvla_flipped = (before.tvla_max_t <= self.tvla_threshold
                        < after.tvla_max_t)
        report.cross_effects.append(CrossEffect(
            cm.name, "tvla_max_t", before.tvla_max_t, after.tvla_max_t,
            harmful=tvla_flipped,
            note="masking broken by composition" if tvla_flipped else "",
        ))
        if after.leaky_nets > before.leaky_nets:
            report.cross_effects.append(CrossEffect(
                cm.name, "leaky_nets", before.leaky_nets,
                after.leaky_nets, harmful=True,
                note="new first-order-leaking wires introduced",
            ))
        if after.fia_coverage < before.fia_coverage - 1e-9:
            report.cross_effects.append(CrossEffect(
                cm.name, "fia_coverage", before.fia_coverage,
                after.fia_coverage, harmful=True,
                note="fault-detection coverage regressed",
            ))
