"""Core contribution: the secure-composition EDA framework.

Threat models (Table I), the classical flow (Fig. 1), an executable
Table II, security metrics with step-function semantics (Sec. IV), the
composition engine with cross-effect detection (Sec. IV, ref [61]), the
security-centric flow with its re-verification loop, and security-aware
design-space exploration.
"""

from .threats import (
    AttackTime,
    EdaRole,
    END_USER_ADVERSARY,
    FIA_ADVERSARY,
    FOUNDRY_ADVERSARY,
    POWER_SCA_ADVERSARY,
    THREAT_CATALOG,
    ThreatModel,
    ThreatVector,
    TROJAN_ADVERSARY,
)
from .stages import (
    ClassicalFlow,
    ClassicalFlowResult,
    DesignStage,
    FlowReport,
    StageRecord,
)
from .metrics import (
    Direction,
    MetricRegistry,
    MetricResult,
    SecurityMetric,
    StepFunctionMetric,
    masking_order_steps,
    sat_attack_resistance_steps,
)
from .composition import (
    CompositionEngine,
    CompositionReport,
    Countermeasure,
    CrossEffect,
    Design,
    EvaluationSnapshot,
)
from .designs import (
    COUNTERMEASURE_FACTORIES,
    DESIGN_FACTORIES,
    build_design,
    build_stack,
    duplication_countermeasure,
    masked_and_design,
    parity_countermeasure,
    register_countermeasure,
    register_design,
    timing_reassociation_step,
    wddl_countermeasure,
)
from .flow import (
    CheckResult,
    SecureFlow,
    SecureFlowResult,
    SecurityRequirement,
    no_leaky_net_requirement,
    tvla_requirement,
)
from .dse import (
    Candidate,
    LockingSweepPoint,
    dominates,
    locking_candidates,
    measure_locking_point,
    pareto_front,
    sweep_locking,
    sweep_locking_keys,
)
from .table2 import (
    CellResult,
    all_demos,
    render_table,
    run_all,
    run_cell,
)
from .constraints import (
    CompilationReport,
    DetectionConstraint,
    LeakageConstraint,
    MaskingConstraint,
    NoFlowConstraint,
    Obligation,
    SecurityConstraint,
    compile_and_check,
)
from .risk import (
    MODEL_LIMITS,
    RiskEntry,
    RiskRegister,
    Severity,
    register_from_composition,
)
from .report import TableIRow, render_table_i, table_i

__all__ = [
    "AttackTime", "EdaRole", "END_USER_ADVERSARY", "FIA_ADVERSARY",
    "FOUNDRY_ADVERSARY", "POWER_SCA_ADVERSARY", "THREAT_CATALOG",
    "ThreatModel", "ThreatVector", "TROJAN_ADVERSARY",
    "ClassicalFlow", "ClassicalFlowResult", "DesignStage", "FlowReport",
    "StageRecord",
    "Direction", "MetricRegistry", "MetricResult", "SecurityMetric",
    "StepFunctionMetric", "masking_order_steps",
    "sat_attack_resistance_steps",
    "CompositionEngine", "CompositionReport", "Countermeasure",
    "CrossEffect", "Design", "EvaluationSnapshot",
    "COUNTERMEASURE_FACTORIES", "DESIGN_FACTORIES",
    "build_design", "build_stack",
    "duplication_countermeasure", "masked_and_design",
    "parity_countermeasure", "register_countermeasure",
    "register_design", "timing_reassociation_step",
    "wddl_countermeasure",
    "CheckResult", "SecureFlow", "SecureFlowResult", "SecurityRequirement",
    "no_leaky_net_requirement", "tvla_requirement",
    "Candidate", "LockingSweepPoint", "dominates", "locking_candidates",
    "measure_locking_point",
    "pareto_front", "sweep_locking", "sweep_locking_keys",
    "CellResult", "all_demos", "render_table", "run_all", "run_cell",
    "CompilationReport", "DetectionConstraint", "LeakageConstraint",
    "MaskingConstraint", "NoFlowConstraint", "Obligation",
    "SecurityConstraint", "compile_and_check",
    "MODEL_LIMITS", "RiskEntry", "RiskRegister", "Severity",
    "register_from_composition",
    "TableIRow", "render_table_i", "table_i",
]
