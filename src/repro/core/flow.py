"""The security-centric EDA flow the paper calls for.

:class:`SecureFlow` extends the classical flow of
:mod:`repro.core.stages` with the paper's Sec. II-C / IV program:

* explicit security *requirements* compiled into the flow,
* evaluation of security metrics at the stages where they are
  observable (TVLA after synthesis, proximity-attack CCR after PnR,
  scan-leakage checks at test insertion),
* the re-verification loop: after every design change (optimization or
  countermeasure), all requirements are re-checked, so nothing is
  "inadvertently compromised".
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, List, Sequence

from ..netlist import ppa_report
from ..physical import annealing_placement, critical_path_placed
from ..sca import TVLA_THRESHOLD, leakage_traces, locate_leaking_nets, tvla
from .composition import Design
from .stages import DesignStage, FlowReport, StageRecord
from .threats import ThreatVector


@dataclass
class SecurityRequirement:
    """One compiled security constraint with its checking stage."""

    name: str
    threat: ThreatVector
    stage: DesignStage
    check: Callable[["SecureFlowContext"], "CheckResult"]


@dataclass
class CheckResult:
    passed: bool
    value: float
    message: str


class SecureFlowContext:
    """Everything a requirement check may inspect."""

    def __init__(self, design: Design) -> None:
        self.design = design
        self.placement = None


@dataclass
class SecureFlowResult:
    design: Design
    report: FlowReport
    failures: List[str] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        return not self.failures


def tvla_requirement(n_traces: int = 4000, noise_sigma: float = 0.25,
                     threshold: float = TVLA_THRESHOLD,
                     seed: int = 0) -> SecurityRequirement:
    """Fixed-vs-random leakage must stay below the TVLA threshold."""

    def check(ctx: SecureFlowContext) -> CheckResult:
        design = ctx.design
        fixed = design.make_stimuli(n_traces, True, seed)
        rand = design.make_stimuli(n_traces, False, seed + 1)
        result = tvla(
            leakage_traces(design.netlist, fixed,
                           noise_sigma=noise_sigma, seed=seed),
            leakage_traces(design.netlist, rand,
                           noise_sigma=noise_sigma, seed=seed + 1))
        return CheckResult(
            passed=result.max_abs_t <= threshold,
            value=result.max_abs_t,
            message=f"TVLA max|t| = {result.max_abs_t:.2f} "
                    f"(threshold {threshold})")

    return SecurityRequirement(
        "tvla-first-order", ThreatVector.SIDE_CHANNEL,
        DesignStage.TIMING_POWER_VERIFICATION, check)


def no_leaky_net_requirement(n_traces: int = 3000,
                             threshold: float = TVLA_THRESHOLD,
                             seed: int = 0) -> SecurityRequirement:
    """No individual wire may pass the per-net leakage test."""

    def check(ctx: SecureFlowContext) -> CheckResult:
        design = ctx.design
        fixed = design.make_stimuli(n_traces, True, seed + 2)
        rand = design.make_stimuli(n_traces, False, seed + 3)
        entries = locate_leaking_nets(design.netlist, fixed, rand,
                                      seed=seed)
        leaky = [e for e in entries if abs(e.t_statistic) > threshold]
        worst = abs(entries[0].t_statistic) if entries else 0.0
        message = (f"{len(leaky)} leaking nets"
                   + (f", worst {entries[0].net} |t|={worst:.1f}"
                      if leaky else ""))
        return CheckResult(not leaky, float(len(leaky)), message)

    return SecurityRequirement(
        "no-leaky-wire", ThreatVector.SIDE_CHANNEL,
        DesignStage.LOGIC_SYNTHESIS, check)


class SecureFlow:
    """Classical stages + compiled security requirements + re-verify loop.

    ``transforms`` are design-mutating steps (countermeasures or
    optimizations) executed in order after logic synthesis; after each,
    every requirement is re-checked (the paper's "re-run the
    security-centric flow" loop).  Synthesis of the functional netlist
    itself is kept security-aware by *not* running restructuring passes
    across masking boundaries.
    """

    def __init__(self, requirements: Sequence[SecurityRequirement],
                 transforms: Sequence = (),
                 placement_iterations: int = 3000,
                 seed: int = 0) -> None:
        self.requirements = list(requirements)
        self.transforms = list(transforms)
        self.placement_iterations = placement_iterations
        self.seed = seed

    def _check_all(self, ctx: SecureFlowContext, record: StageRecord,
                   failures: List[str], when: str) -> None:
        for requirement in self.requirements:
            result = requirement.check(ctx)
            status = "PASS" if result.passed else "FAIL"
            line = (f"{requirement.name} [{when}]: {status} — "
                    f"{result.message}")
            record.security_checks.append(line)
            if not result.passed:
                failures.append(line)

    def run(self, design: Design) -> SecureFlowResult:
        """Run stages + transforms, re-checking requirements after each."""
        report = FlowReport(design.name)
        failures: List[str] = []
        ctx = SecureFlowContext(design)

        record = StageRecord(DesignStage.LOGIC_SYNTHESIS)
        record.actions.append("security-aware synthesis: restructuring "
                              "suppressed inside masked regions")
        self._check_all(ctx, record, failures, "post-synthesis")
        report.records.append(record)

        for transform in self.transforms:
            new_design = transform.apply(ctx.design)
            new_design.applied.append(transform.name)
            ctx = SecureFlowContext(new_design)
            record = StageRecord(DesignStage.LOGIC_SYNTHESIS)
            record.actions.append(f"applied transform: {transform.name}")
            self._check_all(ctx, record, failures,
                            f"after {transform.name}")
            report.records.append(record)

        placed = annealing_placement(
            ctx.design.netlist, iterations=self.placement_iterations,
            seed=self.seed)
        ctx.placement = placed.placement
        record = StageRecord(DesignStage.PHYSICAL_SYNTHESIS)
        record.metrics["hpwl"] = placed.final_hpwl
        record.metrics["critical_path_ps"] = critical_path_placed(
            ctx.design.netlist, placed.placement)
        record.actions.append("placement (security checks re-run)")
        self._check_all(ctx, record, failures, "post-placement")
        report.records.append(record)

        report.final_ppa = ppa_report(ctx.design.netlist)
        return SecureFlowResult(ctx.design, report, failures)
