"""The security-centric EDA flow the paper calls for.

:class:`SecureFlow` extends the classical flow of
:mod:`repro.core.stages` with the paper's Sec. II-C / IV program:

* explicit security *requirements* compiled into the flow,
* evaluation of security metrics at the stages where they are
  observable (TVLA after synthesis, proximity-attack CCR after PnR,
  scan-leakage checks at test insertion),
* the re-verification loop: after every design change (optimization or
  countermeasure), all requirements are re-checked, so nothing is
  "inadvertently compromised".

Since the pass-manager refactor this class is a thin pipeline
definition over :class:`repro.flow.PassManager`: requirements become
property checkers, transforms run as effect-undeclared (conservative)
passes — which is exactly the re-check-everything loop above — and the
run additionally yields the manager's machine-readable
:class:`~repro.flow.manager.FlowTrace` as ``result.trace``.  The
measurement logic itself (TVLA, per-net leakage) lives once, in
:mod:`repro.flow.properties`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..sca import TVLA_THRESHOLD
from ..flow.properties import masking_check, tvla_check
from .composition import Design
from .stages import DesignStage, FlowReport
from .threats import ThreatVector


@dataclass
class SecurityRequirement:
    """One compiled security constraint with its checking stage."""

    name: str
    threat: ThreatVector
    stage: DesignStage
    check: Callable[["SecureFlowContext"], "CheckResult"]


@dataclass
class CheckResult:
    passed: bool
    value: float
    message: str


class SecureFlowContext:
    """Everything a requirement check may inspect.

    Kept for API compatibility; requirement checks now also accept the
    pass manager's :class:`repro.flow.manager.FlowContext`, which has
    the same ``design`` / ``placement`` surface plus an analysis cache.
    """

    def __init__(self, design: Design) -> None:
        self.design = design
        self.placement = None


@dataclass
class SecureFlowResult:
    design: Design
    report: FlowReport
    failures: List[str] = field(default_factory=list)
    #: Pass-manager provenance (per-pass timing, re-check outcomes).
    trace: Optional[object] = None

    @property
    def all_passed(self) -> bool:
        return not self.failures


def tvla_requirement(n_traces: int = 4000, noise_sigma: float = 0.25,
                     threshold: float = TVLA_THRESHOLD,
                     seed: int = 0) -> SecurityRequirement:
    """Fixed-vs-random leakage must stay below the TVLA threshold."""

    def check(ctx: SecureFlowContext) -> CheckResult:
        result = tvla_check(ctx.design, n_traces=n_traces,
                            noise_sigma=noise_sigma, threshold=threshold,
                            seed=seed, cache=getattr(ctx, "cache", None))
        return CheckResult(result.passed, result.value, result.message)

    return SecurityRequirement(
        "tvla-first-order", ThreatVector.SIDE_CHANNEL,
        DesignStage.TIMING_POWER_VERIFICATION, check)


def no_leaky_net_requirement(n_traces: int = 3000,
                             threshold: float = TVLA_THRESHOLD,
                             seed: int = 0) -> SecurityRequirement:
    """No individual wire may pass the per-net leakage test."""

    def check(ctx: SecureFlowContext) -> CheckResult:
        result = masking_check(ctx.design, n_traces=n_traces,
                               threshold=threshold, seed=seed,
                               cache=getattr(ctx, "cache", None))
        return CheckResult(result.passed, result.value, result.message)

    return SecurityRequirement(
        "no-leaky-wire", ThreatVector.SIDE_CHANNEL,
        DesignStage.LOGIC_SYNTHESIS, check)


class SecureFlow:
    """Classical stages + compiled security requirements + re-verify loop.

    ``transforms`` are design-mutating steps (countermeasures or
    optimizations) executed in order after logic synthesis; after each,
    every requirement is re-checked (the paper's "re-run the
    security-centric flow" loop).  Under the pass manager this is the
    *conservative* pipeline: legacy transforms declare no effects, so
    the manager schedules a full re-check after each — migrating a
    transform to a registered pass with real declarations is what makes
    its re-verification incremental.
    """

    def __init__(self, requirements: Sequence[SecurityRequirement],
                 transforms: Sequence = (),
                 placement_iterations: int = 3000,
                 seed: int = 0) -> None:
        self.requirements = list(requirements)
        self.transforms = list(transforms)
        self.placement_iterations = placement_iterations
        self.seed = seed

    def run(self, design: Design) -> SecureFlowResult:
        """Run stages + transforms, re-checking requirements after each."""
        from ..flow import PassManager, secure_pipeline, to_flow_report
        from ..flow.properties import PropertyCheck
        from ..netlist import ppa_report

        def adapt(requirement: SecurityRequirement) -> Callable:
            def checker(ctx) -> PropertyCheck:
                result = requirement.check(ctx)
                return PropertyCheck(requirement.name, result.passed,
                                     result.value, result.message)
            return checker

        names = [r.name for r in self.requirements]
        manager = PassManager(
            checkers={r.name: adapt(r) for r in self.requirements},
            seed=self.seed)
        outcome = manager.run(
            design,
            secure_pipeline(self.transforms, self.placement_iterations),
            goals=names, assume=names)
        report = to_flow_report(outcome.trace)
        report.final_ppa = ppa_report(outcome.design.netlist)
        return SecureFlowResult(outcome.design, report,
                                list(outcome.failures),
                                trace=outcome.trace)
