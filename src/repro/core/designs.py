"""Ready-made designs and countermeasure adapters for composition studies.

The flagship experiment (paper Sec. IV, ref [61]): start from a
first-order masked AND gadget, then add fault detection two ways —

* **duplication with comparison** compares share against share; every
  comparator wire stays masked — the composition is *safe*;
* **parity prediction** XORs the three output shares together, which is
  the definition of unmasking (``c0 ^ c1 ^ c2 = a & b``) — the checker
  itself becomes the side channel, and the composition engine flags it.

A third adapter exposes the Fig. 2 offender (timing re-association) as
a pseudo-countermeasure so flows can audit *optimizations* with the
same machinery.
"""

from __future__ import annotations

import random
from dataclasses import replace
from typing import Callable, Dict, List, Sequence

from ..fia import duplicate_and_compare, parity_protect
from ..sca import (
    dual_rail_stimulus,
    isw_and_netlist,
    random_share_stimulus,
    wddl_transform,
)
from ..synth import reassociate_for_timing
from .composition import Countermeasure, Design
from .threats import ThreatVector


#: Named design factories: ``Design`` objects hold closures (stimulus
#: generators, adapters) and cannot travel across process boundaries,
#: so distributed composition jobs (:mod:`repro.service`) address them
#: by factory *name* and rebuild the design inside the worker.
DESIGN_FACTORIES: Dict[str, "Callable[[], Design]"] = {}

#: Named countermeasure factories, for the same reason.
COUNTERMEASURE_FACTORIES: Dict[str, "Callable[[], Countermeasure]"] = {}


def register_design(name: str):
    """Register a zero-argument design factory under ``name``."""
    def wrap(factory):
        DESIGN_FACTORIES[name] = factory
        return factory
    return wrap


def register_countermeasure(name: str):
    """Register a zero-argument countermeasure factory under ``name``."""
    def wrap(factory):
        COUNTERMEASURE_FACTORIES[name] = factory
        return factory
    return wrap


def build_design(name: str) -> Design:
    """Instantiate a registered design factory by name."""
    try:
        return DESIGN_FACTORIES[name]()
    except KeyError:
        raise KeyError(
            f"unknown design {name!r}; registered: "
            f"{sorted(DESIGN_FACTORIES)}") from None


def build_stack(names: "Sequence[str]") -> "List[Countermeasure]":
    """Instantiate a countermeasure stack from registered names."""
    missing = [n for n in names if n not in COUNTERMEASURE_FACTORIES]
    if missing:
        raise KeyError(
            f"unknown countermeasures {missing}; registered: "
            f"{sorted(COUNTERMEASURE_FACTORIES)}")
    return [COUNTERMEASURE_FACTORIES[n]() for n in names]


@register_design("masked-and")
def masked_and_design(n_shares: int = 3) -> Design:
    """First-order masked AND gadget as a composition-study baseline.

    TVLA classes: fixed secrets (a=1, b=1) vs random secrets, with
    shares and gadget randomness fresh per trace either way.
    """
    netlist = isw_and_netlist(n_shares)

    def fixed(rng: random.Random) -> Dict[str, int]:
        return random_share_stimulus(1, 1, n_shares, rng)

    def rand(rng: random.Random) -> Dict[str, int]:
        return random_share_stimulus(
            rng.randint(0, 1), rng.randint(0, 1), n_shares, rng)

    return Design(
        name="masked-and",
        netlist=netlist,
        tvla_fixed=fixed,
        tvla_random=rand,
        payload_outputs=[f"c{i}" for i in range(n_shares)],
    )


@register_countermeasure("duplication")
def duplication_countermeasure() -> Countermeasure:
    """Duplicate-and-compare fault detection (composes safely)."""

    def apply(design: Design) -> Design:
        protected = duplicate_and_compare(design.netlist)
        return replace(
            design,
            name=design.name + "+dup",
            netlist=protected.netlist,
            alarm=protected.alarm,
            payload_outputs=protected.payload_outputs,
            protected_region_prefix="m_",
            applied=list(design.applied),
        )

    return Countermeasure(
        name="duplication-detect",
        threat=ThreatVector.FAULT_INJECTION,
        apply=apply,
        description="two copies + per-output comparison; share-wise, "
                    "so masking survives",
    )


@register_countermeasure("parity")
def parity_countermeasure() -> Countermeasure:
    """Parity-prediction fault detection (breaks masking — ref [61])."""

    def apply(design: Design) -> Design:
        protected = parity_protect(design.netlist)
        return replace(
            design,
            name=design.name + "+parity",
            netlist=protected.netlist,
            alarm=protected.alarm,
            payload_outputs=protected.payload_outputs,
            protected_region_prefix="m_",
            applied=list(design.applied),
        )

    return Countermeasure(
        name="parity-detect",
        threat=ThreatVector.FAULT_INJECTION,
        apply=apply,
        description="output-parity prediction; XOR of the shares is the "
                    "unmasked secret",
    )


@register_countermeasure("timing-reassociation")
def timing_reassociation_step(rng_arrival: float = 1e5) -> Countermeasure:
    """The Fig. 2 optimizer audited as if it were a countermeasure.

    Models a security-oblivious PPA pass running *after* masking was
    integrated: XOR trees are rebuilt for timing with the RNG inputs
    arriving late, exposing sums of share products on real wires.
    """

    def apply(design: Design) -> Design:
        netlist = design.netlist.copy(design.netlist.name + "_ra")
        late = {
            name: rng_arrival for name in netlist.inputs
            if name.startswith("r_")
        }
        reassociate_for_timing(netlist, input_arrivals=late)
        return replace(
            design,
            name=design.name + "+reassoc",
            netlist=netlist,
            applied=list(design.applied),
        )

    return Countermeasure(
        name="timing-reassociation",
        threat=ThreatVector.SIDE_CHANNEL,  # the threat it *affects*
        apply=apply,
        description="security-unaware XOR re-association (Fig. 2)",
    )


@register_countermeasure("wddl")
def wddl_countermeasure() -> Countermeasure:
    """WDDL dual-rail hiding as a composable SCA countermeasure."""

    def apply(design: Design) -> Design:
        dual, rails = wddl_transform(design.netlist)
        previous_adapter = design.stimulus_adapter

        def adapter(stimulus: Dict[str, int]) -> Dict[str, int]:
            return dual_rail_stimulus(previous_adapter(stimulus))

        return replace(
            design,
            name=design.name + "+wddl",
            netlist=dual,
            stimulus_adapter=adapter,
            alarm=None,
            payload_outputs=list(dual.outputs),
            protected_region_prefix="",
            applied=list(design.applied),
        )

    return Countermeasure(
        name="wddl-hiding",
        threat=ThreatVector.SIDE_CHANNEL,
        apply=apply,
        description="dual-rail constant-weight logic style",
    )
