"""Design stages and the classical (security-unaware) EDA flow — Fig. 1.

The six stages are the rows of Table II.  :class:`ClassicalFlow` chains
the substrate engines exactly as the paper's Fig. 1 draws them —
synthesis, technology mapping, place-and-route, timing/power sign-off,
test generation — optimizing PPA and nothing else.  Its report has an
empty ``security_checks`` list *by construction*; the secure flow in
:mod:`repro.core.flow` is the paper's proposed alternative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..dft import run_atpg
from ..netlist import Netlist, ppa_report
from ..netlist.metrics import PPAReport
from ..physical import (
    Placement,
    annealing_placement,
    critical_path_placed,
    power_density_map,
)
from ..synth import SynthesisFlow, standard_library


class DesignStage(enum.Enum):
    """The rows of Table II."""

    HIGH_LEVEL_SYNTHESIS = "high-level synthesis"
    LOGIC_SYNTHESIS = "logic synthesis"
    PHYSICAL_SYNTHESIS = "physical synthesis (place and route)"
    FUNCTIONAL_VALIDATION = "functional validation"
    TIMING_POWER_VERIFICATION = "timing and power verification"
    TESTING = "testing (ATPG, DFT, BIST)"


@dataclass
class StageRecord:
    """What one stage did and measured."""

    stage: DesignStage
    actions: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    security_checks: List[str] = field(default_factory=list)


@dataclass
class FlowReport:
    """Trace of a complete flow run."""

    design_name: str
    records: List[StageRecord] = field(default_factory=list)
    final_ppa: Optional[PPAReport] = None

    @property
    def total_security_checks(self) -> int:
        return sum(len(r.security_checks) for r in self.records)

    def render(self) -> str:
        """Human-readable per-stage trace."""
        lines = [f"=== flow report: {self.design_name} ==="]
        for r in self.records:
            lines.append(f"[{r.stage.value}]")
            for a in r.actions:
                lines.append(f"  - {a}")
            for k, v in r.metrics.items():
                lines.append(f"    {k} = {v:.2f}")
            if r.security_checks:
                for c in r.security_checks:
                    lines.append(f"    [security] {c}")
            else:
                lines.append("    [security] (none)")
        if self.final_ppa:
            d = self.final_ppa.as_dict()
            lines.append("final PPA: " + ", ".join(
                f"{k}={v:.1f}" for k, v in d.items()))
        return "\n".join(lines)


@dataclass
class ClassicalFlowResult:
    netlist: Netlist
    placement: Optional[Placement]
    report: FlowReport


class ClassicalFlow:
    """Fig. 1: the PPA-driven flow with no security awareness.

    Parameters bound the effort of each engine so the flow stays fast
    on test-sized designs.
    """

    def __init__(self, placement_iterations: int = 6000,
                 run_atpg_stage: bool = True,
                 seed: int = 0) -> None:
        self.placement_iterations = placement_iterations
        self.run_atpg_stage = run_atpg_stage
        self.seed = seed

    def run(self, netlist: Netlist) -> ClassicalFlowResult:
        """Run all classical stages; returns netlist, placement, report."""
        report = FlowReport(netlist.name)

        # Logic synthesis + technology mapping.
        synth = SynthesisFlow(library=standard_library())
        result = synth.run(netlist)
        optimized = result.netlist
        record = StageRecord(DesignStage.LOGIC_SYNTHESIS)
        record.actions.append(
            f"optimized {result.ppa_before.cell_count} -> "
            f"{result.ppa_after.cell_count} cells, mapped to std library"
        )
        record.metrics["area"] = result.ppa_after.area
        record.metrics["area_reduction"] = result.area_reduction
        report.records.append(record)

        # Functional validation: spot equivalence via simulation only
        # (classical flows trust their own rewrites or run LEC; no
        # security properties are checked either way).
        record = StageRecord(DesignStage.FUNCTIONAL_VALIDATION)
        record.actions.append("logic equivalence assumed from certified "
                              "rewrites (no security properties checked)")
        report.records.append(record)

        # Physical synthesis.
        placed = annealing_placement(
            optimized, iterations=self.placement_iterations,
            seed=self.seed)
        record = StageRecord(DesignStage.PHYSICAL_SYNTHESIS)
        record.actions.append(
            f"annealing placement: HPWL {placed.initial_hpwl:.0f} -> "
            f"{placed.final_hpwl:.0f}"
        )
        record.metrics["hpwl"] = placed.final_hpwl
        report.records.append(record)

        # Timing / power sign-off.
        record = StageRecord(DesignStage.TIMING_POWER_VERIFICATION)
        delay = critical_path_placed(optimized, placed.placement)
        record.metrics["critical_path_ps"] = delay
        density = power_density_map(optimized, placed.placement)
        record.metrics["max_power_density"] = float(density.max())
        record.actions.append("wire-aware STA and IR-drop proxy check")
        report.records.append(record)

        # Testing.
        record = StageRecord(DesignStage.TESTING)
        if self.run_atpg_stage:
            atpg = run_atpg(optimized, random_budget=32, seed=self.seed)
            record.metrics["stuck_at_coverage"] = atpg.coverage
            record.actions.append(
                f"ATPG: {len(atpg.vectors)} vectors, "
                f"{len(atpg.untestable)} redundant faults"
            )
        else:
            record.actions.append("ATPG skipped (flow configuration)")
        report.records.append(record)

        report.final_ppa = ppa_report(optimized)
        return ClassicalFlowResult(optimized, placed.placement, report)
