"""Design stages and the classical (security-unaware) EDA flow — Fig. 1.

The six stages are the rows of Table II.  :class:`ClassicalFlow` chains
the substrate engines exactly as the paper's Fig. 1 draws them —
synthesis, technology mapping, place-and-route, timing/power sign-off,
test generation — optimizing PPA and nothing else.  Its report has an
empty ``security_checks`` list *by construction*; the secure flow in
:mod:`repro.core.flow` is the paper's proposed alternative.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..netlist import Netlist, ppa_report
from ..netlist.metrics import PPAReport
from ..physical import Placement


class DesignStage(enum.Enum):
    """The rows of Table II."""

    HIGH_LEVEL_SYNTHESIS = "high-level synthesis"
    LOGIC_SYNTHESIS = "logic synthesis"
    PHYSICAL_SYNTHESIS = "physical synthesis (place and route)"
    FUNCTIONAL_VALIDATION = "functional validation"
    TIMING_POWER_VERIFICATION = "timing and power verification"
    TESTING = "testing (ATPG, DFT, BIST)"


@dataclass
class StageRecord:
    """What one stage did and measured."""

    stage: DesignStage
    actions: List[str] = field(default_factory=list)
    metrics: Dict[str, float] = field(default_factory=dict)
    security_checks: List[str] = field(default_factory=list)


@dataclass
class FlowReport:
    """Trace of a complete flow run."""

    design_name: str
    records: List[StageRecord] = field(default_factory=list)
    final_ppa: Optional[PPAReport] = None

    @property
    def total_security_checks(self) -> int:
        return sum(len(r.security_checks) for r in self.records)

    def render(self) -> str:
        """Human-readable per-stage trace."""
        lines = [f"=== flow report: {self.design_name} ==="]
        for r in self.records:
            lines.append(f"[{r.stage.value}]")
            for a in r.actions:
                lines.append(f"  - {a}")
            for k, v in r.metrics.items():
                lines.append(f"    {k} = {v:.2f}")
            if r.security_checks:
                for c in r.security_checks:
                    lines.append(f"    [security] {c}")
            else:
                lines.append("    [security] (none)")
        if self.final_ppa:
            d = self.final_ppa.as_dict()
            lines.append("final PPA: " + ", ".join(
                f"{k}={v:.1f}" for k, v in d.items()))
        return "\n".join(lines)


@dataclass
class ClassicalFlowResult:
    netlist: Netlist
    placement: Optional[Placement]
    report: FlowReport


class ClassicalFlow:
    """Fig. 1: the PPA-driven flow with no security awareness.

    Parameters bound the effort of each engine so the flow stays fast
    on test-sized designs.

    Since the pass-manager refactor this is a thin wrapper over
    :func:`repro.flow.classical_pipeline` run with *no* tracked
    properties (``goals=()``), so its report has an empty
    ``security_checks`` list by construction — the classical flow's
    defining gap, now visible in the pipeline definition itself.
    """

    def __init__(self, placement_iterations: int = 6000,
                 run_atpg_stage: bool = True,
                 seed: int = 0) -> None:
        self.placement_iterations = placement_iterations
        self.run_atpg_stage = run_atpg_stage
        self.seed = seed

    def run(self, netlist: Netlist) -> ClassicalFlowResult:
        """Run all classical stages; returns netlist, placement, report."""
        from ..flow import (
            PassManager,
            classical_pipeline,
            netlist_design,
            to_flow_report,
        )

        design = netlist_design(netlist.copy(), name=netlist.name,
                                seed=self.seed)
        manager = PassManager(seed=self.seed)
        outcome = manager.run(
            design,
            classical_pipeline(self.placement_iterations,
                               self.run_atpg_stage))
        report = to_flow_report(outcome.trace)
        report.final_ppa = ppa_report(outcome.design.netlist)
        return ClassicalFlowResult(outcome.design.netlist,
                                   outcome.context.placement, report)
