"""Security-aware design-space exploration (paper Sec. IV).

Classical DSE trades smooth metrics (area, delay, power); security
levels are step functions, so the efficient frontier only ever contains
configurations sitting *exactly at* security thresholds.  This module
provides generic Pareto machinery plus the concrete locking sweep that
measures the step behaviour (SAT-attack effort vs key width).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..netlist import Netlist, ppa_report


@dataclass
class Candidate:
    """One design configuration with its evaluated objectives."""

    name: str
    params: Dict[str, float] = field(default_factory=dict)
    objectives: Dict[str, float] = field(default_factory=dict)


def dominates(a: Candidate, b: Candidate,
              maximize: Sequence[str], minimize: Sequence[str]) -> bool:
    """Pareto dominance of ``a`` over ``b`` for the given objectives."""
    at_least_as_good = True
    strictly_better = False
    for key in maximize:
        if a.objectives[key] < b.objectives[key]:
            at_least_as_good = False
        elif a.objectives[key] > b.objectives[key]:
            strictly_better = True
    for key in minimize:
        if a.objectives[key] > b.objectives[key]:
            at_least_as_good = False
        elif a.objectives[key] < b.objectives[key]:
            strictly_better = True
    return at_least_as_good and strictly_better


def pareto_front(candidates: Sequence[Candidate],
                 maximize: Sequence[str],
                 minimize: Sequence[str]) -> List[Candidate]:
    """Non-dominated subset, preserving input order."""
    front = []
    for candidate in candidates:
        if not any(
            dominates(other, candidate, maximize, minimize)
            for other in candidates if other is not candidate
        ):
            front.append(candidate)
    return front


@dataclass
class LockingSweepPoint:
    """Measured locking trade-off at one key width."""

    key_bits: int
    area: float
    sat_attack_iterations: int
    attack_seconds: float
    attack_gave_up: bool


def measure_locking_point(netlist: Netlist, key_bits: int, seed: int = 0,
                          max_iterations: int = 400,
                          baseline_area: Optional[float] = None
                          ) -> LockingSweepPoint:
    """Measure one point of the locking trade-off curve.

    This is the per-point kernel shared by the serial sweep below and
    the :mod:`repro.service` ``locking-point`` job, so a distributed
    sweep is the same computation as the serial one, point for point.
    ``seed`` is threaded uniformly — the ``key_bits == 0`` baseline
    accepts (and ignores) it, so every point of a sweep is addressed by
    the same ``(netlist, bits, seed)`` triple.  ``baseline_area``
    short-circuits the unlocked PPA measurement when the caller has
    already computed it.
    """
    from ..ip import attack_locked_circuit, lock_xor

    if key_bits == 0:
        area = (baseline_area if baseline_area is not None
                else ppa_report(netlist).area)
        return LockingSweepPoint(0, area, 0, 0.0, False)
    locked = lock_xor(netlist, key_bits, seed=seed)
    began = time.perf_counter()
    result = attack_locked_circuit(locked, max_iterations=max_iterations)
    elapsed = time.perf_counter() - began
    return LockingSweepPoint(
        key_bits=key_bits,
        area=ppa_report(locked.netlist).area,
        sat_attack_iterations=result.iterations,
        attack_seconds=elapsed,
        attack_gave_up=result.gave_up,
    )


def sweep_locking(netlist: Netlist, key_widths: Sequence[int],
                  seed: int = 0,
                  max_iterations: int = 400) -> List[LockingSweepPoint]:
    """Lock at each key width and measure the SAT attacker's effort.

    The result exhibits the paper's step-function claim: attack effort
    (DIP count) grows with key bits, but the *security level* — which
    attacker classes are excluded — only changes at thresholds, while
    area cost climbs smoothly the whole way.

    The unlocked baseline area is measured once and reused for every
    ``bits == 0`` point.
    """
    baseline_area = ppa_report(netlist).area
    return [
        measure_locking_point(netlist, bits, seed=seed,
                              max_iterations=max_iterations,
                              baseline_area=baseline_area)
        for bits in key_widths
    ]


def sweep_locking_keys(locked, candidate_keys: Sequence[Dict[str, int]],
                       vectors: int = 64,
                       seed: int = 0) -> List[Candidate]:
    """Score many candidate keys of one locked design as DSE candidates.

    All keys share a single lowering of the locked netlist: the sweep
    runs as one batched
    :class:`~repro.netlist.VariantFamily` evaluation
    (:func:`repro.ip.score_candidate_keys`) instead of one
    compile+simulate round trip per key.  The ``corruption`` objective
    is the wrong-key error rate of each candidate — 0.0 means the key
    is functionally indistinguishable from the correct one on the
    tested vectors.
    """
    from ..ip import score_candidate_keys

    rates = score_candidate_keys(locked, list(candidate_keys),
                                 vectors=vectors, seed=seed)
    return [
        Candidate(
            name=f"key{i}",
            params={name: float(bit) for name, bit in key.items()},
            objectives={"corruption": rate},
        )
        for i, (key, rate) in enumerate(zip(candidate_keys, rates))
    ]


def locking_candidates(points: Sequence[LockingSweepPoint],
                       step_thresholds: Sequence[int] = (1, 10, 100)
                       ) -> List[Candidate]:
    """Convert sweep points into DSE candidates.

    ``security_level`` counts how many attack-effort thresholds (in DIP
    iterations) the configuration exceeds — a step function by
    construction, matching Sec. IV.
    """
    candidates = []
    for point in points:
        effort = (float("inf") if point.attack_gave_up
                  else point.sat_attack_iterations)
        level = sum(1 for t in step_thresholds if effort > t)
        candidates.append(Candidate(
            name=f"lock{point.key_bits}",
            params={"key_bits": float(point.key_bits)},
            objectives={
                "area": point.area,
                "security_level": float(level),
                "attack_iterations": (
                    float(point.sat_attack_iterations)),
            },
        ))
    return candidates
