"""Security metrics: registry, evaluation, and step-function behaviour.

Sec. IV of the paper: EDA is metrics-driven, so secure composition
needs security metrics standing next to area/delay/power — but, unlike
PPA, many security metrics behave as *step functions* of invested
effort ("certain efforts must be spent to reach a security level, but
spending more will not provide additional benefits").
:class:`StepFunctionMetric` captures that shape explicitly so DSE can
treat it correctly (never trade along a flat segment).
"""

from __future__ import annotations

import bisect
import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .threats import ThreatVector


class Direction(enum.Enum):
    """Whether larger metric values mean more security."""

    HIGHER_IS_BETTER = "higher"
    LOWER_IS_BETTER = "lower"


@dataclass
class MetricResult:
    """One evaluated metric value with pass/fail against its target."""

    name: str
    value: float
    target: Optional[float]
    direction: Direction
    threat: ThreatVector

    @property
    def satisfied(self) -> Optional[bool]:
        if self.target is None:
            return None
        if self.direction is Direction.HIGHER_IS_BETTER:
            return self.value >= self.target
        return self.value <= self.target


@dataclass
class SecurityMetric:
    """A named, threat-annotated metric with an evaluator.

    ``evaluator(design) -> float`` where ``design`` is whatever object
    the owning pass family operates on (usually a
    :class:`repro.core.composition.Design`).
    """

    name: str
    threat: ThreatVector
    direction: Direction
    evaluator: Callable[..., float]
    target: Optional[float] = None
    description: str = ""

    def evaluate(self, design) -> MetricResult:
        """Run the evaluator; returns the value with pass/fail context."""
        return MetricResult(
            name=self.name,
            value=float(self.evaluator(design)),
            target=self.target,
            direction=self.direction,
            threat=self.threat,
        )


class MetricRegistry:
    """Lookup of metrics by name and by threat vector."""

    def __init__(self) -> None:
        self._metrics: Dict[str, SecurityMetric] = {}

    def register(self, metric: SecurityMetric) -> SecurityMetric:
        """Register a metric (unique by name); returns it."""
        if metric.name in self._metrics:
            raise ValueError(f"duplicate metric {metric.name!r}")
        self._metrics[metric.name] = metric
        return metric

    def get(self, name: str) -> SecurityMetric:
        """Look a metric up by name."""
        return self._metrics[name]

    def for_threat(self, threat: ThreatVector) -> List[SecurityMetric]:
        """All metrics quantifying one threat vector."""
        return [m for m in self._metrics.values() if m.threat is threat]

    def all(self) -> List[SecurityMetric]:
        """Every registered metric."""
        return list(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)


@dataclass
class StepFunctionMetric:
    """A security level that jumps at effort thresholds (paper Sec. IV).

    ``thresholds[i]`` is the minimum effort to reach level ``i+1``;
    between thresholds the level — and hence the security — is flat.
    Contrast :meth:`ppa_cost`, which grows smoothly with effort: the
    difference is precisely why classical DSE heuristics (gradient
    following) mis-handle security objectives.
    """

    name: str
    thresholds: List[float]
    level_names: Optional[List[str]] = None

    def level(self, effort: float) -> int:
        """Security level reached at ``effort``."""
        return bisect.bisect_right(self.thresholds, effort)

    def level_name(self, effort: float) -> str:
        """Readable name of the level reached at ``effort``."""
        lv = self.level(effort)
        if self.level_names and lv < len(self.level_names):
            return self.level_names[lv]
        return f"level-{lv}"

    def marginal_gain(self, effort: float, delta: float) -> int:
        """Levels gained by spending ``delta`` more — usually zero."""
        return self.level(effort + delta) - self.level(effort)

    def efficient_efforts(self) -> List[float]:
        """The only effort values worth choosing: the thresholds.

        Anything strictly between two thresholds wastes cost without
        gaining security — the actionable consequence of step-function
        behaviour for design-space exploration.
        """
        return list(self.thresholds)


def sat_attack_resistance_steps(key_bits_thresholds: Sequence[float] = (
        8, 16, 32, 64)) -> StepFunctionMetric:
    """Canonical example: locking strength vs key bits.

    Below ~8 bits brute force wins instantly; each threshold marks the
    point where a distinct attacker class (brute force, plain SAT,
    budgeted SAT, none) is priced out.  Between thresholds, extra key
    bits cost area but buy no new attacker exclusion.
    """
    return StepFunctionMetric(
        name="locking-resistance",
        thresholds=list(key_bits_thresholds),
        level_names=[
            "none", "stops-brute-force", "slows-sat", "stops-budgeted-sat",
            "stops-all-modeled",
        ],
    )


def masking_order_steps() -> StepFunctionMetric:
    """Masking security vs number of shares: jumps only at whole orders."""
    return StepFunctionMetric(
        name="masking-order",
        thresholds=[2, 3, 4],
        level_names=["unprotected", "1st-order", "2nd-order", "3rd-order"],
    )
