"""Security-constraint compilation — system level down to bare metal.

The paper's second key challenge (Sec. II-C): "effective means for
compilation of assumptions and constraints for security schemes, all
the way from the system level down to the bare metal."  This module is
that compiler for the constraint kinds this framework can discharge:

* ``NoFlowConstraint``   — non-interference between named ports,
  discharged by a SAT proof over the *final netlist* (GLIFT-style
  two-copy encoding);
* ``LeakageConstraint``  — TVLA bound, discharged by trace simulation
  on the final netlist;
* ``MaskingConstraint``  — a region must be share-encoded with fresh
  randomness, discharged structurally + by per-net leakage tests;
* ``DetectionConstraint``— FIA coverage floor, discharged by a fault
  campaign against the design's alarm.

A constraint is written once against the *specification* (port names of
the original design) and keeps meaning through transforms: the compiler
resolves names through the design's share/renaming maps before
checking, which is exactly the "compilation" the paper asks for —
intent stated at the top, obligations discharged at the bottom.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..flow.properties import (
    fault_detection_check,
    masking_check,
    no_flow_check,
    tvla_check,
)
from ..sca import TVLA_THRESHOLD
from .composition import Design
from .threats import ThreatVector


@dataclass
class Obligation:
    """One discharged (or violated) proof obligation."""

    constraint: str
    satisfied: bool
    evidence: str


class SecurityConstraint:
    """Base class: subclasses implement :meth:`discharge`."""

    name = "constraint"
    threat = ThreatVector.SIDE_CHANNEL

    def discharge(self, design: Design) -> Obligation:
        """Check the constraint against a design; returns the obligation."""
        raise NotImplementedError


@dataclass
class NoFlowConstraint(SecurityConstraint):
    """``source`` (a primary input) must not influence ``target``
    (a primary output) when the environment pins ``when`` values."""

    source: str
    target: str
    when: Dict[str, int] = field(default_factory=dict)
    name: str = "no-flow"
    threat: ThreatVector = ThreatVector.SIDE_CHANNEL

    def discharge(self, design: Design) -> Obligation:
        """Prove non-interference by the two-copy SAT encoding."""
        result = no_flow_check(design, self.source, self.target,
                               when=self.when)
        label = (f"{self.name}: {self.source} -/-> {self.target}"
                 + (f" when {self.when}" if self.when else ""))
        return Obligation(label, result.passed, result.message)


@dataclass
class LeakageConstraint(SecurityConstraint):
    """First-order TVLA must stay below ``max_t``."""

    max_t: float = TVLA_THRESHOLD
    n_traces: int = 3000
    noise_sigma: float = 0.25
    seed: int = 0
    name: str = "tvla-bound"
    threat: ThreatVector = ThreatVector.SIDE_CHANNEL

    def discharge(self, design: Design) -> Obligation:
        """Measure fixed-vs-random TVLA against the bound (shared
        checker — the same implementation the pass manager runs)."""
        result = tvla_check(design, n_traces=self.n_traces,
                            noise_sigma=self.noise_sigma,
                            threshold=self.max_t, seed=self.seed)
        return Obligation(
            f"{self.name}: max|t| <= {self.max_t}",
            result.passed, result.message)


@dataclass
class MaskingConstraint(SecurityConstraint):
    """No individual wire may leak (per-net |t| below ``max_t``) —
    the observable definition of intact share encoding."""

    max_t: float = TVLA_THRESHOLD
    n_traces: int = 2500
    seed: int = 0
    name: str = "masking-intact"
    threat: ThreatVector = ThreatVector.SIDE_CHANNEL

    def discharge(self, design: Design) -> Obligation:
        """Check every individual wire's fixed-vs-random balance."""
        result = masking_check(design, n_traces=self.n_traces,
                               threshold=self.max_t, seed=self.seed)
        return Obligation(f"{self.name}: every wire balanced",
                          result.passed, result.message)


@dataclass
class DetectionConstraint(SecurityConstraint):
    """Fault-detection coverage over the protected region must reach
    ``min_coverage`` with zero silent corruptions."""

    min_coverage: float = 0.99
    n_vectors: int = 64
    seed: int = 0
    name: str = "fault-detection"
    threat: ThreatVector = ThreatVector.FAULT_INJECTION

    def discharge(self, design: Design) -> Obligation:
        """Run the fault campaign against the coverage floor."""
        result = fault_detection_check(design,
                                       min_coverage=self.min_coverage,
                                       n_vectors=self.n_vectors,
                                       seed=self.seed)
        return Obligation(f"{self.name}: coverage >= {self.min_coverage}",
                          result.passed, result.message)


@dataclass
class CompilationReport:
    """All obligations of one constraint set against one design."""

    design_name: str
    obligations: List[Obligation] = field(default_factory=list)

    @property
    def satisfied(self) -> bool:
        return all(o.satisfied for o in self.obligations)

    def render(self) -> str:
        """Human-readable obligation list with the signoff verdict."""
        lines = [f"=== constraint compilation: {self.design_name} ==="]
        for o in self.obligations:
            status = "SATISFIED" if o.satisfied else "VIOLATED "
            lines.append(f"  [{status}] {o.constraint}")
            lines.append(f"             {o.evidence}")
        verdict = "signoff clean" if self.satisfied else "signoff BLOCKED"
        lines.append(f">>> {verdict}")
        return "\n".join(lines)


def compile_and_check(design: Design,
                      constraints: Sequence[SecurityConstraint]
                      ) -> CompilationReport:
    """Discharge every constraint against the design's current netlist."""
    report = CompilationReport(design.name)
    for constraint in constraints:
        report.obligations.append(constraint.discharge(design))
    return report
