"""Mutual Information Analysis (MIA) — the information-theoretic
distinguisher.

The paper (Sec. III-C) contrasts TVLA's statistical assumptions with
"information-theoretic procedures [that] bound that error using fewer
statistical assumptions" at higher computational cost.  MIA is that
procedure as a key-recovery distinguisher: rank key guesses by the
estimated mutual information between the trace samples and the
predicted intermediate, with no linearity assumption between leakage
and model (unlike CPA's Pearson correlation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..crypto import SBOX
from .power_model import HW8


def mutual_information(samples: np.ndarray, labels: np.ndarray,
                       n_bins: int = 9) -> float:
    """Plug-in MI estimate (bits) between a 1-D sample and labels.

    Samples are histogram-binned; labels are discrete.  The plug-in
    estimator is biased upward for small N — callers compare guesses
    against each other, where the bias largely cancels.
    """
    samples = np.asarray(samples, dtype=float)
    labels = np.asarray(labels)
    edges = np.histogram_bin_edges(samples, bins=n_bins)
    binned = np.clip(np.digitize(samples, edges[1:-1]), 0, n_bins - 1)
    classes = np.unique(labels)
    n = len(samples)
    joint = np.zeros((len(classes), n_bins))
    for i, c in enumerate(classes):
        mask = labels == c
        for b in range(n_bins):
            joint[i, b] = np.sum(binned[mask] == b)
    joint /= n
    p_label = joint.sum(axis=1, keepdims=True)
    p_bin = joint.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = joint / (p_label @ p_bin)
        terms = np.where(joint > 0, joint * np.log2(ratio), 0.0)
    return float(terms.sum())


@dataclass
class MiaResult:
    """MIA key-recovery outcome."""

    scores: np.ndarray         # (n_keys,) peak MI per guess
    ranking: List[int]
    best_key: int
    best_mi: float

    def rank_of(self, true_key: int) -> int:
        """Position of the true key in the MI ranking (0 = recovered)."""
        return self.ranking.index(true_key)


def mia_attack(traces: np.ndarray, plaintexts: Sequence[int],
               hypothesis: Optional[Callable[[np.ndarray, int],
                                             np.ndarray]] = None,
               n_keys: int = 256,
               n_bins: int = 9) -> MiaResult:
    """Recover a key byte by maximizing sample/model mutual information.

    ``hypothesis(plaintexts, key)`` gives the predicted discrete
    intermediate per trace (default: HW of the first-round AES S-box
    output).  For each guess, the peak MI across trace samples is the
    score.
    """
    traces = np.asarray(traces, dtype=float)
    pts = np.asarray(plaintexts, dtype=np.int64)
    if traces.ndim != 2 or len(pts) != len(traces):
        raise ValueError("traces must be (n, samples) aligned with pts")
    if hypothesis is None:
        sbox = np.asarray(SBOX, dtype=np.int64)

        def hypothesis(p, k):
            return HW8[sbox[np.bitwise_xor(p, k)]]

    scores = np.zeros(n_keys)
    for key in range(n_keys):
        labels = hypothesis(pts, key)
        best = 0.0
        for sample in range(traces.shape[1]):
            best = max(best, mutual_information(traces[:, sample],
                                                labels, n_bins))
        scores[key] = best
    ranking = [int(k) for k in np.argsort(-scores)]
    return MiaResult(
        scores=scores,
        ranking=ranking,
        best_key=ranking[0],
        best_mi=float(scores[ranking[0]]),
    )


def perceived_information_gap(traces: np.ndarray,
                              plaintexts: Sequence[int],
                              true_key: int,
                              n_bins: int = 9) -> float:
    """MI(trace; true-key model) minus the mean over wrong keys.

    A direct information-theoretic leakage certificate: positive gap =
    the traces carry key-dependent information an attacker can exploit;
    ~zero = no first-order information at this estimator resolution.
    """
    result = mia_attack(traces, plaintexts, n_bins=n_bins)
    wrong = [result.scores[k] for k in range(256) if k != true_key]
    return float(result.scores[true_key] - np.mean(wrong))
