"""Glitch-aware timing simulation.

The paper (Sec. III-E) stresses that glitches — transient transitions
within one clock cycle — strongly influence information leakage, and
that whether they appear depends on gate delays from physical synthesis.
This module is an event-driven simulator over the netlist with the
library delay model: it replays one input transition and records every
net transition with its time stamp, exposing glitch counts and a
time-binned dynamic power waveform.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from ..netlist import GateType, Netlist, simulate
from ..netlist.metrics import gate_delay


@dataclass
class GlitchReport:
    """All transition events of one input-vector transition."""

    events: List[Tuple[float, str, int]]  # (time, net, new value)
    transitions: Dict[str, int]           # per-net transition count
    final_values: Dict[str, int]
    initial_values: Dict[str, int] = field(default_factory=dict)

    @property
    def total_transitions(self) -> int:
        return sum(self.transitions.values())

    def glitch_count(self) -> int:
        """Transitions beyond the functionally required single toggle.

        A net that settles to a different value needs exactly one
        transition; one that keeps its value needs zero.  Everything
        above that is glitching.
        """
        extra = 0
        for net, count in self.transitions.items():
            needed = 1 if self.initial_values[net] != self.final_values[net] else 0
            extra += max(0, count - needed)
        return extra

    def power_waveform(self, bin_width: float = 10.0,
                       horizon: Optional[float] = None) -> np.ndarray:
        """Transitions per time bin (a dynamic power proxy)."""
        if not self.events:
            return np.zeros(1)
        end = horizon or max(t for t, _, _ in self.events)
        n_bins = int(end / bin_width) + 1
        wave = np.zeros(n_bins)
        for t, _, _ in self.events:
            wave[min(n_bins - 1, int(t / bin_width))] += 1.0
        return wave


def glitch_simulate(netlist: Netlist,
                    before: Mapping[str, int],
                    after: Mapping[str, int],
                    delays: Optional[Mapping[str, float]] = None,
                    ) -> GlitchReport:
    """Event-driven simulation of the transition ``before -> after``.

    ``delays`` optionally overrides the per-gate delay (by net name);
    default is the library delay model.  Inputs switch at t=0.
    """
    initial = simulate(netlist, before)
    fanout = netlist.fanout_map()
    values = dict(initial)
    counter = itertools.count()
    # Event queue: (time, seq, net, value)
    queue: List[Tuple[float, int, str, int]] = []
    for name in netlist.inputs:
        new = after.get(name, 0) & 1
        if new != values[name]:
            heapq.heappush(queue, (0.0, next(counter), name, new))
    events: List[Tuple[float, str, int]] = []
    transitions: Dict[str, int] = {net: 0 for net in netlist.gates}

    def delay_of(net: str) -> float:
        if delays and net in delays:
            return float(delays[net])
        g = netlist.gates[net]
        return gate_delay(g.gate_type, len(g.fanins))

    from ..netlist.gates import evaluate

    while queue:
        time, _, net, value = heapq.heappop(queue)
        if values[net] == value:
            continue  # glitch got cancelled by a later-scheduled event
        values[net] = value
        events.append((time, net, value))
        transitions[net] += 1
        for consumer in fanout[net]:
            g = netlist.gates[consumer]
            if g.gate_type is GateType.DFF or not g.gate_type.is_combinational:
                continue
            new_out = evaluate(g.gate_type,
                               [values[fi] for fi in g.fanins], 1)
            heapq.heappush(
                queue,
                (time + delay_of(consumer), next(counter), consumer, new_out),
            )

    report = GlitchReport(events=events, transitions=transitions,
                          final_values=values, initial_values=initial)
    # Sanity: the settled values must match static simulation.
    settled = simulate(netlist, after)
    for net, v in settled.items():
        if netlist.gates[net].gate_type is not GateType.DFF \
                and values[net] != v:
            raise AssertionError(f"event simulation diverged on {net!r}")
    return report


def glitch_energy_traces(netlist: Netlist,
                         stimulus_pairs: List[Tuple[Mapping[str, int],
                                                    Mapping[str, int]]],
                         bin_width: float = 25.0,
                         noise_sigma: float = 0.0,
                         seed: int = 0) -> np.ndarray:
    """Glitch-accurate power traces for a batch of input transitions.

    More faithful (and far slower) than the levelized model of
    :func:`repro.sca.power_model.leakage_traces`; used to study how
    delay imbalance re-introduces leakage into masked logic.
    """
    horizon = 0.0
    reports = []
    for before, after in stimulus_pairs:
        rep = glitch_simulate(netlist, before, after)
        reports.append(rep)
        if rep.events:
            horizon = max(horizon, max(t for t, _, _ in rep.events))
    n_bins = int(horizon / bin_width) + 1
    traces = np.zeros((len(reports), n_bins))
    for i, rep in enumerate(reports):
        wave = rep.power_waveform(bin_width, horizon)
        traces[i, :len(wave)] = wave
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        traces = traces + rng.normal(0.0, noise_sigma, traces.shape)
    return traces
