"""Side-channel analysis: leakage simulation, TVLA, CPA, masking, WDDL."""

from .power_model import (
    HW8,
    family_leakage_traces,
    family_net_bit_matrix,
    hamming_weight,
    hd_model,
    intermediate_value_trace,
    leakage_traces,
    popcounts,
    signal_to_noise_ratio,
)
from .tvla import TVLA_THRESHOLD, TvlaResult, tvla, tvla_sweep, welch_t
from .cpa import (
    CpaResult,
    aes_sbox_hypothesis,
    cpa_attack,
    traces_to_disclosure,
)
from .masking import (
    GadgetTrace,
    decode_shares,
    encode_shares,
    isw_and,
    isw_and_netlist,
    masked_xor,
    probing_security_first_order,
    random_share_stimulus,
)
from .masked_synthesis import MaskedCircuit, mask_netlist
from .wddl import dual_rail_stimulus, to_and_or_not, wddl_transform
from .glitch import GlitchReport, glitch_energy_traces, glitch_simulate
from .seq_leakage import (
    sequential_leakage_traces,
    sequential_power_trace,
)
from .mia import (
    MiaResult,
    mia_attack,
    mutual_information,
    perceived_information_gap,
)
from .localize import (
    NetLeakage,
    leaking_gate_report,
    locate_leaking_nets,
    per_net_values,
)

__all__ = [
    "HW8", "family_leakage_traces", "family_net_bit_matrix",
    "hamming_weight", "hd_model", "intermediate_value_trace",
    "leakage_traces", "popcounts", "signal_to_noise_ratio",
    "TVLA_THRESHOLD", "TvlaResult", "tvla", "tvla_sweep", "welch_t",
    "CpaResult", "aes_sbox_hypothesis", "cpa_attack", "traces_to_disclosure",
    "GadgetTrace", "decode_shares", "encode_shares", "isw_and",
    "isw_and_netlist", "masked_xor", "probing_security_first_order",
    "random_share_stimulus",
    "MaskedCircuit", "mask_netlist",
    "dual_rail_stimulus", "to_and_or_not", "wddl_transform",
    "GlitchReport", "glitch_energy_traces", "glitch_simulate",
    "sequential_leakage_traces", "sequential_power_trace",
    "MiaResult", "mia_attack", "mutual_information",
    "perceived_information_gap",
    "NetLeakage", "leaking_gate_report", "locate_leaking_nets",
    "per_net_values",
]
