"""Pre-silicon power-leakage simulation.

The paper (Sec. III-E) argues for identifying side-channel leakage via
pre-silicon simulation instead of measuring finished silicon.  This
module is that simulator: a gate-level power model over the netlist IR,
with logic *levels* acting as time samples — level ``L``'s sample
aggregates the switching/value activity of all nets at depth ``L``,
mirroring how activity ripples through combinational logic within a
clock cycle.

Two classical CMOS leakage models are provided:

- ``value`` — sample ~ sum of net values (Hamming-weight model),
- ``toggle`` — sample ~ number of nets toggling between two stimuli
  (Hamming-distance / dynamic-power model).

Gaussian measurement noise is added on top, so TVLA/CPA operate under
realistic trace statistics.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence

import numpy as np

from ..netlist import Netlist, simulate

#: Hamming-weight lookup for bytes.
HW8 = np.array([bin(x).count("1") for x in range(256)], dtype=np.int64)


def hamming_weight(value: int) -> int:
    """Population count of an arbitrary-width integer."""
    return bin(value).count("1")


def _word_to_bits(word: int, width: int) -> np.ndarray:
    """Unpack a packed simulation word into a width-length 0/1 array."""
    n_bytes = (width + 7) // 8
    raw = np.frombuffer(word.to_bytes(n_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].astype(np.int64)


def leakage_traces(netlist: Netlist,
                   stimuli: Sequence[Mapping[str, int]],
                   model: str = "value",
                   noise_sigma: float = 1.0,
                   seed: int = 0,
                   weights: Optional[Mapping[str, float]] = None,
                   ) -> np.ndarray:
    """Simulate power traces for a batch of single-bit stimulus dicts.

    Returns an array of shape ``(len(stimuli), depth+1)``: one trace per
    stimulus, one sample per logic level.  ``weights`` optionally scales
    each net's contribution (e.g. per-cell switching energy); default 1.

    For ``model="toggle"``, each trace covers the transition from the
    previous stimulus to the current one (the first trace uses an
    all-zero predecessor).
    """
    if model not in ("value", "toggle"):
        raise ValueError(f"unknown leakage model {model!r}")
    n_traces = len(stimuli)
    if n_traces == 0:
        return np.zeros((0, 0))
    width = n_traces
    packed: Dict[str, int] = {name: 0 for name in netlist.inputs}
    for position, stim in enumerate(stimuli):
        for name in netlist.inputs:
            if stim.get(name, 0) & 1:
                packed[name] |= 1 << position
    values = simulate(netlist, packed, width)
    levels = netlist.levels()
    depth = max(levels.values()) if levels else 0
    samples = np.zeros((n_traces, depth + 1))
    for net, level in levels.items():
        word = values[net]
        if model == "toggle":
            # Transition bits: value in trace i vs trace i-1.
            word = word ^ ((word << 1) & ((1 << width) - 1))
        bits = _word_to_bits(word, width)
        w = 1.0 if weights is None else float(weights.get(net, 1.0))
        samples[:, level] += w * bits
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        samples = samples + rng.normal(0.0, noise_sigma, samples.shape)
    return samples


def intermediate_value_trace(values: Sequence[int],
                             noise_sigma: float = 0.0,
                             rng: Optional[np.random.Generator] = None,
                             ) -> np.ndarray:
    """Leakage trace of a *software-modeled* computation.

    Each intermediate value contributes one sample equal to its Hamming
    weight — the standard model for the paper's private-circuit example
    where the order of evaluation determines which intermediates exist.
    """
    trace = np.array([hamming_weight(v) for v in values], dtype=float)
    if noise_sigma > 0:
        rng = rng or np.random.default_rng()
        trace = trace + rng.normal(0.0, noise_sigma, trace.shape)
    return trace


def hd_model(before: int, after: int) -> int:
    """Hamming-distance leakage between two register states."""
    return hamming_weight(before ^ after)


def signal_to_noise_ratio(traces: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
    """Per-sample SNR: Var_groups(mean) / mean_groups(Var).

    ``labels`` assigns each trace to a group (e.g. an intermediate
    value); high SNR samples are exploitable leakage points.
    """
    groups = np.unique(labels)
    means = np.stack([traces[labels == g].mean(axis=0) for g in groups])
    variances = np.stack([traces[labels == g].var(axis=0) for g in groups])
    noise = variances.mean(axis=0)
    signal = means.var(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        snr = np.where(noise > 0, signal / noise, np.inf * (signal > 0))
    return snr
