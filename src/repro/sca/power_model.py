"""Pre-silicon power-leakage simulation.

The paper (Sec. III-E) argues for identifying side-channel leakage via
pre-silicon simulation instead of measuring finished silicon.  This
module is that simulator: a gate-level power model over the netlist IR,
with logic *levels* acting as time samples — level ``L``'s sample
aggregates the switching/value activity of all nets at depth ``L``,
mirroring how activity ripples through combinational logic within a
clock cycle.

Two classical CMOS leakage models are provided:

- ``value`` — sample ~ sum of net values (Hamming-weight model),
- ``toggle`` — sample ~ number of nets toggling between two stimuli
  (Hamming-distance / dynamic-power model).

Gaussian measurement noise is added on top, so TVLA/CPA operate under
realistic trace statistics.

Trace generation is fully vectorized: the whole stimulus batch is
simulated as packed words on the compiled engine
(:mod:`repro.netlist.engine`), unpacked into one ``(nets, traces)``
bit-matrix, and aggregated into per-level samples with a single matrix
product.  Wide batches are split into cache-friendly chunks of
:data:`PACK_CHUNK` patterns so the packed words stay small.
"""

from __future__ import annotations

import operator
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..netlist import Netlist, VariantFamily, get_compiled

#: Hamming-weight lookup for bytes.
HW8 = np.array([x.bit_count() for x in range(256)], dtype=np.int64)

#: Patterns per packed simulation chunk.  Bounds the Python-int words at
#: ``PACK_CHUNK`` bits so bigint ops stay in the small, cache-friendly
#: regime even for multi-thousand-trace campaigns.
PACK_CHUNK = 2048

#: Total word width (variants x traces-per-chunk) for family sweeps.
#: Wider than :data:`PACK_CHUNK`: the batched win comes from amortizing
#: per-statement dispatch over more patterns per word, so family chunks
#: deliberately run in the large-word regime.
FAMILY_CHUNK_BITS = 1 << 15


def hamming_weight(value: int) -> int:
    """Population count of an arbitrary-width integer."""
    return int(value).bit_count()


def popcounts(words: Sequence[int], width: Optional[int] = None) -> np.ndarray:
    """Population count of each word, vectorized over byte planes.

    Bit-exact replacement for ``[hamming_weight(w) for w in words]`` on
    non-negative words: the words are laid out as a bytes matrix and
    counted with one vectorized pass instead of per-word Python calls.
    """
    values = [int(w) for w in words]
    if not values:
        return np.zeros(0, dtype=np.int64)
    if min(values) < 0:
        # Popcount of a negative int is ill-defined byte-wise; keep the
        # exact Python semantics for this (unused in hot paths) case.
        return np.array([hamming_weight(w) for w in values], dtype=np.int64)
    if width is None:
        width = max(1, max(w.bit_length() for w in values))
    n_bytes = (width + 7) // 8
    buffer = b"".join(w.to_bytes(n_bytes, "little") for w in values)
    raw = np.frombuffer(buffer, dtype=np.uint8).reshape(len(values), n_bytes)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(raw).sum(axis=1, dtype=np.int64)
    return HW8[raw].sum(axis=1)


def _word_to_bits(word: int, width: int) -> np.ndarray:
    """Unpack a packed simulation word into a width-length 0/1 array."""
    n_bytes = (width + 7) // 8
    raw = np.frombuffer(word.to_bytes(n_bytes, "little"), dtype=np.uint8)
    return np.unpackbits(raw, bitorder="little")[:width].astype(np.int64)


def _words_to_bit_matrix(words: Sequence[int], width: int) -> np.ndarray:
    """Unpack packed words into a ``(len(words), width)`` 0/1 uint8 matrix.

    One ``bytes`` concatenation plus one ``unpackbits`` call for the
    whole net set — this replaces a per-net Python unpacking loop.
    """
    n_bytes = (width + 7) // 8
    buffer = b"".join(w.to_bytes(n_bytes, "little") for w in words)
    raw = np.frombuffer(buffer, dtype=np.uint8).reshape(len(words), n_bytes)
    return np.unpackbits(raw, axis=1, bitorder="little")[:, :width]


def _pack_stimuli(stimuli: Sequence[Mapping[str, int]],
                  input_names: Sequence[str]) -> Dict[str, int]:
    """Pack single-bit stimulus dicts into bit-parallel words.

    Bits are gathered into a ``(traces, inputs)`` matrix and packed per
    input with one :func:`numpy.packbits` call — building each word
    bit-by-bit with bigint ORs is quadratic in the pattern count.
    """
    if not input_names:
        return {}
    try:
        # C-speed gather when every stimulus provides every input (the
        # overwhelmingly common case); missing keys or oversized values
        # fall back to the generic path.
        getter = operator.itemgetter(*input_names)
        if len(input_names) == 1:
            rows = [(getter(stim),) for stim in stimuli]
        else:
            rows = [getter(stim) for stim in stimuli]
        matrix = (np.array(rows, dtype=np.int64) & 1).astype(np.uint8)
    except (KeyError, OverflowError):
        matrix = np.array(
            [[stim.get(name, 0) & 1 for name in input_names]
             for stim in stimuli], dtype=np.uint8)
    return {
        name: int.from_bytes(
            np.packbits(matrix[:, col], bitorder="little").tobytes(),
            "little")
        for col, name in enumerate(input_names)
    }


def net_bit_matrix(netlist: Netlist,
                   stimuli: Sequence[Mapping[str, int]],
                   chunk: int = PACK_CHUNK) -> np.ndarray:
    """Value of every net for every stimulus as a ``(nets, traces)`` matrix.

    Rows follow the compiled topological order
    (``get_compiled(netlist).names``).  The stimulus batch is simulated
    in chunks of ``chunk`` packed patterns.
    """
    compiled = get_compiled(netlist)
    input_names = compiled.input_names
    n_traces = len(stimuli)
    bits = np.empty((len(compiled.names), n_traces), dtype=np.uint8)
    for start in range(0, n_traces, chunk):
        batch = stimuli[start:start + chunk]
        packed = _pack_stimuli(batch, input_names)
        words = compiled.eval_words(packed, len(batch))
        bits[:, start:start + len(batch)] = _words_to_bit_matrix(
            words, len(batch))
    return bits


def leakage_traces(netlist: Netlist,
                   stimuli: Sequence[Mapping[str, int]],
                   model: str = "value",
                   noise_sigma: float = 1.0,
                   seed: int = 0,
                   weights: Optional[Mapping[str, float]] = None,
                   ) -> np.ndarray:
    """Simulate power traces for a batch of single-bit stimulus dicts.

    Returns an array of shape ``(len(stimuli), depth+1)``: one trace per
    stimulus, one sample per logic level.  ``weights`` optionally scales
    each net's contribution (e.g. per-cell switching energy); default 1.

    For ``model="toggle"``, each trace covers the transition from the
    previous stimulus to the current one (the first trace uses an
    all-zero predecessor).
    """
    if model not in ("value", "toggle"):
        raise ValueError(f"unknown leakage model {model!r}")
    n_traces = len(stimuli)
    if n_traces == 0:
        return np.zeros((0, 0))
    compiled = get_compiled(netlist)
    bits = net_bit_matrix(netlist, stimuli)
    if model == "toggle":
        # Transition bits: value in trace i vs trace i-1 (trace 0 vs 0).
        toggled = bits.copy()
        toggled[:, 1:] = bits[:, 1:] ^ bits[:, :-1]
        bits = toggled
    scatter = _level_scatter(compiled, weights)
    samples = (bits.T.astype(scatter.dtype) @ scatter).astype(np.float64)
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        samples = samples + rng.normal(0.0, noise_sigma, samples.shape)
    return samples


def _level_scatter(compiled, weights: Optional[Mapping[str, float]]
                   ) -> np.ndarray:
    """``(nets, levels)`` scatter matrix: one matmul aggregates levels.

    Unweighted contributions are small integers (exact well below
    2**24), so float32 operands give a bit-identical result at half
    the memory traffic; arbitrary weights keep the float64 path.
    """
    dtype = np.float32 if weights is None else np.float64
    if weights is None:
        per_net = np.ones(len(compiled.names), dtype=dtype)
    else:
        per_net = np.array([float(weights.get(net, 1.0))
                            for net in compiled.names])
    scatter = np.zeros((len(compiled.names), compiled.depth + 1),
                       dtype=dtype)
    scatter[np.arange(len(compiled.names)), np.asarray(compiled.levels)] \
        = per_net
    return scatter


def family_net_bit_matrix(family: VariantFamily,
                          stimuli: Sequence[Mapping[str, int]],
                          chunk_bits: int = FAMILY_CHUNK_BITS) -> np.ndarray:
    """Every net's value per variant as ``(variants, nets, traces)``.

    The whole family is simulated in one packed pass per chunk; the
    full ``variants * chunk``-bit words are unpacked with a single
    ``unpackbits`` and reshaped, so no per-variant slicing happens in
    Python.  Variant ``v``'s plane is bit-identical to
    :func:`net_bit_matrix` on that variant alone.
    """
    compiled = get_compiled(family.netlist)
    n_variants = len(family.variants)
    n_traces = len(stimuli)
    # Inputs overridden by *every* variant need no shared stimulus.
    shared_names = [
        name for name in compiled.input_names
        if len(family._input_over.get(name, ())) < n_variants
    ]
    chunk = max(1, chunk_bits // max(1, n_variants))
    bits = np.empty((n_variants, len(compiled.names), n_traces),
                    dtype=np.uint8)
    for start in range(0, n_traces, chunk):
        batch = stimuli[start:start + chunk]
        packed = _pack_stimuli(batch, shared_names)
        words = family.eval_words(packed, len(batch))
        t = len(batch)
        flat = _words_to_bit_matrix(words, n_variants * t)
        bits[:, :, start:start + t] = \
            flat.reshape(len(words), n_variants, t).transpose(1, 0, 2)
    return bits


def family_leakage_traces(family: VariantFamily,
                          stimuli: Sequence[Mapping[str, int]],
                          model: str = "value",
                          noise_sigma: float = 1.0,
                          seed: int = 0,
                          weights: Optional[Mapping[str, float]] = None,
                          ) -> np.ndarray:
    """Leakage traces for every variant in one batched simulation pass.

    Returns ``(variants, len(stimuli), depth+1)``.  Variant ``v``'s
    plane is bit-identical to :func:`leakage_traces` on that variant
    alone with ``seed + v`` — noise is drawn from a fresh
    ``default_rng(seed + v)`` per variant — so a serial per-variant
    sweep and one batched call produce byte-equal traces (and hence
    identical TVLA verdicts).
    """
    if model not in ("value", "toggle"):
        raise ValueError(f"unknown leakage model {model!r}")
    n_variants = len(family.variants)
    n_traces = len(stimuli)
    if n_traces == 0:
        return np.zeros((n_variants, 0, 0))
    compiled = get_compiled(family.netlist)
    bits = family_net_bit_matrix(family, stimuli)
    if model == "toggle":
        toggled = bits.copy()
        toggled[:, :, 1:] = bits[:, :, 1:] ^ bits[:, :, :-1]
        bits = toggled
    scatter = _level_scatter(compiled, weights)
    out = np.empty((n_variants, n_traces, compiled.depth + 1))
    for v in range(n_variants):
        samples = (bits[v].T.astype(scatter.dtype) @ scatter) \
            .astype(np.float64)
        if noise_sigma > 0:
            rng = np.random.default_rng(seed + v)
            samples = samples + rng.normal(0.0, noise_sigma, samples.shape)
        out[v] = samples
    return out


def intermediate_value_trace(values: Sequence[int],
                             noise_sigma: float = 0.0,
                             rng: Optional[np.random.Generator] = None,
                             ) -> np.ndarray:
    """Leakage trace of a *software-modeled* computation.

    Each intermediate value contributes one sample equal to its Hamming
    weight — the standard model for the paper's private-circuit example
    where the order of evaluation determines which intermediates exist.
    """
    trace = popcounts(values).astype(float)
    if noise_sigma > 0:
        rng = rng or np.random.default_rng()
        trace = trace + rng.normal(0.0, noise_sigma, trace.shape)
    return trace


def hd_model(before: int, after: int) -> int:
    """Hamming-distance leakage between two register states."""
    return int(before ^ after).bit_count()


def signal_to_noise_ratio(traces: np.ndarray,
                          labels: np.ndarray) -> np.ndarray:
    """Per-sample SNR: Var_groups(mean) / mean_groups(Var).

    ``labels`` assigns each trace to a group (e.g. an intermediate
    value); high SNR samples are exploitable leakage points.
    """
    groups = np.unique(labels)
    means = np.stack([traces[labels == g].mean(axis=0) for g in groups])
    variances = np.stack([traces[labels == g].var(axis=0) for g in groups])
    noise = variances.mean(axis=0)
    signal = means.var(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        snr = np.where(noise > 0, signal / noise, np.inf * (signal > 0))
    return snr
