"""Leakage localization: identify *which gates* leak.

Table II lists "identification of leaking gates" as a logic-synthesis
stage scheme.  Whole-trace TVLA says *whether* a design leaks; this
module runs the same fixed-vs-random Welch test per net, so the
security-enforcing designer (paper Sec. III-E) can trace the leakage to
its origin and fix it — the key pre-silicon advantage over measuring
finished ICs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..netlist import Netlist, get_compiled
from .power_model import net_bit_matrix
from .tvla import TVLA_THRESHOLD, welch_t


@dataclass
class NetLeakage:
    """Per-net leakage assessment entry."""

    net: str
    t_statistic: float
    level: int

    @property
    def leaks(self) -> bool:
        return abs(self.t_statistic) > TVLA_THRESHOLD


def per_net_values(netlist: Netlist,
                   stimuli: Sequence[Mapping[str, int]]) -> Dict[str, np.ndarray]:
    """Bit matrix of every net's value across a stimulus batch."""
    compiled = get_compiled(netlist)
    bits = net_bit_matrix(netlist, stimuli)
    return {net: bits[i].astype(np.int64)
            for i, net in enumerate(compiled.names)}


def locate_leaking_nets(netlist: Netlist,
                        fixed_stimuli: Sequence[Mapping[str, int]],
                        random_stimuli: Sequence[Mapping[str, int]],
                        noise_sigma: float = 0.01,
                        seed: int = 0) -> List[NetLeakage]:
    """Per-net fixed-vs-random t-test, most leaky nets first.

    Primary inputs are excluded: they trivially differ between classes.
    A tiny noise floor keeps the t-statistic finite on constant nets.
    """
    rng = np.random.default_rng(seed)
    fixed_bits = per_net_values(netlist, fixed_stimuli)
    random_bits = per_net_values(netlist, random_stimuli)
    levels = netlist.levels()
    inputs = set(netlist.inputs)
    results: List[NetLeakage] = []
    for net in netlist.gates:
        if net in inputs:
            continue
        a = fixed_bits[net].astype(float)[:, None]
        b = random_bits[net].astype(float)[:, None]
        a = a + rng.normal(0.0, noise_sigma, a.shape)
        b = b + rng.normal(0.0, noise_sigma, b.shape)
        t = float(welch_t(a, b)[0])
        results.append(NetLeakage(net=net, t_statistic=t, level=levels[net]))
    results.sort(key=lambda r: -abs(r.t_statistic))
    return results


def leaking_gate_report(results: Sequence[NetLeakage],
                        limit: int = 10) -> str:
    """Human-readable summary for flow reports."""
    lines = [f"{'net':<20} {'|t|':>8}  level  verdict"]
    for entry in list(results)[:limit]:
        verdict = "LEAKS" if entry.leaks else "ok"
        lines.append(
            f"{entry.net:<20} {abs(entry.t_statistic):>8.2f}  "
            f"{entry.level:>5}  {verdict}"
        )
    return "\n".join(lines)
