"""Wave Dynamic Differential Logic (WDDL) — gate-level hiding [21].

WDDL makes power consumption data-independent by computing every signal
on two complementary rails: for each original net ``s`` the protected
circuit carries ``s_t`` (true rail) and ``s_f`` (false rail) with the
invariant ``s_f = NOT s_t`` during evaluation.  Exactly one rail of
every pair is 1, so the total Hamming weight of the circuit state is a
data-independent constant — the "hiding" alternative to masking that
the paper lists for security-driven logic synthesis (Sec. III-B).

The transform requires a positive (AND/OR) network: inverters become
rail swaps.  :func:`to_and_or_not` first rewrites arbitrary logic into
AND/OR/NOT form.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..netlist import GateType, Netlist


def to_and_or_not(netlist: Netlist) -> Netlist:
    """Rewrite into AND2/OR2/NOT/BUF form (DeMorgan + XOR expansion)."""
    out = Netlist(netlist.name + "_aon")
    rename: Dict[str, str] = {}

    def inv(x: str) -> str:
        return out.add(GateType.NOT, [x], prefix="n")

    def and2(a: str, b: str) -> str:
        return out.add(GateType.AND, [a, b], prefix="g")

    def or2(a: str, b: str) -> str:
        return out.add(GateType.OR, [a, b], prefix="g")

    def reduce_tree(op, operands: List[str]) -> str:
        acc = operands[0]
        for x in operands[1:]:
            acc = op(acc, x)
        return acc

    for net in netlist.topological_order():
        g = netlist.gates[net]
        t = g.gate_type
        ins = [rename[fi] for fi in g.fanins] if t.is_combinational else []
        if t is GateType.INPUT:
            rename[net] = out.add_input(net)
            continue
        if t is GateType.DFF:
            raise ValueError("WDDL transform expects combinational logic")
        if t is GateType.CONST0:
            rename[net] = out.add_gate(net, GateType.CONST0)
        elif t is GateType.CONST1:
            rename[net] = out.add_gate(net, GateType.CONST1)
        elif t is GateType.BUF:
            rename[net] = ins[0]
        elif t is GateType.NOT:
            rename[net] = inv(ins[0])
        elif t is GateType.AND:
            rename[net] = reduce_tree(and2, ins)
        elif t is GateType.NAND:
            rename[net] = inv(reduce_tree(and2, ins))
        elif t is GateType.OR:
            rename[net] = reduce_tree(or2, ins)
        elif t is GateType.NOR:
            rename[net] = inv(reduce_tree(or2, ins))
        elif t in (GateType.XOR, GateType.XNOR):
            acc = ins[0]
            for x in ins[1:]:
                acc = or2(and2(acc, inv(x)), and2(inv(acc), x))
            rename[net] = inv(acc) if t is GateType.XNOR else acc
        elif t is GateType.MUX:
            s, d0, d1 = ins
            rename[net] = or2(and2(inv(s), d0), and2(s, d1))
        else:
            raise ValueError(f"unsupported gate {t.name}")
    for o in netlist.outputs:
        alias = out.new_name("y_alias")
        out.add_gate(alias, GateType.BUF, [rename[o]])
        out.outputs.append(alias)
    return out


def wddl_transform(netlist: Netlist) -> Tuple[Netlist, Dict[str, Tuple[str, str]]]:
    """Dual-rail WDDL version of a combinational netlist.

    Returns ``(protected, rails)`` where ``rails`` maps each original
    primary input/output name to its ``(true_rail, false_rail)`` nets.
    Inputs must be provided in complementary pairs by the testbench
    (this models the differential encoding of the original scheme).
    """
    aon = to_and_or_not(netlist)
    dual = Netlist(netlist.name + "_wddl")
    t_of: Dict[str, str] = {}
    f_of: Dict[str, str] = {}
    rails: Dict[str, Tuple[str, str]] = {}
    for net in aon.topological_order():
        g = aon.gates[net]
        t = g.gate_type
        if t is GateType.INPUT:
            t_of[net] = dual.add_input(f"{net}_t")
            f_of[net] = dual.add_input(f"{net}_f")
            rails[net] = (t_of[net], f_of[net])
        elif t is GateType.CONST0:
            t_of[net] = dual.add(GateType.CONST0, [], prefix="c0")
            f_of[net] = dual.add(GateType.CONST1, [], prefix="c1")
        elif t is GateType.CONST1:
            t_of[net] = dual.add(GateType.CONST1, [], prefix="c1")
            f_of[net] = dual.add(GateType.CONST0, [], prefix="c0")
        elif t is GateType.NOT:
            # Inversion is free: swap rails.
            t_of[net] = f_of[g.fanins[0]]
            f_of[net] = t_of[g.fanins[0]]
        elif t is GateType.BUF:
            t_of[net] = t_of[g.fanins[0]]
            f_of[net] = f_of[g.fanins[0]]
        elif t is GateType.AND:
            ts = [t_of[fi] for fi in g.fanins]
            fs = [f_of[fi] for fi in g.fanins]
            t_of[net] = dual.add(GateType.AND, ts, prefix="wt")
            f_of[net] = dual.add(GateType.OR, fs, prefix="wf")
        elif t is GateType.OR:
            ts = [t_of[fi] for fi in g.fanins]
            fs = [f_of[fi] for fi in g.fanins]
            t_of[net] = dual.add(GateType.OR, ts, prefix="wt")
            f_of[net] = dual.add(GateType.AND, fs, prefix="wf")
        else:
            raise ValueError(f"AON form should not contain {t.name}")
    for o in aon.outputs:
        t_name = dual.new_name("out_t")
        f_name = dual.new_name("out_f")
        dual.add_gate(t_name, GateType.BUF, [t_of[o]])
        dual.add_gate(f_name, GateType.BUF, [f_of[o]])
        dual.add_output(t_name)
        dual.add_output(f_name)
    # Map original outputs to rail pairs (in aon.outputs order, which
    # matches netlist.outputs order).
    for original, t_rail, f_rail in zip(
            netlist.outputs, dual.outputs[::2], dual.outputs[1::2]):
        rails[original] = (t_rail, f_rail)
    return dual, rails


def dual_rail_stimulus(stimulus: Dict[str, int]) -> Dict[str, int]:
    """Encode a single-rail stimulus into complementary rail pairs."""
    out: Dict[str, int] = {}
    for name, value in stimulus.items():
        out[f"{name}_t"] = value & 1
        out[f"{name}_f"] = 1 - (value & 1)
    return out
