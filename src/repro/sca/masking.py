"""Private circuits / ISW masking gadgets — the paper's Fig. 2 subject.

A sensitive bit ``a`` is split into shares ``(a1, a2, a3)`` with
``a = a1 ^ a2 ^ a3``.  Linear operations act share-wise; the AND gadget
(ISW multiplication) needs fresh randomness ``r12, r13, r23``:

    c1 = a1b1 ^ r12 ^ r13
    c2 = a2b2 ^ (r12 ^ a1b2) ^ a2b1 ^ r23
    c3 = a3b3 ^ (r13 ^ a1b3) ^ a3b1 ^ (r23 ^ a2b3) ^ a3b2

The parenthesization is the security property: every intermediate value
mixes in randomness before combining share products, so no single wire
carries an unmasked function of ``a`` or ``b``.  XOR being commutative,
the order is *functionally* irrelevant — which is exactly why a
security-unaware synthesis tool feels free to re-associate it and leak
(paper Sec. II-B).

This module provides both a software model (recording every
intermediate value for leakage simulation) and a netlist builder, plus
a first-order *probing security* checker that exhaustively verifies the
independence of every intermediate from the secrets.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist


# ----------------------------------------------------------------------
# Share encoding
# ----------------------------------------------------------------------

def encode_shares(bit: int, n_shares: int,
                  rng: Optional[random.Random] = None) -> List[int]:
    """Split one bit into ``n_shares`` Boolean shares."""
    rng = rng or random.Random()
    # One RNG draw for all mask shares (stimulus generation is on the
    # hot path of every masking campaign).
    word = rng.getrandbits(n_shares - 1)
    shares = [(word >> i) & 1 for i in range(n_shares - 1)]
    last = bit & 1
    for s in shares:
        last ^= s
    shares.append(last)
    return shares


def decode_shares(shares: Sequence[int]) -> int:
    """Recombine Boolean shares into the plain bit."""
    value = 0
    for s in shares:
        value ^= s
    return value & 1


# ----------------------------------------------------------------------
# Software gadgets with recorded intermediates
# ----------------------------------------------------------------------

@dataclass
class GadgetTrace:
    """Result shares plus every intermediate value, in evaluation order."""

    shares: List[int]
    intermediates: List[int] = field(default_factory=list)


def masked_xor(a_shares: Sequence[int], b_shares: Sequence[int]
               ) -> GadgetTrace:
    """Share-wise XOR (linear; needs no randomness)."""
    if len(a_shares) != len(b_shares):
        raise ValueError("share counts must match")
    trace = GadgetTrace(shares=[])
    for a, b in zip(a_shares, b_shares):
        c = a ^ b
        trace.intermediates.append(c)
        trace.shares.append(c)
    return trace


def isw_and(a_shares: Sequence[int], b_shares: Sequence[int],
            randomness: Sequence[int],
            order: str = "secure") -> GadgetTrace:
    """ISW AND gadget over ``n`` shares.

    ``randomness`` supplies the ``n*(n-1)/2`` bits ``r_ij`` (i<j), in
    row-major order.  ``order`` selects the evaluation schedule:

    - ``"secure"`` — the ISW order: randomness is mixed into every
      cross-product before accumulation (the parenthesization above).
    - ``"reassociated"`` — the Fig. 2 failure mode: all share products
      are summed first (creating unmasked intermediates), randomness is
      XOR-ed in last, as a timing-driven optimizer would schedule it.

    Every elementary XOR/AND result is recorded in ``intermediates``.
    """
    n = len(a_shares)
    if len(b_shares) != n:
        raise ValueError("share counts must match")
    expected_r = n * (n - 1) // 2
    if len(randomness) != expected_r:
        raise ValueError(f"need {expected_r} random bits, got {len(randomness)}")
    if order not in ("secure", "reassociated"):
        raise ValueError(f"unknown order {order!r}")

    r: Dict[Tuple[int, int], int] = {}
    idx = 0
    for i in range(n):
        for j in range(i + 1, n):
            r[(i, j)] = randomness[idx] & 1
            idx += 1

    trace = GadgetTrace(shares=[])
    record = trace.intermediates.append

    def product(i: int, j: int) -> int:
        p = (a_shares[i] & b_shares[j]) & 1
        record(p)
        return p

    if order == "secure":
        for i in range(n):
            acc = product(i, i)
            for j in range(n):
                if j == i:
                    continue
                if i < j:
                    z = r[(i, j)]
                else:
                    # z_ij = (r_ji ^ a_j b_i) ^ a_i b_j
                    t = r[(j, i)] ^ product(j, i)
                    record(t)
                    z = t ^ product(i, j)
                    record(z)
                acc ^= z
                record(acc)
            trace.shares.append(acc)
    else:
        # Re-associated: products first, randomness last.
        for i in range(n):
            acc = product(i, i)
            for j in range(n):
                if j == i:
                    continue
                if i > j:
                    acc ^= product(j, i)
                    record(acc)
                    acc ^= product(i, j)
                    record(acc)
            for j in range(n):
                if j == i:
                    continue
                key = (i, j) if i < j else (j, i)
                acc ^= r[key]
                record(acc)
            trace.shares.append(acc)
    return trace


# ----------------------------------------------------------------------
# Probing-security verification
# ----------------------------------------------------------------------

def probing_security_first_order(
    gadget: Callable[[Sequence[int], Sequence[int], Sequence[int]],
                     GadgetTrace],
    n_shares: int = 3,
) -> Tuple[bool, Optional[int]]:
    """Exhaustively check first-order probing security of an AND gadget.

    For every intermediate position, the distribution of that value
    (over uniformly random shares and randomness) must be identical for
    all four secret combinations ``(a, b)``.  Returns ``(secure,
    index_of_first_leaky_intermediate)``.

    Also verifies functional correctness (``decode == a & b``) as a side
    effect, raising ``AssertionError`` on miscomputation.
    """
    n_rand = n_shares * (n_shares - 1) // 2
    free_bits = 2 * (n_shares - 1) + n_rand
    distributions: Dict[Tuple[int, int], List[int]] = {}
    n_intermediates = None
    for a, b in itertools.product((0, 1), repeat=2):
        counts: List[int] = []
        for assignment in range(1 << free_bits):
            bits = [(assignment >> k) & 1 for k in range(free_bits)]
            a_shares = bits[:n_shares - 1]
            a_shares.append(_complete(a, a_shares))
            b_shares = bits[n_shares - 1:2 * (n_shares - 1)]
            b_shares.append(_complete(b, b_shares))
            randomness = bits[2 * (n_shares - 1):]
            trace = gadget(a_shares, b_shares, randomness)
            if decode_shares(trace.shares) != (a & b):
                raise AssertionError("gadget miscomputes AND")
            if n_intermediates is None:
                n_intermediates = len(trace.intermediates)
            if not counts:
                counts = [0] * n_intermediates
            for k, v in enumerate(trace.intermediates):
                counts[k] += v
        distributions[(a, b)] = counts
    reference = distributions[(0, 0)]
    for key, counts in distributions.items():
        for k, c in enumerate(counts):
            if c != reference[k]:
                return False, k
    return True, None


def _complete(secret: int, partial_shares: List[int]) -> int:
    last = secret & 1
    for s in partial_shares:
        last ^= s
    return last


# ----------------------------------------------------------------------
# Netlist builder
# ----------------------------------------------------------------------

def isw_and_netlist(n_shares: int = 3, name: str = "isw_and") -> Netlist:
    """Gate-level ISW AND gadget in the *secure* evaluation order.

    Inputs ``a0..``, ``b0..`` (shares) and ``r_i_j`` (randomness);
    outputs ``c0..``.  XOR accumulation is built as explicit 2-input
    chains matching the secure schedule, so a security-unaware
    restructuring pass (:func:`repro.synth.reassociate_for_timing`) has
    real re-association freedom to destroy — which is the Fig. 2
    experiment.
    """
    n = Netlist(name)
    a = [n.add_input(f"a{i}") for i in range(n_shares)]
    b = [n.add_input(f"b{i}") for i in range(n_shares)]
    r: Dict[Tuple[int, int], str] = {}
    for i in range(n_shares):
        for j in range(i + 1, n_shares):
            r[(i, j)] = n.add_input(f"r_{i}_{j}")

    def product(i: int, j: int) -> str:
        net = f"p_{i}_{j}"
        if net not in n:
            n.add_gate(net, GateType.AND, [a[i], b[j]])
        return net

    for i in range(n_shares):
        acc = product(i, i)
        for j in range(n_shares):
            if j == i:
                continue
            if i < j:
                z = r[(i, j)]
            else:
                t = n.add(GateType.XOR, [r[(j, i)], product(j, i)],
                          prefix=f"t{i}{j}_")
                z = n.add(GateType.XOR, [t, product(i, j)],
                          prefix=f"z{i}{j}_")
            acc = n.add(GateType.XOR, [acc, z], prefix=f"acc{i}_")
        n.add_gate(f"c{i}", GateType.BUF, [acc])
        n.add_output(f"c{i}")
    return n


_STIM_FNS: Dict[int, Callable[..., Dict[str, int]]] = {}


def _stimulus_fn(n_shares: int) -> Callable[..., Dict[str, int]]:
    """Generated stimulus builder for one share count.

    Stimulus generation sits on the hot path of every masking campaign
    (tens of thousands of calls per TVLA run), so — in the spirit of the
    compiled simulation engine — each share count gets one generated
    function drawing all randomness in a single RNG word and building
    the dict as one literal.
    """
    fn = _STIM_FNS.get(n_shares)
    if fn is not None:
        return fn
    n_mask = n_shares - 1
    n_fresh = n_shares * (n_shares - 1) // 2
    parity_mask = (1 << n_mask) - 1
    items = []
    for i in range(n_mask):
        items.append(f"'a{i}': (w >> {i}) & 1")
    items.append(f"'a{n_mask}': (sa ^ (w & {parity_mask}).bit_count()) & 1")
    for i in range(n_mask):
        items.append(f"'b{i}': (w >> {n_mask + i}) & 1")
    items.append(f"'b{n_mask}': (sb ^ ((w >> {n_mask}) "
                 f"& {parity_mask}).bit_count()) & 1")
    pos = 2 * n_mask
    for i in range(n_shares):
        for j in range(i + 1, n_shares):
            items.append(f"'r_{i}_{j}': (w >> {pos}) & 1")
            pos += 1
    source = (
        "def _stim(sa, sb, getrandbits):\n"
        f"    w = getrandbits({2 * n_mask + n_fresh})\n"
        "    return {" + ", ".join(items) + "}"
    )
    namespace: Dict[str, object] = {}
    exec(compile(source, "<share-stimulus>", "exec"), namespace)
    fn = namespace["_stim"]
    _STIM_FNS[n_shares] = fn
    return fn


def random_share_stimulus(secret_a: int, secret_b: int, n_shares: int,
                          rng: random.Random) -> Dict[str, int]:
    """One random masked stimulus for :func:`isw_and_netlist`."""
    return _stimulus_fn(n_shares)(secret_a, secret_b, rng.getrandbits)
