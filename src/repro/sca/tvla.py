"""Test Vector Leakage Assessment (TVLA) — Welch's t-test methodology.

The paper singles out TVLA [16] as "the most relevant approach" for
quantifying side-channel information leakage at design time
(Sec. III-C).  The method: collect traces for a *fixed* input class and
a *random* input class, then compute Welch's t-statistic per sample.
|t| above 4.5 indicates distinguishability, i.e. first-order leakage.

Second-order TVLA (for masked designs) applies the same test to
mean-centered squared traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: The conventional TVLA pass/fail threshold on |t|.
TVLA_THRESHOLD = 4.5


@dataclass
class TvlaResult:
    """Outcome of a TVLA run."""

    t_statistics: np.ndarray      # per-sample t values
    max_abs_t: float
    leaking_sample: int           # argmax of |t|
    threshold: float = TVLA_THRESHOLD
    order: int = 1

    @property
    def leaks(self) -> bool:
        """True when the design fails TVLA (|t| exceeds the threshold)."""
        return self.max_abs_t > self.threshold


def welch_t(group_a: np.ndarray, group_b: np.ndarray) -> np.ndarray:
    """Per-sample Welch's t-statistic between two trace sets.

    Both arrays have shape (n_traces, n_samples); returns (n_samples,).
    """
    if group_a.ndim != 2 or group_b.ndim != 2:
        raise ValueError("trace arrays must be 2-D (traces x samples)")
    na, nb = len(group_a), len(group_b)
    if na < 2 or nb < 2:
        raise ValueError("each group needs at least 2 traces")
    mean_a, mean_b = group_a.mean(axis=0), group_b.mean(axis=0)
    var_a = group_a.var(axis=0, ddof=1)
    var_b = group_b.var(axis=0, ddof=1)
    denom = np.sqrt(var_a / na + var_b / nb)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(denom > 0, (mean_a - mean_b) / denom, 0.0)
    return t


def _center_square(traces: np.ndarray) -> np.ndarray:
    return (traces - traces.mean(axis=0)) ** 2


def tvla(fixed_traces: np.ndarray, random_traces: np.ndarray,
         order: int = 1) -> TvlaResult:
    """Fixed-vs-random TVLA of the given order (1 or 2)."""
    if order not in (1, 2):
        raise ValueError("TVLA order must be 1 or 2")
    a, b = fixed_traces, random_traces
    if order == 2:
        a, b = _center_square(a), _center_square(b)
    t = welch_t(a, b)
    idx = int(np.argmax(np.abs(t)))
    return TvlaResult(
        t_statistics=t,
        max_abs_t=float(np.abs(t[idx])),
        leaking_sample=idx,
        order=order,
    )


def tvla_sweep(fixed_traces: np.ndarray, random_traces: np.ndarray,
               trace_counts: Tuple[int, ...],
               order: int = 1) -> np.ndarray:
    """Max |t| as a function of the number of traces used.

    Reproduces the classical "t grows with sqrt(N) if leakage exists"
    picture; returns one max-|t| value per entry of ``trace_counts``.
    """
    results = []
    for n in trace_counts:
        n = min(n, len(fixed_traces), len(random_traces))
        results.append(
            tvla(fixed_traces[:n], random_traces[:n], order=order).max_abs_t
        )
    return np.array(results)
