"""Correlation Power Analysis (CPA) — the reference SCA attack [1].

CPA ranks key guesses by the Pearson correlation between measured
traces and a leakage hypothesis (here: Hamming weight of the
first-round AES S-box output).  The EDA role (paper Table I) is
*evaluation at design time*: running CPA against simulated traces tells
the designer how many traces an attacker would need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from ..crypto import SBOX
from .power_model import HW8


@dataclass
class CpaResult:
    """Outcome of a CPA key-byte recovery."""

    correlations: np.ndarray   # (n_keys, n_samples)
    ranking: List[int]         # key guesses, best first
    best_key: int
    best_corr: float
    best_sample: int

    def rank_of(self, true_key: int) -> int:
        """Position of the true key in the ranking (0 = recovered)."""
        return self.ranking.index(true_key)


def _pearson_rows(hypotheses: np.ndarray, traces: np.ndarray) -> np.ndarray:
    """Correlation of each hypothesis row with each trace sample.

    ``hypotheses``: (n_keys, n_traces); ``traces``: (n_traces, n_samples).
    Returns (n_keys, n_samples).
    """
    h = hypotheses - hypotheses.mean(axis=1, keepdims=True)
    t = traces - traces.mean(axis=0, keepdims=True)
    h_norm = np.sqrt((h ** 2).sum(axis=1, keepdims=True))
    t_norm = np.sqrt((t ** 2).sum(axis=0, keepdims=True))
    denom = h_norm @ t_norm
    with np.errstate(divide="ignore", invalid="ignore"):
        corr = np.where(denom > 0, (h @ t) / denom, 0.0)
    return corr


def aes_sbox_hypothesis(plaintexts: np.ndarray, key_guess: int) -> np.ndarray:
    """HW(SBOX[pt ^ k]) leakage hypothesis for one key byte."""
    sbox = np.asarray(SBOX, dtype=np.int64)
    return HW8[sbox[np.bitwise_xor(plaintexts, key_guess)]]


def cpa_attack(traces: np.ndarray, plaintexts: Sequence[int],
               hypothesis: Optional[Callable[[np.ndarray, int], np.ndarray]]
               = None,
               n_keys: int = 256) -> CpaResult:
    """Recover a key byte by correlating traces with a leakage model.

    ``traces``: (n_traces, n_samples) array.  ``plaintexts``: the known
    input byte per trace.  ``hypothesis(plaintexts, key)`` returns the
    predicted leakage per trace (default: first-round AES S-box HW).
    """
    traces = np.asarray(traces, dtype=float)
    pts = np.asarray(plaintexts, dtype=np.int64)
    if traces.ndim != 2 or len(pts) != len(traces):
        raise ValueError("traces must be (n, samples) aligned with plaintexts")
    hyp = hypothesis or aes_sbox_hypothesis
    matrix = np.stack([hyp(pts, k) for k in range(n_keys)]).astype(float)
    corr = _pearson_rows(matrix, traces)
    peak = np.abs(corr).max(axis=1)
    ranking = list(np.argsort(-peak))
    best_key = int(ranking[0])
    best_sample = int(np.argmax(np.abs(corr[best_key])))
    return CpaResult(
        correlations=corr,
        ranking=[int(k) for k in ranking],
        best_key=best_key,
        best_corr=float(corr[best_key, best_sample]),
        best_sample=best_sample,
    )


def traces_to_disclosure(traces: np.ndarray, plaintexts: Sequence[int],
                         true_key: int,
                         steps: int = 10,
                         hypothesis: Optional[
                             Callable[[np.ndarray, int], np.ndarray]] = None,
                         ) -> int:
    """Measurements-to-disclosure: smallest trace count (on a grid of
    ``steps`` prefixes) at which CPA ranks the true key first.

    Returns the trace count, or -1 if the key is never rank-0 within the
    provided set.  This is the quantitative security metric the paper
    wants EDA tools to report for SCA resistance.
    """
    n = len(traces)
    for count in np.linspace(max(8, n // steps), n, steps).astype(int):
        result = cpa_attack(traces[:count], plaintexts[:count],
                            hypothesis=hypothesis)
        if result.best_key == true_key:
            return int(count)
    return -1
