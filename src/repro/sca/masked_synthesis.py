"""Automated masking synthesis: transform any netlist into a first-order
masked (2-share ISW) implementation.

This is the paper's headline ask made concrete — "automated and
holistic synthesis of various countermeasures" (Sec. I) and "integration
of masking [5]" in Table II's HLS row: given an arbitrary combinational
netlist, produce a masked netlist in which

* every signal ``s`` is carried as shares ``(s_0, s_1)`` with
  ``s = s_0 ^ s_1``;
* linear gates (XOR/XNOR/NOT/BUF) act share-wise;
* every nonlinear gate becomes an ISW multiplication gadget drawing one
  fresh random bit, built with the *secure evaluation order* as an
  explicit 2-input XOR chain (so the Fig. 2 experiments can attack the
  result);
* primary inputs/outputs become share pairs, and one fresh-randomness
  input ``rnd*`` is added per gadget.

The transform's security rests on the gadget order; running
:func:`repro.synth.reassociate_for_timing` over the result re-creates
the paper's failure mode at whole-netlist scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from ..netlist import GateType, Netlist
from ..synth.techmap import decompose_variadic
from .wddl import to_and_or_not


@dataclass
class MaskedCircuit:
    """A masked netlist plus its share/randomness interface."""

    netlist: Netlist
    input_shares: Dict[str, Tuple[str, str]]
    output_shares: Dict[str, Tuple[str, str]]
    random_inputs: List[str] = field(default_factory=list)

    @property
    def randomness_bits(self) -> int:
        return len(self.random_inputs)

    def stimulus(self, plain_inputs: Mapping[str, int],
                 rng: random.Random) -> Dict[str, int]:
        """Randomly share a plain stimulus and draw gadget randomness."""
        stim: Dict[str, int] = {}
        for name, (s0, s1) in self.input_shares.items():
            share = rng.randint(0, 1)
            stim[s0] = share
            stim[s1] = (plain_inputs.get(name, 0) & 1) ^ share
        for r in self.random_inputs:
            stim[r] = rng.randint(0, 1)
        return stim

    def decode_outputs(self, values: Mapping[str, int],
                       pattern: int = 0) -> Dict[str, int]:
        """Recombine output shares into plain values."""
        return {
            name: ((values[s0] >> pattern) ^ (values[s1] >> pattern)) & 1
            for name, (s0, s1) in self.output_shares.items()
        }


def mask_netlist(netlist: Netlist, name: Optional[str] = None
                 ) -> MaskedCircuit:
    """First-order ISW masking of a combinational netlist.

    The input is first normalized to 2-input AND/OR/NOT/BUF form; each
    AND then becomes the 2-share ISW gadget::

        c0 = (a0 & b0) ^ r
        c1 = a1b1 ^ ((r ^ a0b1) ^ a1b0)      -- this exact order

    OR is handled by De Morgan over the (free) share-wise inversion.
    """
    normalized = to_and_or_not(netlist)
    decompose_variadic(normalized)
    masked = Netlist((name or netlist.name) + "_masked")
    shares: Dict[str, Tuple[str, str]] = {}
    input_shares: Dict[str, Tuple[str, str]] = {}
    random_inputs: List[str] = []
    gadget_count = 0

    def fresh_random() -> str:
        nonlocal gadget_count
        r = masked.add_input(f"rnd{gadget_count}")
        gadget_count += 1
        random_inputs.append(r)
        return r

    def invert_shares(pair: Tuple[str, str], prefix: str
                      ) -> Tuple[str, str]:
        # NOT(s) = NOT(s0) ^ s1 : invert exactly one share.
        inv = masked.add(GateType.NOT, [pair[0]], prefix=prefix)
        return (inv, pair[1])

    def isw_and(a: Tuple[str, str], b: Tuple[str, str], tag: str
                ) -> Tuple[str, str]:
        r = fresh_random()
        p00 = masked.add(GateType.AND, [a[0], b[0]], prefix=f"{tag}p00_")
        p01 = masked.add(GateType.AND, [a[0], b[1]], prefix=f"{tag}p01_")
        p10 = masked.add(GateType.AND, [a[1], b[0]], prefix=f"{tag}p10_")
        p11 = masked.add(GateType.AND, [a[1], b[1]], prefix=f"{tag}p11_")
        c0 = masked.add(GateType.XOR, [p00, r], prefix=f"{tag}c0_")
        t1 = masked.add(GateType.XOR, [r, p01], prefix=f"{tag}t1_")
        t2 = masked.add(GateType.XOR, [t1, p10], prefix=f"{tag}t2_")
        c1 = masked.add(GateType.XOR, [p11, t2], prefix=f"{tag}c1_")
        return (c0, c1)

    for net in normalized.topological_order():
        g = normalized.gates[net]
        t = g.gate_type
        if t is GateType.INPUT:
            s0 = masked.add_input(f"{net}_s0")
            s1 = masked.add_input(f"{net}_s1")
            shares[net] = (s0, s1)
            input_shares[net] = (s0, s1)
            continue
        if t is GateType.CONST0:
            zero = masked.add(GateType.CONST0, [], prefix="mz")
            shares[net] = (zero, zero)
            continue
        if t is GateType.CONST1:
            zero = masked.add(GateType.CONST0, [], prefix="mz")
            one = masked.add(GateType.CONST1, [], prefix="mo")
            shares[net] = (one, zero)
            continue
        operands = [shares[fi] for fi in g.fanins]
        if t is GateType.BUF:
            shares[net] = operands[0]
        elif t is GateType.NOT:
            shares[net] = invert_shares(operands[0], f"mn_{net}_")
        elif t is GateType.XOR:
            a, b = operands
            shares[net] = (
                masked.add(GateType.XOR, [a[0], b[0]],
                           prefix=f"mx_{net}_0_"),
                masked.add(GateType.XOR, [a[1], b[1]],
                           prefix=f"mx_{net}_1_"),
            )
        elif t is GateType.AND:
            shares[net] = isw_and(operands[0], operands[1],
                                  f"ma_{net}_")
        elif t is GateType.OR:
            # a | b = ~(~a & ~b); inversions are free on shares.
            na = invert_shares(operands[0], f"mo_{net}_a_")
            nb = invert_shares(operands[1], f"mo_{net}_b_")
            conj = isw_and(na, nb, f"mo_{net}_")
            shares[net] = invert_shares(conj, f"mo_{net}_o_")
        else:
            raise ValueError(f"normalization left a {t.name} gate")
    output_shares: Dict[str, Tuple[str, str]] = {}
    for index, out in enumerate(normalized.outputs):
        pair = shares[out]
        original = netlist.outputs[index]
        o0 = f"{original}_s0"
        o1 = f"{original}_s1"
        masked.add_gate(o0, GateType.BUF, [pair[0]])
        masked.add_gate(o1, GateType.BUF, [pair[1]])
        masked.add_output(o0)
        masked.add_output(o1)
        output_shares[original] = (o0, o1)
    return MaskedCircuit(
        netlist=masked,
        input_shares=input_shares,
        output_shares=output_shares,
        random_inputs=random_inputs,
    )
