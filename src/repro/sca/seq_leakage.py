"""Leakage simulation for sequential designs (register-dominated power).

Synchronous designs leak predominantly through register switching: each
clock edge, the power sample is proportional to the Hamming distance of
the state registers (plus a value-weight term and noise).  This module
produces per-cycle traces for multi-cycle stimuli, enabling CPA/TVLA
against real datapaths like the gate-level AES of
:mod:`repro.crypto.aes_netlist` — the pre-silicon equivalent of probing
a crypto core's VDD pin.

Trace batches are simulated *bit-parallel across runs*: all N runs of a
campaign advance together through one packed sequential simulation
(run r lives in bit position r), so a 300-trace AES campaign costs 11
netlist evaluations instead of 3,300.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..netlist import Netlist, get_compiled, step_sequential
from .power_model import PACK_CHUNK, _words_to_bit_matrix


def sequential_power_trace(netlist: Netlist,
                           input_sequence: Sequence[Mapping[str, int]],
                           hd_weight: float = 1.0,
                           hw_weight: float = 0.2,
                           initial_state: Optional[Mapping[str, int]]
                           = None) -> np.ndarray:
    """Noise-free per-cycle power of one run.

    Sample ``t`` covers the clock edge ending cycle ``t``:
    ``hd_weight * HD(state_t, state_{t+1}) + hw_weight * HW(state_{t+1})``.
    """
    state: Dict[str, int] = dict(initial_state or {})
    flops = netlist.flops
    samples: List[float] = []
    for stimulus in input_sequence:
        _, next_state = step_sequential(netlist, stimulus, state)
        hd = sum(
            1 for ff in flops
            if (state.get(ff, 0) ^ next_state[ff]) & 1
        )
        hw = sum(next_state[ff] & 1 for ff in flops)
        samples.append(hd_weight * hd + hw_weight * hw)
        state = next_state
    return np.array(samples)


def _batched_traces(netlist: Netlist,
                    runs: Sequence[Sequence[Mapping[str, int]]],
                    hd_weight: float, hw_weight: float) -> np.ndarray:
    """Noise-free trace matrix with all runs packed into one word."""
    compiled = get_compiled(netlist)
    input_names = compiled.input_names
    flop_names = compiled.flop_names
    flop_indices = [compiled.index[ff] for ff in flop_names]
    n_runs = len(runs)
    n_cycles = max(len(run) for run in runs)
    lengths = np.array([len(run) for run in runs])
    matrix = np.zeros((n_runs, n_cycles))
    state = [0] * len(flop_names)
    for cycle in range(n_cycles):
        packed = dict.fromkeys(input_names, 0)
        for position, run in enumerate(runs):
            if cycle >= len(run):
                continue  # finished runs idle at zero inputs
            stim = run[cycle]
            bit = 1 << position
            for name in input_names:
                if stim.get(name, 0) & 1:
                    packed[name] |= bit
        values = compiled.eval_words(
            packed, n_runs, dict(zip(flop_names, state)))
        next_state = [values[compiled.index
                             [netlist.gates[ff].fanins[0]]]
                      for ff in flop_names]
        if flop_names:
            hd_bits = _words_to_bit_matrix(
                [old ^ new for old, new in zip(state, next_state)], n_runs)
            hw_bits = _words_to_bit_matrix(next_state, n_runs)
            matrix[:, cycle] = (hd_weight * hd_bits.sum(axis=0)
                                + hw_weight * hw_bits.sum(axis=0))
        state = next_state
    # Samples past a run's own length stay 0, like the per-run path.
    matrix[lengths[:, None] <= np.arange(n_cycles)[None, :]] = 0.0
    return matrix


def sequential_leakage_traces(netlist: Netlist,
                              runs: Sequence[Sequence[Mapping[str, int]]],
                              noise_sigma: float = 1.0,
                              seed: int = 0,
                              hd_weight: float = 1.0,
                              hw_weight: float = 0.2) -> np.ndarray:
    """Trace matrix (n_runs, n_cycles) for a batch of input sequences.

    Runs are simulated bit-parallel (run r occupies pattern bit r of
    one packed sequential simulation); campaigns wider than
    :data:`~repro.sca.power_model.PACK_CHUNK` runs are split into
    chunks.  Results match the run-at-a-time reference exactly.
    """
    if not runs:
        return np.zeros((0, 0))
    n_cycles = max(len(run) for run in runs)
    matrix = np.zeros((len(runs), n_cycles))
    for start in range(0, len(runs), PACK_CHUNK):
        batch = runs[start:start + PACK_CHUNK]
        sub = _batched_traces(netlist, batch, hd_weight, hw_weight)
        matrix[start:start + len(batch), :sub.shape[1]] = sub
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        matrix = matrix + rng.normal(0.0, noise_sigma, matrix.shape)
    return matrix
