"""Leakage simulation for sequential designs (register-dominated power).

Synchronous designs leak predominantly through register switching: each
clock edge, the power sample is proportional to the Hamming distance of
the state registers (plus a value-weight term and noise).  This module
produces per-cycle traces for multi-cycle stimuli, enabling CPA/TVLA
against real datapaths like the gate-level AES of
:mod:`repro.crypto.aes_netlist` — the pre-silicon equivalent of probing
a crypto core's VDD pin.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from ..netlist import Netlist, step_sequential


def sequential_power_trace(netlist: Netlist,
                           input_sequence: Sequence[Mapping[str, int]],
                           hd_weight: float = 1.0,
                           hw_weight: float = 0.2,
                           initial_state: Optional[Mapping[str, int]]
                           = None) -> np.ndarray:
    """Noise-free per-cycle power of one run.

    Sample ``t`` covers the clock edge ending cycle ``t``:
    ``hd_weight * HD(state_t, state_{t+1}) + hw_weight * HW(state_{t+1})``.
    """
    state: Dict[str, int] = dict(initial_state or {})
    flops = netlist.flops
    samples: List[float] = []
    for stimulus in input_sequence:
        _, next_state = step_sequential(netlist, stimulus, state)
        hd = sum(
            1 for ff in flops
            if (state.get(ff, 0) ^ next_state[ff]) & 1
        )
        hw = sum(next_state[ff] & 1 for ff in flops)
        samples.append(hd_weight * hd + hw_weight * hw)
        state = next_state
    return np.array(samples)


def sequential_leakage_traces(netlist: Netlist,
                              runs: Sequence[Sequence[Mapping[str, int]]],
                              noise_sigma: float = 1.0,
                              seed: int = 0,
                              hd_weight: float = 1.0,
                              hw_weight: float = 0.2) -> np.ndarray:
    """Trace matrix (n_runs, n_cycles) for a batch of input sequences."""
    traces = [
        sequential_power_trace(netlist, run, hd_weight, hw_weight)
        for run in runs
    ]
    width = max(len(t) for t in traces)
    matrix = np.zeros((len(traces), width))
    for i, t in enumerate(traces):
        matrix[i, :len(t)] = t
    if noise_sigma > 0:
        rng = np.random.default_rng(seed)
        matrix = matrix + rng.normal(0.0, noise_sigma, matrix.shape)
    return matrix
