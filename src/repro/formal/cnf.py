"""CNF formulas and Tseitin encoding of netlists.

:class:`CircuitEncoder` maps each net of a :class:`~repro.netlist.Netlist`
to a SAT variable and emits the standard Tseitin clauses per gate, the
bridge between the EDA substrate and the formal/attack engines.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Mapping, Optional, Sequence

from ..netlist import GateType, Netlist
from .sat import Solver, lit, neg


class CircuitEncoder:
    """Encode one or more netlists into a shared :class:`Solver`.

    Instantiating the same encoder over several netlists (with chosen
    variable sharing via ``bind``) builds miters, unrolled frames, and
    the double-circuit construction of the SAT attack.
    """

    def __init__(self, solver: Optional[Solver] = None) -> None:
        self.solver = solver or Solver()
        #: Full-netlist :meth:`encode` calls (``within=None``).  The
        #: incremental clients assert on this: ATPG must encode its base
        #: circuit exactly once per run, not once per fault.
        self.encode_calls = 0
        #: Partial (cone) :meth:`encode` calls (``within`` given).
        self.cone_encodes = 0
        self._const_cache: Dict[int, int] = {}

    def fresh_var(self) -> int:
        """A fresh solver variable (for binds and auxiliary logic)."""
        return self.solver.new_var()

    def const_var(self, value: int) -> int:
        """A variable pinned to ``value`` — cached, one per polarity.

        Incremental clients (SAT attack DIP constraints, pinned frames)
        bind nets to constants every iteration; sharing the two constant
        variables keeps the clause database from accumulating one fresh
        unit clause per bound bit.
        """
        cached = self._const_cache.get(value)
        if cached is None:
            cached = self.solver.new_var()
            self.solver.add_clause([lit(cached, negative=(value == 0))])
            self._const_cache[value] = cached
        return cached

    def encode(self, netlist: Netlist, prefix: str = "",
               bind: Optional[Mapping[str, int]] = None,
               within: Optional[AbstractSet[str]] = None) -> Dict[str, int]:
        """Encode every net; returns map ``prefix+net -> variable``.

        ``bind`` pre-assigns variables to named nets (primary inputs or
        DFF outputs), enabling input sharing across copies.

        ``within`` restricts clause emission to the named nets: nets
        outside it are resolved through ``bind`` instead of being
        re-encoded.  This is the incremental-ATPG workhorse — a faulty
        copy only re-encodes the fault's output cone against the
        already-encoded base circuit.
        """
        bind = bind or {}
        varmap: Dict[str, int] = {}
        if within is None:
            self.encode_calls += 1
        else:
            self.cone_encodes += 1
        # Hot path: the SAT attack encodes two fresh circuit copies per
        # DIP iteration, so literals are built inline (``2 * v`` for
        # positive, ``^ 1`` to complement) instead of through the
        # :func:`lit`/:func:`neg` helpers — per-literal call overhead
        # is measurable at that rate.
        add = self.solver.add_clause
        new_var = self.solver.new_var
        gates = netlist.gates
        for net in netlist.topological_order():
            g = gates[net]
            if net in bind:
                varmap[net] = bind[net]
                continue
            if within is not None and net not in within:
                raise ValueError(
                    f"net {net!r} outside the encoded cone has no bound "
                    f"variable")
            v = new_var()
            varmap[net] = v
            t = g.gate_type
            out = 2 * v
            if t is GateType.INPUT or t is GateType.DFF:
                continue  # free variable
            if t is GateType.CONST0:
                add([out ^ 1])
            elif t is GateType.CONST1:
                add([out])
            elif t is GateType.BUF:
                a = 2 * varmap[g.fanins[0]]
                add([out ^ 1, a])
                add([out, a ^ 1])
            elif t is GateType.NOT:
                a = 2 * varmap[g.fanins[0]]
                add([out ^ 1, a ^ 1])
                add([out, a])
            elif t in (GateType.AND, GateType.NAND):
                ins = [2 * varmap[fi] for fi in g.fanins]
                y = out if t is GateType.AND else out ^ 1
                ny = y ^ 1
                for a in ins:
                    add([ny, a])
                add([y] + [a ^ 1 for a in ins])
            elif t in (GateType.OR, GateType.NOR):
                ins = [2 * varmap[fi] for fi in g.fanins]
                y = out if t is GateType.OR else out ^ 1
                ny = y ^ 1
                for a in ins:
                    add([y, a ^ 1])
                add([ny] + ins)
            elif t in (GateType.XOR, GateType.XNOR):
                # Chain wide XORs through intermediates.
                acc = 2 * varmap[g.fanins[0]]
                for fi in g.fanins[1:-1]:
                    nxt = 2 * new_var()
                    self._xor_clauses(acc, 2 * varmap[fi], nxt)
                    acc = nxt
                last = 2 * varmap[g.fanins[-1]]
                y = out if t is GateType.XOR else out ^ 1
                self._xor_clauses(acc, last, y)
            elif t is GateType.MUX:
                s, d0, d1 = (2 * varmap[fi] for fi in g.fanins)
                # out = (~s & d0) | (s & d1)
                add([out ^ 1, s, d0])
                add([out ^ 1, s ^ 1, d1])
                add([out, s, d0 ^ 1])
                add([out, s ^ 1, d1 ^ 1])
            else:
                raise ValueError(f"cannot encode gate type {t.name}")
        if prefix:
            return {prefix + net: v for net, v in varmap.items()}
        return varmap

    def _xor_clauses(self, a: int, b: int, y: int) -> None:
        """y <-> a XOR b."""
        add = self.solver.add_clause
        add([y ^ 1, a, b])
        add([y ^ 1, a ^ 1, b ^ 1])
        add([y, a ^ 1, b])
        add([y, a, b ^ 1])

    def assert_equal(self, v: int, value: int) -> None:
        """Pin a variable to a constant with a unit clause."""
        self.solver.add_clause([lit(v, negative=(value == 0))])

    def xor_of(self, va: int, vb: int) -> int:
        """Fresh variable equal to ``va XOR vb``."""
        y = self.solver.new_var()
        self._xor_clauses(lit(va), lit(vb), lit(y))
        return y

    def or_of(self, variables: Sequence[int]) -> int:
        """Fresh variable equal to the OR of ``variables``."""
        y = self.solver.new_var()
        add = self.solver.add_clause
        for v in variables:
            add([lit(y), neg(lit(v))])
        add([neg(lit(y))] + [lit(v) for v in variables])
        return y


def solve_circuit(netlist: Netlist,
                  fixed: Mapping[str, int],
                  require: Mapping[str, int]) -> Optional[Dict[str, int]]:
    """Find primary-input values making outputs take ``require`` values,
    with some inputs pinned by ``fixed``.  Returns the input assignment
    or None if impossible.
    """
    enc = CircuitEncoder()
    varmap = enc.encode(netlist)
    for net, value in fixed.items():
        enc.assert_equal(varmap[net], value)
    for net, value in require.items():
        enc.assert_equal(varmap[net], value)
    if not enc.solver.solve():
        return None
    return {
        name: enc.solver.model_value(varmap[name])
        for name in netlist.inputs
    }
