"""Gate-level information-flow tracking (GLIFT).

The netlist-level counterpart of the HLS taint analysis in
:mod:`repro.hls.ift` (paper Table II: information-flow tracking [14];
Sec. III-D: identification of architectural channels [31]).  Each net
carries a *taint* bit alongside its value; shadow propagation is
precise, not conservative: taint crosses a gate only when a tainted
input can actually change the output given the other inputs' current
values (e.g. ``AND(a=0, b=tainted)`` does not propagate — the 0
dominates).

Two query styles:

* :func:`glift_simulate` — dynamic taint for one input vector;
* :func:`prove_no_flow` — SAT proof that *no* input/taint assignment in
  an environment lets a tainted source influence a target (the formal
  "no information flow" guarantee a security sign-off needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist
from ..netlist.gates import evaluate


def _gate_taint(gate_type: GateType, values: Sequence[int],
                taints: Sequence[int], out_value: int) -> int:
    """Precise taint of a gate output (single-bit semantics).

    A gate output is tainted iff flipping some subset of its tainted
    inputs can change the output.  Computed exactly by enumerating the
    tainted inputs' assignments (fanin counts here are tiny).
    """
    tainted_positions = [i for i, t in enumerate(taints) if t]
    if not tainted_positions:
        return 0
    n = len(tainted_positions)
    base = list(values)
    for mask in range(1, 1 << n):
        trial = list(base)
        for bit, position in enumerate(tainted_positions):
            if (mask >> bit) & 1:
                trial[position] ^= 1
        if evaluate(gate_type, trial, 1) != out_value:
            return 1
    return 0


def glift_simulate(netlist: Netlist,
                   inputs: Mapping[str, int],
                   tainted_inputs: Sequence[str]
                   ) -> Tuple[Dict[str, int], Dict[str, int]]:
    """Dynamic GLIFT: (values, taints) for every net, one vector."""
    tainted = set(tainted_inputs)
    values: Dict[str, int] = {}
    taints: Dict[str, int] = {}
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type is GateType.INPUT:
            values[net] = inputs[net] & 1
            taints[net] = 1 if net in tainted else 0
            continue
        if g.gate_type is GateType.DFF:
            # Combinational view: registers as untainted sources unless
            # the caller taints them by name.
            values[net] = inputs.get(net, 0) & 1
            taints[net] = 1 if net in tainted else 0
            continue
        fan_values = [values[fi] for fi in g.fanins]
        fan_taints = [taints[fi] for fi in g.fanins]
        values[net] = evaluate(g.gate_type, fan_values, 1)
        taints[net] = _gate_taint(g.gate_type, fan_values, fan_taints,
                                  values[net])
    return values, taints


@dataclass
class FlowResult:
    """Outcome of a no-flow proof."""

    flows: bool
    witness: Optional[Dict[str, int]] = None   # inputs exhibiting flow

    @property
    def isolated(self) -> bool:
        return not self.flows


def prove_no_flow(netlist: Netlist, source: str, target: str,
                  fixed: Optional[Mapping[str, int]] = None
                  ) -> FlowResult:
    """SAT proof that ``source`` cannot influence ``target``.

    Encodes two copies differing only in the ``source`` input (all
    other inputs shared, ``fixed`` pins control inputs) and asks for an
    assignment where ``target`` differs.  UNSAT = non-interference
    holds in that environment.
    """
    from .cnf import CircuitEncoder

    fixed = dict(fixed or {})
    if source not in netlist.inputs:
        raise ValueError(f"{source!r} is not a primary input")
    enc = CircuitEncoder()
    left = enc.encode(netlist)
    for net, value in fixed.items():
        enc.assert_equal(left[net], value)
    shared = {
        name: left[name] for name in netlist.inputs if name != source
    }
    right = enc.encode(netlist, bind=shared)
    # The two source copies must differ.
    diff_src = enc.xor_of(left[source], right[source])
    enc.assert_equal(diff_src, 1)
    diff_target = enc.xor_of(left[target], right[target])
    enc.assert_equal(diff_target, 1)
    if not enc.solver.solve():
        return FlowResult(False)
    witness = {
        name: enc.solver.model_value(left[name])
        for name in netlist.inputs
    }
    return FlowResult(True, witness)


def taint_reachable_outputs(netlist: Netlist, source: str,
                            fixed: Optional[Mapping[str, int]] = None
                            ) -> List[str]:
    """All primary outputs ``source`` can influence in an environment."""
    return [
        out for out in netlist.outputs
        if prove_no_flow(netlist, source, out, fixed).flows
    ]
