"""Bounded sequential equivalence checking by frame unrolling.

Completes the validation stage's toolbox: after DFT insertion (scan
muxes), metering FSMs, or monitor retrofits, the *sequential* behaviour
in mission mode must match the original design.  The check unrolls both
machines over ``cycles`` time frames with shared free inputs (some
pinned per frame, e.g. ``scan_en = 0``) and asks SAT for any frame
where observable outputs diverge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist import Netlist
from .cnf import CircuitEncoder


@dataclass
class SequentialEquivalenceResult:
    """Outcome of a bounded sequential equivalence check."""

    equivalent: bool
    cycles_checked: int
    witness: Optional[List[Dict[str, int]]] = None   # per-frame inputs
    mismatch_frame: Optional[int] = None


def check_sequential_equivalence(
    left: Netlist,
    right: Netlist,
    cycles: int,
    pinned: Optional[Mapping[str, int]] = None,
    compare_outputs: Optional[Sequence[str]] = None,
    initial_state_zero: bool = True,
    allow_free: Sequence[str] = (),
) -> SequentialEquivalenceResult:
    """Bounded equivalence of two sequential netlists.

    Inputs common to both sides are shared per frame; ``pinned`` inputs
    (on either side) are fixed to constants every frame — the mission-
    mode environment.  Inputs existing on one side only must be pinned
    or explicitly listed in ``allow_free`` (then the adversary/
    environment may drive them arbitrarily per frame).
    ``compare_outputs`` defaults to the outputs common to both.
    """
    pinned = dict(pinned or {})
    free = set(allow_free)
    shared_inputs = [
        name for name in left.inputs
        if name in right.gates and name not in pinned
    ]
    one_sided: List[str] = []
    for side, netlist, other in (("left", left, right),
                                 ("right", right, left)):
        for name in netlist.inputs:
            if name in other.gates or name in pinned:
                continue
            if name in free:
                one_sided.append(name)
                continue
            raise ValueError(
                f"{side} input {name!r} missing on the other side; "
                f"pin it to a constant or list it in allow_free")
    outputs = list(compare_outputs) if compare_outputs else [
        o for o in left.outputs if o in right.outputs
    ]
    if not outputs:
        raise ValueError("no common outputs to compare")

    enc = CircuitEncoder()
    left_state: Dict[str, int] = {}
    right_state: Dict[str, int] = {}
    if initial_state_zero:
        for netlist, state in ((left, left_state), (right, right_state)):
            for ff in netlist.flops:
                var = enc.fresh_var()
                enc.assert_equal(var, 0)
                state[ff] = var
    frame_inputs: List[Dict[str, int]] = []
    diff_vars: List[int] = []
    diff_frames: List[int] = []
    for frame in range(cycles):
        frame_shared = {name: enc.fresh_var() for name in shared_inputs}
        frame_free = {name: enc.fresh_var() for name in one_sided}
        frame_inputs.append({**frame_shared, **frame_free})
        bind_left = dict(left_state)
        bind_left.update(frame_shared)
        bind_right = dict(right_state)
        bind_right.update(frame_shared)
        for name, var in frame_free.items():
            if name in left.gates:
                bind_left[name] = var
            if name in right.gates:
                bind_right[name] = var
        for name, value in pinned.items():
            var = enc.fresh_var()
            enc.assert_equal(var, value)
            if name in left.gates:
                bind_left[name] = var
            if name in right.gates:
                bind_right[name] = var
        left_vars = enc.encode(left, bind=bind_left)
        right_vars = enc.encode(right, bind=bind_right)
        for out in outputs:
            diff_vars.append(enc.xor_of(left_vars[out], right_vars[out]))
            diff_frames.append(frame)
        left_state = {
            ff: left_vars[left.gates[ff].fanins[0]] for ff in left.flops
        }
        right_state = {
            ff: right_vars[right.gates[ff].fanins[0]]
            for ff in right.flops
        }
    any_diff = enc.or_of(diff_vars)
    enc.assert_equal(any_diff, 1)
    if not enc.solver.solve():
        return SequentialEquivalenceResult(True, cycles)
    witness = [
        {name: enc.solver.model_value(var)
         for name, var in frame.items()}
        for frame in frame_inputs
    ]
    mismatch = next(
        (diff_frames[i] for i, dv in enumerate(diff_vars)
         if enc.solver.model_value(dv)), None)
    return SequentialEquivalenceResult(False, cycles, witness, mismatch)
