"""Bounded sequential equivalence checking by frame unrolling.

Completes the validation stage's toolbox: after DFT insertion (scan
muxes), metering FSMs, or monitor retrofits, the *sequential* behaviour
in mission mode must match the original design.  The check unrolls both
machines frame by frame into one persistent incremental solver with
shared free inputs (some pinned per frame, e.g. ``scan_en = 0``) and
asks SAT, per frame, whether observable outputs diverge — stopping at
the earliest divergence and reusing every earlier frame's encoding and
proof for the deeper queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from ..netlist import Netlist
from .cnf import CircuitEncoder
from .sat import lit, neg


@dataclass
class SequentialEquivalenceResult:
    """Outcome of a bounded sequential equivalence check."""

    equivalent: bool
    cycles_checked: int
    #: Per-frame inputs up to and including the mismatch frame.
    witness: Optional[List[Dict[str, int]]] = None
    mismatch_frame: Optional[int] = None


def check_sequential_equivalence(
    left: Netlist,
    right: Netlist,
    cycles: int,
    pinned: Optional[Mapping[str, int]] = None,
    compare_outputs: Optional[Sequence[str]] = None,
    initial_state_zero: bool = True,
    allow_free: Sequence[str] = (),
) -> SequentialEquivalenceResult:
    """Bounded equivalence of two sequential netlists.

    Inputs common to both sides are shared per frame; ``pinned`` inputs
    (on either side) are fixed to constants every frame — the mission-
    mode environment.  Inputs existing on one side only must be pinned
    or explicitly listed in ``allow_free`` (then the adversary/
    environment may drive them arbitrarily per frame).
    ``compare_outputs`` defaults to the outputs common to both.
    """
    pinned = dict(pinned or {})
    free = set(allow_free)
    shared_inputs = [
        name for name in left.inputs
        if name in right.gates and name not in pinned
    ]
    one_sided: List[str] = []
    for side, netlist, other in (("left", left, right),
                                 ("right", right, left)):
        for name in netlist.inputs:
            if name in other.gates or name in pinned:
                continue
            if name in free:
                one_sided.append(name)
                continue
            raise ValueError(
                f"{side} input {name!r} missing on the other side; "
                f"pin it to a constant or list it in allow_free")
    outputs = list(compare_outputs) if compare_outputs else [
        o for o in left.outputs if o in right.outputs
    ]
    if not outputs:
        raise ValueError("no common outputs to compare")

    enc = CircuitEncoder()
    solver = enc.solver
    left_state: Dict[str, int] = {}
    right_state: Dict[str, int] = {}
    if initial_state_zero:
        for netlist, state in ((left, left_state), (right, right_state)):
            for ff in netlist.flops:
                state[ff] = enc.const_var(0)
    frame_inputs: List[Dict[str, int]] = []
    # Incremental BMC: unroll one frame at a time into the persistent
    # solver and ask, under an assumption, whether *this* frame's
    # outputs can diverge.  An UNSAT answer is committed as a unit
    # clause ("frames 0..k agree"), so each deeper query starts from
    # the proof of all shallower ones — and a divergence is reported at
    # the earliest reachable frame without ever encoding the rest.
    for frame in range(cycles):
        frame_shared = {name: enc.fresh_var() for name in shared_inputs}
        frame_free = {name: enc.fresh_var() for name in one_sided}
        frame_inputs.append({**frame_shared, **frame_free})
        bind_left = dict(left_state)
        bind_left.update(frame_shared)
        bind_right = dict(right_state)
        bind_right.update(frame_shared)
        for name, var in frame_free.items():
            if name in left.gates:
                bind_left[name] = var
            if name in right.gates:
                bind_right[name] = var
        for name, value in pinned.items():
            var = enc.const_var(value)
            if name in left.gates:
                bind_left[name] = var
            if name in right.gates:
                bind_right[name] = var
        left_vars = enc.encode(left, bind=bind_left)
        right_vars = enc.encode(right, bind=bind_right)
        diff_vars = [enc.xor_of(left_vars[out], right_vars[out])
                     for out in outputs]
        frame_diff = (diff_vars[0] if len(diff_vars) == 1
                      else enc.or_of(diff_vars))
        if solver.solve(assumptions=[lit(frame_diff)]):
            witness = [
                {name: solver.model_value(var)
                 for name, var in inputs.items()}
                for inputs in frame_inputs
            ]
            return SequentialEquivalenceResult(False, frame + 1, witness,
                                               frame)
        solver.add_clause([neg(lit(frame_diff))])
        left_state = {
            ff: left_vars[left.gates[ff].fanins[0]] for ff in left.flops
        }
        right_state = {
            ff: right_vars[right.gates[ff].fanins[0]]
            for ff in right.flops
        }
    return SequentialEquivalenceResult(True, cycles)
