"""A from-scratch incremental CDCL SAT solver.

The paper (Sec. III-D) notes that verification tools double as attack
engines: SAT solvers "mimic attackers" against logic locking and
camouflaging.  This solver powers both uses here — the oracle-guided
SAT attack in :mod:`repro.ip.sat_attack` and the honest equivalence /
property checking in :mod:`repro.formal.equivalence` — and every client
leans on the MiniSat-style incremental interface: a persistent clause
database, :meth:`Solver.add_clause` between calls, and
``solve(assumptions=[...])`` queries that leave learned clauses (and
thus all the work of earlier queries) in place.

Implementation: two-watched-literal propagation over clause objects,
first-UIP clause learning with non-chronological backjumping, VSIDS
with an indexed binary heap (true decrease-key, no stale entries),
phase saving, Luby restarts, and LBD-based ("glue") learned-clause
database reduction.

Literal encoding: variable ``v`` (0-based) appears as literal ``2*v``
(positive) or ``2*v + 1`` (negated).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

UNASSIGNED = -1


def lit(var: int, negative: bool = False) -> int:
    """Build a literal from a 0-based variable index."""
    return 2 * var + (1 if negative else 0)


def neg(literal: int) -> int:
    """The complement literal."""
    return literal ^ 1


def var_of(literal: int) -> int:
    """The 0-based variable index of a literal."""
    return literal >> 1


def luby(i: int) -> int:
    """The ``i``-th element (1-based) of the Luby restart sequence.

    1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ... — the universal
    restart schedule (Luby, Sinclair, Zuckerman 1993).
    """
    while True:
        k = i.bit_length()
        if i == (1 << k) - 1:
            return 1 << (k - 1)
        i -= (1 << (k - 1)) - 1


class Solver:
    """CDCL SAT solver with incremental assumption support.

    Clauses may be added between :meth:`solve` calls, enabling the
    oracle-guided loops (SAT attack, CEGAR-style flows) to reuse learned
    state across iterations.  A :meth:`solve` call that fails under
    assumptions leaves the solver usable: the assumptions are retracted
    and only clauses implied by the formula remain.
    """

    #: Luby restart unit (conflicts).
    restart_base = 64
    #: Learned clauses kept unconditionally when reducing (glue LBD).
    glue_lbd = 2
    #: Conflicts between learned-clause database reductions; each
    #: reduction pushes the next one 500 conflicts further out.
    reduce_base = 2000
    #: Minimum learned-clause count before a reduction is worthwhile.
    reduce_floor = 100

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[List[int]] = []   # problem clauses
        self.learnts: List[List[int]] = []   # learned clauses (reducible)
        self.watches: List[List[List[int]]] = []  # literal -> clauses
        #: literal -> [(implied literal, clause), ...] for two-literal
        #: clauses.  Binary clauses dominate Tseitin CNFs (every
        #: AND/OR gate contributes arity binary clauses), and their
        #: propagation needs no watch migration: falsifying one side
        #: immediately implies the other.  Keeping them out of the
        #: general watch lists roughly halves the hot-loop work.
        self.bin_watches: List[List[Tuple[int, List[int]]]] = []
        self.assign: List[int] = []          # var -> 0/1/UNASSIGNED
        self.level: List[int] = []           # var -> decision level
        self.reason: List[Optional[List[int]]] = []  # var -> clause
        self.trail: List[int] = []           # assigned literals, in order
        self.trail_lim: List[int] = []       # trail length per decision
        self.activity: List[float] = []
        self.saved_phase: List[int] = []     # var -> last assigned value
        self._heap: List[int] = []           # max-heap of var indices
        self._heap_pos: List[int] = []       # var -> heap index or -1
        self._seen: List[bool] = []          # scratch for _analyze
        self._lbd: Dict[int, int] = {}       # id(learnt) -> LBD
        self._qhead = 0
        self.var_inc = 1.0
        self.var_decay = 0.95
        self.propagations = 0
        self.conflicts = 0
        self.decisions = 0
        self.restarts = 0
        self.reductions = 0
        self._ok = True

    # ------------------------------------------------------------------
    # Problem construction
    # ------------------------------------------------------------------

    def new_var(self) -> int:
        """Allocate a fresh variable; returns its 0-based index."""
        v = self.num_vars
        self.num_vars += 1
        self.assign.append(UNASSIGNED)
        self.level.append(0)
        self.reason.append(None)
        self.activity.append(0.0)
        self.saved_phase.append(0)
        self._seen.append(False)
        self._heap_pos.append(-1)
        self.watches.append([])
        self.watches.append([])
        self.bin_watches.append([])
        self.bin_watches.append([])
        self._heap_insert(v)
        return v

    def add_clause(self, literals: Iterable[int]) -> bool:
        """Add a clause at decision level 0.

        Returns False if the formula became trivially unsatisfiable.
        Must not be called in the middle of :meth:`solve`.
        """
        if self.trail_lim:
            self._backtrack(0)
        # Single pass: dedup, tautology check, and level-0 filtering
        # (drop false literals, skip satisfied clauses).  This runs for
        # every encoded gate, so the literal value test is inlined and
        # dedup scans the (short) kept list instead of building a set
        # per clause — encoder clauses have two or three literals.
        assign = self.assign
        num_vars = self.num_vars
        reduced: List[int] = []
        for l in literals:
            v = l >> 1
            if v >= num_vars:
                raise ValueError(f"literal {l} references unknown variable")
            value = assign[v]
            if value >= 0:
                if value ^ (l & 1) == 1:
                    return True  # satisfied at level 0
                continue         # false at level 0: drop the literal
            if l in reduced:
                continue
            if l ^ 1 in reduced:
                return True  # tautology
            reduced.append(l)
        if not reduced:
            self._ok = False
            return False
        if len(reduced) == 1:
            self._enqueue(reduced[0], None)
            if self._propagate() is not None:
                self._ok = False
                return False
            return True
        self.clauses.append(reduced)
        if len(reduced) == 2:
            self.bin_watches[reduced[0] ^ 1].append((reduced[1], reduced))
            self.bin_watches[reduced[1] ^ 1].append((reduced[0], reduced))
        else:
            self.watches[reduced[0] ^ 1].append(reduced)
            self.watches[reduced[1] ^ 1].append(reduced)
        return True

    # ------------------------------------------------------------------
    # VSIDS order: indexed binary max-heap with decrease-key
    # ------------------------------------------------------------------
    # Every unassigned variable is in the heap exactly once.  Bumps
    # percolate the entry up in place, so the heap never accumulates
    # stale entries and a decision is one pop, not a lazy-deletion scan
    # (the previous heap popped ~650 dead entries per real decision).

    def _heap_insert(self, v: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        activity = self.activity
        i = len(heap)
        heap.append(v)
        a = activity[v]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if activity[pv] >= a:
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _heap_sift_up(self, i: int) -> None:
        heap = self._heap
        pos = self._heap_pos
        activity = self.activity
        v = heap[i]
        a = activity[v]
        while i > 0:
            parent = (i - 1) >> 1
            pv = heap[parent]
            if activity[pv] >= a:
                break
            heap[i] = pv
            pos[pv] = i
            i = parent
        heap[i] = v
        pos[v] = i

    def _heap_pop(self) -> int:
        heap = self._heap
        pos = self._heap_pos
        activity = self.activity
        top = heap[0]
        pos[top] = -1
        last = heap.pop()
        n = len(heap)
        if n:
            a = activity[last]
            i = 0
            while True:
                child = 2 * i + 1
                if child >= n:
                    break
                right = child + 1
                if right < n and activity[heap[right]] > activity[heap[child]]:
                    child = right
                cv = heap[child]
                if activity[cv] <= a:
                    break
                heap[i] = cv
                pos[cv] = i
                i = child
            heap[i] = last
            pos[last] = i
        return top

    def _decide_var(self) -> int:
        """Unassigned variable of highest activity, or -1 when none."""
        assign = self.assign
        heap = self._heap
        while heap:
            v = self._heap_pop()
            if assign[v] == UNASSIGNED:
                return v
        return -1

    def _bump(self, v: int) -> None:
        activity = self.activity
        activity[v] += self.var_inc
        if activity[v] > 1e100:
            # Uniform rescale preserves heap order; no re-heapify needed.
            for u in range(self.num_vars):
                activity[u] *= 1e-100
            self.var_inc *= 1e-100
        i = self._heap_pos[v]
        if i > 0:
            self._heap_sift_up(i)

    # ------------------------------------------------------------------
    # Assignment machinery
    # ------------------------------------------------------------------

    def _value_of(self, literal: int) -> int:
        value = self.assign[literal >> 1]
        if value == UNASSIGNED:
            return UNASSIGNED
        return value ^ (literal & 1)

    def _enqueue(self, literal: int, reason: Optional[List[int]]) -> None:
        v = literal >> 1
        self.assign[v] = 1 - (literal & 1)
        self.level[v] = len(self.trail_lim)
        self.reason[v] = reason
        self.trail.append(literal)

    def _propagate(self) -> Optional[List[int]]:
        """Unit propagation; returns a conflicting clause or None.

        This is the solver's hot loop (millions of iterations per SAT
        attack), so attribute lookups are hoisted into locals, the
        decision level is computed once (it cannot change while
        propagating), and ``_value_of``/``_enqueue`` are inlined.  With
        ``UNASSIGNED == -1``, ``assign[v] ^ (lit & 1)`` is negative for
        unassigned variables, so the ``== 1`` / ``== 0`` tests need no
        explicit unassigned branch.  Binary clauses propagate through
        their own implication lists first — no watch migration, just a
        value test per pair.  The general watch lists hold the clause
        lists themselves; each visited list is rebuilt in place
        (append-only) rather than swap-popped, keeping the scan
        branch-light.
        """
        trail = self.trail
        watches = self.watches
        bin_watches = self.bin_watches
        assign = self.assign
        level = self.level
        reason = self.reason
        lvl = len(self.trail_lim)
        qhead = self._qhead
        processed = 0
        while qhead < len(trail):
            literal = trail[qhead]
            qhead += 1
            processed += 1
            for other, bin_clause in bin_watches[literal]:
                ov = assign[other >> 1] ^ (other & 1)
                if ov == 1:
                    continue
                if ov == 0:
                    self._qhead = len(trail)
                    self.propagations += processed
                    return bin_clause
                v = other >> 1
                assign[v] = (other & 1) ^ 1
                level[v] = lvl
                reason[v] = bin_clause
                trail.append(other)
            watch_list = watches[literal]
            if not watch_list:
                continue
            false_lit = literal ^ 1
            watches[literal] = new_wl = []
            append_kept = new_wl.append
            conflict = None
            for j, clause in enumerate(watch_list):
                if clause[0] == false_lit:
                    clause[0] = clause[1]
                    clause[1] = false_lit
                first = clause[0]
                fv = assign[first >> 1] ^ (first & 1)
                if fv == 1:
                    append_kept(clause)
                    continue
                moved = False
                for k in range(2, len(clause)):
                    ck = clause[k]
                    if assign[ck >> 1] ^ (ck & 1) != 0:
                        clause[1] = ck
                        clause[k] = false_lit
                        watches[ck ^ 1].append(clause)
                        moved = True
                        break
                if moved:
                    continue
                append_kept(clause)
                if fv == 0:
                    new_wl.extend(watch_list[j + 1:])
                    conflict = clause
                    break
                v = first >> 1
                assign[v] = (first & 1) ^ 1
                level[v] = lvl
                reason[v] = clause
                trail.append(first)
            if conflict is not None:
                self._qhead = len(trail)
                self.propagations += processed
                return conflict
        self._qhead = qhead
        self.propagations += processed
        return None

    def _backtrack(self, target_level: int) -> None:
        trail_lim = self.trail_lim
        if len(trail_lim) <= target_level:
            self._qhead = min(self._qhead, len(self.trail))
            return
        # Unwind the trail in one slice instead of popping per literal,
        # saving each variable's polarity (phase saving) and restoring
        # it into the decision heap.
        trail = self.trail
        assign = self.assign
        saved_phase = self.saved_phase
        pos = self._heap_pos
        insert = self._heap_insert
        limit = trail_lim[target_level]
        del trail_lim[target_level:]
        for literal in trail[limit:]:
            v = literal >> 1
            saved_phase[v] = assign[v]
            assign[v] = UNASSIGNED
            if pos[v] < 0:
                insert(v)
        del trail[limit:]
        self._qhead = min(self._qhead, limit)

    # ------------------------------------------------------------------
    # Conflict analysis
    # ------------------------------------------------------------------

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int, int]:
        """First-UIP resolution.

        Returns ``(learned clause, backjump level, LBD)`` where LBD is
        the number of distinct decision levels among the learned
        clause's literals — the "glue" quality metric that drives
        learned-clause retention.
        """
        learned: List[int] = [0]
        # Reusable scratch: at exit, the only True flags left belong to
        # the learned clause's lower-level literals (current-level flags
        # are cleared as they are resolved), so those are reset below.
        seen = self._seen
        level = self.level
        counter = 0
        p = -1  # resolved literal (-1 = conflict clause itself)
        index = len(self.trail)
        clause = conflict
        current_level = len(self.trail_lim)
        while True:
            for l in clause:
                if l == p:
                    continue
                v = l >> 1
                if not seen[v] and level[v] > 0:
                    seen[v] = True
                    self._bump(v)
                    if level[v] >= current_level:
                        counter += 1
                    else:
                        learned.append(l)
            while True:
                index -= 1
                p = self.trail[index]
                if seen[p >> 1]:
                    break
            v = p >> 1
            seen[v] = False
            counter -= 1
            if counter == 0:
                learned[0] = p ^ 1
                break
            clause = self.reason[v]
        levels = {level[l >> 1] for l in learned}
        lbd = len(levels)
        for l in learned[1:]:
            seen[l >> 1] = False
        if len(learned) == 1:
            return learned, 0, lbd
        back_level = max(level[l >> 1] for l in learned[1:])
        for k in range(1, len(learned)):
            if level[learned[k] >> 1] == back_level:
                learned[1], learned[k] = learned[k], learned[1]
                break
        return learned, back_level, lbd

    # ------------------------------------------------------------------
    # Learned-clause database reduction
    # ------------------------------------------------------------------

    def _reduce_db(self) -> None:
        """Drop the worst half of the learned clauses (highest LBD).

        Glue clauses (LBD <= 2), binary clauses, and clauses locked as
        the reason of a current assignment are always kept.
        """
        learnts = self.learnts
        lbd = self._lbd
        assign = self.assign
        reason = self.reason
        learnts.sort(key=lambda c: (lbd[id(c)], len(c)))
        cutoff = len(learnts) // 2
        kept: List[List[int]] = []
        dropped_ids = set()
        for i, c in enumerate(learnts):
            v = c[0] >> 1
            if (i < cutoff or lbd[id(c)] <= self.glue_lbd or len(c) == 2
                    or (assign[v] != UNASSIGNED and reason[v] is c)):
                kept.append(c)
            else:
                dropped_ids.add(id(c))
        if not dropped_ids:
            return
        self.learnts = kept
        for cid in dropped_ids:
            del lbd[cid]
        watches = self.watches
        for i, wl in enumerate(watches):
            if wl:
                watches[i] = [c for c in wl if id(c) not in dropped_ids]
        self.reductions += 1

    # ------------------------------------------------------------------
    # Main search
    # ------------------------------------------------------------------

    def solve(self, assumptions: Sequence[int] = (),
              conflict_budget: Optional[int] = None) -> Optional[bool]:
        """Solve under assumptions.

        Returns True (SAT), False (UNSAT), or None when
        ``conflict_budget`` conflicts were exhausted.  After SAT, read
        the model via :meth:`model_value`.  A False result under
        non-empty ``assumptions`` does not poison the solver: the same
        instance answers later queries (with or without assumptions).
        """
        if not self._ok:
            return False
        self._backtrack(0)
        if self._propagate() is not None:
            self._ok = False
            return False
        budget = conflict_budget
        restart_number = 1
        restart_limit = self.restart_base * luby(1)
        conflicts_since_restart = 0
        conflicts_since_reduce = 0
        reduce_limit = self.reduce_base
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_since_restart += 1
                conflicts_since_reduce += 1
                if not self.trail_lim:
                    self._ok = False
                    return False
                if budget is not None:
                    budget -= 1
                    if budget <= 0:
                        self._backtrack(0)
                        return None
                learned, back_level, lbd = self._analyze(conflict)
                self._backtrack(back_level)
                if len(learned) == 1:
                    value = self._value_of(learned[0])
                    if value == 0:
                        self._ok = False
                        return False
                    if value == UNASSIGNED:
                        self._enqueue(learned[0], None)
                else:
                    self.learnts.append(learned)
                    self._lbd[id(learned)] = lbd
                    if len(learned) == 2:
                        self.bin_watches[learned[0] ^ 1].append(
                            (learned[1], learned))
                        self.bin_watches[learned[1] ^ 1].append(
                            (learned[0], learned))
                    else:
                        self.watches[learned[0] ^ 1].append(learned)
                        self.watches[learned[1] ^ 1].append(learned)
                    self._enqueue(learned[0], learned)
                self.var_inc /= self.var_decay
                if conflicts_since_restart >= restart_limit:
                    conflicts_since_restart = 0
                    restart_number += 1
                    restart_limit = self.restart_base * luby(restart_number)
                    self.restarts += 1
                    self._backtrack(0)
                continue
            if conflicts_since_reduce >= reduce_limit:
                conflicts_since_reduce = 0
                reduce_limit += 500
                if len(self.learnts) > self.reduce_floor:
                    self._reduce_db()
            # Place any pending assumption as the next decision.
            pending = None
            for a in assumptions:
                value = self._value_of(a)
                if value == 0:
                    # Forced false by formula + earlier assumptions.
                    self._backtrack(0)
                    return False
                if value == UNASSIGNED:
                    pending = a
                    break
            if pending is not None:
                self.trail_lim.append(len(self.trail))
                self._enqueue(pending, None)
                continue
            v = self._decide_var()
            if v == -1:
                return True
            self.decisions += 1
            self.trail_lim.append(len(self.trail))
            # Phase saving: re-try the polarity the variable last held
            # (initially False — good for miter circuits).
            self._enqueue(2 * v + (0 if self.saved_phase[v] == 1 else 1),
                          None)

    def model_value(self, variable: int) -> int:
        """Value of a variable in the satisfying assignment (after SAT)."""
        return 1 if self.assign[variable] == 1 else 0

    def stats(self) -> Dict[str, int]:
        """Search statistics (vars, clauses, conflicts, ...)."""
        return {
            "vars": self.num_vars,
            "clauses": len(self.clauses) + len(self.learnts),
            "learned": len(self.learnts),
            "conflicts": self.conflicts,
            "decisions": self.decisions,
            "propagations": self.propagations,
            "restarts": self.restarts,
            "reductions": self.reductions,
        }


class SolverRegistry:
    """Process-local registry of long-lived incremental solver state.

    Warm workers (:mod:`repro.service.scheduler`) keep solver engines —
    e.g. an ATPG engine whose good-circuit CNF is already encoded —
    alive between jobs, keyed by the transport digest of the netlist
    they encode.  This registry makes that reuse explicit and bounded:
    an LRU of caller-chosen string keys to arbitrary solver-backed
    engines, with hit/miss/eviction counters.

    **Determinism contract.**  Reusing an incremental solver preserves
    SAT/UNSAT verdicts but not *models*: learned clauses steer the
    search, so a warm solver may return a different (equally valid)
    satisfying assignment than a cold one.  Clients must therefore only
    route results through the registry when the surfaced value is
    model-independent (verdicts, counts, iteration-bounded failures) —
    never when concrete test vectors or counterexample assignments are
    part of the result contract.  The service layer's bit-identical
    inline/serial/pooled guarantee rests on this rule.
    """

    def __init__(self, max_entries: int = 8) -> None:
        self.max_entries = max_entries
        self._entries: Dict[str, object] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get_or_create(self, key: str, factory):
        """Engine registered under ``key``; builds via ``factory()``."""
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries[key] = self._entries.pop(key)
            return cached
        self.misses += 1
        engine = factory()
        self._entries[key] = engine
        while len(self._entries) > self.max_entries:
            self._entries.pop(next(iter(self._entries)))
            self.evictions += 1
        return engine

    def get(self, key: str):
        """Engine under ``key`` or ``None`` (no miss counted)."""
        return self._entries.get(key)

    def discard(self, key: str) -> None:
        """Drop the engine under ``key`` if present (no error if absent)."""
        self._entries.pop(key, None)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def stats(self) -> Dict[str, int]:
        """Registry counters: entry count, hits, misses, evictions."""
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }

    def clear(self) -> None:
        """Drop every registered engine and reset the counters."""
        self._entries.clear()
        self.hits = self.misses = self.evictions = 0


#: Process-local singleton, lazily created (fork-safety: workers that
#: clear their registry never touch the parent's).
_SOLVER_REGISTRY: Optional[SolverRegistry] = None


def solver_registry() -> SolverRegistry:
    """The process-local :class:`SolverRegistry` singleton."""
    global _SOLVER_REGISTRY
    if _SOLVER_REGISTRY is None:
        _SOLVER_REGISTRY = SolverRegistry()
    return _SOLVER_REGISTRY


def reset_solver_registry() -> None:
    """Drop the process-local registry (tests; worker recycling)."""
    global _SOLVER_REGISTRY
    _SOLVER_REGISTRY = None
