"""Formal engines: CDCL SAT, Tseitin encoding, equivalence, properties."""

from .sat import (
    Solver,
    SolverRegistry,
    lit,
    neg,
    reset_solver_registry,
    solver_registry,
    var_of,
    UNASSIGNED,
)
from .cnf import CircuitEncoder, solve_circuit
from .equivalence import EquivalenceResult, build_miter, check_equivalence
from .glift import (
    FlowResult,
    glift_simulate,
    prove_no_flow,
    taint_reachable_outputs,
)
from .seq_equiv import (
    SequentialEquivalenceResult,
    check_sequential_equivalence,
)
from .properties import (
    PropertyResult,
    bmc_reach,
    prove_implication,
    prove_output_constant,
)

__all__ = [
    "Solver", "SolverRegistry", "lit", "neg", "var_of", "UNASSIGNED",
    "solver_registry", "reset_solver_registry",
    "CircuitEncoder", "solve_circuit",
    "EquivalenceResult", "build_miter", "check_equivalence",
    "FlowResult", "glift_simulate", "prove_no_flow",
    "taint_reachable_outputs",
    "SequentialEquivalenceResult", "check_sequential_equivalence",
    "PropertyResult", "bmc_reach", "prove_implication",
    "prove_output_constant",
]
