"""Miter construction and combinational equivalence checking.

Equivalence checking is the verification backbone of the paper's
Sec. III-D: it validates that locking/camouflaging preserved the
original function (given the right key) and that synthesis rewrites are
sound; and the same miter construction, pointed at an unknown key,
*becomes* the de-obfuscation attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..netlist import Netlist
from .cnf import CircuitEncoder
from .sat import lit, neg


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None
    mismatched_output: Optional[str] = None
    solver_stats: Optional[Dict[str, int]] = None


def check_equivalence(left: Netlist, right: Netlist,
                      input_map: Optional[Mapping[str, str]] = None,
                      output_map: Optional[Mapping[str, str]] = None,
                      left_fixed: Optional[Mapping[str, int]] = None,
                      right_fixed: Optional[Mapping[str, int]] = None,
                      ) -> EquivalenceResult:
    """SAT-based combinational equivalence of two netlists.

    ``input_map``/``output_map`` translate ``left`` port names to
    ``right`` names (default: identity).  ``left_fixed``/``right_fixed``
    pin selected inputs (e.g. key inputs of a locked design) to
    constants before comparing.

    Returns a counterexample input assignment on inequivalence.
    """
    input_map = dict(input_map or {})
    output_map = dict(output_map or {})
    left_fixed = dict(left_fixed or {})
    right_fixed = dict(right_fixed or {})

    enc = CircuitEncoder()
    left_vars = enc.encode(left)
    for net, value in left_fixed.items():
        enc.assert_equal(left_vars[net], value)

    shared_inputs = [
        name for name in left.inputs if name not in left_fixed
    ]
    bind = {}
    for name in shared_inputs:
        right_name = input_map.get(name, name)
        bind[right_name] = left_vars[name]
    right_vars = enc.encode(right, bind=bind)
    for net, value in right_fixed.items():
        enc.assert_equal(right_vars[net], value)

    # Any right inputs not bound and not fixed are free variables, which
    # is an error for a meaningful equivalence query.
    unbound = [
        name for name in right.inputs
        if name not in bind and name not in right_fixed
    ]
    if unbound:
        raise ValueError(f"right-side inputs {unbound[:4]} are unconstrained")

    # One miter query per output, against the single shared encoding:
    # each output's (in)equality is asked under an assumption, so the
    # solver — and every clause it learns about the common fan-in logic
    # — is reused across the whole output list instead of rebuilding
    # one monolithic OR-of-differences formula.
    solver = enc.solver
    for out in left.outputs:
        right_out = output_map.get(out, out)
        diff = enc.xor_of(left_vars[out], right_vars[right_out])
        if solver.solve(assumptions=[lit(diff)]):
            cex = {
                name: solver.model_value(left_vars[name])
                for name in shared_inputs
            }
            return EquivalenceResult(False, counterexample=cex,
                                     mismatched_output=out,
                                     solver_stats=solver.stats())
        # Proven equal: commit the fact so later outputs build on it.
        solver.add_clause([neg(lit(diff))])
    return EquivalenceResult(True, solver_stats=solver.stats())


def build_miter(left: Netlist, right: Netlist, name: str = "miter") -> Netlist:
    """Structural miter netlist: shared inputs, single ``diff`` output.

    Useful when the miter itself should be processed by EDA passes
    (e.g. for test generation) rather than solved directly.
    """
    from ..netlist import GateType

    if set(left.inputs) != set(right.inputs):
        raise ValueError("miter requires identical input sets")
    if len(left.outputs) != len(right.outputs):
        raise ValueError("miter requires matching output counts")
    miter = Netlist(name)
    for inp in left.inputs:
        miter.add_input(inp)
    identity = {inp: inp for inp in left.inputs}
    lmap = miter.import_netlist(left, "l_", identity)
    rmap = miter.import_netlist(right, "r_", identity)
    xors = [
        miter.add(GateType.XOR, [lmap[lo], rmap[ro]], prefix="mx")
        for lo, ro in zip(left.outputs, right.outputs)
    ]
    if len(xors) == 1:
        miter.add_gate("diff", GateType.BUF, xors)
    else:
        miter.add_gate("diff", GateType.OR, xors)
    miter.add_output("diff")
    return miter
