"""Miter construction and combinational equivalence checking.

Equivalence checking is the verification backbone of the paper's
Sec. III-D: it validates that locking/camouflaging preserved the
original function (given the right key) and that synthesis rewrites are
sound; and the same miter construction, pointed at an unknown key,
*becomes* the de-obfuscation attack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..netlist import Netlist
from .cnf import CircuitEncoder


@dataclass
class EquivalenceResult:
    """Outcome of an equivalence check."""

    equivalent: bool
    counterexample: Optional[Dict[str, int]] = None
    mismatched_output: Optional[str] = None
    solver_stats: Optional[Dict[str, int]] = None


def check_equivalence(left: Netlist, right: Netlist,
                      input_map: Optional[Mapping[str, str]] = None,
                      output_map: Optional[Mapping[str, str]] = None,
                      left_fixed: Optional[Mapping[str, int]] = None,
                      right_fixed: Optional[Mapping[str, int]] = None,
                      ) -> EquivalenceResult:
    """SAT-based combinational equivalence of two netlists.

    ``input_map``/``output_map`` translate ``left`` port names to
    ``right`` names (default: identity).  ``left_fixed``/``right_fixed``
    pin selected inputs (e.g. key inputs of a locked design) to
    constants before comparing.

    Returns a counterexample input assignment on inequivalence.
    """
    input_map = dict(input_map or {})
    output_map = dict(output_map or {})
    left_fixed = dict(left_fixed or {})
    right_fixed = dict(right_fixed or {})

    enc = CircuitEncoder()
    left_vars = enc.encode(left)
    for net, value in left_fixed.items():
        enc.assert_equal(left_vars[net], value)

    shared_inputs = [
        name for name in left.inputs if name not in left_fixed
    ]
    bind = {}
    for name in shared_inputs:
        right_name = input_map.get(name, name)
        bind[right_name] = left_vars[name]
    right_vars = enc.encode(right, bind=bind)
    for net, value in right_fixed.items():
        enc.assert_equal(right_vars[net], value)

    # Any right inputs not bound and not fixed are free variables, which
    # is an error for a meaningful equivalence query.
    unbound = [
        name for name in right.inputs
        if name not in bind and name not in right_fixed
    ]
    if unbound:
        raise ValueError(f"right-side inputs {unbound[:4]} are unconstrained")

    diff_vars: List[int] = []
    diff_outputs: List[str] = []
    for out in left.outputs:
        right_out = output_map.get(out, out)
        diff_vars.append(enc.xor_of(left_vars[out], right_vars[right_out]))
        diff_outputs.append(out)
    any_diff = enc.or_of(diff_vars)
    enc.assert_equal(any_diff, 1)

    sat = enc.solver.solve()
    if not sat:
        return EquivalenceResult(True, solver_stats=enc.solver.stats())
    cex = {
        name: enc.solver.model_value(left_vars[name])
        for name in shared_inputs
    }
    mismatched = None
    for out, dv in zip(diff_outputs, diff_vars):
        if enc.solver.model_value(dv):
            mismatched = out
            break
    return EquivalenceResult(False, counterexample=cex,
                             mismatched_output=mismatched,
                             solver_stats=enc.solver.stats())


def build_miter(left: Netlist, right: Netlist, name: str = "miter") -> Netlist:
    """Structural miter netlist: shared inputs, single ``diff`` output.

    Useful when the miter itself should be processed by EDA passes
    (e.g. for test generation) rather than solved directly.
    """
    from ..netlist import GateType

    if set(left.inputs) != set(right.inputs):
        raise ValueError("miter requires identical input sets")
    if len(left.outputs) != len(right.outputs):
        raise ValueError("miter requires matching output counts")
    miter = Netlist(name)
    for inp in left.inputs:
        miter.add_input(inp)
    identity = {inp: inp for inp in left.inputs}
    lmap = miter.import_netlist(left, "l_", identity)
    rmap = miter.import_netlist(right, "r_", identity)
    xors = [
        miter.add(GateType.XOR, [lmap[lo], rmap[ro]], prefix="mx")
        for lo, ro in zip(left.outputs, right.outputs)
    ]
    if len(xors) == 1:
        miter.add_gate("diff", GateType.BUF, xors)
    else:
        miter.add_gate("diff", GateType.OR, xors)
    miter.add_output("diff")
    return miter
