"""Property checking: combinational proofs and bounded model checking.

Supports the paper's Sec. III-D use cases: proving security properties
(e.g. "the alarm output cannot be silenced while a fault is present"),
validating error-detection architectures with formal fault analysis
(ref [32]), and the proof-carrying-hardware style of embedding checkable
properties next to the design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from ..netlist import Netlist
from .cnf import CircuitEncoder
from .sat import lit


@dataclass
class PropertyResult:
    """Outcome of a property check.

    ``holds`` is True when no violating assignment exists.  Otherwise
    ``witness`` gives violating input values (per frame for BMC).
    """

    holds: bool
    witness: Optional[List[Dict[str, int]]] = None
    frames_checked: int = 0


def prove_output_constant(netlist: Netlist, output: str, value: int,
                          fixed: Optional[Mapping[str, int]] = None
                          ) -> PropertyResult:
    """Prove a combinational output equals ``value`` for all inputs."""
    enc = CircuitEncoder()
    varmap = enc.encode(netlist)
    for net, v in (fixed or {}).items():
        enc.assert_equal(varmap[net], v)
    enc.assert_equal(varmap[output], 1 - value)
    if not enc.solver.solve():
        return PropertyResult(True, frames_checked=1)
    witness = {
        name: enc.solver.model_value(varmap[name]) for name in netlist.inputs
    }
    return PropertyResult(False, witness=[witness], frames_checked=1)


def prove_implication(netlist: Netlist,
                      antecedent: Mapping[str, int],
                      consequent: Mapping[str, int]) -> PropertyResult:
    """Prove: whenever ``antecedent`` net values hold, ``consequent`` holds.

    Searches for a counterexample satisfying the antecedent while
    violating at least one consequent net.
    """
    enc = CircuitEncoder()
    varmap = enc.encode(netlist)
    for net, v in antecedent.items():
        enc.assert_equal(varmap[net], v)
    # Violation: OR over consequent nets differing from required value.
    diffs = []
    for net, v in consequent.items():
        if v == 1:
            # violated when net == 0: use NOT net
            y = enc.solver.new_var()
            enc.solver.add_clause([lit(y), lit(varmap[net])])
            enc.solver.add_clause([lit(y, True), lit(varmap[net], True)])
            diffs.append(y)
        else:
            diffs.append(varmap[net])
    any_violation = enc.or_of(diffs)
    enc.assert_equal(any_violation, 1)
    if not enc.solver.solve():
        return PropertyResult(True, frames_checked=1)
    witness = {
        name: enc.solver.model_value(varmap[name]) for name in netlist.inputs
    }
    return PropertyResult(False, witness=[witness], frames_checked=1)


def bmc_reach(netlist: Netlist, target: str, max_cycles: int,
              initial_state: Optional[Mapping[str, int]] = None,
              target_value: int = 1) -> PropertyResult:
    """Bounded reachability for sequential netlists.

    Unrolls ``max_cycles`` time frames and asks whether the ``target``
    net can take ``target_value`` in any frame.  ``holds`` is True when
    the target is *unreachable* within the bound (the property "never
    target" holds up to ``max_cycles``).
    """
    if not netlist.is_sequential:
        result = prove_output_constant(netlist, target, 1 - target_value)
        return result
    initial_state = dict(initial_state or {})
    enc = CircuitEncoder()
    flops = netlist.flops
    # Frame 0 state: constants from initial_state (default 0).
    state_vars: Dict[str, int] = {}
    for ff in flops:
        v = enc.fresh_var()
        enc.assert_equal(v, initial_state.get(ff, 0))
        state_vars[ff] = v
    target_hits: List[int] = []
    frame_inputs: List[Dict[str, int]] = []
    for _frame in range(max_cycles):
        bind = dict(state_vars)
        varmap = enc.encode(netlist, bind=bind)
        frame_inputs.append({name: varmap[name] for name in netlist.inputs})
        target_hits.append(varmap[target])
        # Next state: D-pin values of this frame.
        state_vars = {
            ff: varmap[netlist.gates[ff].fanins[0]] for ff in flops
        }
    hit_lits = []
    for hv in target_hits:
        if target_value == 1:
            hit_lits.append(hv)
        else:
            y = enc.solver.new_var()
            enc.solver.add_clause([lit(y), lit(hv)])
            enc.solver.add_clause([lit(y, True), lit(hv, True)])
            hit_lits.append(y)
    any_hit = enc.or_of(hit_lits)
    enc.assert_equal(any_hit, 1)
    if not enc.solver.solve():
        return PropertyResult(True, frames_checked=max_cycles)
    witness = [
        {name: enc.solver.model_value(v) for name, v in frame.items()}
        for frame in frame_inputs
    ]
    return PropertyResult(False, witness=witness, frames_checked=max_cycles)
