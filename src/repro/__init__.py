"""repro — a security-centric EDA framework.

Reproduction of *"Towards Secure Composition of Integrated Circuits and
Electronic Systems: On the Role of EDA"* (DATE 2020).  The package
implements, over a from-scratch gate-level EDA substrate, every security
scheme of the paper's Table II and the secure-composition flow of its
Sec. IV:

- :mod:`repro.netlist` — gate-level IR, simulation, BENCH I/O, PPA
- :mod:`repro.synth` — logic synthesis and technology mapping
- :mod:`repro.physical` — placement, routing estimation, timing
- :mod:`repro.crypto` — AES-128 / PRESENT-80 attack targets
- :mod:`repro.formal` — CDCL SAT, equivalence and property checking
- :mod:`repro.sca` — side-channel analysis: TVLA, CPA, masking, WDDL
- :mod:`repro.fia` — fault injection, DFA, detection codes, sensors
- :mod:`repro.ip` — locking, SAT attack, camouflaging, split mfg., PUFs
- :mod:`repro.trojan` — Trojan insertion, MERO, fingerprinting, monitors
- :mod:`repro.dft` — scan, ATPG, BIST, scan attacks, secure scan
- :mod:`repro.hls` — scheduling/binding with security-driven extensions
- :mod:`repro.core` — the secure-composition flow, metrics, and DSE
"""

__version__ = "1.0.0"
