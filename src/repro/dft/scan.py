"""Scan-chain insertion and scan-mode operation.

Design-for-test foundation (paper Sec. III-F): every DFF becomes a scan
flop — a mux selects between the functional D input and the previous
flop in the chain — so test equipment can shift arbitrary state in and
observe captured state out.  The same access is the security hole the
scan attack exploits (:mod:`repro.dft.scan_attack`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist, get_compiled

SCAN_ENABLE = "scan_en"
SCAN_IN = "scan_in"
SCAN_OUT = "scan_out"


@dataclass
class ScanDesign:
    """A netlist with an inserted scan chain."""

    netlist: Netlist
    chain: List[str]          # flop output nets, scan-in first

    @property
    def length(self) -> int:
        return len(self.chain)


def insert_scan(netlist: Netlist) -> ScanDesign:
    """Stitch all DFFs into one scan chain (insertion order).

    Adds inputs ``scan_en`` / ``scan_in`` and output ``scan_out``.  In
    shift mode (``scan_en=1``) each flop captures its chain predecessor;
    in capture mode it takes its functional D input.
    """
    if not netlist.is_sequential:
        raise ValueError("scan insertion requires at least one DFF")
    scan = netlist.copy(netlist.name + "_scan")
    scan.add_input(SCAN_ENABLE)
    scan.add_input(SCAN_IN)
    chain = scan.flops
    previous = SCAN_IN
    for ff in chain:
        flop = scan.gates[ff]
        functional_d = flop.fanins[0]
        mux = scan.add(GateType.MUX, [SCAN_ENABLE, functional_d, previous],
                       prefix=f"sc_{ff}_")
        flop.fanins = [mux]
        previous = ff
    scan.add_gate(SCAN_OUT, GateType.BUF, [previous])
    scan.add_output(SCAN_OUT)
    scan.invalidate()
    return ScanDesign(scan, chain)


def scan_load(design: ScanDesign, bits: Sequence[int],
              functional_inputs: Optional[Mapping[str, int]] = None,
              state: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Shift a bit sequence into the chain (last element enters first
    flop last, i.e. ``bits[i]`` ends up in ``chain[i]``)."""
    if len(bits) != design.length:
        raise ValueError("bit count must equal chain length")
    compiled, stim, regs = _scan_cycle_setup(design, functional_inputs,
                                             state, scan_enable=1)
    scan_in_pos = compiled.input_names.index(SCAN_IN)
    # Shift in reversed so bits[0] lands in chain[0].
    for bit in reversed(list(bits)):
        stim[scan_in_pos] = bit & 1
        _, regs = compiled.step_words(stim, regs)
    return dict(zip(compiled.flop_names, regs))


def scan_capture(design: ScanDesign,
                 functional_inputs: Mapping[str, int],
                 state: Dict[str, int]) -> Dict[str, int]:
    """One functional (capture) cycle with ``scan_en = 0``."""
    compiled, stim, regs = _scan_cycle_setup(design, functional_inputs,
                                             state, scan_enable=0)
    _, regs = compiled.step_words(stim, regs)
    return dict(zip(compiled.flop_names, regs))


def scan_unload(design: ScanDesign,
                state: Dict[str, int],
                functional_inputs: Optional[Mapping[str, int]] = None
                ) -> Tuple[List[int], Dict[str, int]]:
    """Shift the chain out; returns (bits, final state).

    ``bits[i]`` is the value that was held in ``chain[i]``.
    """
    compiled, stim, regs = _scan_cycle_setup(design, functional_inputs,
                                             state, scan_enable=1)
    scan_out_index = compiled.index[SCAN_OUT]
    bits: List[int] = []
    # chain[-1] drives scan_out directly; shifting length times reads all.
    for _ in range(design.length):
        values, regs = compiled.step_words(stim, regs)
        bits.append(values[scan_out_index] & 1)
    # scan_out emits chain[-1] first.
    return list(reversed(bits)), dict(zip(compiled.flop_names, regs))


def _scan_cycle_setup(design: ScanDesign,
                      functional_inputs: Optional[Mapping[str, int]],
                      state: Optional[Mapping[str, int]],
                      scan_enable: int):
    """Positional (stimulus, registers) for a run of scan cycles.

    One stimulus list serves every cycle of a shift run — only the
    ``scan_in`` slot changes — so the per-cycle cost is a single
    compiled evaluation, with no name-keyed dicts rebuilt per cycle.
    """
    compiled = get_compiled(design.netlist)
    full = {name: 0 for name in compiled.input_names}
    full.update(functional_inputs or {})
    full[SCAN_ENABLE] = scan_enable
    full[SCAN_IN] = 0
    stim = [full[name] & 1 for name in compiled.input_names]
    source = state or {}
    regs = [source.get(ff, 0) & 1 for ff in compiled.flop_names]
    return compiled, stim, regs
