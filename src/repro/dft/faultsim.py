"""Stuck-at fault simulation for test-coverage grading.

Grades a vector set against the single-stuck-at model using the
bit-parallel simulator: one faulty-netlist simulation covers the whole
pattern set at once.  Fault dropping keeps campaigns fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..fia import Fault, FaultKind, enumerate_faults, inject_fault
from ..netlist import Netlist, pack_patterns, simulate


@dataclass
class CoverageReport:
    """Stuck-at coverage of a test set."""

    total_faults: int
    detected_faults: int
    undetected: List[Fault]

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected_faults / self.total_faults


def grade_vectors(netlist: Netlist,
                  vectors: Sequence[Mapping[str, int]],
                  faults: Optional[Sequence[Fault]] = None
                  ) -> CoverageReport:
    """Fraction of stuck-at faults whose effect reaches an output.

    ``faults`` defaults to all single stuck-at faults on all nets.
    """
    fault_list = list(faults) if faults is not None else enumerate_faults(
        netlist, kinds=(FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1))
    if not vectors:
        return CoverageReport(len(fault_list), 0, list(fault_list))
    width = len(vectors)
    stimulus = pack_patterns(list(vectors), netlist.inputs)
    golden = simulate(netlist, stimulus, width)
    mask = (1 << width) - 1
    undetected: List[Fault] = []
    detected = 0
    for fault in fault_list:
        faulty_netlist = inject_fault(netlist, fault)
        values = simulate(faulty_netlist, stimulus, width)
        difference = 0
        for out in netlist.outputs:
            difference |= (golden[out] ^ values[out]) & mask
            if difference:
                break
        if difference:
            detected += 1
        else:
            undetected.append(fault)
    return CoverageReport(len(fault_list), detected, undetected)
