"""Stuck-at fault simulation for test-coverage grading.

Grades a vector set against the single-stuck-at model using the
compiled bit-parallel simulator: one fault-free simulation covers the
whole pattern set, then each fault is propagated *incrementally*
through its fanout cone over the compiled gate program — no per-fault
netlist copy, no full re-simulation.  Fault dropping keeps campaigns
fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence

from ..fia import Fault, FaultKind, enumerate_faults
from ..netlist import CompiledNetlist, Netlist, get_compiled, pack_patterns


@dataclass
class CoverageReport:
    """Stuck-at coverage of a test set."""

    total_faults: int
    detected_faults: int
    undetected: List[Fault]

    @property
    def coverage(self) -> float:
        if self.total_faults == 0:
            return 1.0
        return self.detected_faults / self.total_faults


def _forced_word(compiled: CompiledNetlist, fault: Fault,
                 golden: Sequence[int], mask: int) -> int:
    """Packed word the fault forces onto its net."""
    if fault.kind is FaultKind.STUCK_AT_0:
        return 0
    if fault.kind is FaultKind.STUCK_AT_1:
        return mask
    if fault.kind is FaultKind.BIT_FLIP:
        return ~golden[compiled.index[fault.net]] & mask
    raise ValueError(f"unsupported fault kind {fault.kind}")


def detected_by_vectors(netlist: Netlist,
                        vectors: Sequence[Mapping[str, int]],
                        faults: Sequence[Fault]) -> List[bool]:
    """Per-fault detection flags of a vector set (order preserved)."""
    if not vectors:
        return [False] * len(faults)
    compiled = get_compiled(netlist)
    width = len(vectors)
    mask = (1 << width) - 1
    stimulus = pack_patterns(list(vectors), compiled.input_names)
    golden = compiled.eval_words(stimulus, width)
    output_indices = frozenset(compiled.index[o] for o in netlist.outputs)
    flags: List[bool] = []
    for fault in faults:
        forced = _forced_word(compiled, fault, golden, mask)
        flags.append(compiled.fault_detects(
            golden, compiled.index[fault.net], forced, output_indices,
            width))
    return flags


def grade_vectors(netlist: Netlist,
                  vectors: Sequence[Mapping[str, int]],
                  faults: Optional[Sequence[Fault]] = None
                  ) -> CoverageReport:
    """Fraction of stuck-at faults whose effect reaches an output.

    ``faults`` defaults to all single stuck-at faults on all nets.
    """
    fault_list = list(faults) if faults is not None else enumerate_faults(
        netlist, kinds=(FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1))
    if not vectors:
        return CoverageReport(len(fault_list), 0, list(fault_list))
    flags = detected_by_vectors(netlist, vectors, fault_list)
    undetected = [f for f, hit in zip(fault_list, flags) if not hit]
    return CoverageReport(len(fault_list), len(fault_list) - len(undetected),
                          undetected)
