"""Logic built-in self-test: LFSR pattern generation + MISR compaction.

The BIST leg of the DFX infrastructure (paper Sec. III-F, ref [58]):
an on-chip LFSR feeds pseudo-random patterns to the logic, a MISR
compacts the responses into a signature, and a mismatch against the
golden signature fails the self-test.  Security relevance: BIST offers
test access *without* exposing a scan chain — the classic trade against
scan attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from ..netlist import Netlist, simulate

#: Primitive polynomial taps (XOR positions) per register width.
_DEFAULT_TAPS = {
    4: (3, 2),
    8: (7, 5, 4, 3),
    16: (15, 14, 12, 3),
    24: (23, 22, 21, 16),
    32: (31, 21, 1, 0),
}


class Lfsr:
    """Fibonacci LFSR over ``width`` bits."""

    def __init__(self, width: int, seed: int = 1,
                 taps: Optional[Sequence[int]] = None) -> None:
        if seed == 0:
            raise ValueError("LFSR seed must be non-zero")
        self.width = width
        self.state = seed & ((1 << width) - 1)
        chosen = taps or _DEFAULT_TAPS.get(width)
        if chosen is None:
            raise ValueError(f"no default taps for width {width}")
        self.taps = tuple(chosen)

    def step(self) -> int:
        """Advance one cycle; returns the new register state."""
        feedback = 0
        for t in self.taps:
            feedback ^= (self.state >> t) & 1
        self.state = ((self.state << 1) | feedback) & ((1 << self.width) - 1)
        return self.state


class Misr:
    """Multiple-input signature register compacting response words."""

    def __init__(self, width: int, taps: Optional[Sequence[int]] = None
                 ) -> None:
        self.width = width
        self.state = 0
        chosen = taps or _DEFAULT_TAPS.get(width)
        if chosen is None:
            raise ValueError(f"no default taps for width {width}")
        self.taps = tuple(chosen)

    def absorb(self, word: int) -> None:
        """Compact one response word into the signature."""
        feedback = 0
        for t in self.taps:
            feedback ^= (self.state >> t) & 1
        self.state = (((self.state << 1) | feedback)
                      ^ word) & ((1 << self.width) - 1)

    @property
    def signature(self) -> int:
        return self.state


@dataclass
class BistResult:
    """Self-test outcome."""

    signature: int
    golden_signature: int
    patterns_applied: int

    @property
    def passed(self) -> bool:
        return self.signature == self.golden_signature


def run_bist(netlist: Netlist, n_patterns: int = 256,
             lfsr_seed: int = 0xACE1,
             golden_signature: Optional[int] = None) -> BistResult:
    """Run LFSR/MISR BIST over a combinational netlist.

    With ``golden_signature=None`` the run *characterizes* the design
    (returns its own signature as golden); pass the characterized value
    to test suspect instances.
    """
    inputs = netlist.inputs
    outputs = netlist.outputs
    lfsr_width = max(8, min(32, ((len(inputs) + 7) // 8) * 8))
    misr_width = max(8, min(32, ((len(outputs) + 7) // 8) * 8))
    lfsr = Lfsr(lfsr_width, seed=lfsr_seed)
    misr = Misr(misr_width)
    for _ in range(n_patterns):
        pattern = lfsr.step()
        stimulus = {
            name: (pattern >> (i % lfsr_width)) & 1
            for i, name in enumerate(inputs)
        }
        values = simulate(netlist, stimulus)
        word = 0
        for i, out in enumerate(outputs):
            word |= (values[out] & 1) << (i % misr_width)
        misr.absorb(word)
    golden = golden_signature if golden_signature is not None \
        else misr.signature
    return BistResult(misr.signature, golden, n_patterns)


def bist_detects_fault(netlist: Netlist, faulty: Netlist,
                       n_patterns: int = 256) -> bool:
    """Does the signature change under a fault (or Trojan payload)?"""
    golden = run_bist(netlist, n_patterns)
    suspect = run_bist(faulty, n_patterns,
                       golden_signature=golden.signature)
    return not suspect.passed
