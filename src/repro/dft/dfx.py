"""Security-aware DFX controller (paper Sec. III-F).

Modern "design-for-X" infrastructure combines scan, BIST, transient-
fault handling, and debug.  The paper argues it must become security
aware: discriminate natural from malicious faults (responding with
recovery vs. re-keying), and manage IP-protection secrets (the locking
key) inside the same trust boundary.  :class:`DfxController` is that
component: a policy engine gluing together the BIST engine, the fault
discriminator of :mod:`repro.fia.discriminate`, and locking-key
management.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from ..fia.discriminate import (
    Assessment,
    FaultDiscriminator,
    FaultEvent,
    Response,
    Verdict,
)


class ChipState(enum.Enum):
    """Operational state managed by the DFX controller."""

    MISSION = "mission"
    RECOVERING = "recovering"
    REKEYING = "rekeying"
    DISABLED = "disabled"


@dataclass
class DfxEventLog:
    """One handled alarm with the controller's decision."""

    event: FaultEvent
    assessment: Assessment
    state_after: ChipState


@dataclass
class DfxController:
    """Security-aware test/debug/response controller.

    Holds the locking key (activated once via :meth:`provision_key`);
    malicious verdicts trigger re-keying (key epoch bump, old key
    invalid) or, past a strike budget, permanent disable.  Natural
    verdicts recover and resume — availability is preserved.
    """

    discriminator: FaultDiscriminator = field(
        default_factory=FaultDiscriminator)
    max_rekey_events: int = 3
    state: ChipState = ChipState.MISSION
    key_epoch: int = 0
    _key: Optional[int] = None
    rekey_count: int = 0
    log: List[DfxEventLog] = field(default_factory=list)

    def provision_key(self, key: int) -> None:
        """One-time locking-key activation (paper: key management for
        locking inside the DFX infrastructure)."""
        if self._key is not None:
            raise RuntimeError("key already provisioned")
        self._key = key

    def unlock_key(self, epoch: int) -> Optional[int]:
        """The datapath fetches the key for the current epoch only."""
        if self.state is ChipState.DISABLED or self._key is None:
            return None
        if epoch != self.key_epoch:
            return None
        return self._key ^ self.key_epoch  # epoch-diversified key

    def handle_alarm(self, event: FaultEvent) -> DfxEventLog:
        """Feed one detected-fault event through the policy engine."""
        assessment = self.discriminator.observe(event)
        if self.state is ChipState.DISABLED:
            entry = DfxEventLog(event, assessment, self.state)
            self.log.append(entry)
            return entry
        if assessment.verdict is Verdict.NATURAL:
            # Fast recovery and resumption (availability first).
            self.state = ChipState.MISSION
        else:
            self.rekey_count += 1
            if (assessment.response is Response.DISCONTINUE
                    or self.rekey_count > self.max_rekey_events):
                self.state = ChipState.DISABLED
            else:
                self.key_epoch += 1
                self.state = ChipState.MISSION
        entry = DfxEventLog(event, assessment, self.state)
        self.log.append(entry)
        return entry

    @property
    def operational(self) -> bool:
        return self.state is not ChipState.DISABLED
