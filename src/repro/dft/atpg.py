"""Automatic test pattern generation (ATPG) for stuck-at faults.

Two-phase industrial recipe: cheap random patterns with fault dropping
first, then SAT-based deterministic generation for the stragglers (the
D-algorithm's job, here done by asking the solver for an input that
distinguishes the faulty circuit from the good one).  Faults the solver
proves untestable are *redundant* — which is itself useful feedback, and
security-relevant: redundant logic is where Trojans and locking key
gates hide from testing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..fia import Fault, FaultKind, enumerate_faults, inject_fault
from ..formal import CircuitEncoder, lit, neg
from ..netlist import GateType, Netlist
from .faultsim import detected_by_vectors, grade_vectors


@dataclass
class AtpgResult:
    """Vectors plus per-fault classification."""

    vectors: List[Dict[str, int]]
    detected: List[Fault] = field(default_factory=list)
    untestable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.untestable) + len(self.aborted)
        if total == 0:
            return 1.0
        # Untestable (redundant) faults are conventionally excluded.
        testable = total - len(self.untestable)
        return len(self.detected) / testable if testable else 1.0


class IncrementalAtpg:
    """Assumption-based deterministic test generation over one solver.

    The fault-free circuit is Tseitin-encoded exactly once; every
    stuck-at query then encodes only the fault's *output cone* (a
    faulty copy of the nets structurally downstream of the fault site,
    reading all other values from the base encoding) and asks the
    solver, under a single activation assumption, for an input on which
    a cone output diverges.  Learned clauses accumulate across faults
    in the shared database, so each successive query starts from
    everything the solver already proved about the circuit — the
    MiniSat-style incremental recipe, replacing the previous
    two-full-copies re-encode per fault.

    DFF outputs are treated as shared pseudo-primary inputs (the
    full-scan view), so cones stop at state elements.
    """

    def __init__(self, netlist: Netlist) -> None:
        self.netlist = netlist
        self.encoder = CircuitEncoder()
        self.good_vars = self.encoder.encode(netlist)
        self._fanout = netlist.fanout_map()
        self._output_set = set(netlist.outputs)

    def _fault_cone(self, net: str) -> set:
        """Transitive fanout of ``net``, stopping at DFF boundaries."""
        gates = self.netlist.gates
        cone = {net}
        stack = [net]
        fanout = self._fanout
        while stack:
            for consumer in fanout.get(stack.pop(), ()):
                if consumer in cone:
                    continue
                if gates[consumer].gate_type is GateType.DFF:
                    continue
                cone.add(consumer)
                stack.append(consumer)
        return cone

    def test_for_fault(self, fault: Fault,
                       conflict_budget: Optional[int] = 50_000
                       ) -> Tuple[Optional[Dict[str, int]], str]:
        """SAT query for an input that exposes ``fault``.

        Returns ``(test, "detected")``, ``(None, "untestable")`` when
        the fault is provably redundant, or ``(None, "aborted")`` when
        the conflict budget ran out.
        """
        cone = self._fault_cone(fault.net)
        faulty = inject_fault(self.netlist, fault)
        # Only nets the fault can reach are re-encoded; primary inputs
        # and DFF outputs stay shared with the base circuit, and nets
        # introduced by the injection itself (e.g. the stuck driver for
        # an input fault) are encoded fresh.
        good_vars = self.good_vars
        within = set()
        bind: Dict[str, int] = {}
        for net, gate in faulty.gates.items():
            if (net in cone or net not in good_vars) and \
                    gate.gate_type not in (GateType.INPUT, GateType.DFF):
                within.add(net)
            else:
                bind[net] = good_vars[net]
        observed = [o for o in faulty.outputs if o in within]
        if not observed:
            return None, "untestable"
        enc = self.encoder
        bad_vars = enc.encode(faulty, bind=bind, within=within)
        diffs = [enc.xor_of(good_vars[o], bad_vars[o]) for o in observed]
        miter = diffs[0] if len(diffs) == 1 else enc.or_of(diffs)
        result = enc.solver.solve(assumptions=[lit(miter)],
                                  conflict_budget=conflict_budget)
        if result is False:
            # The cone miter is proven quiet; committing that as a unit
            # clause lets later queries reuse the proof.
            enc.solver.add_clause([neg(lit(miter))])
            return None, "untestable"
        if result is None:
            return None, "aborted"
        solver = enc.solver
        test = {
            name: solver.model_value(good_vars[name])
            for name in self.netlist.inputs
        }
        return test, "detected"


def generate_test_for_fault(netlist: Netlist, fault: Fault,
                            conflict_budget: Optional[int] = 50_000
                            ) -> Tuple[Optional[Dict[str, int]], str]:
    """One-shot SAT query for an input that exposes ``fault``.

    Convenience wrapper over :class:`IncrementalAtpg`; batch callers
    should hold on to one engine instead so the base encoding and
    learned clauses are shared across faults.
    """
    return IncrementalAtpg(netlist).test_for_fault(fault, conflict_budget)


def shared_atpg_engine(netlist: Netlist) -> IncrementalAtpg:
    """Process-local :class:`IncrementalAtpg` engine for ``netlist``.

    Registered in the :func:`repro.formal.solver_registry` under the
    netlist's transport digest, so a warm worker re-running ATPG jobs
    on the same design skips the base Tseitin encoding and starts from
    the learned clauses of earlier queries.

    **Caveat (model dependence):** a warm engine may emit different —
    equally valid — test vectors than a cold one, because learned
    clauses steer the search.  Use this only where the surfaced result
    is model-independent (coverage verdicts, detect/undetectable
    classification); batch flows whose concrete vectors are part of the
    result (``run_atpg``) must keep constructing their own engine.
    The engine assumes the netlist is not mutated while registered;
    the registry key is content-addressed, so a structurally different
    netlist always gets a fresh engine.
    """
    from ..formal import solver_registry
    from ..netlist import transport_hash

    key = "atpg:" + transport_hash(netlist)
    return solver_registry().get_or_create(
        key, lambda: IncrementalAtpg(netlist))


def run_atpg(netlist: Netlist,
             faults: Optional[Sequence[Fault]] = None,
             random_budget: int = 64,
             seed: int = 0) -> AtpgResult:
    """Random phase with fault dropping, then SAT phase per survivor.

    The SAT phase also drops faults: every deterministically generated
    test is fault-simulated against the remaining undetected faults, so
    one solver query typically retires many faults — the classical
    test-generation loop, and the difference between minutes and
    seconds on XOR-heavy designs.
    """
    rng = random.Random(seed)
    fault_list = list(faults) if faults is not None else enumerate_faults(
        netlist, kinds=(FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1))
    vectors = [
        {name: rng.randint(0, 1) for name in netlist.inputs}
        for _ in range(random_budget)
    ]
    report = grade_vectors(netlist, vectors, fault_list)
    result = AtpgResult(vectors=vectors)
    undetected_set = set(report.undetected)
    result.detected = [f for f in fault_list if f not in undetected_set]
    remaining = list(report.undetected)
    engine = IncrementalAtpg(netlist) if remaining else None
    while remaining:
        fault = remaining.pop(0)
        test, status = engine.test_for_fault(fault)
        if status == "untestable":
            result.untestable.append(fault)
        elif status == "aborted":
            result.aborted.append(fault)
        else:
            result.vectors.append(test)
            result.detected.append(fault)
            # Drop every other remaining fault this test also exposes.
            flags = detected_by_vectors(netlist, [test], remaining)
            dropped = [f for f, hit in zip(remaining, flags) if hit]
            if dropped:
                result.detected.extend(dropped)
                remaining = [f for f, hit in zip(remaining, flags)
                             if not hit]
    if engine is not None:
        # The whole point of the incremental port: one base encode per
        # ATPG run, however many faults the SAT phase has to visit.
        assert engine.encoder.encode_calls == 1, (
            f"base circuit encoded {engine.encoder.encode_calls} times; "
            f"incremental ATPG must encode it exactly once")
    return result


def compact_vectors(netlist: Netlist, vectors: Sequence[Mapping[str, int]],
                    faults: Optional[Sequence[Fault]] = None
                    ) -> List[Dict[str, int]]:
    """Greedy reverse-order compaction: drop vectors that do not reduce
    coverage (classic static compaction)."""
    kept = [dict(v) for v in vectors]
    baseline = grade_vectors(netlist, kept, faults).coverage
    index = len(kept) - 1
    while index >= 0:
        trial = kept[:index] + kept[index + 1:]
        if grade_vectors(netlist, trial, faults).coverage >= baseline:
            kept = trial
        index -= 1
    return kept
