"""Automatic test pattern generation (ATPG) for stuck-at faults.

Two-phase industrial recipe: cheap random patterns with fault dropping
first, then SAT-based deterministic generation for the stragglers (the
D-algorithm's job, here done by asking the solver for an input that
distinguishes the faulty circuit from the good one).  Faults the solver
proves untestable are *redundant* — which is itself useful feedback, and
security-relevant: redundant logic is where Trojans and locking key
gates hide from testing.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..fia import Fault, FaultKind, enumerate_faults, inject_fault
from ..formal import CircuitEncoder
from ..netlist import Netlist
from .faultsim import detected_by_vectors, grade_vectors


@dataclass
class AtpgResult:
    """Vectors plus per-fault classification."""

    vectors: List[Dict[str, int]]
    detected: List[Fault] = field(default_factory=list)
    untestable: List[Fault] = field(default_factory=list)
    aborted: List[Fault] = field(default_factory=list)

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.untestable) + len(self.aborted)
        if total == 0:
            return 1.0
        # Untestable (redundant) faults are conventionally excluded.
        testable = total - len(self.untestable)
        return len(self.detected) / testable if testable else 1.0


def generate_test_for_fault(netlist: Netlist, fault: Fault,
                            conflict_budget: Optional[int] = 50_000
                            ) -> Tuple[Optional[Dict[str, int]], str]:
    """SAT query for an input that exposes ``fault``.

    Returns ``(test, "detected")``, ``(None, "untestable")`` when the
    fault is provably redundant, or ``(None, "aborted")`` when the
    conflict budget ran out.
    """
    faulty = inject_fault(netlist, fault)
    enc = CircuitEncoder()
    good_vars = enc.encode(netlist)
    shared = {name: good_vars[name] for name in netlist.inputs
              if name in faulty.gates}
    bad_vars = enc.encode(faulty, bind=shared)
    diffs = [enc.xor_of(good_vars[o], bad_vars[o]) for o in netlist.outputs]
    enc.assert_equal(enc.or_of(diffs), 1)
    result = enc.solver.solve(conflict_budget=conflict_budget)
    if result is False:
        return None, "untestable"
    if result is None:
        return None, "aborted"
    test = {
        name: enc.solver.model_value(good_vars[name])
        for name in netlist.inputs
    }
    return test, "detected"


def run_atpg(netlist: Netlist,
             faults: Optional[Sequence[Fault]] = None,
             random_budget: int = 64,
             seed: int = 0) -> AtpgResult:
    """Random phase with fault dropping, then SAT phase per survivor.

    The SAT phase also drops faults: every deterministically generated
    test is fault-simulated against the remaining undetected faults, so
    one solver query typically retires many faults — the classical
    test-generation loop, and the difference between minutes and
    seconds on XOR-heavy designs.
    """
    rng = random.Random(seed)
    fault_list = list(faults) if faults is not None else enumerate_faults(
        netlist, kinds=(FaultKind.STUCK_AT_0, FaultKind.STUCK_AT_1))
    vectors = [
        {name: rng.randint(0, 1) for name in netlist.inputs}
        for _ in range(random_budget)
    ]
    report = grade_vectors(netlist, vectors, fault_list)
    result = AtpgResult(vectors=vectors)
    undetected_set = set(report.undetected)
    result.detected = [f for f in fault_list if f not in undetected_set]
    remaining = list(report.undetected)
    while remaining:
        fault = remaining.pop(0)
        test, status = generate_test_for_fault(netlist, fault)
        if status == "untestable":
            result.untestable.append(fault)
        elif status == "aborted":
            result.aborted.append(fault)
        else:
            result.vectors.append(test)
            result.detected.append(fault)
            # Drop every other remaining fault this test also exposes.
            flags = detected_by_vectors(netlist, [test], remaining)
            dropped = [f for f, hit in zip(remaining, flags) if hit]
            if dropped:
                result.detected.extend(dropped)
                remaining = [f for f, hit in zip(remaining, flags)
                             if not hit]
    return result


def compact_vectors(netlist: Netlist, vectors: Sequence[Mapping[str, int]],
                    faults: Optional[Sequence[Fault]] = None
                    ) -> List[Dict[str, int]]:
    """Greedy reverse-order compaction: drop vectors that do not reduce
    coverage (classic static compaction)."""
    kept = [dict(v) for v in vectors]
    baseline = grade_vectors(netlist, kept, faults).coverage
    index = len(kept) - 1
    while index >= 0:
        trial = kept[:index] + kept[index + 1:]
        if grade_vectors(netlist, trial, faults).coverage >= baseline:
            kept = trial
        index -= 1
    return kept
