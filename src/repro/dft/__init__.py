"""Testing substrate: scan, ATPG, fault grading, BIST, scan attacks, DFX."""

from .scan import (
    SCAN_ENABLE,
    SCAN_IN,
    SCAN_OUT,
    ScanDesign,
    insert_scan,
    scan_capture,
    scan_load,
    scan_unload,
)
from .faultsim import CoverageReport, grade_vectors
from .atpg import (
    AtpgResult,
    IncrementalAtpg,
    compact_vectors,
    generate_test_for_fault,
    run_atpg,
    shared_atpg_engine,
)
from .bist import BistResult, Lfsr, Misr, bist_detects_fault, run_bist
from .scan_attack import (
    ScanAttackResult,
    ScanChipModel,
    netlist_scan_attack,
    scan_attack,
    test_access_still_works,
)
from .dfx import ChipState, DfxController, DfxEventLog

__all__ = [
    "SCAN_ENABLE", "SCAN_IN", "SCAN_OUT", "ScanDesign", "insert_scan",
    "scan_capture", "scan_load", "scan_unload",
    "CoverageReport", "grade_vectors",
    "AtpgResult", "IncrementalAtpg", "compact_vectors",
    "generate_test_for_fault", "run_atpg", "shared_atpg_engine",
    "BistResult", "Lfsr", "Misr", "bist_detects_fault", "run_bist",
    "ScanAttackResult", "ScanChipModel", "netlist_scan_attack",
    "scan_attack",
    "test_access_still_works",
    "ChipState", "DfxController", "DfxEventLog",
]
