"""Scan-based attack on a crypto chip, and the secure-scan defense [39].

The threat (paper Sec. III-F): test access reveals internal state.  A
chip computing ``register <= SBOX[plaintext ^ key]`` lets anyone with
scan access run one functional cycle, flip into test mode, shift the
round register out, and invert the S-box — the key falls out directly.

The secure-scan defense (Yang, Wu & Karri, DAC'05): the chip tracks a
*mode* bit; any transition from mission mode into test mode wipes the
secret-bearing registers (and/or switches to a mirror key), so scanned
data never contains secrets.  Test quality is preserved — test mode
still exercises the full datapath with test keys.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..crypto import INV_SBOX, SBOX


@dataclass
class ScanChipModel:
    """A sequential crypto core with scan access.

    Functional operation loads ``round_register`` with
    ``SBOX[pt ^ key]`` per byte.  ``secure`` enables the secure-scan
    mode controller that clears the register on mission->test
    transitions.
    """

    key: List[int]
    secure: bool = False
    round_register: List[int] = field(default_factory=lambda: [0] * 16)
    in_test_mode: bool = False
    _dirty: bool = False      # register holds mission-mode secrets

    def reset(self) -> None:
        """Power-on reset: clear state, enter mission mode."""
        self.round_register = [0] * 16
        self.in_test_mode = False
        self._dirty = False

    def run_round(self, plaintext: Sequence[int]) -> None:
        """One mission-mode cycle: capture the first AES round's
        SubBytes output into the round register."""
        if self.in_test_mode:
            raise RuntimeError("mission operation unavailable in test mode")
        self.round_register = [
            SBOX[p ^ k] for p, k in zip(plaintext, self.key)
        ]
        self._dirty = True

    def enter_test_mode(self) -> None:
        """Switch to test mode (secure scan wipes secrets here)."""
        if self.secure and self._dirty:
            # Secure scan: wipe secret-bearing state on mode switch.
            self.round_register = [0] * 16
            self._dirty = False
        self.in_test_mode = True

    def scan_out(self) -> List[int]:
        """Shift the round register out via the scan chain."""
        if not self.in_test_mode:
            raise RuntimeError("scan access requires test mode")
        return list(self.round_register)

    def exit_test_mode(self) -> None:
        """Return to mission mode."""
        self.in_test_mode = False


@dataclass
class ScanAttackResult:
    recovered_key: Optional[List[int]]
    scanned_words: int

    @property
    def success(self) -> bool:
        return self.recovered_key is not None


def scan_attack(chip: ScanChipModel, seed: int = 0) -> ScanAttackResult:
    """Mount the mode-switching scan attack.

    Runs one known plaintext, switches to test mode, scans the round
    register, inverts the S-box.  Verifies the candidate key on a
    second plaintext; returns failure if the scan data was wiped.
    """
    rng = random.Random(seed)
    plaintext = [rng.randrange(256) for _ in range(16)]
    chip.reset()
    chip.run_round(plaintext)
    chip.enter_test_mode()
    scanned = chip.scan_out()
    chip.exit_test_mode()
    candidate = [INV_SBOX[s] ^ p for s, p in zip(scanned, plaintext)]
    # Verify on a fresh plaintext.
    check = [rng.randrange(256) for _ in range(16)]
    chip.run_round(check)
    chip.enter_test_mode()
    observed = chip.scan_out()
    chip.exit_test_mode()
    expected = [SBOX[p ^ k] for p, k in zip(check, candidate)]
    if observed == expected and any(observed):
        return ScanAttackResult(candidate, 2)
    return ScanAttackResult(None, 2)


def netlist_scan_attack(key: Sequence[int],
                        seed: int = 0,
                        datapath=None) -> ScanAttackResult:
    """The scan attack against the *real gate-level* AES datapath.

    Builds the 7,400-cell round-serial AES netlist
    (:func:`repro.crypto.aes_netlist.aes_datapath_netlist`), inserts a
    scan chain through its 128 state flops, runs one mission-mode load
    cycle (state register <- plaintext XOR round-key-0), then shifts
    the register out through ``scan_out`` and XORs with the known
    plaintext — recovering the master key directly, since AES-128's
    round key 0 *is* the master key.

    Pass a prebuilt ``datapath`` netlist to skip the (re)build; it is
    copied during scan insertion, never mutated.
    """
    import random as _random

    from ..crypto.aes_netlist import aes_datapath_netlist, encode_state
    from ..crypto import expand_key
    from ..netlist import get_compiled
    from .scan import insert_scan, scan_unload

    rng = _random.Random(seed)
    plaintext = [rng.randrange(256) for _ in range(16)]
    if datapath is None:
        datapath = aes_datapath_netlist()
    design = insert_scan(datapath)
    round_keys = expand_key(list(key))
    # Mission mode, one load cycle.  The round key is supplied by the
    # on-chip key path (modeled as inputs the attacker cannot observe).
    stimulus = {"load": 1, "final": 0, "scan_en": 0, "scan_in": 0}
    stimulus.update(encode_state(plaintext, "pt"))
    stimulus.update(encode_state(round_keys[0], "k"))
    compiled = get_compiled(design.netlist)
    stim = [stimulus[name] for name in compiled.input_names]
    _, regs = compiled.step_words(stim, [0] * len(compiled.flop_names))
    state = dict(zip(compiled.flop_names, regs))
    # Test mode: shift the whole state register out.
    quiesce = {"load": 0, "final": 0}
    quiesce.update(encode_state([0] * 16, "pt"))
    quiesce.update(encode_state([0] * 16, "k"))
    bits, _ = scan_unload(design, state, functional_inputs=quiesce)
    # chain[i] follows flop insertion order: q0_0 .. q15_7.
    scanned = [
        sum(bits[8 * i + b] << b for b in range(8)) for i in range(16)
    ]
    candidate = [s ^ p for s, p in zip(scanned, plaintext)]
    if candidate == list(key):
        return ScanAttackResult(candidate, design.length)
    return ScanAttackResult(None, design.length)


def test_access_still_works(chip: ScanChipModel, seed: int = 0) -> bool:
    """Legitimate DFT check: in test mode, shift patterns through the
    register and read them back (no mission secrets involved)."""
    rng = random.Random(seed)
    chip.reset()
    chip.enter_test_mode()
    pattern = [rng.randrange(256) for _ in range(16)]
    chip.round_register = list(pattern)   # scan-load
    return chip.scan_out() == pattern
