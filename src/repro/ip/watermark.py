"""Constraint-based IP watermarking.

An anti-counterfeiting scheme from the paper's Sec. II-A.3: the
designer embeds an author signature as functionally-invisible structural
choices.  Here each signature bit selects one of two equivalent
implementations of an inserted buffer pair — bit 0: ``BUF(BUF(x))``,
bit 1: ``NOT(NOT(x))`` — on deterministic, key-derived nets.  Detection
walks the netlist and reads the variants back; a resynthesis robustness
check shows the classical weakness (optimization erases watermarks).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import List, Optional

from ..netlist import GateType, Netlist


@dataclass
class Watermark:
    """Record of an embedded signature."""

    signature: str
    bits: List[int]
    sites: List[str]           # nets carrying the marked pairs
    marker_prefix: str = "wm"


def _signature_bits(signature: str, n_bits: int) -> List[int]:
    digest = hashlib.sha256(signature.encode()).digest()
    bits = []
    for i in range(n_bits):
        bits.append((digest[i // 8] >> (i % 8)) & 1)
    return bits


def embed_watermark(netlist: Netlist, signature: str,
                    n_bits: int = 16, seed: int = 0) -> Watermark:
    """Embed ``n_bits`` of the signature hash into the netlist in place."""
    rng = random.Random(seed)
    candidates = [
        g.name for g in netlist.gates.values()
        if g.gate_type.is_combinational and not g.gate_type.is_source
        and g.name not in netlist.outputs
    ]
    if n_bits > len(candidates):
        raise ValueError("not enough sites for the watermark")
    sites = rng.sample(candidates, n_bits)
    bits = _signature_bits(signature, n_bits)
    for index, (site, bit) in enumerate(zip(sites, bits)):
        first_type = GateType.BUF if bit == 0 else GateType.NOT
        second_type = first_type
        first = netlist.add_gate(f"wm{index}_a", first_type, [site])
        second = netlist.add_gate(f"wm{index}_b", second_type, [first])
        netlist.rewire_consumers(site, second, keep_outputs=False)
        g = netlist.gates[first]
        g.fanins = [site]
        netlist.invalidate()
    return Watermark(signature, bits, sites)


def extract_watermark(netlist: Netlist, n_bits: int = 16
                      ) -> Optional[List[int]]:
    """Read the signature bits back from the marker pairs.

    Returns None when any marker pair is missing (e.g. optimized away).
    """
    bits: List[int] = []
    for index in range(n_bits):
        a = netlist.gates.get(f"wm{index}_a")
        b = netlist.gates.get(f"wm{index}_b")
        if a is None or b is None or a.gate_type is not b.gate_type:
            return None
        if a.gate_type is GateType.BUF:
            bits.append(0)
        elif a.gate_type is GateType.NOT:
            bits.append(1)
        else:
            return None
    return bits


def verify_watermark(netlist: Netlist, signature: str,
                     n_bits: int = 16) -> bool:
    """Does the netlist carry this signature?"""
    extracted = extract_watermark(netlist, n_bits)
    if extracted is None:
        return False
    return extracted == _signature_bits(signature, n_bits)
