"""Physically unclonable functions: arbiter and ring-oscillator models.

PUFs appear throughout Table II: HLS allocates them for metering [19],
physical synthesis optimizes their entropy via layout (asymmetry
enhancement, [30]), and timing verification characterizes entropy /
reliability / uniqueness (Sec. III-E).  Silicon randomness is modeled
as per-element Gaussian process variation; measurement noise as
per-evaluation jitter — the standard Monte-Carlo abstraction.

The module also includes the classical *modeling attack* on arbiter
PUFs (the additive delay model is linearly separable), which is the
red-team evaluation a security-aware EDA flow should run before
trusting a PUF-based scheme.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np


@dataclass
class PufMetrics:
    """The three standard PUF quality numbers (ideal: 0.5, ~1.0, 0.5)."""

    uniformity: float     # fraction of 1-responses per chip (ideal 0.5)
    reliability: float    # 1 - intra-chip error rate (ideal 1.0)
    uniqueness: float     # mean inter-chip response HD (ideal 0.5)


class ArbiterPuf:
    """Additive-delay arbiter PUF.

    Each of ``n_stages`` switch stages contributes a delay difference
    depending on its challenge bit; the arbiter outputs the sign of the
    accumulated difference.  The linear model: response =
    sign(w . phi(challenge)) with parity-transformed features phi.
    """

    def __init__(self, n_stages: int = 64, seed: int = 0,
                 variation_sigma: float = 1.0,
                 asymmetry: float = 0.0) -> None:
        rng = np.random.default_rng(seed)
        # Per-stage delay-difference weights; layout asymmetry ([30])
        # deliberately enlarges element mismatch, increasing entropy.
        sigma = variation_sigma * (1.0 + asymmetry)
        self.weights = rng.normal(0.0, sigma, n_stages + 1)
        self.n_stages = n_stages
        self.noise_sigma = 0.05 * variation_sigma

    def _features(self, challenges: np.ndarray) -> np.ndarray:
        """Parity transform: phi_i = prod_{j>=i} (1 - 2 c_j)."""
        signs = 1 - 2 * challenges  # 0/1 -> +1/-1
        # cumulative product from the right
        phi = np.cumprod(signs[:, ::-1], axis=1)[:, ::-1]
        ones = np.ones((challenges.shape[0], 1))
        return np.hstack([phi, ones])

    def respond(self, challenges: np.ndarray,
                noisy: bool = False, seed: int = 0) -> np.ndarray:
        """Responses (0/1) for a (n, n_stages) challenge matrix."""
        challenges = np.asarray(challenges)
        if challenges.ndim == 1:
            challenges = challenges[None, :]
        phi = self._features(challenges)
        raw = phi @ self.weights
        if noisy:
            rng = np.random.default_rng(seed)
            raw = raw + rng.normal(0.0, self.noise_sigma, raw.shape)
        return (raw > 0).astype(np.int64)


class RingOscillatorPuf:
    """RO-pair PUF: response bit = which of two ROs oscillates faster."""

    def __init__(self, n_rings: int = 64, seed: int = 0,
                 variation_sigma: float = 1.0) -> None:
        rng = np.random.default_rng(seed)
        self.frequencies = 100.0 + rng.normal(0.0, variation_sigma, n_rings)
        self.noise_sigma = 0.05 * variation_sigma
        self.n_rings = n_rings

    def respond_pairs(self, pairs: Sequence[Tuple[int, int]],
                      noisy: bool = False, seed: int = 0) -> np.ndarray:
        """Response bit per RO pair (1 = first ring faster)."""
        rng = np.random.default_rng(seed)
        out = []
        for a, b in pairs:
            fa, fb = self.frequencies[a], self.frequencies[b]
            if noisy:
                fa += rng.normal(0.0, self.noise_sigma)
                fb += rng.normal(0.0, self.noise_sigma)
            out.append(1 if fa > fb else 0)
        return np.array(out, dtype=np.int64)


def evaluate_arbiter_population(n_chips: int = 20, n_stages: int = 64,
                                n_challenges: int = 500,
                                n_repeats: int = 11,
                                asymmetry: float = 0.0,
                                seed: int = 0) -> PufMetrics:
    """Monte-Carlo fab run: uniformity / reliability / uniqueness."""
    rng = np.random.default_rng(seed)
    challenges = rng.integers(0, 2, (n_challenges, n_stages))
    chips = [
        ArbiterPuf(n_stages, seed=seed + 1000 + i, asymmetry=asymmetry)
        for i in range(n_chips)
    ]
    responses = np.stack([c.respond(challenges) for c in chips])
    uniformity = float(responses.mean())
    # Reliability: repeated noisy evaluations vs the golden response.
    flips = 0
    for i, chip in enumerate(chips):
        golden = responses[i]
        for rep in range(n_repeats):
            noisy = chip.respond(challenges, noisy=True, seed=rep)
            flips += int(np.sum(noisy != golden))
    reliability = 1.0 - flips / (n_chips * n_repeats * n_challenges)
    # Uniqueness: mean pairwise inter-chip hamming distance.
    distances = []
    for i in range(n_chips):
        for j in range(i + 1, n_chips):
            distances.append(float(np.mean(responses[i] != responses[j])))
    uniqueness = float(np.mean(distances)) if distances else 0.0
    return PufMetrics(uniformity, reliability, uniqueness)


def model_attack_arbiter(puf: ArbiterPuf, n_train: int = 2000,
                         n_test: int = 500, seed: int = 0,
                         epochs: int = 200, lr: float = 0.05) -> float:
    """Logistic-regression modeling attack; returns test accuracy.

    The additive arbiter PUF is linearly separable in the parity
    features, so a software clone reaches ~99% accuracy from a few
    thousand CRPs — the reason bare arbiter PUFs fail authentication
    threat models and EDA must report it.
    """
    rng = np.random.default_rng(seed)
    train_c = rng.integers(0, 2, (n_train, puf.n_stages))
    test_c = rng.integers(0, 2, (n_test, puf.n_stages))
    train_r = puf.respond(train_c)
    test_r = puf.respond(test_c)
    phi_train = puf._features(train_c)
    phi_test = puf._features(test_c)
    w = np.zeros(phi_train.shape[1])
    y = train_r.astype(float)
    for _ in range(epochs):
        p = 1.0 / (1.0 + np.exp(-(phi_train @ w)))
        gradient = phi_train.T @ (p - y) / len(y)
        w -= lr * gradient * 10.0
    predictions = (phi_test @ w > 0).astype(np.int64)
    return float(np.mean(predictions == test_r))


def evaluate_ro_population(n_chips: int = 20, n_rings: int = 32,
                           n_repeats: int = 11,
                           seed: int = 0) -> PufMetrics:
    """Population metrics for RO PUFs over disjoint ring pairs."""
    pairs = [(2 * i, 2 * i + 1) for i in range(n_rings // 2)]
    chips = [RingOscillatorPuf(n_rings, seed=seed + i)
             for i in range(n_chips)]
    responses = np.stack([c.respond_pairs(pairs) for c in chips])
    uniformity = float(responses.mean())
    flips = 0
    for i, chip in enumerate(chips):
        golden = responses[i]
        for rep in range(n_repeats):
            noisy = chip.respond_pairs(pairs, noisy=True, seed=rep)
            flips += int(np.sum(noisy != golden))
    reliability = 1.0 - flips / (n_chips * n_repeats * len(pairs))
    distances = []
    for i in range(n_chips):
        for j in range(i + 1, n_chips):
            distances.append(float(np.mean(responses[i] != responses[j])))
    return PufMetrics(uniformity, reliability,
                      float(np.mean(distances)) if distances else 0.0)
