"""Logic locking (EPIC-style random XOR/XNOR locking [24]).

Key gates are inserted on internal nets: an XOR key gate is transparent
when its key bit is 0, an XNOR when its key bit is 1.  With the right
key the circuit computes its original function; any wrong key corrupts
it.  The paper (Sec. III-B) notes locking is applied at the gate level,
*below* the abstraction where its security intent lives — which is why
the structural and SAT attacks in this package work so well.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..netlist import GateType, Netlist


@dataclass
class LockedCircuit:
    """A locked netlist plus the secret key.

    ``key`` maps key-input names to the correct bit.  The attacker sees
    ``netlist`` (with key inputs) but not ``key``.
    """

    netlist: Netlist
    key: Dict[str, int]
    scheme: str = "epic-xor"

    @property
    def key_inputs(self) -> List[str]:
        return sorted(self.key, key=_key_index)

    @property
    def key_bits(self) -> int:
        return len(self.key)

    def key_vector(self) -> List[int]:
        """Correct key bits ordered by key-input index."""
        return [self.key[k] for k in self.key_inputs]


def _key_index(name: str) -> int:
    digits = "".join(ch for ch in name if ch.isdigit())
    return int(digits) if digits else 0


def lock_xor(netlist: Netlist, key_bits: int, seed: int = 0,
             key_prefix: str = "keyin") -> LockedCircuit:
    """Insert ``key_bits`` random XOR/XNOR key gates.

    Candidate sites are internal combinational nets (not key gates
    themselves).  For each site a key bit is drawn; bit 0 inserts a
    transparent-at-0 XOR, bit 1 a transparent-at-1 XNOR, so the correct
    key is uniformly random and not readable from the gate types alone
    in aggregate.
    """
    rng = random.Random(seed)
    locked = netlist.copy(netlist.name + "_locked")
    outputs = set(locked.outputs)
    # Only nets inside output cones are worth locking (a key gate on
    # dead logic never affects function); primary-output nets are
    # excluded so port names stay stable — a key gate immediately
    # behind an output locks the same cone anyway.
    live = locked.transitive_fanin(locked.outputs)
    candidates = [
        g.name for g in locked.gates.values()
        if g.gate_type.is_combinational and not g.gate_type.is_source
        and g.name not in outputs
        and g.name in live
    ]
    if key_bits > len(candidates):
        raise ValueError(
            f"cannot insert {key_bits} key gates into "
            f"{len(candidates)} candidate nets"
        )
    sites = rng.sample(candidates, key_bits)
    key: Dict[str, int] = {}
    for index, site in enumerate(sites):
        key_name = f"{key_prefix}{index}"
        locked.add_input(key_name)
        bit = rng.randint(0, 1)
        key[key_name] = bit
        gate_type = GateType.XNOR if bit else GateType.XOR
        key_gate = locked.add(gate_type, [site, key_name], prefix="kg")
        locked.rewire_consumers(site, key_gate, keep_outputs=False)
        # rewire_consumers also redirected the key gate's own fanin.
        g = locked.gate(key_gate)
        g.fanins = [site if fi == key_gate else fi for fi in g.fanins]
        locked.invalidate()
    return LockedCircuit(locked, key)


def apply_key(locked: LockedCircuit,
              key: Optional[Dict[str, int]] = None) -> Netlist:
    """Bind a key (default: the correct one), yielding a keyless netlist."""
    key = key if key is not None else locked.key
    bound = locked.netlist.copy(locked.netlist.name + "_keyed")
    for key_name, bit in key.items():
        const = bound.add(
            GateType.CONST1 if bit else GateType.CONST0, [], prefix="kc")
        bound.rewire_consumers(key_name, const, keep_outputs=False)
    # Key inputs are now dangling; remove them.
    bound.sweep_dangling()
    for key_name in key:
        if key_name in bound.gates:
            del bound.gates[key_name]
    bound.invalidate()
    return bound


def wrong_key_error_rate(locked: LockedCircuit, trials: int = 32,
                         vectors: int = 64, seed: int = 0) -> float:
    """Fraction of (wrong key, input) pairs with corrupted outputs.

    A good locking scheme shows high corruption for random wrong keys —
    the basic functional-impact metric before any attack modeling.
    """
    from ..netlist import random_stimulus, simulate

    rng = random.Random(seed)
    net = locked.netlist
    data_inputs = [i for i in net.inputs if i not in locked.key]
    stimulus = random_stimulus(data_inputs, vectors, rng)
    correct = dict(stimulus)
    for k, bit in locked.key.items():
        correct[k] = ((1 << vectors) - 1) if bit else 0
    golden = simulate(net, correct, vectors)
    corrupted = 0
    total = 0
    for _ in range(trials):
        wrong = {k: rng.randint(0, 1) for k in locked.key}
        if all(wrong[k] == locked.key[k] for k in locked.key):
            continue
        stim = dict(stimulus)
        for k, bit in wrong.items():
            stim[k] = ((1 << vectors) - 1) if bit else 0
        values = simulate(net, stim, vectors)
        for out in net.outputs:
            diff = golden[out] ^ values[out]
            corrupted += diff.bit_count()
            total += vectors
    return corrupted / total if total else 0.0
