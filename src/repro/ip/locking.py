"""Logic locking (EPIC-style random XOR/XNOR locking [24]).

Key gates are inserted on internal nets: an XOR key gate is transparent
when its key bit is 0, an XNOR when its key bit is 1.  With the right
key the circuit computes its original function; any wrong key corrupts
it.  The paper (Sec. III-B) notes locking is applied at the gate level,
*below* the abstraction where its security intent lives — which is why
the structural and SAT attacks in this package work so well.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..netlist import GateType, Netlist


@dataclass
class LockedCircuit:
    """A locked netlist plus the secret key.

    ``key`` maps key-input names to the correct bit.  The attacker sees
    ``netlist`` (with key inputs) but not ``key``.
    """

    netlist: Netlist
    key: Dict[str, int]
    scheme: str = "epic-xor"

    @property
    def key_inputs(self) -> List[str]:
        return sorted(self.key, key=_key_index)

    @property
    def key_bits(self) -> int:
        return len(self.key)

    def key_vector(self) -> List[int]:
        """Correct key bits ordered by key-input index."""
        return [self.key[k] for k in self.key_inputs]


def _key_index(name: str) -> int:
    digits = "".join(ch for ch in name if ch.isdigit())
    return int(digits) if digits else 0


def lock_xor(netlist: Netlist, key_bits: int, seed: int = 0,
             key_prefix: str = "keyin") -> LockedCircuit:
    """Insert ``key_bits`` random XOR/XNOR key gates.

    Candidate sites are internal combinational nets (not key gates
    themselves).  For each site a key bit is drawn; bit 0 inserts a
    transparent-at-0 XOR, bit 1 a transparent-at-1 XNOR, so the correct
    key is uniformly random and not readable from the gate types alone
    in aggregate.
    """
    rng = random.Random(seed)
    locked = netlist.copy(netlist.name + "_locked")
    outputs = set(locked.outputs)
    # Only nets inside output cones are worth locking (a key gate on
    # dead logic never affects function); primary-output nets are
    # excluded so port names stay stable — a key gate immediately
    # behind an output locks the same cone anyway.
    live = locked.transitive_fanin(locked.outputs)
    candidates = [
        g.name for g in locked.gates.values()
        if g.gate_type.is_combinational and not g.gate_type.is_source
        and g.name not in outputs
        and g.name in live
    ]
    if key_bits > len(candidates):
        raise ValueError(
            f"cannot insert {key_bits} key gates into "
            f"{len(candidates)} candidate nets"
        )
    sites = rng.sample(candidates, key_bits)
    key: Dict[str, int] = {}
    for index, site in enumerate(sites):
        key_name = f"{key_prefix}{index}"
        locked.add_input(key_name)
        bit = rng.randint(0, 1)
        key[key_name] = bit
        gate_type = GateType.XNOR if bit else GateType.XOR
        key_gate = locked.add(gate_type, [site, key_name], prefix="kg")
        locked.rewire_consumers(site, key_gate, keep_outputs=False)
        # rewire_consumers also redirected the key gate's own fanin.
        g = locked.gate(key_gate)
        g.fanins = [site if fi == key_gate else fi for fi in g.fanins]
        locked.invalidate()
    return LockedCircuit(locked, key)


def apply_key(locked: LockedCircuit,
              key: Optional[Dict[str, int]] = None) -> Netlist:
    """Bind a key (default: the correct one), yielding a keyless netlist."""
    key = key if key is not None else locked.key
    bound = locked.netlist.copy(locked.netlist.name + "_keyed")
    for key_name, bit in key.items():
        const = bound.add(
            GateType.CONST1 if bit else GateType.CONST0, [], prefix="kc")
        bound.rewire_consumers(key_name, const, keep_outputs=False)
    # Key inputs are now dangling; remove them.
    bound.sweep_dangling()
    for key_name in key:
        if key_name in bound.gates:
            del bound.gates[key_name]
    bound.invalidate()
    return bound


def _key_corruption_counts(locked: LockedCircuit,
                           keys: List[Dict[str, int]],
                           stimulus: Dict[str, int],
                           vectors: int) -> List[int]:
    """Corrupted output bits per candidate key, all keys in one pass.

    The locked netlist is lowered once into a
    :class:`~repro.netlist.VariantFamily`: variant 0 carries the
    correct key (the golden reference) and candidate ``i`` is variant
    ``i + 1``, with key values fed through ``per_variant_inputs`` —
    the family's cheap lane for stimulus-only sweeps, which skips
    per-variant delta bookkeeping entirely.  Returns integer bit
    counts so callers' final divisions are bit-identical to the
    serial one-simulation-per-key formulation.
    """
    from ..netlist import VariantFamily, VariantSpec, get_compiled

    net = locked.netlist
    full = (1 << vectors) - 1
    all_keys = [locked.key] + list(keys)
    identity = VariantSpec()
    family = VariantFamily(net, [identity] * len(all_keys))
    key_columns = {
        name: [full if key[name] else 0 for key in all_keys]
        for name in locked.key
    }
    words = family.eval_words(stimulus, vectors,
                              per_variant_inputs=key_columns)
    compiled = get_compiled(net)
    output_indices = [compiled.index[o] for o in net.outputs]
    n_variants = len(all_keys)
    if vectors % 8 == 0 and output_indices:
        # XOR every slice against a replicated golden (variant 0),
        # then popcount all outputs at once as one byte matrix.
        # Popcounts are exact, so this matches the shift-and-
        # bit_count loop below bit for bit.
        rep = 0
        for v in range(n_variants):
            rep |= 1 << (v * vectors)
        n_bytes = n_variants * vectors // 8
        buf = b"".join(
            (words[o] ^ ((words[o] & full) * rep)).to_bytes(n_bytes,
                                                            "little")
            for o in output_indices)
        per_variant = np.bitwise_count(
            np.frombuffer(buf, dtype=np.uint8)
        ).reshape(len(output_indices), n_variants, vectors // 8
                  ).sum(axis=(0, 2))
        return [int(c) for c in per_variant[1:]]
    counts: List[int] = []
    for v in range(1, n_variants):
        shift = v * vectors
        corrupted = 0
        for o in output_indices:
            word = words[o]
            corrupted += (((word >> shift) ^ word) & full).bit_count()
        counts.append(corrupted)
    return counts


def score_candidate_keys(locked: LockedCircuit,
                         keys: List[Dict[str, int]],
                         vectors: int = 64,
                         seed: int = 0) -> List[float]:
    """Corruption rate of each candidate key under one shared stimulus.

    All candidates are scored against the correct key in a single
    batched family evaluation — one lowering of the locked netlist no
    matter how many keys.  Returns one rate in ``[0, 1]`` per key
    (0.0 = indistinguishable from the correct key on these vectors).
    """
    from ..netlist import random_stimulus

    rng = random.Random(seed)
    net = locked.netlist
    data_inputs = [i for i in net.inputs if i not in locked.key]
    stimulus = random_stimulus(data_inputs, vectors, rng)
    counts = _key_corruption_counts(locked, keys, stimulus, vectors)
    denominator = len(net.outputs) * vectors
    if not denominator:
        return [0.0 for _ in counts]
    return [c / denominator for c in counts]


def wrong_key_error_rate(locked: LockedCircuit, trials: int = 32,
                         vectors: int = 64, seed: int = 0) -> float:
    """Fraction of (wrong key, input) pairs with corrupted outputs.

    A good locking scheme shows high corruption for random wrong keys —
    the basic functional-impact metric before any attack modeling.
    All sampled keys are scored in one batched family evaluation;
    the result is bit-identical to simulating each wrong key on its
    own (the random key draws are unchanged).
    """
    rng = random.Random(seed)
    net = locked.netlist
    data_inputs = [i for i in net.inputs if i not in locked.key]
    from ..netlist import random_stimulus

    stimulus = random_stimulus(data_inputs, vectors, rng)
    wrong_keys: List[Dict[str, int]] = []
    for _ in range(trials):
        wrong = {k: rng.randint(0, 1) for k in locked.key}
        if all(wrong[k] == locked.key[k] for k in locked.key):
            continue
        wrong_keys.append(wrong)
    total = len(wrong_keys) * len(net.outputs) * vectors
    if not total:
        return 0.0
    counts = _key_corruption_counts(locked, wrong_keys, stimulus, vectors)
    return sum(counts) / total
