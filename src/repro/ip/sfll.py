"""Stripped-Functionality Logic Locking, Hamming-distance flavor (SFLL-HD).

The SAT-attack-resilient locking family referenced by the paper ([51]).
The vendor strips functionality: the hardened cone inverts the original
output whenever ``HD(x, secret) == h``; a restore unit re-inverts it
whenever ``HD(x, key) == h``.  With ``key == secret`` the two cancel and
function is restored.  Every wrong key corrupts only the input patterns
at Hamming distance ``h`` from either constant — so each SAT-attack DIP
can eliminate very few keys, pushing the attack toward ``C(n, h)``-like
iteration counts (provable resilience), at the price of a vanishing
functional difference (low corruption — the trade-off SFLL is known for).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist import GateType, Netlist
from .locking import LockedCircuit


def _popcount_equals(net: Netlist, bits: List[str], target: int,
                     prefix: str) -> str:
    """Net asserting popcount(bits) == target, via a shared adder tree.

    Built as a small unary-threshold network: sort-free popcount using
    full-adder reduction into a binary count, then equality compare.
    """
    from ..netlist.generators import full_adder

    # Binary popcount via chained ripple increments (simple and small
    # for the <= 16-bit selections used here).
    width = max(1, len(bits).bit_length())
    zero = net.add(GateType.CONST0, [], prefix=f"{prefix}z")
    count = [zero] * width
    for b_index, bit in enumerate(bits):
        carry = bit
        new_count = []
        for w in range(width):
            s = net.add(GateType.XOR, [count[w], carry],
                        prefix=f"{prefix}s{b_index}_{w}_")
            carry = net.add(GateType.AND, [count[w], carry],
                            prefix=f"{prefix}c{b_index}_{w}_")
            new_count.append(s)
        count = new_count
    # Equality with the constant `target`.
    terms = []
    for w in range(width):
        wanted = (target >> w) & 1
        if wanted:
            terms.append(count[w])
        else:
            terms.append(net.add(GateType.NOT, [count[w]],
                                 prefix=f"{prefix}n{w}_"))
    if len(terms) == 1:
        return terms[0]
    return net.add(GateType.AND, terms, prefix=f"{prefix}eq")


@dataclass
class SfllCircuit:
    """SFLL-HD protected circuit with its secret pattern."""

    locked: LockedCircuit
    secret: Tuple[int, ...]     # the protected input pattern bits
    h: int
    protected_output: str


def sfll_hd_lock(netlist: Netlist, output: str,
                 h: int = 0,
                 n_protect_bits: Optional[int] = None,
                 seed: int = 0) -> SfllCircuit:
    """Apply SFLL-HD to one output of a combinational netlist.

    Selects ``n_protect_bits`` primary inputs (default: all), draws a
    secret pattern, and builds the flip + restore logic.  The key inputs
    ``keyin*`` hold the pattern; the correct key equals the secret.
    """
    rng = random.Random(seed)
    if output not in netlist.outputs:
        raise ValueError(f"{output!r} is not a primary output")
    base_inputs = netlist.inputs
    n_bits = n_protect_bits or len(base_inputs)
    if n_bits > len(base_inputs):
        raise ValueError("cannot protect more bits than inputs")
    protect = base_inputs[:n_bits]
    secret = tuple(rng.randint(0, 1) for _ in range(n_bits))

    host = netlist.copy(netlist.name + "_sfll")
    key_names = []
    key: Dict[str, int] = {}
    for index, bit in enumerate(secret):
        name = f"keyin{index}"
        host.add_input(name)
        key_names.append(name)
        key[name] = bit

    # Flip condition: HD(x, secret) == h  ==  popcount(x ^ secret) == h.
    flip_bits = []
    for inp, bit in zip(protect, secret):
        if bit:
            flip_bits.append(host.add(GateType.NOT, [inp], prefix="fx"))
        else:
            flip_bits.append(inp)
    flip = _popcount_equals(host, flip_bits, h, "flip_")

    # Restore condition: HD(x, key) == h.
    restore_bits = [
        host.add(GateType.XNOR, [inp, key_names[i]], prefix="rx")
        for i, inp in enumerate(protect)
    ]
    # XNOR gives equality; we need difference bits -> invert.
    restore_bits = [
        host.add(GateType.NOT, [b], prefix="rn") for b in restore_bits
    ]
    restore = _popcount_equals(host, restore_bits, h, "rest_")

    # y_protected = y XOR flip XOR restore, keeping the port name.
    original_driver = host.gates[output]
    inner = host.new_name("sfll_core")
    host.gates[inner] = type(original_driver)(
        inner, original_driver.gate_type, list(original_driver.fanins))
    corrected = host.add(GateType.XOR, [inner, flip], prefix="sf_f")
    corrected = host.add(GateType.XOR, [corrected, restore], prefix="sf_r")
    original_driver.gate_type = GateType.BUF
    original_driver.fanins = [corrected]
    host.invalidate()
    locked = LockedCircuit(host, key, scheme=f"sfll-hd{h}")
    return SfllCircuit(locked, secret, h, output)
