"""Active hardware metering [19].

HLS-stage anti-piracy from Table II: every fabricated chip boots into a
locked FSM state determined by its unique PUF identifier; only the IP
owner, knowing the FSM's transition secrets, can compute the chip-
specific unlock sequence.  The foundry can overproduce silicon but not
activate it — a per-chip pay-per-device scheme.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from .puf import ArbiterPuf


@dataclass
class MeteredChip:
    """One fabricated instance: a PUF identity plus a locked FSM.

    The FSM sits in a locked state chain; each correct unlock word
    advances one step, any wrong word resets.  Words are derived from
    the chip ID and the owner's secret, so sequences do not transfer
    between chips.
    """

    chip_index: int
    puf: ArbiterPuf
    sequence_length: int = 4
    _owner_secret: bytes = b""
    _state: int = 0
    unlocked: bool = False
    failed_attempts: int = 0

    def chip_id(self, n_challenge_bits: int = 64) -> int:
        """Self-identification: PUF responses to a public challenge set."""
        rng = np.random.default_rng(12345)  # public, fixed challenges
        challenges = rng.integers(0, 2, (64, self.puf.n_stages))
        bits = self.puf.respond(challenges)
        value = 0
        for i, b in enumerate(bits):
            value |= int(b) << i
        return value

    def try_unlock_word(self, word: int) -> bool:
        """Feed one unlock word; returns True once fully unlocked."""
        expected = _unlock_word(self.chip_id(), self._owner_secret,
                                self._state)
        if word == expected:
            self._state += 1
            if self._state >= self.sequence_length:
                self.unlocked = True
        else:
            self._state = 0
            self.failed_attempts += 1
        return self.unlocked

    def compute(self, x: int) -> Optional[int]:
        """The metered payload function; None while locked."""
        if not self.unlocked:
            return None
        return (x * 2654435761) & 0xFFFFFFFF


def _unlock_word(chip_id: int, owner_secret: bytes, step: int) -> int:
    material = owner_secret + chip_id.to_bytes(8, "little") + bytes([step])
    return int.from_bytes(hashlib.sha256(material).digest()[:4], "little")


class MeteringAuthority:
    """The IP owner: fabricates chips and issues unlock sequences."""

    def __init__(self, owner_secret: bytes = b"ip-owner-secret",
                 sequence_length: int = 4) -> None:
        self.owner_secret = owner_secret
        self.sequence_length = sequence_length
        self.activated: List[int] = []

    def fabricate(self, n_chips: int, seed: int = 0) -> List[MeteredChip]:
        """Model the (untrusted) foundry producing chips; each gets a
        unique PUF by process variation, not by design."""
        return [
            MeteredChip(i, ArbiterPuf(64, seed=seed + i),
                        sequence_length=self.sequence_length,
                        _owner_secret=self.owner_secret)
            for i in range(n_chips)
        ]

    def unlock_sequence(self, chip_id: int) -> List[int]:
        """Compute the chip-specific activation sequence."""
        return [
            _unlock_word(chip_id, self.owner_secret, step)
            for step in range(self.sequence_length)
        ]

    def activate(self, chip: MeteredChip) -> bool:
        """Run the activation protocol against a physical chip."""
        for word in self.unlock_sequence(chip.chip_id()):
            chip.try_unlock_word(word)
        if chip.unlocked:
            self.activated.append(chip.chip_index)
        return chip.unlocked


def overbuild_attack(authority: MeteringAuthority, legit_chip: MeteredChip,
                     pirate_chip: MeteredChip) -> bool:
    """Replay a legitimate chip's unlock sequence on an overbuilt chip.

    Returns True if the pirate chip activates (it should not: its PUF
    identity differs, so the replayed words are wrong for it).
    """
    for word in authority.unlock_sequence(legit_chip.chip_id()):
        pirate_chip.try_unlock_word(word)
    return pirate_chip.unlocked
