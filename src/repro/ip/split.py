"""Split manufacturing and the proximity attack [27, 52-54].

The untrusted foundry manufactures FEOL plus lower metal layers and
sees a "sea of gates with dangling wires"; the trusted facility adds
the upper (BEOL) wiring.  Security rests on the foundry being unable to
guess the hidden connections — but a classical flow leaves two kinds of
layout hints (paper Sec. III-C):

* **via hints** — a hidden wire routes on lower metals toward its
  partner before jumping above the split, so its dangling via sits
  close to the partner's via;
* **placement proximity** — PPA-driven placement puts connected cells
  next to each other, so even without stubs the nearest dangling driver
  is usually the right one.

The proximity attack exploits both (``mode="via"`` / ``mode="cell"``).
Defenses implemented: wire lifting [53] (lifted nets jump to the BEOL
directly at the pin — no via hint) and placement perturbation [54]
(decorrelates cell proximity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..netlist import Netlist
from ..physical import Placement, Wire, assign_layers, split_wires
from ..physical.routing import RoutedLayout

Point = Tuple[float, float]

#: How far along its path a hidden wire routes on lower metals before
#: rising above the split layer (0.0 = rises at the pin, no hint).
DEFAULT_ROUTE_FRACTION = 0.48


@dataclass
class FeolView:
    """What the untrusted foundry sees.

    ``visible_wires`` survive below the split layer.  For every hidden
    wire the foundry sees a dangling *sink via* and a dangling *driver
    via* whose positions encode the routing-stub hint (or the plain
    cell position for lifted nets).  ``hidden_truth`` is kept for
    scoring only — the attacker never reads it.
    """

    netlist: Netlist
    placement: Placement
    visible_wires: List[Wire]
    open_sinks: List[Tuple[str, int]]        # (gate, fanin index)
    open_drivers: List[str]
    sink_vias: Dict[Tuple[str, int], Point] = field(default_factory=dict)
    driver_vias: List[Tuple[str, Point]] = field(default_factory=list)
    hidden_truth: Dict[Tuple[str, int], str] = field(default_factory=dict)


def _via_points(driver_pos: Point, sink_pos: Point, fraction: float,
                rng: random.Random, jitter: float) -> Tuple[Point, Point]:
    dx = sink_pos[0] - driver_pos[0]
    dy = sink_pos[1] - driver_pos[1]
    d_via = (driver_pos[0] + fraction * dx + rng.uniform(-jitter, jitter),
             driver_pos[1] + fraction * dy + rng.uniform(-jitter, jitter))
    s_via = (sink_pos[0] - fraction * dx + rng.uniform(-jitter, jitter),
             sink_pos[1] - fraction * dy + rng.uniform(-jitter, jitter))
    return d_via, s_via


def build_feol_view(netlist: Netlist, placement: Placement,
                    split_layer: int,
                    lifted: Optional[Set[str]] = None,
                    route_fraction: float = DEFAULT_ROUTE_FRACTION,
                    via_jitter: float = 0.4,
                    seed: int = 0,
                    routing: Optional["RoutedLayout"] = None) -> FeolView:
    """Partition the routed design at ``split_layer``.

    ``lifted`` nets are routed straight up at their pins (wire-lifting
    defense): they are always hidden and expose no stub direction.

    Without ``routing`` the dangling-via positions come from the
    stub-fraction heuristic (plus jitter).  With a
    :class:`~repro.physical.routing.RoutedLayout` they are the *exact*
    points where each routed branch crosses the split layer — no
    jitter, no randomness — which is what the foundry actually sees.
    """
    lifted = lifted or set()
    rng = random.Random(seed)
    scale = max(1, routing.scale) if routing is not None else 1
    wires = assign_layers(netlist, placement, lifted=lifted,
                          routing=routing)
    visible, hidden = split_wires(wires, split_layer)
    view = FeolView(
        netlist=netlist,
        placement=placement,
        visible_wires=visible,
        open_sinks=[],
        open_drivers=[],
    )
    seen_drivers: Set[str] = set()
    for w in hidden:
        sink_gate = netlist.gates[w.sink]
        driver_pos = placement.positions[w.driver]
        sink_pos = placement.positions[w.sink]
        crossing = None
        if routing is not None and w.driver not in lifted:
            routed = routing.nets.get(w.driver)
            if routed is not None:
                pin = (sink_pos[0] * scale, sink_pos[1] * scale)
                crossing = routed.branch_split_vias(pin, split_layer)
        if crossing is not None:
            (dvx, dvy), (svx, svy) = crossing
            d_via = (dvx / scale, dvy / scale)
            s_via = (svx / scale, svy / scale)
        else:
            fraction = 0.0 if w.driver in lifted else route_fraction
            d_via, s_via = _via_points(driver_pos, sink_pos, fraction,
                                       rng, via_jitter)
        for position, fi in enumerate(sink_gate.fanins):
            if fi != w.driver:
                continue
            pin = (w.sink, position)
            if pin in view.hidden_truth:
                continue
            view.open_sinks.append(pin)
            view.hidden_truth[pin] = w.driver
            view.sink_vias[pin] = s_via
        if w.driver not in seen_drivers:
            seen_drivers.add(w.driver)
            view.open_drivers.append(w.driver)
        view.driver_vias.append((w.driver, d_via))
    return view


@dataclass
class ProximityAttackResult:
    """Scoring of a proximity-attack reconstruction."""

    guesses: Dict[Tuple[str, int], str]
    correct: int
    total: int
    mode: str = "via"

    @property
    def ccr(self) -> float:
        """Correct connection rate — the standard split-mfg metric."""
        return self.correct / self.total if self.total else 1.0


def _distance(a: Point, b: Point) -> float:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def proximity_attack(view: FeolView, mode: str = "via",
                     seed: int = 0) -> ProximityAttackResult:
    """Match every dangling sink to a dangling driver.

    ``mode="via"`` uses the dangling-via positions (strong when wires
    stub toward their partner); ``mode="cell"`` uses raw cell placement
    (the M1-split attacker of [54]).  Guesses avoid self-loops and
    combinational cycles, which the attacker can rule out a priori.
    """
    if mode not in ("via", "cell"):
        raise ValueError(f"unknown attack mode {mode!r}")
    rng = random.Random(seed)
    netlist = view.netlist
    placement = view.placement
    guesses: Dict[Tuple[str, int], str] = {}
    order = list(view.open_sinks)
    rng.shuffle(order)
    for pin in order:
        sink_gate, _position = pin
        sink_cone = netlist.transitive_fanout([sink_gate])
        best: Optional[str] = None
        best_distance = float("inf")
        if mode == "via":
            sink_point = view.sink_vias[pin]
            for driver, d_via in view.driver_vias:
                if driver == sink_gate or driver in sink_cone:
                    continue
                d = _distance(sink_point, d_via)
                if d < best_distance:
                    best_distance = d
                    best = driver
        else:
            sink_point = placement.positions[sink_gate]
            for driver in view.open_drivers:
                if driver == sink_gate or driver in sink_cone:
                    continue
                if driver not in placement.positions:
                    continue
                d = _distance(sink_point, placement.positions[driver])
                if d < best_distance:
                    best_distance = d
                    best = driver
        if best is not None:
            guesses[pin] = best
    correct = sum(
        1 for pin, guess in guesses.items()
        if view.hidden_truth.get(pin) == guess
    )
    return ProximityAttackResult(guesses, correct, len(view.open_sinks),
                                 mode=mode)


def reconstruction_error_rate(view: FeolView,
                              result: ProximityAttackResult,
                              n_vectors: int = 128,
                              seed: int = 0) -> float:
    """Functional damage of the attacker's netlist: fraction of output
    bits differing from the true design over random vectors."""
    from ..netlist import random_stimulus, simulate

    reconstructed = view.netlist.copy(view.netlist.name + "_rec")
    for (sink_gate, position), driver in result.guesses.items():
        g = reconstructed.gates[sink_gate]
        g.fanins[position] = driver
    reconstructed.invalidate()
    rng = random.Random(seed)
    stim = random_stimulus(view.netlist.inputs, n_vectors, rng)
    golden = simulate(view.netlist, stim, n_vectors)
    try:
        guess_values = simulate(reconstructed, stim, n_vectors)
    except Exception:
        return 1.0  # cyclic/invalid reconstruction: total failure
    wrong = 0
    total = 0
    for out in view.netlist.outputs:
        wrong += (golden[out] ^ guess_values[out]).bit_count()
        total += n_vectors
    return wrong / total if total else 0.0


def lift_critical_nets(netlist: Netlist, nets: Sequence[str]) -> Set[str]:
    """Wire-lifting defense: mark nets to route above the split layer.

    Returns the lifted set (validated against the netlist).  Typical
    choices: high-fanout nets, nets in the fanin of security-critical
    outputs, or nets selected to maximize attacker entropy [53].
    """
    unknown = [n for n in nets if n not in netlist.gates]
    if unknown:
        raise ValueError(f"unknown nets to lift: {unknown[:4]}")
    return set(nets)


def high_fanout_nets(netlist: Netlist, count: int) -> List[str]:
    """The ``count`` highest-fanout internal nets — a common lifting pick."""
    fanout = netlist.fanout_map()
    internal = [
        (len(consumers), net) for net, consumers in fanout.items()
        if netlist.gates[net].gate_type.is_combinational
        and not netlist.gates[net].gate_type.is_source
    ]
    internal.sort(reverse=True)
    return [net for _, net in internal[:count]]


def perturb_placement(placement: Placement, amount: int = 3,
                      fraction: float = 0.3, seed: int = 0) -> Placement:
    """Placement-perturbation defense [54]: randomly displace a fraction
    of cells by up to ``amount`` sites per axis, breaking the
    proximity correlation the M1-split attack relies on."""
    rng = random.Random(seed)
    perturbed = placement.copy()
    cells = list(perturbed.positions)
    for cell in rng.sample(cells, int(len(cells) * fraction)):
        x, y = perturbed.positions[cell]
        nx = min(perturbed.width - 1,
                 max(0, x + rng.randint(-amount, amount)))
        ny = min(perturbed.height - 1,
                 max(0, y + rng.randint(-amount, amount)))
        perturbed.positions[cell] = (nx, ny)
    return perturbed
