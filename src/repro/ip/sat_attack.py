"""The oracle-guided SAT attack on logic locking [33, 50].

The paper's Sec. III-D observation made executable: the same SAT
machinery used to *verify* locked circuits "mimics attackers" and
breaks them.  Algorithm (Subramanyan et al., HOST'15):

1. Encode two copies of the locked circuit sharing primary inputs but
   with independent keys ``k1``, ``k2``; assert their outputs differ.
2. Each SAT solution is a *distinguishing input pattern* (DIP): an
   input on which some pair of key candidates disagrees.
3. Query the oracle (an activated chip) for the DIP's correct output;
   constrain both key copies to reproduce it.  This eliminates every
   key in the wrong equivalence class.
4. UNSAT means no distinguishing input remains: any key satisfying the
   accumulated constraints is functionally correct.  Extract one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from ..formal import CircuitEncoder, lit
from ..netlist import Netlist, output_values
from .locking import LockedCircuit, apply_key


@dataclass
class SatAttackResult:
    """Outcome of the SAT attack."""

    recovered_key: Optional[Dict[str, int]]
    iterations: int                 # number of DIPs needed
    dips: List[Dict[str, int]] = field(default_factory=list)
    solver_stats: Optional[Dict[str, int]] = None
    gave_up: bool = False

    @property
    def success(self) -> bool:
        return self.recovered_key is not None


def sat_attack(locked_netlist: Netlist,
               key_inputs: List[str],
               oracle: Callable[[Mapping[str, int]], Mapping[str, int]],
               max_iterations: int = 2000,
               ) -> SatAttackResult:
    """Run the oracle-guided attack against a locked netlist.

    ``oracle(data_inputs) -> outputs`` models black-box access to an
    activated chip.  Returns a functionally correct key (which may
    differ from the designer's key bits on don't-care positions).
    """
    data_inputs = [i for i in locked_netlist.inputs if i not in key_inputs]
    enc = CircuitEncoder()
    solver = enc.solver
    # Shared data-input variables.
    shared = {name: enc.fresh_var() for name in data_inputs}
    k1 = {name: enc.fresh_var() for name in key_inputs}
    k2 = {name: enc.fresh_var() for name in key_inputs}
    vars1 = enc.encode(locked_netlist, bind={**shared, **k1})
    vars2 = enc.encode(locked_netlist, bind={**shared, **k2})
    diffs = [enc.xor_of(vars1[o], vars2[o]) for o in locked_netlist.outputs]
    # The output-miter constraint rides on an assumption instead of a
    # unit clause: the DIP loop asks "do the keys still disagree
    # somewhere?" under it, and the final key extraction drops it and
    # reuses the very same solver (and everything it learned) instead of
    # re-encoding all accumulated DIP constraints from scratch.
    miter = lit(enc.or_of(diffs))

    dips: List[Dict[str, int]] = []
    for iteration in range(max_iterations):
        sat = solver.solve(assumptions=[miter])
        if sat is False:
            break
        if sat is None:
            return SatAttackResult(None, iteration, dips,
                                   solver.stats(), gave_up=True)
        dip = {name: solver.model_value(var)
               for name, var in shared.items()}
        dips.append(dip)
        response = oracle(dip)
        # Constrain both key copies to agree with the oracle on the DIP.
        # These clauses are permanent — the persistent clause database
        # *is* the accumulated constraint set, one copy per key.
        bind_const = {name: enc.const_var(value)
                      for name, value in dip.items()}
        for key_vars in (k1, k2):
            check_vars = enc.encode(locked_netlist,
                                    bind={**bind_const, **key_vars})
            for out, value in response.items():
                enc.assert_equal(check_vars[out], value)
    else:
        return SatAttackResult(None, max_iterations, dips,
                               solver.stats(), gave_up=True)

    # UNSAT under the miter assumption: no distinguishing input is left,
    # so any key satisfying the recorded DIP constraints is functionally
    # correct.  Solving without the assumption yields one — from the
    # same incremental solver.
    if solver.solve() is not True:
        return SatAttackResult(None, len(dips), dips, solver.stats(),
                               gave_up=True)
    key = {name: solver.model_value(var) for name, var in k1.items()}
    return SatAttackResult(key, len(dips), dips, solver.stats())


def attack_locked_circuit(locked: LockedCircuit,
                          max_iterations: int = 2000) -> SatAttackResult:
    """Convenience wrapper: attack a :class:`LockedCircuit` using its own
    correctly-keyed netlist as the activation oracle."""
    unlocked = apply_key(locked)

    def oracle(data_inputs: Mapping[str, int]) -> Mapping[str, int]:
        return output_values(unlocked, dict(data_inputs))

    return sat_attack(locked.netlist, locked.key_inputs, oracle,
                      max_iterations=max_iterations)


def verify_recovered_key(locked: LockedCircuit,
                         recovered: Mapping[str, int]) -> bool:
    """Check a recovered key is *functionally* correct via SAT equivalence."""
    from ..formal import check_equivalence

    truth = apply_key(locked)
    candidate = apply_key(locked, dict(recovered))
    return check_equivalence(truth, candidate).equivalent
