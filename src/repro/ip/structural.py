"""Structural attacks on logic locking (SAIL-style, ref [50]).

The paper (Sec. III-B): because synthesis is unaware of the security
notion behind locking, "locking is prone to structural attacks
targeting the synthesized netlist".  The root cause is visible in the
EPIC construction itself: a transparent-at-0 key gate is an XOR, a
transparent-at-1 key gate is an XNOR — so *before any resynthesis*,
the key is literally written in the gate types.  Re-synthesis scrambles
local structure, but learned/heuristic pattern matching recovers much
of it; this module implements the read-off attack and a
NAND-decomposition pattern matcher, quantifying how much secrecy
resynthesis actually buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..netlist import GateType, Netlist
from .locking import LockedCircuit


@dataclass
class StructuralAttackResult:
    """Outcome of a structural key-recovery attempt."""

    guessed_key: Dict[str, int]
    resolved: int          # key bits recovered with confidence
    total: int

    def accuracy(self, true_key: Dict[str, int]) -> float:
        """Fraction of key bits guessed correctly."""
        if not true_key:
            return 1.0
        correct = sum(
            1 for name, bit in true_key.items()
            if self.guessed_key.get(name) == bit
        )
        return correct / len(true_key)


def _key_consumer(netlist: Netlist, key_input: str) -> Optional[str]:
    for g in netlist.gates.values():
        if key_input in g.fanins:
            return g.name
    return None


def structural_key_attack(locked_netlist: Netlist,
                          key_inputs: List[str]
                          ) -> StructuralAttackResult:
    """Read the key from gate types (pre-resynthesis EPIC netlists).

    For each key input, find its consuming gate: XOR implies key bit 0,
    XNOR implies 1.  Any other structure (after resynthesis) falls back
    to a pattern matcher over the NAND decomposition; unresolved bits
    are guessed 0.
    """
    guessed: Dict[str, int] = {}
    resolved = 0
    for key_input in key_inputs:
        consumer = _key_consumer(locked_netlist, key_input)
        if consumer is None:
            guessed[key_input] = 0
            continue
        gate = locked_netlist.gates[consumer]
        if gate.gate_type is GateType.XOR:
            guessed[key_input] = 0
            resolved += 1
        elif gate.gate_type is GateType.XNOR:
            guessed[key_input] = 1
            resolved += 1
        else:
            bit = _match_nand_xor_pattern(locked_netlist, key_input,
                                          consumer)
            if bit is None:
                guessed[key_input] = 0
            else:
                guessed[key_input] = bit
                resolved += 1
    return StructuralAttackResult(guessed, resolved, len(key_inputs))


def _match_nand_xor_pattern(netlist: Netlist, key_input: str,
                            consumer: str) -> Optional[int]:
    """Recognize the 4-NAND XOR (or XOR+INV = XNOR) macro around a key.

    The NAND decomposition of ``XOR(k, s)`` is ``NAND(NAND(k, t),
    NAND(s, t))`` with ``t = NAND(k, s)``; an extra inverter on the
    root makes it XNOR.  Returns the implied key bit, or None if the
    neighbourhood does not match.
    """
    g = netlist.gates[consumer]
    if g.gate_type is not GateType.NAND or len(g.fanins) != 2:
        return None
    fanout = netlist.fanout_map()
    # `consumer` should be the inner NAND t = NAND(k, s); find the root.
    for mid in fanout[consumer]:
        mg = netlist.gates[mid]
        if mg.gate_type is not GateType.NAND or key_input not in mg.fanins:
            continue
        for root in fanout[mid]:
            rg = netlist.gates[root]
            if rg.gate_type is not GateType.NAND or len(rg.fanins) != 2:
                continue
            other = [fi for fi in rg.fanins if fi != mid]
            if not other:
                continue
            og = netlist.gates[other[0]]
            if og.gate_type is GateType.NAND and consumer in og.fanins:
                # Matched the XOR macro; check for a trailing inverter.
                consumers_of_root = fanout[root]
                inverted = any(
                    netlist.gates[c].gate_type is GateType.NOT
                    or (netlist.gates[c].gate_type is GateType.NAND
                        and netlist.gates[c].fanins
                        == [root, root])
                    for c in consumers_of_root
                )
                return 1 if inverted else 0
    return None


def resynthesis_resistance(locked: LockedCircuit) -> Tuple[float, float]:
    """Accuracy of the structural attack before and after resynthesis.

    Returns ``(accuracy_plain, accuracy_resynthesized)``.  The first is
    ~1.0 for EPIC (the paper's point); the second quantifies how much a
    NAND-level resynthesis obscures — typically partial, matching the
    SAIL observation that resynthesis alone is insufficient.
    """
    from ..synth import to_nand_inv

    plain = structural_key_attack(locked.netlist, locked.key_inputs)
    resynthesized = locked.netlist.copy()
    to_nand_inv(resynthesized)
    after = structural_key_attack(resynthesized, locked.key_inputs)
    return plain.accuracy(locked.key), after.accuracy(locked.key)
