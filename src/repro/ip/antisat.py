"""Anti-SAT locking (Xie & Srivastava) — provable SAT-attack resilience.

A second hardening family beside SFLL: an Anti-SAT block computes
``Y = g(X ^ K1) AND NOT g(X ^ K2)`` with ``g`` an AND-tree over ``n``
tapped wires.  For any *correct* key pair (``K1 == K2``) the two halves
cancel and ``Y == 0`` always; a wrong pair makes ``Y = 1`` on at most a
single input pattern, which is XOR-ed into the circuit.  Every SAT-
attack DIP therefore eliminates only O(1) wrong keys, forcing ~2^n
iterations — at the price of near-zero output corruption, the same
resilience/corruption trade-off the paper's Sec. III-B discussion of
locking implies.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..netlist import GateType, Netlist
from .locking import LockedCircuit


def antisat_lock(netlist: Netlist, width: int = 4,
                 seed: int = 0,
                 victim: Optional[str] = None) -> LockedCircuit:
    """Attach an Anti-SAT block of ``width`` taps to a netlist.

    Inserts ``2 * width`` key inputs; the correct key is any pair with
    ``K1 == K2`` — we fix a random one.  The block's output flips
    ``victim`` (default: a random internal net in an output cone).
    """
    rng = random.Random(seed)
    locked = netlist.copy(netlist.name + "_antisat")
    live = locked.transitive_fanin(locked.outputs)
    internal = [
        g.name for g in locked.gates.values()
        if g.gate_type.is_combinational and not g.gate_type.is_source
        and g.name in live and g.name not in locked.outputs
    ]
    inputs = locked.inputs
    if len(inputs) < width:
        raise ValueError(f"need >= {width} primary inputs for the taps")
    taps = rng.sample(inputs, width)
    secret = [rng.randint(0, 1) for _ in range(width)]
    key: Dict[str, int] = {}
    g_terms: List[str] = []
    gbar_terms: List[str] = []
    for index in range(width):
        k1 = f"keyin{index}"
        k2 = f"keyin{width + index}"
        locked.add_input(k1)
        locked.add_input(k2)
        key[k1] = secret[index]
        key[k2] = secret[index]
        g_terms.append(locked.add(GateType.XOR, [taps[index], k1],
                                  prefix=f"as_g{index}_"))
        gbar_terms.append(locked.add(GateType.XOR, [taps[index], k2],
                                     prefix=f"as_h{index}_"))
    g_out = (g_terms[0] if width == 1
             else locked.add(GateType.AND, g_terms, prefix="as_g_"))
    gbar_out = (locked.add(GateType.NOT, gbar_terms, prefix="as_hb_")
                if width == 1
                else locked.add(GateType.NAND, gbar_terms, prefix="as_hb_"))
    y = locked.add(GateType.AND, [g_out, gbar_out], prefix="as_y_")
    victim_net = victim or rng.choice(internal)
    payload = locked.add(GateType.XOR, [victim_net, y], prefix="as_pay_")
    locked.rewire_consumers(victim_net, payload, keep_outputs=False)
    gate = locked.gate(payload)
    gate.fanins = [victim_net if fi == payload else fi
                   for fi in gate.fanins]
    locked.invalidate()
    return LockedCircuit(locked, key, scheme=f"antisat-{width}")
