"""IC camouflaging and the de-camouflaging attack [23].

Camouflaged cells look identical under imaging but implement one of
several functions (here: NAND / NOR / XNOR).  The designer knows the
assignment; a reverse engineer recovers only the candidate set per
cell.  Security therefore reduces to key-guessing — which is made
precise by :func:`decamouflage_to_locked`: each camouflaged cell
becomes a 2-bit key-controlled function selector, and the SAT attack of
:mod:`repro.ip.sat_attack` resolves the assignment from oracle access.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from ..netlist import GateType, Netlist
from .locking import LockedCircuit

#: Functions the camouflaged primitive can implement.
CAMO_CANDIDATES: Tuple[GateType, ...] = (
    GateType.NAND, GateType.NOR, GateType.XNOR,
)


@dataclass
class CamouflagedCircuit:
    """The attacker's view plus the designer's secret assignment."""

    netlist: Netlist                  # true netlist (designer view)
    camo_cells: Dict[str, GateType]   # cell -> actual function
    candidates: Tuple[GateType, ...] = CAMO_CANDIDATES

    @property
    def n_cells(self) -> int:
        return len(self.camo_cells)

    def attacker_view(self) -> Netlist:
        """Netlist with camouflaged cells replaced by placeholders.

        Placeholder cells keep NAND type (arbitrary) — the attacker
        knows connectivity and the candidate set, not the function.
        """
        view = self.netlist.copy(self.netlist.name + "_reveng")
        for cell in self.camo_cells:
            view.gates[cell].gate_type = GateType.NAND
        view.invalidate()
        return view


def camouflage(netlist: Netlist, n_cells: int,
               seed: int = 0) -> CamouflagedCircuit:
    """Camouflage ``n_cells`` two-input cells of candidate-compatible type.

    Cells whose current function is in the candidate set are eligible
    (real flows would constrain synthesis to produce such cells — cf.
    :func:`repro.synth.camouflage_library`).
    """
    rng = random.Random(seed)
    eligible = [
        g.name for g in netlist.gates.values()
        if g.gate_type in CAMO_CANDIDATES and len(g.fanins) == 2
    ]
    if n_cells > len(eligible):
        raise ValueError(
            f"only {len(eligible)} candidate-compatible cells available"
        )
    chosen = rng.sample(eligible, n_cells)
    return CamouflagedCircuit(
        netlist.copy(netlist.name + "_camo"),
        {cell: netlist.gates[cell].gate_type for cell in chosen},
    )


def decamouflage_to_locked(camo: CamouflagedCircuit) -> LockedCircuit:
    """Reduce de-camouflaging to logic locking.

    Each camouflaged cell ``g(a, b)`` becomes a selector over the three
    candidates driven by two fresh key bits::

        00 -> NAND, 01 -> NOR, 1x -> XNOR

    The correct key encodes the designer's assignment, so breaking the
    resulting locked circuit (e.g. with the SAT attack) *is* the
    de-camouflaging attack.
    """
    locked = camo.netlist.copy(camo.netlist.name + "_dec")
    key: Dict[str, int] = {}
    for index, (cell, actual) in enumerate(sorted(camo.camo_cells.items())):
        g = locked.gates[cell]
        a, b = g.fanins
        k0 = f"keyin{2 * index}"
        k1 = f"keyin{2 * index + 1}"
        locked.add_input(k0)
        locked.add_input(k1)
        nand = locked.add(GateType.NAND, [a, b], prefix=f"cm{index}_")
        nor = locked.add(GateType.NOR, [a, b], prefix=f"cm{index}_")
        xnor = locked.add(GateType.XNOR, [a, b], prefix=f"cm{index}_")
        low = locked.add(GateType.MUX, [k0, nand, nor], prefix=f"cm{index}_")
        sel = locked.add(GateType.MUX, [k1, low, xnor], prefix=f"cm{index}_")
        g.gate_type = GateType.BUF
        g.fanins = [sel]
        if actual is GateType.NAND:
            key[k0], key[k1] = 0, 0
        elif actual is GateType.NOR:
            key[k0], key[k1] = 1, 0
        else:
            key[k0], key[k1] = 0, 1
    locked.invalidate()
    return LockedCircuit(locked, key, scheme="camouflage")
