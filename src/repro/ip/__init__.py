"""IP protection: locking, SAT attack, camouflaging, split mfg., PUFs."""

from .locking import (
    LockedCircuit,
    apply_key,
    lock_xor,
    score_candidate_keys,
    wrong_key_error_rate,
)
from .sat_attack import (
    SatAttackResult,
    attack_locked_circuit,
    sat_attack,
    verify_recovered_key,
)
from .antisat import antisat_lock
from .sfll import SfllCircuit, sfll_hd_lock
from .camouflage import (
    CAMO_CANDIDATES,
    CamouflagedCircuit,
    camouflage,
    decamouflage_to_locked,
)
from .split import (
    FeolView,
    ProximityAttackResult,
    build_feol_view,
    lift_critical_nets,
    perturb_placement,
    proximity_attack,
    reconstruction_error_rate,
)
from .puf import (
    ArbiterPuf,
    PufMetrics,
    RingOscillatorPuf,
    evaluate_arbiter_population,
    evaluate_ro_population,
    model_attack_arbiter,
)
from .structural import (
    StructuralAttackResult,
    resynthesis_resistance,
    structural_key_attack,
)
from .watermark import (
    Watermark,
    embed_watermark,
    extract_watermark,
    verify_watermark,
)
from .metering import (
    MeteredChip,
    MeteringAuthority,
    overbuild_attack,
)

__all__ = [
    "LockedCircuit", "apply_key", "lock_xor", "score_candidate_keys",
    "wrong_key_error_rate",
    "SatAttackResult", "attack_locked_circuit", "sat_attack",
    "verify_recovered_key",
    "antisat_lock",
    "SfllCircuit", "sfll_hd_lock",
    "CAMO_CANDIDATES", "CamouflagedCircuit", "camouflage",
    "decamouflage_to_locked",
    "FeolView", "ProximityAttackResult", "build_feol_view",
    "lift_critical_nets", "perturb_placement", "proximity_attack",
    "reconstruction_error_rate",
    "ArbiterPuf", "PufMetrics", "RingOscillatorPuf",
    "evaluate_arbiter_population", "evaluate_ro_population",
    "model_attack_arbiter",
    "StructuralAttackResult", "resynthesis_resistance",
    "structural_key_attack",
    "Watermark", "embed_watermark", "extract_watermark", "verify_watermark",
    "MeteredChip", "MeteringAuthority", "overbuild_attack",
]
