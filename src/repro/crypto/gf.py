"""Arithmetic in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.

Shared by the AES implementation, the DFA equations in :mod:`repro.fia`,
and the leakage-model hypotheses in :mod:`repro.sca`.
"""

from __future__ import annotations

from typing import List

AES_POLY = 0x11B


def xtime(a: int) -> int:
    """Multiply by x (i.e. 2) in GF(2^8)."""
    a <<= 1
    if a & 0x100:
        a ^= AES_POLY
    return a & 0xFF


def gf_mul(a: int, b: int) -> int:
    """Carry-less multiply modulo the AES polynomial."""
    result = 0
    a &= 0xFF
    b &= 0xFF
    while b:
        if b & 1:
            result ^= a
        a = xtime(a)
        b >>= 1
    return result


def gf_pow(a: int, e: int) -> int:
    """Exponentiation in GF(2^8) by square-and-multiply."""
    result = 1
    base = a & 0xFF
    while e:
        if e & 1:
            result = gf_mul(result, base)
        base = gf_mul(base, base)
        e >>= 1
    return result


def gf_inv(a: int) -> int:
    """Multiplicative inverse (0 maps to 0, as in the AES S-box)."""
    if a == 0:
        return 0
    return gf_pow(a, 254)


def mul_table(c: int) -> List[int]:
    """The 256-entry table of ``gf_mul(c, x)`` — used by DFA candidates."""
    return [gf_mul(c, x) for x in range(256)]
