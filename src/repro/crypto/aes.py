"""AES-128 reference implementation with round-level observation hooks.

This is the canonical attack target of the paper's side-channel and
fault-injection discussion (Sec. II-A): CPA attacks the first-round
S-box output, TVLA uses fixed-vs-random plaintext sets, and DFA injects
byte faults before the final rounds.  The implementation therefore
exposes every intermediate round state rather than only the ciphertext.

State convention: a 16-byte ``bytes``/list in the standard AES order,
where byte ``i`` sits at row ``i % 4``, column ``i // 4``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from .gf import gf_inv, gf_mul

SBOX: List[int] = []
INV_SBOX: List[int] = [0] * 256


def _build_sbox() -> None:
    """Construct the S-box from first principles: inversion + affine map."""
    for x in range(256):
        inv = gf_inv(x)
        y = 0
        for bit in range(8):
            b = (
                (inv >> bit)
                ^ (inv >> ((bit + 4) % 8))
                ^ (inv >> ((bit + 5) % 8))
                ^ (inv >> ((bit + 6) % 8))
                ^ (inv >> ((bit + 7) % 8))
                ^ (0x63 >> bit)
            ) & 1
            y |= b << bit
        SBOX.append(y)
        INV_SBOX[y] = x


_build_sbox()

RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]

#: ShiftRows source index: output byte i comes from state[SHIFT_ROWS[i]].
SHIFT_ROWS = [0, 5, 10, 15, 4, 9, 14, 3, 8, 13, 2, 7, 12, 1, 6, 11]
INV_SHIFT_ROWS = [SHIFT_ROWS.index(i) for i in range(16)]


def expand_key(key: Sequence[int]) -> List[List[int]]:
    """AES-128 key schedule: 11 round keys of 16 bytes each."""
    if len(key) != 16:
        raise ValueError("AES-128 key must be 16 bytes")
    words = [list(key[4 * i:4 * i + 4]) for i in range(4)]
    for i in range(4, 44):
        temp = list(words[i - 1])
        if i % 4 == 0:
            temp = temp[1:] + temp[:1]
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[i // 4 - 1]
        words.append([w ^ t for w, t in zip(words[i - 4], temp)])
    return [sum(words[4 * r:4 * r + 4], []) for r in range(11)]


def sub_bytes(state: Sequence[int]) -> List[int]:
    """SubBytes: the S-box applied to every state byte."""
    return [SBOX[b] for b in state]


def inv_sub_bytes(state: Sequence[int]) -> List[int]:
    """Inverse SubBytes."""
    return [INV_SBOX[b] for b in state]


def shift_rows(state: Sequence[int]) -> List[int]:
    """ShiftRows: the fixed byte permutation."""
    return [state[SHIFT_ROWS[i]] for i in range(16)]


def inv_shift_rows(state: Sequence[int]) -> List[int]:
    """Inverse ShiftRows."""
    return [state[INV_SHIFT_ROWS[i]] for i in range(16)]


def mix_columns(state: Sequence[int]) -> List[int]:
    """MixColumns: the GF(2^8) MDS matrix per column."""
    out = [0] * 16
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        for r in range(4):
            out[4 * c + r] = (
                gf_mul(2, col[r])
                ^ gf_mul(3, col[(r + 1) % 4])
                ^ col[(r + 2) % 4]
                ^ col[(r + 3) % 4]
            )
    return out


def inv_mix_columns(state: Sequence[int]) -> List[int]:
    """Inverse MixColumns."""
    out = [0] * 16
    for c in range(4):
        col = state[4 * c:4 * c + 4]
        for r in range(4):
            out[4 * c + r] = (
                gf_mul(14, col[r])
                ^ gf_mul(11, col[(r + 1) % 4])
                ^ gf_mul(13, col[(r + 2) % 4])
                ^ gf_mul(9, col[(r + 3) % 4])
            )
    return out


def add_round_key(state: Sequence[int], rk: Sequence[int]) -> List[int]:
    """AddRoundKey: byte-wise XOR with the round key."""
    return [s ^ k for s, k in zip(state, rk)]


@dataclass
class AesTrace:
    """All intermediate states of one encryption, for SCA/FIA studies.

    ``round_states[r]`` is the state *after* round ``r`` completes
    (``round_states[0]`` is the state after the initial AddRoundKey).
    ``sbox_outputs[r]`` is the SubBytes output inside round ``r+1``.
    """

    round_states: List[List[int]] = field(default_factory=list)
    sbox_outputs: List[List[int]] = field(default_factory=list)
    ciphertext: List[int] = field(default_factory=list)


class AES128:
    """AES-128 block cipher with per-round observability."""

    def __init__(self, key: Sequence[int]) -> None:
        self.round_keys = expand_key(key)

    def encrypt(self, plaintext: Sequence[int]) -> List[int]:
        """Encrypt one 16-byte block."""
        return self.encrypt_traced(plaintext).ciphertext

    def encrypt_traced(self, plaintext: Sequence[int]) -> AesTrace:
        """Encrypt while recording every intermediate round state."""
        if len(plaintext) != 16:
            raise ValueError("AES block must be 16 bytes")
        trace = AesTrace()
        state = add_round_key(plaintext, self.round_keys[0])
        trace.round_states.append(list(state))
        for rnd in range(1, 10):
            state = sub_bytes(state)
            trace.sbox_outputs.append(list(state))
            state = shift_rows(state)
            state = mix_columns(state)
            state = add_round_key(state, self.round_keys[rnd])
            trace.round_states.append(list(state))
        state = sub_bytes(state)
        trace.sbox_outputs.append(list(state))
        state = shift_rows(state)
        state = add_round_key(state, self.round_keys[10])
        trace.round_states.append(list(state))
        trace.ciphertext = list(state)
        return trace

    def decrypt(self, ciphertext: Sequence[int]) -> List[int]:
        """Decrypt one 16-byte block."""
        if len(ciphertext) != 16:
            raise ValueError("AES block must be 16 bytes")
        state = add_round_key(ciphertext, self.round_keys[10])
        state = inv_shift_rows(state)
        state = inv_sub_bytes(state)
        for rnd in range(9, 0, -1):
            state = add_round_key(state, self.round_keys[rnd])
            state = inv_mix_columns(state)
            state = inv_shift_rows(state)
            state = inv_sub_bytes(state)
        return add_round_key(state, self.round_keys[0])

    def encrypt_with_fault(self, plaintext: Sequence[int], *,
                           round_index: int, byte_index: int,
                           fault_value: int) -> List[int]:
        """Encrypt, XOR-ing ``fault_value`` into one state byte just
        before ``round_index`` executes (1-based rounds, <= 10).

        This is the classical DFA fault model (paper Sec. II-A.2): a
        byte fault before the last SubBytes (``round_index=10``) yields
        the single-byte differential the attack of :mod:`repro.fia.dfa`
        exploits.
        """
        if not 1 <= round_index <= 10:
            raise ValueError("round_index must be in 1..10")
        state = add_round_key(plaintext, self.round_keys[0])
        for rnd in range(1, 11):
            if rnd == round_index:
                state = list(state)
                state[byte_index] ^= fault_value
            state = sub_bytes(state)
            state = shift_rows(state)
            if rnd < 10:
                state = mix_columns(state)
            state = add_round_key(state, self.round_keys[rnd])
        return list(state)


def recover_master_key(last_round_key: Sequence[int]) -> List[int]:
    """Invert the AES-128 key schedule from the round-10 key.

    Scan and DFA attacks recover round keys, not the master key; this
    routine completes them (paper Sec. III-F).
    """
    words = [list(last_round_key[4 * i:4 * i + 4]) for i in range(4)]
    # Rebuild words 43..0; word index of the first provided word is 40.
    all_words: List[List[int]] = [None] * 44  # type: ignore[list-item]
    for i in range(4):
        all_words[40 + i] = words[i]
    for i in range(39, -1, -1):
        later = all_words[i + 4]
        prev = all_words[i + 3]
        if (i + 4) % 4 == 0:
            temp = list(prev[1:] + prev[:1])
            temp = [SBOX[b] for b in temp]
            temp[0] ^= RCON[(i + 4) // 4 - 1]
        else:
            temp = prev
        all_words[i] = [w ^ t for w, t in zip(later, temp)]
    return sum(all_words[0:4], [])
