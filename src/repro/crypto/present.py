"""PRESENT-80 lightweight block cipher (Bogdanov et al., CHES 2007).

A second, structurally different attack target: 64-bit blocks, a 4-bit
S-box, and a bit permutation layer.  Lightweight ciphers are the typical
payload of the paper's embedded-security scenarios, and the 4-bit S-box
makes exhaustive netlist-level analyses cheap.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

SBOX4 = [0xC, 0x5, 0x6, 0xB, 0x9, 0x0, 0xA, 0xD,
         0x3, 0xE, 0xF, 0x8, 0x4, 0x7, 0x1, 0x2]
INV_SBOX4 = [SBOX4.index(i) for i in range(16)]

#: pLayer: output bit position of input bit i.
PERM = [(16 * i) % 63 if i != 63 else 63 for i in range(64)]
INV_PERM = [PERM.index(i) for i in range(64)]

ROUNDS = 31


def _sbox_layer(state: int) -> int:
    out = 0
    for nib in range(16):
        out |= SBOX4[(state >> (4 * nib)) & 0xF] << (4 * nib)
    return out


def _inv_sbox_layer(state: int) -> int:
    out = 0
    for nib in range(16):
        out |= INV_SBOX4[(state >> (4 * nib)) & 0xF] << (4 * nib)
    return out


def _p_layer(state: int) -> int:
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << PERM[i]
    return out


def _inv_p_layer(state: int) -> int:
    out = 0
    for i in range(64):
        if (state >> i) & 1:
            out |= 1 << INV_PERM[i]
    return out


def expand_key80(key: int) -> List[int]:
    """PRESENT-80 key schedule: 32 round keys of 64 bits."""
    if key < 0 or key >= (1 << 80):
        raise ValueError("PRESENT-80 key must be an 80-bit integer")
    register = key
    round_keys = []
    for round_counter in range(1, ROUNDS + 2):
        round_keys.append(register >> 16)
        # 61-bit left rotation of the 80-bit register.
        register = ((register << 61) | (register >> 19)) & ((1 << 80) - 1)
        # S-box on the top nibble.
        top = (register >> 76) & 0xF
        register = (register & ~(0xF << 76)) | (SBOX4[top] << 76)
        # XOR round counter into bits 19..15.
        register ^= round_counter << 15
    return round_keys


@dataclass
class PresentTrace:
    """Intermediate round states of one encryption (after key XOR)."""

    round_states: List[int] = field(default_factory=list)
    ciphertext: int = 0


class Present80:
    """PRESENT with an 80-bit key, with round-level observability."""

    def __init__(self, key: int) -> None:
        self.round_keys = expand_key80(key)

    def encrypt(self, plaintext: int) -> int:
        """Encrypt one 64-bit block."""
        return self.encrypt_traced(plaintext).ciphertext

    def encrypt_traced(self, plaintext: int) -> PresentTrace:
        """Encrypt while recording every round state."""
        if plaintext < 0 or plaintext >= (1 << 64):
            raise ValueError("PRESENT block must be a 64-bit integer")
        trace = PresentTrace()
        state = plaintext
        for rnd in range(ROUNDS):
            state ^= self.round_keys[rnd]
            trace.round_states.append(state)
            state = _sbox_layer(state)
            state = _p_layer(state)
        state ^= self.round_keys[ROUNDS]
        trace.round_states.append(state)
        trace.ciphertext = state
        return trace

    def decrypt(self, ciphertext: int) -> int:
        """Decrypt one 64-bit block."""
        state = ciphertext ^ self.round_keys[ROUNDS]
        for rnd in range(ROUNDS - 1, -1, -1):
            state = _inv_p_layer(state)
            state = _inv_sbox_layer(state)
            state ^= self.round_keys[rnd]
        return state
