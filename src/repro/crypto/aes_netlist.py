"""Gate-level AES-128: round function and iterated datapath netlists.

The hardware the paper's attacks actually target.  The round netlist
(~7,500 cells) composes 16 S-box cones, ShiftRows wiring, the xtime-
based MixColumns, and AddRoundKey; the datapath wraps it with a 128-bit
state register so scan insertion, netlist-level leakage simulation, and
fault campaigns run against real AES hardware rather than a single
S-box cone.

Bit conventions: state byte ``i`` (AES order) occupies nets
``{prefix}{i}_{b}`` for bit ``b`` (LSB first).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..netlist import GateType, Netlist, get_compiled
from .aes import SHIFT_ROWS, expand_key
from .sboxes import aes_sbox_netlist

_SBOX_TEMPLATE: Optional[Netlist] = None


def _sbox_template() -> Netlist:
    global _SBOX_TEMPLATE
    if _SBOX_TEMPLATE is None:
        _SBOX_TEMPLATE = aes_sbox_netlist()
    return _SBOX_TEMPLATE


def _byte_nets(prefix: str, index: int) -> List[str]:
    return [f"{prefix}{index}_{bit}" for bit in range(8)]


def _xtime_nets(host: Netlist, byte: List[str], prefix: str) -> List[str]:
    """Multiply a byte (bit nets, LSB first) by 2 in GF(2^8).

    out[0]=in7, out[1]=in0^in7, out[2]=in1, out[3]=in2^in7,
    out[4]=in3^in7, out[5]=in4, out[6]=in5, out[7]=in6.
    """
    msb = byte[7]
    out = [msb]
    for bit in range(1, 8):
        source = byte[bit - 1]
        if bit in (1, 3, 4):
            out.append(host.add(GateType.XOR, [source, msb],
                                prefix=f"{prefix}x{bit}_"))
        else:
            out.append(source)
    return out


def _xor_bytes(host: Netlist, *bytes_: List[str],
               prefix: str = "xb") -> List[str]:
    out = []
    for bit in range(8):
        nets = [b[bit] for b in bytes_]
        if len(nets) == 1:
            out.append(nets[0])
        else:
            out.append(host.add(GateType.XOR, nets,
                                prefix=f"{prefix}{bit}_"))
    return out


def aes_round_netlist(last_round: bool = False,
                      name: Optional[str] = None) -> Netlist:
    """One AES round: SubBytes -> ShiftRows -> [MixColumns] -> ARK.

    Inputs: state ``s{i}_{b}`` and round key ``k{i}_{b}`` (16 bytes x 8
    bits each); outputs ``o{i}_{b}``.  ``last_round`` omits MixColumns.
    """
    host = Netlist(name or ("aes_last_round" if last_round
                            else "aes_round"))
    for i in range(16):
        for b in range(8):
            host.add_input(f"s{i}_{b}")
    for i in range(16):
        for b in range(8):
            host.add_input(f"k{i}_{b}")
    template = _sbox_template()
    # SubBytes: one S-box instance per byte.
    sub: List[List[str]] = []
    for i in range(16):
        port_map = {f"x{b}": f"s{i}_{b}" for b in range(8)}
        rename = host.import_netlist(template, f"sb{i}_", port_map)
        sub.append([rename[f"y{b}"] for b in range(8)])
    # ShiftRows is pure wiring.
    shifted = [sub[SHIFT_ROWS[i]] for i in range(16)]
    # MixColumns per column c over rows r:
    if last_round:
        mixed = shifted
    else:
        mixed = [None] * 16  # type: ignore[list-item]
        for c in range(4):
            col = [shifted[4 * c + r] for r in range(4)]
            for r in range(4):
                a0 = col[r]
                a1 = col[(r + 1) % 4]
                a2 = col[(r + 2) % 4]
                a3 = col[(r + 3) % 4]
                two_a0 = _xtime_nets(host, a0, f"mc{c}{r}a_")
                two_a1 = _xtime_nets(host, a1, f"mc{c}{r}b_")
                # 2*a0 ^ 3*a1 ^ a2 ^ a3 = 2*a0 ^ 2*a1 ^ a1 ^ a2 ^ a3
                mixed[4 * c + r] = _xor_bytes(
                    host, two_a0, two_a1, a1, a2, a3,
                    prefix=f"mc{c}{r}_")
    # AddRoundKey and output buffers.
    for i in range(16):
        key_byte = _byte_nets("k", i)
        out_byte = _xor_bytes(host, mixed[i], key_byte,
                              prefix=f"ark{i}_")
        for b in range(8):
            host.add_gate(f"o{i}_{b}", GateType.BUF, [out_byte[b]])
            host.add_output(f"o{i}_{b}")
    return host


def encode_state(value_bytes: Sequence[int], prefix: str,
                 width: int = 1) -> Dict[str, int]:
    """Stimulus dict for a 16-byte state on ``{prefix}{i}_{b}`` nets."""
    mask = (1 << width) - 1
    stimulus: Dict[str, int] = {}
    for i, byte in enumerate(value_bytes):
        for b in range(8):
            stimulus[f"{prefix}{i}_{b}"] = mask if (byte >> b) & 1 else 0
    return stimulus


def decode_state(values: Mapping[str, int], prefix: str,
                 pattern: int = 0) -> List[int]:
    """Read a 16-byte state back from net values."""
    out = []
    for i in range(16):
        byte = 0
        for b in range(8):
            byte |= ((values[f"{prefix}{i}_{b}"] >> pattern) & 1) << b
        out.append(byte)
    return out


def aes_datapath_netlist(name: str = "aes_datapath") -> Netlist:
    """Round-serial AES-128 datapath with a 128-bit state register.

    Inputs: plaintext ``pt{i}_{b}``, per-cycle round key ``k{i}_{b}``,
    ``load`` (1 = capture plaintext XOR round key — the initial
    AddRoundKey), and ``final`` (1 = skip MixColumns, for round 10).
    Outputs: the registered state ``q{i}_{b}``.

    Drive it for 11 cycles (load, 9 middle rounds, final round) with
    the expanded key schedule to compute a full encryption — see
    :func:`run_aes_datapath`.
    """
    host = Netlist(name)
    host.add_input("load")
    host.add_input("final")
    for i in range(16):
        for b in range(8):
            host.add_input(f"pt{i}_{b}")
    for i in range(16):
        for b in range(8):
            host.add_input(f"k{i}_{b}")
    # State register.
    for i in range(16):
        for b in range(8):
            host.add_gate(f"q{i}_{b}", GateType.DFF, [f"d{i}_{b}"])
            host.add_output(f"q{i}_{b}")
    # Round function over the registered state.
    template = _sbox_template()
    sub: List[List[str]] = []
    for i in range(16):
        port_map = {f"x{b}": f"q{i}_{b}" for b in range(8)}
        rename = host.import_netlist(template, f"sb{i}_", port_map)
        sub.append([rename[f"y{b}"] for b in range(8)])
    shifted = [sub[SHIFT_ROWS[i]] for i in range(16)]
    mixed: List[List[str]] = [None] * 16  # type: ignore[list-item]
    for c in range(4):
        col = [shifted[4 * c + r] for r in range(4)]
        for r in range(4):
            a0, a1 = col[r], col[(r + 1) % 4]
            a2, a3 = col[(r + 2) % 4], col[(r + 3) % 4]
            two_a0 = _xtime_nets(host, a0, f"mc{c}{r}a_")
            two_a1 = _xtime_nets(host, a1, f"mc{c}{r}b_")
            mixed[4 * c + r] = _xor_bytes(host, two_a0, two_a1, a1, a2,
                                          a3, prefix=f"mc{c}{r}_")
    for i in range(16):
        key_byte = _byte_nets("k", i)
        # Middle-round vs final-round datapath (final skips MixColumns).
        round_out = []
        for b in range(8):
            picked = host.add(GateType.MUX,
                              ["final", mixed[i][b], shifted[i][b]],
                              prefix=f"fr{i}_{b}_")
            round_out.append(host.add(GateType.XOR,
                                      [picked, key_byte[b]],
                                      prefix=f"ark{i}_{b}_"))
        # Load path: initial AddRoundKey of the plaintext.
        for b in range(8):
            loaded = host.add(GateType.XOR,
                              [f"pt{i}_{b}", key_byte[b]],
                              prefix=f"ld{i}_{b}_")
            host.add_gate(f"d{i}_{b}", GateType.MUX,
                          ["load", round_out[b], loaded])
    return host


#: Key -> (cycle-0 round-key stimulus, cycles 1..10).  Only cycle 0
#: depends on the plaintext, so everything else is shared across the
#: hundreds of schedules a trace campaign builds for one key.
_SCHEDULE_MEMO: Dict[Tuple[int, ...],
                     Tuple[Dict[str, int], List[Dict[str, int]]]] = {}
_SCHEDULE_MEMO_MAX = 8


def encryption_schedule(plaintext: Sequence[int], key: Sequence[int]
                        ) -> List[Dict[str, int]]:
    """The 11-cycle input sequence computing one encryption."""
    key_tuple = tuple(int(k) & 0xFF for k in key)
    memo = _SCHEDULE_MEMO.get(key_tuple)
    if memo is None:
        round_keys = expand_key(list(key_tuple))
        zero_pt = encode_state([0] * 16, "pt")
        tail: List[Dict[str, int]] = []
        for rnd in range(1, 11):
            stim = {"load": 0, "final": 1 if rnd == 10 else 0}
            stim.update(zero_pt)
            stim.update(encode_state(round_keys[rnd], "k"))
            tail.append(stim)
        memo = (encode_state(round_keys[0], "k"), tail)
        while len(_SCHEDULE_MEMO) >= _SCHEDULE_MEMO_MAX:
            _SCHEDULE_MEMO.pop(next(iter(_SCHEDULE_MEMO)))
        _SCHEDULE_MEMO[key_tuple] = memo
    key0_stim, tail = memo
    first = {"load": 1, "final": 0}
    first.update(encode_state(plaintext, "pt"))
    first.update(key0_stim)
    # Fresh dicts throughout: callers may mutate their schedule.
    return [first] + [dict(stim) for stim in tail]


def _state_bytes(state: Mapping[str, int]) -> List[int]:
    return [
        sum(((state[f"q{i}_{b}"] & 1) << b) for b in range(8))
        for i in range(16)
    ]


def run_aes_datapath(netlist: Netlist, plaintext: Sequence[int],
                     key: Sequence[int],
                     fault_round: Optional[int] = None,
                     fault_byte: int = 0,
                     fault_value: int = 0) -> List[int]:
    """Clock the datapath through a full encryption; returns ciphertext.

    ``fault_round`` (1..10) optionally XORs ``fault_value`` into state
    byte ``fault_byte`` just before that round executes — register-level
    fault injection into the real hardware, feeding the DFA of
    :mod:`repro.fia.dfa` with gate-level faulty ciphertexts.
    """
    compiled = get_compiled(netlist)
    flop_pos = {name: i for i, name in enumerate(compiled.flop_names)}
    regs = [0] * len(compiled.flop_names)
    for cycle, stim_map in enumerate(encryption_schedule(plaintext, key)):
        if fault_round is not None and cycle == fault_round:
            # State currently holds the input of round `fault_round`.
            for b in range(8):
                if (fault_value >> b) & 1:
                    regs[flop_pos[f"q{fault_byte}_{b}"]] ^= 1
        stim = [stim_map[name] for name in compiled.input_names]
        _, regs = compiled.step_words(stim, regs)
    state = dict(zip(compiled.flop_names, regs))
    return _state_bytes(state)


def run_aes_datapath_batch(netlist: Netlist, key: Sequence[int],
                           queries: Sequence[Tuple[Sequence[int],
                                                   Optional[int], int, int]]
                           ) -> List[List[int]]:
    """Many (plaintext, fault) encryptions in one bit-parallel pass.

    ``queries`` holds ``(plaintext, fault_round, fault_byte,
    fault_value)`` tuples; query ``q`` occupies bit lane ``q`` of every
    packed word, so the whole batch costs 11 wide cycles instead of
    ``11 * len(queries)`` narrow ones.  Each returned ciphertext is
    bit-identical to the corresponding serial
    :func:`run_aes_datapath` call (``fault_round=None`` encrypts
    fault-free).
    """
    width = len(queries)
    if not width:
        return []
    compiled = get_compiled(netlist)
    flop_pos = {name: i for i, name in enumerate(compiled.flop_names)}
    full = (1 << width) - 1
    round_keys = expand_key(list(key))
    # Plaintext planes: lane q of pt{i}_{b} is query q's bit.
    pt_words = {f"pt{i}_{b}": 0 for i in range(16) for b in range(8)}
    for q, (plaintext, _, _, _) in enumerate(queries):
        lane = 1 << q
        for i, byte in enumerate(plaintext):
            for b in range(8):
                if (byte >> b) & 1:
                    pt_words[f"pt{i}_{b}"] |= lane
    zero_pt = {name: 0 for name in pt_words}
    schedule = []
    for cycle in range(11):
        stim_map = {"load": full if cycle == 0 else 0,
                    "final": full if cycle == 10 else 0}
        stim_map.update(pt_words if cycle == 0 else zero_pt)
        stim_map.update(encode_state(round_keys[cycle], "k", width))
        schedule.append([stim_map[name] for name in compiled.input_names])
    # Fault plan: cycle -> [(flop position, lane mask)].
    flips: Dict[int, List[Tuple[int, int]]] = {}
    for q, (_, fault_round, fault_byte, fault_value) in enumerate(queries):
        if fault_round is None:
            continue
        for b in range(8):
            if (fault_value >> b) & 1:
                flips.setdefault(fault_round, []).append(
                    (flop_pos[f"q{fault_byte}_{b}"], 1 << q))
    regs = [0] * len(compiled.flop_names)
    for cycle, stim in enumerate(schedule):
        for pos, lane in flips.get(cycle, ()):
            regs[pos] ^= lane
        _, regs = compiled.step_words(stim, regs, width)
    return [
        [
            sum(((regs[flop_pos[f"q{i}_{b}"]] >> q) & 1) << b
                for b in range(8))
            for i in range(16)
        ]
        for q in range(width)
    ]
