"""Gate-level S-box netlists.

These are the shared hardware workloads of the security experiments:
the AES S-box cone is the standard CPA/TVLA target, the locking and
camouflaging studies protect it, and MERO hunts Trojans inside it.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..netlist import Netlist, from_truth_tables
from .aes import SBOX
from .present import SBOX4

#: Memoized master netlists; every call hands out an independent copy,
#: so callers can mutate freely while repeat construction (benchmarks
#: rebuild these constantly) costs one deep copy instead of a fresh
#: Shannon decomposition.
_MEMO: Dict[Tuple, Netlist] = {}


def _memoized(key: Tuple, build, name: str) -> Netlist:
    master = _MEMO.get(key)
    if master is None:
        master = build()
        if len(_MEMO) >= 32:
            _MEMO.pop(next(iter(_MEMO)))
        _MEMO[key] = master
    return master.copy(name)


def _tables_for(sbox: Sequence[int], out_bits: int) -> dict:
    return {
        f"y{bit}": [(value >> bit) & 1 for value in sbox]
        for bit in range(out_bits)
    }


def aes_sbox_netlist(name: str = "aes_sbox") -> Netlist:
    """8-bit AES S-box as a multiplexer-tree netlist (inputs x0..x7 LSB
    first, outputs y0..y7)."""
    return _memoized(
        ("aes_sbox",),
        lambda: from_truth_tables(8, _tables_for(SBOX, 8), name="aes_sbox",
                                  input_names=[f"x{i}" for i in range(8)]),
        name)


def present_sbox_netlist(name: str = "present_sbox") -> Netlist:
    """4-bit PRESENT S-box netlist (inputs x0..x3, outputs y0..y3)."""
    return _memoized(
        ("present_sbox",),
        lambda: from_truth_tables(4, _tables_for(SBOX4, 4),
                                  name="present_sbox",
                                  input_names=[f"x{i}" for i in range(4)]),
        name)


def sbox_with_key_netlist(sbox: Optional[Sequence[int]] = None,
                          bits: int = 8,
                          name: str = "keyed_sbox") -> Netlist:
    """``y = Sbox(p XOR k)`` — the first-round AES leakage target.

    Inputs ``p0..`` (plaintext) and ``k0..`` (key); the XOR layer feeds
    the S-box cone.  This is the canonical circuit for CPA/TVLA
    experiments and for scan-attack demonstrations.
    """
    table = list(sbox) if sbox is not None else list(SBOX)

    def build() -> Netlist:
        return _build_sbox_with_key(table, bits)

    return _memoized(("keyed_sbox", tuple(table), bits), build, name)


def _build_sbox_with_key(table: Sequence[int], bits: int) -> Netlist:
    base = from_truth_tables(
        bits, _tables_for(table, bits), name="_sb",
        input_names=[f"x{i}" for i in range(bits)],
    )
    n = Netlist("keyed_sbox")
    from ..netlist import GateType

    for i in range(bits):
        n.add_input(f"p{i}")
    for i in range(bits):
        n.add_input(f"k{i}")
    xor_nets = [
        n.add_gate(f"px{i}", GateType.XOR, [f"p{i}", f"k{i}"])
        for i in range(bits)
    ]
    rename = n.import_netlist(
        base, "sb_", {f"x{i}": xor_nets[i] for i in range(bits)}
    )
    for bit in range(bits):
        n.add_gate(f"y{bit}", GateType.BUF, [rename[f"y{bit}"]])
        n.add_output(f"y{bit}")
    return n


def sbox_lookup(sbox: Sequence[int], value: int) -> int:
    """Plain software S-box application (attack-hypothesis helper)."""
    return sbox[value]
