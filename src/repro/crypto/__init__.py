"""Cryptographic attack targets: AES-128, PRESENT-80, GF(2^8), S-box netlists."""

from .gf import AES_POLY, gf_inv, gf_mul, gf_pow, mul_table, xtime
from .aes import (
    AES128,
    AesTrace,
    INV_SBOX,
    RCON,
    SBOX,
    SHIFT_ROWS,
    INV_SHIFT_ROWS,
    add_round_key,
    expand_key,
    inv_mix_columns,
    inv_shift_rows,
    inv_sub_bytes,
    mix_columns,
    recover_master_key,
    shift_rows,
    sub_bytes,
)
from .present import (
    INV_SBOX4,
    Present80,
    PresentTrace,
    ROUNDS,
    SBOX4,
    expand_key80,
)
from .aes_netlist import (
    aes_datapath_netlist,
    aes_round_netlist,
    decode_state,
    encode_state,
    encryption_schedule,
    run_aes_datapath,
    run_aes_datapath_batch,
)
from .sboxes import (
    aes_sbox_netlist,
    present_sbox_netlist,
    sbox_lookup,
    sbox_with_key_netlist,
)

__all__ = [
    "AES_POLY", "gf_inv", "gf_mul", "gf_pow", "mul_table", "xtime",
    "AES128", "AesTrace", "INV_SBOX", "RCON", "SBOX", "SHIFT_ROWS",
    "INV_SHIFT_ROWS", "add_round_key", "expand_key", "inv_mix_columns",
    "inv_shift_rows", "inv_sub_bytes", "mix_columns", "recover_master_key",
    "shift_rows", "sub_bytes",
    "INV_SBOX4", "Present80", "PresentTrace", "ROUNDS", "SBOX4",
    "expand_key80",
    "aes_datapath_netlist", "aes_round_netlist", "decode_state",
    "encode_state", "encryption_schedule", "run_aes_datapath",
    "run_aes_datapath_batch",
    "aes_sbox_netlist", "present_sbox_netlist", "sbox_lookup",
    "sbox_with_key_netlist",
]
