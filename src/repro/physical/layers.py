"""Metal-layer assignment for routed connections.

Split manufacturing (paper Sec. III-C) partitions the stack at a *split
layer*: everything below (FEOL + lower metals) goes to the untrusted
foundry, everything above (BEOL) to a trusted facility.  Which
connections survive in the untrusted view depends on each wire's layer,
assigned here by the standard length-based rule — short wires route low,
long wires high — plus an optional security-driven *lifting* override
([53]) that pushes chosen nets above the split.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..netlist import Netlist
from .placement import Placement
from .routing import RoutedLayout

#: Wire-length thresholds (in grid units) for metal layers M1..M6:
#: a wire longer than THRESHOLDS[i] is routed above layer i+1.
DEFAULT_THRESHOLDS = (2.0, 4.0, 8.0, 16.0, 32.0)


@dataclass(frozen=True)
class Wire:
    """One point-to-point connection (driver net -> consumer gate)."""

    driver: str
    sink: str
    length: float
    layer: int


def assign_layers(netlist: Netlist, placement: Placement,
                  thresholds: Iterable[float] = DEFAULT_THRESHOLDS,
                  lifted: Optional[Set[str]] = None,
                  routing: Optional[RoutedLayout] = None) -> List[Wire]:
    """Assign each driver->sink connection a metal layer.

    ``lifted`` names driver nets whose wires are forced to the topmost
    layer regardless of length (the wire-lifting defense).

    Without ``routing`` the layer comes from the length-based
    heuristic.  With a :class:`~repro.physical.routing.RoutedLayout`,
    each wire reports its *actual* routed branch — lateral length in
    placement units and topmost layer touched — falling back to the
    heuristic for connections the router did not complete.
    """
    thresholds = list(thresholds)
    top_layer = len(thresholds) + 1
    lifted = lifted or set()
    scale = max(1, routing.scale) if routing is not None else 1
    wires: List[Wire] = []
    fanout = netlist.fanout_map()
    for driver, consumers in fanout.items():
        for sink in consumers:
            if (driver not in placement.positions
                    or sink not in placement.positions):
                continue
            length = placement.distance(driver, sink)
            layer = 0
            if routing is not None:
                routed = routing.nets.get(driver)
                if routed is not None:
                    sx, sy = placement.positions[sink]
                    pin = (sx * scale, sy * scale)
                    if pin in routed.branches:
                        length = routed.branch_length(pin) / scale
                        layer = min(routed.branch_max_layer(pin),
                                    top_layer)
            if driver in lifted:
                layer = top_layer
            elif layer == 0:
                layer = top_layer
                for i, limit in enumerate(thresholds, start=1):
                    if length <= limit:
                        layer = i
                        break
            wires.append(Wire(driver, sink, length, layer))
    return wires


def layer_histogram(wires: Iterable[Wire]) -> Dict[int, int]:
    """Wire count per assigned metal layer."""
    hist: Dict[int, int] = {}
    for w in wires:
        hist[w.layer] = hist.get(w.layer, 0) + 1
    return hist


def split_wires(wires: Iterable[Wire], split_layer: int
                ) -> Tuple[List[Wire], List[Wire]]:
    """Partition wires into (FEOL-visible, BEOL-hidden) at ``split_layer``.

    A wire on a layer *strictly above* ``split_layer`` is manufactured
    by the trusted facility and invisible to the untrusted foundry.
    """
    visible: List[Wire] = []
    hidden: List[Wire] = []
    for w in wires:
        (hidden if w.layer > split_layer else visible).append(w)
    return visible, hidden
