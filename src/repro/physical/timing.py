"""Wire-aware static timing and power-density analysis.

Extends the purely structural delay model of
:mod:`repro.netlist.metrics` with placement-dependent wire delay and a
coarse power-density (IR-drop proxy) map — the "timing and power
verification" stage of Table II, whose simulation outputs feed the
side-channel and fingerprinting analyses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

import numpy as np

from ..netlist import GateType, Netlist
from ..netlist.metrics import DEFAULT_COSTS, gate_delay
from .placement import Placement

#: Wire delay per unit Manhattan distance (ps/site).
WIRE_DELAY_PER_UNIT = 8.0


def wire_delay(placement: Placement, driver: str, sink: str,
               per_unit: float = WIRE_DELAY_PER_UNIT) -> float:
    """Wire delay (ps) between two placed cells (Manhattan metric)."""
    if driver not in placement.positions or sink not in placement.positions:
        return 0.0
    return per_unit * placement.distance(driver, sink)


def arrival_times_placed(netlist: Netlist, placement: Placement,
                         per_unit: float = WIRE_DELAY_PER_UNIT,
                         input_arrivals: Optional[Mapping[str, float]] = None,
                         ) -> Dict[str, float]:
    """Per-net arrival including gate and wire delay."""
    input_arrivals = input_arrivals or {}
    at: Dict[str, float] = {}
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type.is_source or g.gate_type is GateType.DFF:
            at[net] = float(input_arrivals.get(net, 0.0))
            continue
        worst = 0.0
        for fi in g.fanins:
            worst = max(worst,
                        at[fi] + wire_delay(placement, fi, net, per_unit))
        at[net] = worst + gate_delay(g.gate_type, len(g.fanins))
    return at


def critical_path_placed(netlist: Netlist, placement: Placement,
                         per_unit: float = WIRE_DELAY_PER_UNIT) -> float:
    """Wire-aware critical-path delay over outputs and flop D-pins."""
    at = arrival_times_placed(netlist, placement, per_unit)
    endpoints = list(netlist.outputs)
    endpoints.extend(netlist.gates[ff].fanins[0] for ff in netlist.flops)
    return max((at[e] for e in endpoints), default=0.0)


@dataclass
class PathDelayReport:
    """Per-output path delays — the raw material of delay fingerprints."""

    delays: Dict[str, float]

    def vector(self, order: Optional[List[str]] = None) -> np.ndarray:
        """Delays as an array in a fixed output order (default: sorted)."""
        keys = order or sorted(self.delays)
        return np.array([self.delays[k] for k in keys])


def output_path_delays(netlist: Netlist,
                       placement: Optional[Placement] = None,
                       delay_noise: float = 0.0,
                       seed: int = 0) -> PathDelayReport:
    """Arrival time of each primary output, optionally with process
    variation modeled as multiplicative Gaussian noise per gate."""
    if delay_noise <= 0:
        if placement is None:
            from ..netlist.metrics import arrival_times
            at = arrival_times(netlist)
        else:
            at = arrival_times_placed(netlist, placement)
        return PathDelayReport({o: at[o] for o in netlist.outputs})
    rng = np.random.default_rng(seed)
    at: Dict[str, float] = {}
    for net in netlist.topological_order():
        g = netlist.gates[net]
        if g.gate_type.is_source or g.gate_type is GateType.DFF:
            at[net] = 0.0
            continue
        base = gate_delay(g.gate_type, len(g.fanins))
        jitter = max(0.1, 1.0 + rng.normal(0.0, delay_noise))
        worst = 0.0
        for fi in g.fanins:
            wd = (wire_delay(placement, fi, net) if placement else 0.0)
            worst = max(worst, at[fi] + wd)
        at[net] = worst + base * jitter
    return PathDelayReport({o: at[o] for o in netlist.outputs})


def power_density_map(netlist: Netlist, placement: Placement,
                      bins: int = 8) -> np.ndarray:
    """Leakage power binned over the die — a vectorless IR-drop proxy.

    Hot bins indicate where supply noise (and hence exploitable or
    masking-degrading variation) concentrates.
    """
    grid = np.zeros((bins, bins))
    for cell, (x, y) in placement.positions.items():
        g = netlist.gates.get(cell)
        if g is None:
            continue
        bx = min(bins - 1, int(x * bins / max(1, placement.width)))
        by = min(bins - 1, int(y * bins / max(1, placement.height)))
        grid[by, bx] += DEFAULT_COSTS[g.gate_type].leakage
    return grid


def ir_drop_ok(netlist: Netlist, placement: Placement,
               limit_per_bin: float, bins: int = 8) -> bool:
    """Vectorless check that no region exceeds the power-density limit."""
    return bool(power_density_map(netlist, placement, bins).max()
                <= limit_per_bin)
