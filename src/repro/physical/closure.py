"""Iterative security closure of routed layouts.

The "zero-overhead security closure" flow (PAPERS.md; ISPD contest):
measure the layout attack surface, apply targeted engineering change
orders (ECOs), re-route what the ECOs disturbed, and repeat until
every metric is under its threshold — without adding functional
logic.  This module provides the ECO *primitives* (shield insertion,
ECO filler fill, critical-net burying) and the :func:`security_closure`
driver; the same primitives are exposed as registered flow passes in
:mod:`repro.flow.layout_library`, which is how the driver applies them
so each iteration lands in :class:`~repro.flow.manager.FlowTrace`
provenance.

The three defenses map one-to-one onto the three metrics of
:mod:`repro.physical.attack_surface`:

* **burying** re-routes critical nets below the probe-reachable top
  metals (probing exposure);
* **shield cells** occupy the free node directly above every exposed
  critical wire, shadowing it from probes and front-side lasers
  (probing + FIA exposure);
* **ECO fillers** consume exploitable free placement regions (Trojan
  insertability).

None of them touch the netlist, so functional equivalence is trivially
preserved — and still *checked* (SAT CEC) at the end, because "trivially
preserved" is exactly the kind of claim the paper says flows must verify
rather than assume.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..netlist import Netlist, ppa_report
from .attack_surface import (
    DEFAULT_MIN_FREE_CAPACITY,
    DEFAULT_MIN_TROJAN_SITES,
    DEFAULT_PROBE_LAYERS,
    DEFAULT_SPOT_RADIUS,
    fia_exposure,
    probing_exposure,
    trojan_insertability,
    uncovered_critical_nodes,
)
from .placement import Placement, annealing_placement
from .routing import Point, RoutedLayout, reroute_nets

__all__ = [
    "ClosureThresholds", "ClosureMetrics", "ClosureResult",
    "default_critical_nets", "measure_attack_surface", "insert_shields",
    "insert_fillers", "bury_critical_nets", "security_closure",
]


@dataclass(frozen=True)
class ClosureThresholds:
    """Closure targets: each metric must be at or below its bound."""

    probing: float = 0.05
    fia: float = 0.30
    trojan: float = 0.05


@dataclass(frozen=True)
class ClosureMetrics:
    """One joint measurement of the three attack-surface metrics."""

    probing: float
    fia: float
    trojan: float

    def violations(self, thresholds: ClosureThresholds) -> List[str]:
        """Names of the metrics above their thresholds."""
        out = []
        if self.probing > thresholds.probing:
            out.append("probing")
        if self.fia > thresholds.fia:
            out.append("fia")
        if self.trojan > thresholds.trojan:
            out.append("trojan")
        return out

    def meets(self, thresholds: ClosureThresholds) -> bool:
        """True when every metric is at or below its bound."""
        return not self.violations(thresholds)

    def as_dict(self) -> Dict[str, float]:
        """The three metrics as a plain JSON-able mapping."""
        return {"probing": self.probing, "fia": self.fia,
                "trojan": self.trojan}


def default_critical_nets(netlist: Netlist) -> List[str]:
    """The stock security-critical net set: every net feeding a primary
    output — the wires carrying the design's final secrets (key bytes,
    S-box outputs) that probing and fault attacks target first."""
    critical: List[str] = []
    seen: Set[str] = set()
    for out in netlist.outputs:
        for fanin in netlist.gates[out].fanins:
            if fanin not in seen and fanin in netlist.gates:
                seen.add(fanin)
                critical.append(fanin)
    return critical


def measure_attack_surface(layout: RoutedLayout,
                           occupied_sites: Iterable[Point],
                           critical_nets: Sequence[str],
                           probe_layers: int = DEFAULT_PROBE_LAYERS,
                           spot_radius: int = DEFAULT_SPOT_RADIUS,
                           min_trojan_sites: int = DEFAULT_MIN_TROJAN_SITES,
                           min_free_capacity: float =
                           DEFAULT_MIN_FREE_CAPACITY) -> ClosureMetrics:
    """All three attack-surface metrics of one layout, jointly."""
    probing = probing_exposure(layout, critical_nets,
                               probe_layers=probe_layers)
    fia = fia_exposure(layout, critical_nets, spot_radius=spot_radius)
    trojan = trojan_insertability(layout, occupied_sites,
                                  min_sites=min_trojan_sites,
                                  min_free_capacity=min_free_capacity)
    return ClosureMetrics(probing=probing.exposure, fia=fia.exposure,
                          trojan=trojan.exposure)


# ----------------------------------------------------------------------
# ECO primitives (netlist-neutral layout edits)
# ----------------------------------------------------------------------


def insert_shields(layout: RoutedLayout,
                   critical_nets: Sequence[str]) -> int:
    """Place a shield cell directly above every exposed critical node.

    An uncovered node has *nothing* above it by definition, so the node
    one layer up is always free — except on the topmost layer, which
    only burying can fix.  Returns the number of shields added.
    """
    added = 0
    for x, y, l in uncovered_critical_nodes(layout, critical_nets):
        if l >= layout.num_layers:
            continue
        node = (x, y, l + 1)
        if node not in layout.shields:
            layout.shields.add(node)
            added += 1
    return added


def insert_fillers(layout: RoutedLayout, occupied_sites: Iterable[Point],
                   min_sites: int = DEFAULT_MIN_TROJAN_SITES,
                   min_free_capacity: float = DEFAULT_MIN_FREE_CAPACITY
                   ) -> int:
    """Fill every exploitable free region with ECO filler cells.

    Fillers are non-functional fill: they occupy placement sites (so a
    Trojan cannot) without entering the netlist.  Returns the number of
    filler sites added.
    """
    report = trojan_insertability(layout, occupied_sites,
                                  min_sites=min_sites,
                                  min_free_capacity=min_free_capacity)
    added = 0
    for region in report.regions:
        for site in region.sites:
            if site not in layout.fillers:
                layout.fillers.add(site)
                added += 1
    return added


def bury_critical_nets(layout: RoutedLayout, netlist: Netlist,
                       placement: Placement,
                       critical_nets: Sequence[str],
                       probe_depth: int = DEFAULT_PROBE_LAYERS
                       ) -> List[str]:
    """Re-route critical nets below the probe-reachable top metals.

    Every critical net whose tree touches the top ``probe_depth``
    layers is ripped up and re-routed with a per-net layer cap of
    ``num_layers - probe_depth``; the cap persists in
    ``layout.layer_limits`` so later re-routes stay buried.  Returns
    the re-routed net names.
    """
    max_layer = max(1, layout.num_layers - probe_depth)
    victims = [name for name in critical_nets
               if name in layout.nets
               and layout.nets[name].max_layer > max_layer]
    if not victims:
        return []
    return reroute_nets(layout, netlist, placement, victims,
                        max_layer=max_layer)


# ----------------------------------------------------------------------
# The closure driver
# ----------------------------------------------------------------------


@dataclass
class ClosureResult:
    """Outcome of one :func:`security_closure` run.

    ``trace`` is the full :class:`~repro.flow.manager.FlowTrace` with
    one provenance entry per applied pass (route + each ECO), baseline
    and final metric measurements included.  Everything in
    :meth:`to_dict` except the trace's wall times is a pure function of
    ``(netlist, parameters, seed)`` — the determinism contract the
    service-layer closure job relies on.
    """

    design_name: str
    converged: bool
    iterations: int
    initial_metrics: ClosureMetrics
    metrics: ClosureMetrics
    thresholds: ClosureThresholds
    equivalent: bool
    area_overhead: float
    shields_added: int
    filler_sites: int
    buried_nets: List[str]
    failed_nets: List[str]
    critical_nets: List[str]
    trace: object                      # FlowTrace (import kept lazy)
    layout: RoutedLayout
    placement: Placement

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary (includes the serialized trace)."""
        return {
            "design": self.design_name,
            "converged": self.converged,
            "iterations": self.iterations,
            "initial_metrics": self.initial_metrics.as_dict(),
            "metrics": self.metrics.as_dict(),
            "thresholds": {"probing": self.thresholds.probing,
                           "fia": self.thresholds.fia,
                           "trojan": self.thresholds.trojan},
            "equivalent": self.equivalent,
            "area_overhead": self.area_overhead,
            "shields_added": self.shields_added,
            "filler_sites": self.filler_sites,
            "buried_nets": list(self.buried_nets),
            "failed_nets": list(self.failed_nets),
            "critical_nets": list(self.critical_nets),
            "trace": self.trace.to_dict(),
        }


def security_closure(netlist: Netlist,
                     placement: Optional[Placement] = None,
                     critical_nets: Optional[Sequence[str]] = None,
                     thresholds: ClosureThresholds = ClosureThresholds(),
                     num_layers: Optional[int] = None,
                     max_iterations: int = 4,
                     placement_iterations: int = 2000,
                     probe_layers: int = DEFAULT_PROBE_LAYERS,
                     spot_radius: int = DEFAULT_SPOT_RADIUS,
                     min_trojan_sites: int = DEFAULT_MIN_TROJAN_SITES,
                     min_free_capacity: float = DEFAULT_MIN_FREE_CAPACITY,
                     seed: int = 0) -> ClosureResult:
    """Iterate analyse -> ECO -> re-route until the layout closes.

    Places (if no placement is given) and routes the netlist, then
    repeatedly applies the registered ECO passes — bury, shield, fill,
    each only while its metric is violated — re-measuring after every
    pass.  Per-pass provenance, including which metrics were re-checked
    and why, is recorded in the returned trace exactly as the pass
    manager would record it.
    """
    # Flow imports are deferred: repro.flow imports repro.physical at
    # module level (library.py, layout_library.py), so importing it
    # back here at module level would cycle.
    from ..flow import FlowContext, FlowTrace, create_pass, netlist_design
    from ..flow.properties import layout_checkers
    from ..formal import check_equivalence

    golden = netlist.copy(netlist.name + "_golden")
    area_before = ppa_report(netlist).area
    if placement is None:
        placement = annealing_placement(
            netlist, iterations=placement_iterations,
            seed=seed).placement
    critical = list(critical_nets if critical_nets is not None
                    else default_critical_nets(netlist))

    ctx = FlowContext(netlist_design(netlist, seed=seed), seed=seed)
    ctx.placement = placement
    ctx.notes["critical-nets"] = critical
    checkers = layout_checkers(
        probing_threshold=thresholds.probing,
        fia_threshold=thresholds.fia,
        trojan_threshold=thresholds.trojan,
        probe_layers=probe_layers, spot_radius=spot_radius,
        min_trojan_sites=min_trojan_sites,
        min_free_capacity=min_free_capacity)
    trace = FlowTrace(netlist.name)

    def measure() -> ClosureMetrics:
        return measure_attack_surface(
            ctx.routing, placement.positions.values(), critical,
            probe_layers=probe_layers, spot_radius=spot_radius,
            min_trojan_sites=min_trojan_sites,
            min_free_capacity=min_free_capacity)

    def apply_pass(p, rechecks: Iterable, reason_map: Dict) -> None:
        """Run one pass and append manager-grade provenance."""
        from ..flow.manager import PassProvenance, PropertyRecheck

        cells = len(ctx.design.netlist.gates)
        epoch = ctx.design.netlist.mutation_epoch
        start = time.perf_counter()
        result = p.apply(ctx.design.netlist, ctx)
        prov = PassProvenance(
            pass_name=p.name, stage=p.stage,
            effects=p.effects.as_dict(),
            wall_ms=0.0, cells_before=cells,
            cells_after=len(ctx.design.netlist.gates),
            rewrites=result.rewrites, summary=result.summary,
            details=dict(result.details),
            epoch_before=epoch,
            epoch_after=ctx.design.netlist.mutation_epoch)
        for prop in rechecks:
            check = checkers[prop](ctx)
            prov.rechecks.append(PropertyRecheck(
                prop.value, f"after {p.name}", reason_map[prop],
                check.passed, check.value, check.message))
        prov.wall_ms = (time.perf_counter() - start) * 1000.0
        trace.passes.append(prov)

    from ..flow import SecurityProperty as P
    layout_props = (P.PROBING_EXPOSURE, P.FIA_EXPOSURE,
                    P.TROJAN_INSERTABILITY)

    # Route, then take the metric baseline.
    apply_pass(create_pass("route", num_layers=num_layers), (), {})
    from ..flow.manager import PropertyRecheck
    for prop in layout_props:
        check = checkers[prop](ctx)
        trace.baseline.append(PropertyRecheck(
            prop.value, "baseline", "baseline", check.passed,
            check.value, check.message))
    initial = measure()

    metrics = initial
    shields_added = 0
    filler_sites = 0
    buried: List[str] = []
    iterations = 0
    for _ in range(max_iterations):
        violated = metrics.violations(thresholds)
        if not violated:
            break
        iterations += 1
        if "probing" in violated:
            bury = create_pass("bury-critical-nets",
                               probe_depth=probe_layers)
            apply_pass(bury, layout_props, {
                P.PROBING_EXPOSURE: "establishes",
                P.FIA_EXPOSURE: "invalidates",
                P.TROJAN_INSERTABILITY: "invalidates"})
            buried.extend(ctx.notes.get("buried-nets", []))
            metrics = measure()
            violated = metrics.violations(thresholds)
        if "probing" in violated or "fia" in violated:
            shield = create_pass("shield-insertion")
            apply_pass(shield, layout_props, {
                P.PROBING_EXPOSURE: "establishes",
                P.FIA_EXPOSURE: "establishes",
                P.TROJAN_INSERTABILITY: "invalidates"})
            shields_added += int(ctx.notes.get("shields-added", 0))
            metrics = measure()
            violated = metrics.violations(thresholds)
        if "trojan" in violated:
            filler = create_pass("eco-filler",
                                 min_sites=min_trojan_sites,
                                 min_free_capacity=min_free_capacity)
            apply_pass(filler, (P.TROJAN_INSERTABILITY,),
                       {P.TROJAN_INSERTABILITY: "establishes"})
            filler_sites += int(ctx.notes.get("filler-sites", 0))
            metrics = measure()

    # Final verification: the three metrics plus CEC against the
    # pre-closure netlist (ECOs are layout-only; prove it anyway).
    equivalence = check_equivalence(golden, ctx.design.netlist)
    area_after = ppa_report(ctx.design.netlist).area
    overhead = ((area_after - area_before) / area_before
                if area_before else 0.0)
    for prop in layout_props:
        check = checkers[prop](ctx)
        trace.final.append(PropertyRecheck(
            prop.value, "final", "baseline", check.passed,
            check.value, check.message))
    trace.final.append(PropertyRecheck(
        P.FUNCTIONAL_EQUIVALENCE.value, "final", "baseline",
        equivalence.equivalent,
        0.0 if equivalence.equivalent else 1.0,
        "SAT CEC against pre-closure netlist: "
        + ("equivalent" if equivalence.equivalent else
           f"MISMATCH on {equivalence.mismatched_output}")))

    return ClosureResult(
        design_name=netlist.name,
        converged=metrics.meets(thresholds),
        iterations=iterations,
        initial_metrics=initial,
        metrics=metrics,
        thresholds=thresholds,
        equivalent=equivalence.equivalent,
        area_overhead=overhead,
        shields_added=shields_added,
        filler_sites=filler_sites,
        buried_nets=buried,
        failed_nets=list(ctx.routing.failed),
        critical_nets=critical,
        trace=trace,
        layout=ctx.routing,
        placement=placement)
