"""Cell placement on a grid die.

Physical synthesis (paper Sec. III-C) is where security meets geometry:
split manufacturing, sensor coverage, and proximity attacks are all
defined on cell locations.  This module provides a half-perimeter
wirelength (HPWL) objective and a simulated-annealing placer — the
classical PnR core, deliberately security-unaware so the security
passes in :mod:`repro.ip.split` have realistic layout hints to attack
and to dissolve.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from ..netlist import GateType, Netlist

Point = Tuple[int, int]


@dataclass
class Placement:
    """Cell coordinates on an integer grid."""

    positions: Dict[str, Point]
    width: int
    height: int

    def location(self, cell: str) -> Point:
        """Grid coordinates of ``cell``."""
        return self.positions[cell]

    def distance(self, cell_a: str, cell_b: str) -> float:
        """Manhattan distance between two placed cells."""
        (xa, ya), (xb, yb) = self.positions[cell_a], self.positions[cell_b]
        return abs(xa - xb) + abs(ya - yb)

    def copy(self) -> "Placement":
        """Independent copy (positions dict is duplicated)."""
        return Placement(dict(self.positions), self.width, self.height)


def _placeable_cells(netlist: Netlist) -> List[str]:
    return [
        g.name for g in netlist.gates.values()
        if g.gate_type not in (GateType.CONST0, GateType.CONST1)
    ]


def _site_list(width: int, height: int) -> List[Point]:
    """All legal sites of a ``width`` x ``height`` die, row-major."""
    return [(x, y) for x in range(width) for y in range(height)]


def _die_dimensions(cell_count: int, width: Optional[int],
                    height: Optional[int]) -> Tuple[int, int]:
    """Resolve die dimensions, defaulting to ~1.5x cell area, square."""
    if width is None or height is None:
        side = max(2, math.ceil(math.sqrt(cell_count * 1.5)))
        width = width or side
        height = height or side
    if width * height < cell_count:
        raise ValueError("die too small for the cell count")
    return width, height


def random_placement(netlist: Netlist, width: Optional[int] = None,
                     height: Optional[int] = None,
                     seed: int = 0,
                     sites: Optional[List[Point]] = None) -> Placement:
    """Uniform random legal placement (one cell per site).

    ``sites`` lets a caller that already enumerated the die (e.g. the
    annealer) pass the list in instead of rebuilding it; it is not
    mutated.
    """
    cells = _placeable_cells(netlist)
    width, height = _die_dimensions(len(cells), width, height)
    rng = random.Random(seed)
    shuffled = list(sites) if sites is not None else _site_list(width,
                                                                height)
    rng.shuffle(shuffled)
    return Placement(dict(zip(cells, shuffled)), width, height)


def nets_for_wirelength(netlist: Netlist) -> List[List[str]]:
    """One multi-pin net per driver: [driver, consumer1, ...]."""
    fanout = netlist.fanout_map()
    nets = []
    for driver, consumers in fanout.items():
        if not consumers:
            continue
        if netlist.gates[driver].gate_type in (GateType.CONST0,
                                               GateType.CONST1):
            continue
        nets.append([driver] + consumers)
    return nets


def hpwl(placement: Placement, nets: Iterable[List[str]]) -> float:
    """Total half-perimeter wirelength over multi-pin nets."""
    total = 0.0
    pos = placement.positions
    for net in nets:
        xs = [pos[c][0] for c in net if c in pos]
        ys = [pos[c][1] for c in net if c in pos]
        if len(xs) < 2:
            continue
        total += (max(xs) - min(xs)) + (max(ys) - min(ys))
    return total


@dataclass
class PlacementResult:
    placement: Placement
    initial_hpwl: float
    final_hpwl: float
    moves_accepted: int

    @property
    def improvement(self) -> float:
        if self.initial_hpwl == 0:
            return 0.0
        return 1.0 - self.final_hpwl / self.initial_hpwl


def annealing_placement(netlist: Netlist,
                        iterations: int = 20_000,
                        seed: int = 0,
                        width: Optional[int] = None,
                        height: Optional[int] = None,
                        initial_temperature: float = 4.0,
                        ) -> PlacementResult:
    """Simulated-annealing placement minimizing HPWL.

    Moves are cell swaps / relocations to empty sites; temperature
    follows a geometric schedule.  Incremental cost evaluation keeps
    this fast enough for a few thousand cells.
    """
    rng = random.Random(seed)
    # One site enumeration serves both the initial placement and the
    # annealer's move generation.
    width, height = _die_dimensions(len(_placeable_cells(netlist)),
                                    width, height)
    all_sites = _site_list(width, height)
    placement = random_placement(netlist, width, height, seed,
                                 sites=all_sites)
    nets = nets_for_wirelength(netlist)
    cells = list(placement.positions)
    positions = placement.positions
    # Per-cell net membership for incremental evaluation.
    nets_of: Dict[str, List[int]] = {c: [] for c in cells}
    for idx, net in enumerate(nets):
        for c in net:
            if c in nets_of:
                nets_of[c].append(idx)

    def one_net_cost(i: int) -> float:
        xs = []
        ys = []
        for c in nets[i]:
            x, y = positions[c]
            xs.append(x)
            ys.append(y)
        return (max(xs) - min(xs)) + (max(ys) - min(ys))

    # Cached per-net HPWL: each move only re-evaluates the moved cells'
    # nets and reads everything else from the cache, instead of
    # recomputing the affected bounding boxes twice per move.
    net_costs = [one_net_cost(i) for i in range(len(nets))]
    occupied: Dict[Point, str] = {p: c for c, p in positions.items()}
    initial = sum(net_costs)
    temperature = initial_temperature
    cooling = 0.995 ** (20000 / max(1, iterations))
    accepted = 0
    for _ in range(iterations):
        cell = rng.choice(cells)
        target = rng.choice(all_sites)
        if target == positions[cell]:
            # No-op move: nothing to evaluate, just keep cooling.
            temperature *= cooling
            continue
        other = occupied.get(target)
        if other is None:
            affected = nets_of[cell]
        else:
            affected = set(nets_of[cell])
            affected.update(nets_of[other])
        old_pos = positions[cell]
        positions[cell] = target
        if other is not None:
            positions[other] = old_pos
        delta = 0.0
        updates = []
        for i in affected:
            cost = one_net_cost(i)
            delta += cost - net_costs[i]
            updates.append((i, cost))
        if delta <= 0 or rng.random() < math.exp(-delta / max(temperature,
                                                              1e-9)):
            accepted += 1
            for i, cost in updates:
                net_costs[i] = cost
            occupied[target] = cell
            if other is not None:
                occupied[old_pos] = other
            else:
                del occupied[old_pos]
        else:
            positions[cell] = old_pos
            if other is not None:
                positions[other] = target
        temperature *= cooling
    final = hpwl(placement, nets)
    return PlacementResult(placement, initial, final, accepted)
