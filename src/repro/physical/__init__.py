"""Physical synthesis: placement, wire-aware timing, layer assignment."""

from .placement import (
    Placement,
    PlacementResult,
    annealing_placement,
    hpwl,
    nets_for_wirelength,
    random_placement,
)
from .timing import (
    PathDelayReport,
    WIRE_DELAY_PER_UNIT,
    arrival_times_placed,
    critical_path_placed,
    ir_drop_ok,
    output_path_delays,
    power_density_map,
    wire_delay,
)
from .layers import (
    DEFAULT_THRESHOLDS,
    Wire,
    assign_layers,
    layer_histogram,
    split_wires,
)

__all__ = [
    "Placement", "PlacementResult", "annealing_placement", "hpwl",
    "nets_for_wirelength", "random_placement",
    "PathDelayReport", "WIRE_DELAY_PER_UNIT", "arrival_times_placed",
    "critical_path_placed", "ir_drop_ok", "output_path_delays",
    "power_density_map", "wire_delay",
    "DEFAULT_THRESHOLDS", "Wire", "assign_layers", "layer_histogram",
    "split_wires",
]
