"""Physical synthesis: placement, timing, routing, security closure."""

from .placement import (
    Placement,
    PlacementResult,
    annealing_placement,
    hpwl,
    nets_for_wirelength,
    random_placement,
)
from .timing import (
    PathDelayReport,
    WIRE_DELAY_PER_UNIT,
    arrival_times_placed,
    critical_path_placed,
    ir_drop_ok,
    output_path_delays,
    power_density_map,
    wire_delay,
)
from .layers import (
    DEFAULT_THRESHOLDS,
    Wire,
    assign_layers,
    layer_histogram,
    split_wires,
)
from .routing import (
    DEFAULT_NUM_LAYERS,
    RoutedLayout,
    RoutedNet,
    maze_route,
    reroute_nets,
    routing_nets,
)
from .attack_surface import (
    FiaReport,
    ProbingReport,
    TrojanReport,
    fia_exposure,
    probing_exposure,
    trojan_insertability,
    uncovered_critical_nodes,
)
from .closure import (
    ClosureMetrics,
    ClosureResult,
    ClosureThresholds,
    bury_critical_nets,
    default_critical_nets,
    insert_fillers,
    insert_shields,
    measure_attack_surface,
    security_closure,
)

__all__ = [
    "Placement", "PlacementResult", "annealing_placement", "hpwl",
    "nets_for_wirelength", "random_placement",
    "PathDelayReport", "WIRE_DELAY_PER_UNIT", "arrival_times_placed",
    "critical_path_placed", "ir_drop_ok", "output_path_delays",
    "power_density_map", "wire_delay",
    "DEFAULT_THRESHOLDS", "Wire", "assign_layers", "layer_histogram",
    "split_wires",
    "DEFAULT_NUM_LAYERS", "RoutedLayout", "RoutedNet", "maze_route",
    "reroute_nets", "routing_nets",
    "FiaReport", "ProbingReport", "TrojanReport", "fia_exposure",
    "probing_exposure", "trojan_insertability",
    "uncovered_critical_nodes",
    "ClosureMetrics", "ClosureResult", "ClosureThresholds",
    "bury_critical_nets", "default_critical_nets", "insert_fillers",
    "insert_shields", "measure_attack_surface", "security_closure",
]
