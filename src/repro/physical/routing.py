"""Multi-layer grid maze routing.

The placement stage (:mod:`repro.physical.placement`) ends with cell
coordinates; every physical-design security scheme in the paper's
Table II — anti-probing shields, Trojan-prevention fill, split
manufacturing — is defined on *routed geometry*, not on placements.
This module supplies that geometry: an A* maze router over a
multi-layer routing grid with unit edge capacity, deterministic net
ordering, and rip-up-and-reroute for congested nets.

Model
-----

The die is a ``width x height`` grid of sites with ``num_layers``
metal layers above it.  Routing nodes are ``(x, y, layer)`` triples
(``layer`` is 1-based; cell pins sit on layer 1).  Lateral edges join
4-neighbours on the same layer; via edges join the same ``(x, y)`` on
*adjacent* layers.  Every edge carries at most one net — exclusivity
is the invariant the attack-surface analyses and the hypothesis tests
rely on.  Shield cells (:mod:`repro.physical.closure`) occupy whole
nodes and block routing through them.

Each multi-pin net is routed as a tree: the driver pin seeds the tree
and every sink is attached by an A* search from the current tree
(cost 0 on its own wires) to the sink pin.  Nets are processed in a
deterministic order (bounding-box size, then name); a net that cannot
be routed around existing wires runs a second, permissive search that
may cross foreign edges at a penalty, and the owners of the crossed
edges are ripped up and re-queued.  Routing is therefore a pure
function of ``(netlist order, placement, parameters)``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from ..netlist import GateType, Netlist
from .placement import Placement

Point = Tuple[int, int]
Node = Tuple[int, int, int]          # (x, y, layer); layer is 1-based
Edge = Tuple[Node, Node]             # canonically ordered: edge[0] < edge[1]

#: Default number of metal layers (matches the M1..M6 stack implied by
#: :data:`repro.physical.layers.DEFAULT_THRESHOLDS`).
DEFAULT_NUM_LAYERS = 6

#: Cost of one via hop relative to one lateral grid step.
DEFAULT_VIA_COST = 2

#: Cost added per foreign edge in the permissive (rip-up) search.
_FOREIGN_PENALTY = 64

#: Weighted-A* heuristic inflation (see ``_GridSearch.search``).
_H_WEIGHT = 2

#: Routing-grid refinement: routing tracks per placement site per axis.
#: Pins sit at ``(x * scale, y * scale)``; the intermediate nodes are
#: the extra tracks that make neighbouring pins routable without
#: fighting over the same grid edges.
DEFAULT_GRID_SCALE = 2


def _edge(a: Node, b: Node) -> Edge:
    """Canonical (sorted) form of the edge between two adjacent nodes."""
    return (a, b) if a <= b else (b, a)


def is_via_edge(edge: Edge) -> bool:
    """True if ``edge`` joins two layers (same ``(x, y)``, adjacent)."""
    return edge[0][2] != edge[1][2]


@dataclass
class RoutedNet:
    """One routed multi-pin net: a wire tree from driver to sinks.

    ``branches`` maps each sink site to the node path that attached it
    to the tree (from the attachment node to the sink pin, inclusive);
    the union of branch edges is the net's wire tree.
    """

    net: str
    driver_pin: Point
    sink_pins: List[Point]
    branches: Dict[Point, List[Node]] = field(default_factory=dict)

    def edges(self) -> List[Edge]:
        """All unit edges of the wire tree (deduplicated, stable order)."""
        seen: Set[Edge] = set()
        out: List[Edge] = []
        for sink in self.sink_pins:
            path = self.branches.get(sink, [])
            for a, b in zip(path, path[1:]):
                e = _edge(a, b)
                if e not in seen:
                    seen.add(e)
                    out.append(e)
        return out

    def nodes(self) -> Set[Node]:
        """All grid nodes touched by the wire tree (pins included)."""
        out: Set[Node] = {(self.driver_pin[0], self.driver_pin[1], 1)}
        for path in self.branches.values():
            out.update(path)
        return out

    @property
    def wirelength(self) -> int:
        """Number of lateral unit edges in the tree."""
        return sum(1 for e in self.edges() if not is_via_edge(e))

    @property
    def via_count(self) -> int:
        """Number of via edges in the tree."""
        return sum(1 for e in self.edges() if is_via_edge(e))

    def vias(self) -> List[Tuple[int, int, int]]:
        """Via positions as ``(x, y, lower_layer)`` triples."""
        return [(e[0][0], e[0][1], min(e[0][2], e[1][2]))
                for e in self.edges() if is_via_edge(e)]

    @property
    def max_layer(self) -> int:
        """Topmost metal layer the tree touches."""
        return max((n[2] for n in self.nodes()), default=1)

    def branch_length(self, sink: Point) -> int:
        """Lateral steps on the branch that attaches ``sink``."""
        path = self.branches.get(sink, [])
        return sum(1 for a, b in zip(path, path[1:]) if a[2] == b[2])

    def branch_max_layer(self, sink: Point) -> int:
        """Topmost layer on the branch that attaches ``sink``."""
        path = self.branches.get(sink, [])
        return max((n[2] for n in path), default=1)

    def branch_split_vias(self, sink: Point, split_layer: int
                          ) -> Optional[Tuple[Point, Point]]:
        """Where the branch to ``sink`` crosses ``split_layer``.

        Returns ``(driver_side, sink_side)`` — the ``(x, y)`` of the
        last below-split node before the branch first rises above the
        split, and before it last returns below — or ``None`` if the
        branch never rises above the split (fully FEOL-visible).
        These are the dangling-via positions the untrusted foundry
        observes under split manufacturing.
        """
        path = self.branches.get(sink)
        if not path or max(n[2] for n in path) <= split_layer:
            return None
        first = next(i for i, n in enumerate(path)
                     if n[2] > split_layer)
        last = max(i for i, n in enumerate(path) if n[2] > split_layer)
        driver_side = path[max(0, first - 1)]
        sink_side = path[min(len(path) - 1, last + 1)]
        return ((driver_side[0], driver_side[1]),
                (sink_side[0], sink_side[1]))

    def as_dict(self) -> Dict[str, object]:
        """JSON-able form (lists for tuples; inverse of
        :meth:`from_dict`)."""
        return {
            "net": self.net,
            "driver_pin": list(self.driver_pin),
            "sink_pins": [list(p) for p in self.sink_pins],
            "branches": [[list(sink), [list(n) for n in path]]
                         for sink, path in self.branches.items()],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoutedNet":
        """Rebuild from :meth:`as_dict` output."""
        return cls(
            net=str(data["net"]),
            driver_pin=tuple(data["driver_pin"]),
            sink_pins=[tuple(p) for p in data["sink_pins"]],
            branches={tuple(sink): [tuple(n) for n in path]
                      for sink, path in data["branches"]},
        )


@dataclass
class RoutedLayout:
    """Concrete per-net wire geometry over a multi-layer grid.

    ``edge_owner`` is the exclusivity ledger (one net per edge);
    ``shields`` are geometry-only anti-probing cells occupying whole
    nodes; ``fillers`` are ECO filler sites on the placement grid;
    ``failed`` lists nets the router gave up on (pathological pin
    congestion — empty for every benchmark design in the repo).
    """

    width: int
    height: int
    num_layers: int
    #: Placement-grid dimensions and the routing-tracks-per-site
    #: factor: ``width == (site_width - 1) * scale + 1`` (pins at
    #: ``site * scale``).  ``fillers`` are in placement-site units;
    #: everything else lives on the routing grid.
    site_width: int = 0
    site_height: int = 0
    scale: int = 1
    nets: Dict[str, RoutedNet] = field(default_factory=dict)
    edge_owner: Dict[Edge, str] = field(default_factory=dict)
    shields: Set[Node] = field(default_factory=set)
    fillers: Set[Point] = field(default_factory=set)
    failed: List[str] = field(default_factory=list)
    layer_limits: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.site_width:
            self.site_width = self.width
        if not self.site_height:
            self.site_height = self.height

    def site_node(self, site: Point, layer: int = 1) -> Node:
        """The routing-grid node of a placement site's pin."""
        return (site[0] * self.scale, site[1] * self.scale, layer)

    # -- geometry queries ---------------------------------------------

    def occupancy(self, layer: int) -> np.ndarray:
        """Boolean ``(width, height)`` map of nodes with geometry on
        ``layer`` (net wires and shield cells)."""
        grid = np.zeros((self.width, self.height), dtype=bool)
        for routed in self.nets.values():
            for x, y, l in routed.nodes():
                if l == layer:
                    grid[x, y] = True
        for x, y, l in self.shields:
            if l == layer:
                grid[x, y] = True
        return grid

    def occupancy_stack(self) -> np.ndarray:
        """Boolean ``(num_layers, width, height)`` geometry tensor
        (layer axis is 0-based: index ``l - 1`` holds layer ``l``)."""
        stack = np.zeros((self.num_layers, self.width, self.height),
                         dtype=bool)
        for routed in self.nets.values():
            for x, y, l in routed.nodes():
                stack[l - 1, x, y] = True
        for x, y, l in self.shields:
            stack[l - 1, x, y] = True
        return stack

    @property
    def total_wirelength(self) -> int:
        """Lateral unit-edge count over all routed nets."""
        return sum(n.wirelength for n in self.nets.values())

    @property
    def total_vias(self) -> int:
        """Via count over all routed nets."""
        return sum(n.via_count for n in self.nets.values())

    def layer_histogram(self) -> Dict[int, int]:
        """Lateral edge count per layer."""
        hist: Dict[int, int] = {}
        for e in self.edge_owner:
            if not is_via_edge(e):
                hist[e[0][2]] = hist.get(e[0][2], 0) + 1
        return hist

    def lateral_edge_total(self, layers: Iterable[int],
                           x0: int = 0, y0: int = 0,
                           x1: Optional[int] = None,
                           y1: Optional[int] = None) -> int:
        """Lateral edge capacity of a region over the given layers."""
        x1 = self.width - 1 if x1 is None else x1
        y1 = self.height - 1 if y1 is None else y1
        w = max(0, x1 - x0 + 1)
        h = max(0, y1 - y0 + 1)
        per_layer = max(0, (w - 1)) * h + w * max(0, (h - 1))
        return per_layer * len(list(layers))

    def lateral_edges_used(self, layers: Iterable[int],
                           x0: int = 0, y0: int = 0,
                           x1: Optional[int] = None,
                           y1: Optional[int] = None) -> int:
        """Owned lateral edges inside a region over the given layers."""
        x1 = self.width - 1 if x1 is None else x1
        y1 = self.height - 1 if y1 is None else y1
        layer_set = set(layers)
        used = 0
        for (a, b) in self.edge_owner:
            if a[2] != b[2] or a[2] not in layer_set:
                continue
            if (x0 <= a[0] <= x1 and y0 <= a[1] <= y1
                    and x0 <= b[0] <= x1 and y0 <= b[1] <= y1):
                used += 1
        return used

    # -- mutation (rip-up, ECO hooks) ---------------------------------

    def claim(self, net: str, routed: RoutedNet) -> None:
        """Install ``routed`` and register its edges as owned."""
        self.nets[net] = routed
        for e in routed.edges():
            self.edge_owner[e] = net

    def remove_net(self, net: str) -> None:
        """Rip a net out of the layout, releasing its edges."""
        routed = self.nets.pop(net, None)
        if routed is None:
            return
        for e in routed.edges():
            if self.edge_owner.get(e) == net:
                del self.edge_owner[e]

    def rip_edges(self, net: str, stolen: Set[Edge]) -> List[Point]:
        """Partially rip ``net``: drop only the branches that use a
        ``stolen`` edge (plus branches thereby disconnected from the
        driver) and return the sink pins that lost their connection.

        Surviving branches stay claimed; a net that loses every branch
        is removed outright.  This is what keeps rip-up-and-reroute
        from cascading — stealing one edge from a high-fanout net
        re-routes one branch, not the whole tree.
        """
        routed = self.nets.get(net)
        if routed is None:
            return []
        connected: Set[Node] = {(routed.driver_pin[0],
                                 routed.driver_pin[1], 1)}
        keep: Dict[Point, List[Node]] = {}
        lost: List[Point] = []
        for sink in routed.sink_pins:
            path = routed.branches.get(sink, [])
            ok = (bool(path) and path[0] in connected
                  and not any(_edge(a, b) in stolen
                              for a, b in zip(path, path[1:])))
            if ok:
                keep[sink] = path
                connected.update(path)
            else:
                lost.append(sink)
        for e in routed.edges():
            if self.edge_owner.get(e) == net:
                del self.edge_owner[e]
        if not keep:
            del self.nets[net]
            return lost
        routed.sink_pins = [s for s in routed.sink_pins if s in keep]
        routed.branches = keep
        for e in routed.edges():
            self.edge_owner[e] = net
        return lost

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-able form; inverse of :meth:`from_dict`."""
        return {
            "width": self.width,
            "height": self.height,
            "num_layers": self.num_layers,
            "site_width": self.site_width,
            "site_height": self.site_height,
            "scale": self.scale,
            "nets": [self.nets[name].as_dict()
                     for name in sorted(self.nets)],
            "shields": [list(n) for n in sorted(self.shields)],
            "fillers": [list(p) for p in sorted(self.fillers)],
            "failed": list(self.failed),
            "layer_limits": [[name, self.layer_limits[name]]
                             for name in sorted(self.layer_limits)],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RoutedLayout":
        """Rebuild a layout (edge ownership re-derived) from
        :meth:`to_dict` output."""
        layout = cls(width=int(data["width"]), height=int(data["height"]),
                     num_layers=int(data["num_layers"]),
                     site_width=int(data.get("site_width", 0)),
                     site_height=int(data.get("site_height", 0)),
                     scale=int(data.get("scale", 1)),
                     shields={tuple(n) for n in data.get("shields", [])},
                     fillers={tuple(p) for p in data.get("fillers", [])},
                     failed=list(data.get("failed", [])),
                     layer_limits={name: int(limit) for name, limit
                                   in data.get("layer_limits", [])})
        for net_data in data.get("nets", []):
            routed = RoutedNet.from_dict(net_data)
            layout.claim(routed.net, routed)
        return layout


def routing_nets(netlist: Netlist, placement: Placement
                 ) -> List[Tuple[str, Point, List[Point]]]:
    """Routable nets as ``(driver, driver_site, sink_sites)``.

    Constants are not placed and need no wires; sinks are deduplicated
    per site (a gate consuming the same net twice is one pin).
    """
    out = []
    for driver, consumers in netlist.fanout_map().items():
        if not consumers:
            continue
        if netlist.gates[driver].gate_type in (GateType.CONST0,
                                               GateType.CONST1):
            continue
        if driver not in placement.positions:
            continue
        sinks: List[Point] = []
        seen: Set[Point] = set()
        for sink in consumers:
            if sink not in placement.positions:
                continue
            site = placement.positions[sink]
            if site not in seen:
                seen.add(site)
                sinks.append(site)
        if sinks:
            out.append((driver, placement.positions[driver], sinks))
    return out


def _net_order(nets: Sequence[Tuple[str, Point, List[Point]]]
               ) -> List[Tuple[str, Point, List[Point]]]:
    """Deterministic routing order: small bounding boxes first (short
    nets are hard to detour, so they claim their edges early), name as
    the tie-break."""
    def bbox(entry) -> int:
        _name, driver, sinks = entry
        xs = [driver[0]] + [s[0] for s in sinks]
        ys = [driver[1]] + [s[1] for s in sinks]
        return (max(xs) - min(xs)) + (max(ys) - min(ys))
    return sorted(nets, key=lambda e: (bbox(e), e[0]))


class _GridSearch:
    """Shared A* machinery bound to one layout under construction."""

    def __init__(self, layout: RoutedLayout, via_cost: int) -> None:
        self.layout = layout
        self.via_cost = via_cost
        self.counter = itertools.count()  # deterministic heap tie-break
        #: Negotiated-congestion history (PathFinder-style): edges that
        #: keep getting fought over accrue cost for *every* net, so the
        #: loser of a rip-up war eventually detours instead of ripping
        #: the same edge back.
        self.history: Dict[Edge, int] = {}

    def add_history(self, edge: Edge, amount: int = 2) -> None:
        self.history[edge] = self.history.get(edge, 0) + amount

    def search(self, net: str, sources: Set[Node], target: Node,
               limit: int, permissive: bool,
               penalty: int = _FOREIGN_PENALTY,
               window: Optional[Tuple[int, int, int, int]] = None
               ) -> Optional[List[Node]]:
        """A* from any node in ``sources`` to ``target``.

        Strict mode treats foreign-owned edges as walls; permissive
        mode crosses them at ``penalty`` each (the rip-up candidates —
        callers escalate the penalty on repeatedly ripped nets so
        rip-up wars converge to detours).  Shield nodes are always
        walls.  ``window`` restricts the search to an ``(x0, y0, x1,
        y1)`` region — the standard routing-window speedup; callers
        fall back to an unwindowed search when the windowed one fails.
        Returns the node path source -> target, or ``None``.

        The heuristic is inflated by ``_H_WEIGHT`` (weighted A*): the
        congestion-history costs make true distances exceed the
        Manhattan bound, which would otherwise degrade A* toward a
        full-window Dijkstra flood.  Paths may be a constant factor
        off shortest — irrelevant for a router, and still
        deterministic.
        """
        layout = self.layout
        tx, ty, _tl = target
        if window is None:
            x_lo, y_lo = 0, 0
            x_hi, y_hi = layout.width - 1, layout.height - 1
        else:
            x_lo, y_lo, x_hi, y_hi = window
        via_cost = self.via_cost
        weight = _H_WEIGHT
        owner_of = layout.edge_owner
        history = self.history
        shields = layout.shields

        best: Dict[Node, int] = {}
        came: Dict[Node, Node] = {}
        heap: List[Tuple[int, int, int, Node]] = []
        counter = self.counter
        heappush, heappop = heapq.heappush, heapq.heappop
        best_get, owner_get = best.get, owner_of.get
        history_get = history.get
        for s in sorted(sources):
            if x_lo <= s[0] <= x_hi and y_lo <= s[1] <= y_hi:
                best[s] = 0
                f = weight * (abs(s[0] - tx) + abs(s[1] - ty)
                              + via_cost * (s[2] - 1))
                heappush(heap, (f, next(counter), 0, s))
        while heap:
            _f, _tie, g, node = heappop(heap)
            if g > best_get(node, -1):
                continue
            if node == target:
                path = [node]
                while node in came:
                    node = came[node]
                    path.append(node)
                path.reverse()
                return path
            x, y, l = node
            neighbours = []
            if x < x_hi:
                neighbours.append((x + 1, y, l))
            if x > x_lo:
                neighbours.append((x - 1, y, l))
            if y < y_hi:
                neighbours.append((x, y + 1, l))
            if y > y_lo:
                neighbours.append((x, y - 1, l))
            if l < limit:
                neighbours.append((x, y, l + 1))
            if l > 1:
                neighbours.append((x, y, l - 1))
            for nxt in neighbours:
                if nxt in shields:
                    continue
                e = (node, nxt) if node <= nxt else (nxt, node)
                owner = owner_get(e)
                nl = nxt[2]
                step = (via_cost if l != nl else 1) + history_get(e, 0)
                if owner is not None and owner != net:
                    if not permissive:
                        continue
                    step += penalty
                ng = g + step
                if ng < best_get(nxt, ng + 1):
                    best[nxt] = ng
                    came[nxt] = node
                    f = ng + weight * (abs(nxt[0] - tx) + abs(nxt[1] - ty)
                                       + via_cost * (nl - 1))
                    heappush(heap, (f, next(counter), ng, nxt))
        return None


_WINDOW_MARGIN = 8


def _net_window(layout: RoutedLayout, driver: Point, sinks: List[Point],
                margin: int = _WINDOW_MARGIN) -> Tuple[int, int, int, int]:
    """The net's pin bounding box grown by ``margin``, clamped to grid."""
    xs = [driver[0]] + [s[0] for s in sinks]
    ys = [driver[1]] + [s[1] for s in sinks]
    return (max(0, min(xs) - margin), max(0, min(ys) - margin),
            min(layout.width - 1, max(xs) + margin),
            min(layout.height - 1, max(ys) + margin))


def _route_one(search: _GridSearch, layout: RoutedLayout, name: str,
               driver: Point, sinks: List[Point], limit: int,
               penalty: int = _FOREIGN_PENALTY,
               base: Optional[RoutedNet] = None
               ) -> Tuple[Optional[RoutedNet], Dict[str, List[Point]]]:
    """Route ``sinks`` into one net tree; returns ``(routed, ripped)``
    where ``ripped`` maps each partially ripped-up victim net to the
    sink pins it lost.

    ``base`` is the net's surviving tree from an earlier partial
    rip-up — new branches extend it.  Sinks are attached
    nearest-first.  Each branch tries the strict search inside the
    net's pin window (the usual global-router speedup), then the
    permissive full-grid search, whose escalating foreign-edge
    penalty still prefers any conflict-free detour over a rip-up.
    Victims lose only the branches the stolen edges carried
    (:meth:`RoutedLayout.rip_edges`), never their whole tree — which
    is what keeps the negotiation from cascading.

    On failure the branches attached by *this call* are rolled back
    (``base`` is left claimed untouched); rip-ups already performed
    are not undone — the caller re-queues the victims regardless.
    """
    if base is not None:
        routed = RoutedNet(name, driver, list(base.sink_pins),
                           dict(base.branches))
    else:
        routed = RoutedNet(name, driver, [])
    tree: Set[Node] = routed.nodes()
    ripped: Dict[str, List[Point]] = {}
    new_edges: List[Edge] = []
    window = _net_window(layout, driver, sinks)
    order = sorted(sinks, key=lambda s: (abs(s[0] - driver[0])
                                         + abs(s[1] - driver[1]), s))
    for sink in order:
        target = (sink[0], sink[1], 1)
        if target in tree:
            if sink not in routed.branches:
                routed.sink_pins.append(sink)
                routed.branches[sink] = [target]
            continue
        path = search.search(name, tree, target, limit,
                             permissive=False, window=window)
        if path is None:
            path = search.search(name, tree, target, limit,
                                 permissive=True, penalty=penalty)
            if path is None:
                for e in new_edges:
                    if layout.edge_owner.get(e) == name:
                        del layout.edge_owner[e]
                return None, ripped
        stolen: Dict[str, Set[Edge]] = {}
        for a, b in zip(path, path[1:]):
            e = _edge(a, b)
            owner = layout.edge_owner.get(e)
            if owner is not None and owner != name:
                stolen.setdefault(owner, set()).add(e)
                search.add_history(e)
        for owner, edges in stolen.items():
            lost = layout.rip_edges(owner, edges)
            ripped.setdefault(owner, []).extend(lost)
        routed.sink_pins.append(sink)
        routed.branches[sink] = path
        tree.update(path)
        # Claim eagerly so this net's later branches and the permissive
        # search see its own wires as free.
        for a, b in zip(path, path[1:]):
            e = _edge(a, b)
            if layout.edge_owner.get(e) != name:
                new_edges.append(e)
                layout.edge_owner[e] = name
    return routed, ripped


def maze_route(netlist: Netlist, placement: Placement,
               num_layers: int = DEFAULT_NUM_LAYERS,
               via_cost: int = DEFAULT_VIA_COST,
               grid_scale: int = DEFAULT_GRID_SCALE,
               layer_limits: Optional[Mapping[str, int]] = None,
               max_rip_ups: Optional[int] = None) -> RoutedLayout:
    """Route every net of a placed netlist; returns a
    :class:`RoutedLayout`.

    The routing grid is ``grid_scale`` tracks per placement site per
    axis; ``layer_limits`` caps the topmost layer per net name (the
    burying/reroute defense uses it); ``max_rip_ups`` bounds the total
    rip-up-and-reroute work.  The result is deterministic for a fixed
    netlist order and placement.
    """
    layout = RoutedLayout(
        width=(placement.width - 1) * grid_scale + 1,
        height=(placement.height - 1) * grid_scale + 1,
        num_layers=num_layers,
        site_width=placement.width, site_height=placement.height,
        scale=grid_scale,
        layer_limits=dict(layer_limits or {}))
    nets = _net_order(_scaled(routing_nets(netlist, placement),
                              grid_scale))
    route_all(layout, nets, via_cost=via_cost, max_rip_ups=max_rip_ups)
    return layout


def _scaled(nets: List[Tuple[str, Point, List[Point]]], scale: int
            ) -> List[Tuple[str, Point, List[Point]]]:
    """Placement-site pins mapped onto the routing grid."""
    return [(name, (driver[0] * scale, driver[1] * scale),
             [(s[0] * scale, s[1] * scale) for s in sinks])
            for name, driver, sinks in nets]


def route_all(layout: RoutedLayout,
              nets: Sequence[Tuple[str, Point, List[Point]]],
              via_cost: int = DEFAULT_VIA_COST,
              max_rip_ups: Optional[int] = None,
              net_index: Optional[Mapping[str, Tuple[Point, List[Point]]]]
              = None) -> None:
    """Drain a routing queue into ``layout`` (rip-up aware, in place).

    ``net_index`` maps net names outside ``nets`` to their ``(driver,
    sinks)`` pins, so rip-up victims of a partial re-route can be
    re-queued (:func:`reroute_nets` passes the full design).
    """
    search = _GridSearch(layout, via_cost)
    drivers: Dict[str, Point] = {name: driver
                                 for name, (driver, _s)
                                 in (net_index or {}).items()}
    drivers.update({name: driver for name, driver, _s in nets})
    #: sinks still needing a branch, per net; drained queue-style.
    pending: Dict[str, List[Point]] = {}
    queue: List[str] = []
    for name, _driver, sinks in nets:
        pending.setdefault(name, []).extend(sinks)
        queue.append(name)
    budget = (16 * max(1, len(nets)) if max_rip_ups is None
              else max_rip_ups)
    attempts: Dict[str, int] = {}
    rip_ups = 0
    index = 0
    while index < len(queue):
        name = queue[index]
        index += 1
        todo = sorted(set(pending.get(name, ())))
        if not todo or name in layout.failed:
            continue
        pending[name] = []
        limit = layout.layer_limits.get(name, layout.num_layers)
        # Escalate the foreign-edge penalty per attempt: a net that
        # keeps getting ripped grows ever more reluctant to rip back,
        # so rip-up wars settle into detours instead of cycling.
        attempts[name] = attempts.get(name, 0) + 1
        routed, ripped = _route_one(search, layout, name, drivers[name],
                                    todo, limit,
                                    penalty=_FOREIGN_PENALTY
                                    * attempts[name],
                                    base=layout.nets.get(name))
        if routed is None:
            layout.remove_net(name)
            if name not in layout.failed:
                layout.failed.append(name)
        else:
            layout.claim(name, routed)
        for victim, lost in ripped.items():
            rip_ups += 1
            if rip_ups > budget or victim not in drivers:
                layout.remove_net(victim)
                if victim not in layout.failed:
                    layout.failed.append(victim)
                continue
            pending.setdefault(victim, []).extend(lost)
            queue.append(victim)


def reroute_nets(layout: RoutedLayout, netlist: Netlist,
                 placement: Placement, nets: Iterable[str],
                 max_layer: Optional[int] = None,
                 via_cost: int = DEFAULT_VIA_COST) -> List[str]:
    """Rip up the named nets and re-route them (optionally capped at
    ``max_layer`` — the burying defense).  Returns the re-routed net
    names; invariants (edge exclusivity, connectivity) hold on return.
    """
    targets = [n for n in nets if n in layout.nets or n in layout.failed]
    for name in targets:
        layout.remove_net(name)
        if name in layout.failed:
            layout.failed.remove(name)
        if max_layer is not None:
            layout.layer_limits[name] = max_layer
    all_nets = {name: (name, driver, sinks)
                for name, driver, sinks in _scaled(
                    routing_nets(netlist, placement), layout.scale)}
    queue = [all_nets[name] for name in targets if name in all_nets]
    route_all(layout, queue, via_cost=via_cost,
              net_index={name: (driver, sinks)
                         for name, driver, sinks in all_nets.values()})
    return targets
