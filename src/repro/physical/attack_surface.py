"""Layout attack-surface metrics over routed geometry.

The paper's physical-design row of Table II names three layout-level
threats that cannot be judged from a netlist alone: front-side
**probing** of security-critical wires on the top metals, **fault
injection** (laser) onto critical wire segments, and **hardware
Trojan insertion** into free layout resources.  This module computes
one scalar exposure per threat from a :class:`~repro.physical.routing.
RoutedLayout`, in the style of the ISPD security-closure contest and
SALSy: each metric is an *attack-surface fraction* in ``[0, 1]``
where 0 is closed.

All three consume the same geometry primitives — per-layer occupancy
maps and critical-net node sets — so a closure loop can recompute
them cheaply after every ECO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

import numpy as np

from .routing import Node, Point, RoutedLayout

#: Number of top metal layers a front-side probe station can reach.
DEFAULT_PROBE_LAYERS = 2

#: Radius (Chebyshev, in routing tracks) of the modeled laser spot.
DEFAULT_SPOT_RADIUS = 2

#: Smallest contiguous free-site region a Trojan could occupy.
DEFAULT_MIN_TROJAN_SITES = 4

#: Fraction of free lateral routing capacity (layers 1-2 around the
#: region) a Trojan needs to wire itself up.
DEFAULT_MIN_FREE_CAPACITY = 0.2


def critical_nodes(layout: RoutedLayout,
                   critical_nets: Iterable[str]) -> Set[Node]:
    """All grid nodes carrying wires of the named nets."""
    nodes: Set[Node] = set()
    for name in critical_nets:
        routed = layout.nets.get(name)
        if routed is not None:
            nodes.update(routed.nodes())
    return nodes


def _cover_above(layout: RoutedLayout) -> np.ndarray:
    """``cover[l-1, x, y]`` — is there any geometry strictly above
    layer ``l`` at ``(x, y)``?  Shield cells count as cover; that is
    their entire purpose."""
    stack = layout.occupancy_stack()
    cover = np.zeros_like(stack)
    # cover[l] = any(stack[l+1:]) — scan top-down once.
    running = np.zeros(stack.shape[1:], dtype=bool)
    for l in range(layout.num_layers - 1, -1, -1):
        cover[l] = running
        running = running | stack[l]
    return cover


def uncovered_critical_nodes(layout: RoutedLayout,
                             critical_nets: Iterable[str],
                             ) -> List[Node]:
    """Critical-net nodes with no geometry above them (sorted)."""
    cover = _cover_above(layout)
    return sorted(n for n in critical_nodes(layout, critical_nets)
                  if not cover[n[2] - 1, n[0], n[1]])


@dataclass
class ProbingReport:
    """Front-side probing exposure of the critical nets.

    ``exposure`` is the fraction of critical-net nodes that sit on a
    probe-reachable top layer with nothing covering them — each such
    node is a milling target that reaches a secret wire without
    touching other metal first.
    """

    exposure: float
    exposed_nodes: List[Node]
    critical_node_count: int
    probe_layers: int

    def summary(self) -> str:
        """One-line human-readable report."""
        return (f"probing exposure {self.exposure:.3f} "
                f"({len(self.exposed_nodes)}/{self.critical_node_count} "
                f"critical nodes open on top {self.probe_layers} layers)")


def probing_exposure(layout: RoutedLayout,
                     critical_nets: Iterable[str],
                     probe_layers: int = DEFAULT_PROBE_LAYERS
                     ) -> ProbingReport:
    """Exposed critical-net area on the probe-reachable top metals."""
    crit = critical_nodes(layout, critical_nets)
    floor = layout.num_layers - probe_layers + 1
    cover = _cover_above(layout)
    exposed = sorted(n for n in crit
                     if n[2] >= floor
                     and not cover[n[2] - 1, n[0], n[1]])
    total = len(crit)
    return ProbingReport(
        exposure=(len(exposed) / total) if total else 0.0,
        exposed_nodes=exposed,
        critical_node_count=total,
        probe_layers=probe_layers)


@dataclass
class FiaReport:
    """Fault-injection (laser) exposure of the critical nets.

    ``exposure`` is the fraction of die positions from which a laser
    spot of the given radius reaches at least one *uncovered*
    critical-net node — covered segments are assumed shadowed by the
    metal above them (the standard front-side model).
    """

    exposure: float
    vulnerable_sites: int
    total_sites: int
    spot_radius: int
    target_nodes: List[Node] = field(default_factory=list)

    def summary(self) -> str:
        """One-line human-readable report."""
        return (f"FIA exposure {self.exposure:.3f} "
                f"({self.vulnerable_sites}/{self.total_sites} aim points "
                f"hit a critical wire, spot radius {self.spot_radius})")


def fia_exposure(layout: RoutedLayout, critical_nets: Iterable[str],
                 spot_radius: int = DEFAULT_SPOT_RADIUS) -> FiaReport:
    """Die-area fraction from which a laser spot reaches critical wire."""
    targets = uncovered_critical_nodes(layout, critical_nets)
    hit = np.zeros((layout.width, layout.height), dtype=bool)
    for x, y, _l in targets:
        x0 = max(0, x - spot_radius)
        x1 = min(layout.width, x + spot_radius + 1)
        y0 = max(0, y - spot_radius)
        y1 = min(layout.height, y + spot_radius + 1)
        hit[x0:x1, y0:y1] = True
    total = layout.width * layout.height
    return FiaReport(
        exposure=(float(hit.sum()) / total) if total else 0.0,
        vulnerable_sites=int(hit.sum()),
        total_sites=total,
        spot_radius=spot_radius,
        target_nodes=targets)


@dataclass
class TrojanRegion:
    """One contiguous free-site region and its routability."""

    sites: List[Point]
    free_capacity: float          # free lateral-edge fraction nearby

    @property
    def size(self) -> int:
        return len(self.sites)


@dataclass
class TrojanReport:
    """Trojan-insertion exploitability of the free layout resources.

    A free-site region is *exploitable* when it is large enough to
    host Trojan logic **and** the lower routing layers around it have
    enough free capacity to wire that logic up (ISPD-contest style).
    ``exposure`` is exploitable-site area over total die area.
    """

    exposure: float
    regions: List[TrojanRegion]
    exploitable_sites: int
    total_sites: int

    def summary(self) -> str:
        """One-line human-readable report."""
        exploitable = sum(1 for r in self.regions
                          if r.free_capacity >= 0)  # all kept regions
        return (f"Trojan insertability {self.exposure:.3f} "
                f"({self.exploitable_sites}/{self.total_sites} sites in "
                f"{exploitable} exploitable free regions)")


def free_site_map(layout: RoutedLayout,
                  occupied_sites: Iterable[Point]) -> np.ndarray:
    """Boolean map of placement sites free for extra cells.

    Placement-site coordinates (``site_width`` x ``site_height``), not
    routing tracks.  A site is free when no standard cell, ECO filler,
    or layer-1 shield geometry occupies it.
    """
    w, h = layout.site_width, layout.site_height
    scale = max(1, layout.scale)
    free = np.ones((w, h), dtype=bool)
    for x, y in occupied_sites:
        if 0 <= x < w and 0 <= y < h:
            free[x, y] = False
    for x, y in layout.fillers:
        if 0 <= x < w and 0 <= y < h:
            free[x, y] = False
    for x, y, l in layout.shields:
        if l == 1 and 0 <= x // scale < w and 0 <= y // scale < h:
            free[x // scale, y // scale] = False
    return free


def _components(free: np.ndarray) -> List[List[Point]]:
    """4-connected components of the free-site map (deterministic)."""
    width, height = free.shape
    seen = np.zeros_like(free)
    components: List[List[Point]] = []
    for x in range(width):
        for y in range(height):
            if not free[x, y] or seen[x, y]:
                continue
            stack = [(x, y)]
            seen[x, y] = True
            sites: List[Point] = []
            while stack:
                cx, cy = stack.pop()
                sites.append((cx, cy))
                for nx, ny in ((cx + 1, cy), (cx - 1, cy),
                               (cx, cy + 1), (cx, cy - 1)):
                    if (0 <= nx < width and 0 <= ny < height
                            and free[nx, ny] and not seen[nx, ny]):
                        seen[nx, ny] = True
                        stack.append((nx, ny))
            components.append(sorted(sites))
    return components


def trojan_insertability(layout: RoutedLayout,
                         occupied_sites: Iterable[Point],
                         min_sites: int = DEFAULT_MIN_TROJAN_SITES,
                         min_free_capacity: float = DEFAULT_MIN_FREE_CAPACITY,
                         wiring_layers: Sequence[int] = (1, 2),
                         margin: int = 1) -> TrojanReport:
    """Exploitable free placement area, ISPD-contest style.

    ``occupied_sites`` are the placed standard-cell sites.  Each free
    4-connected region of at least ``min_sites`` sites is checked for
    free lateral routing capacity on ``wiring_layers`` inside its
    bounding box (grown by ``margin`` sites, converted to routing
    tracks); regions with at least ``min_free_capacity`` free capacity
    are exploitable.
    """
    free = free_site_map(layout, occupied_sites)
    scale = max(1, layout.scale)
    total = layout.site_width * layout.site_height
    regions: List[TrojanRegion] = []
    exploitable_sites = 0
    for sites in _components(free):
        if len(sites) < min_sites:
            continue
        xs = [p[0] for p in sites]
        ys = [p[1] for p in sites]
        x0 = max(0, (min(xs) - margin) * scale)
        x1 = min(layout.width - 1, (max(xs) + margin) * scale)
        y0 = max(0, (min(ys) - margin) * scale)
        y1 = min(layout.height - 1, (max(ys) + margin) * scale)
        capacity = layout.lateral_edge_total(wiring_layers, x0, y0, x1, y1)
        used = layout.lateral_edges_used(wiring_layers, x0, y0, x1, y1)
        free_capacity = ((capacity - used) / capacity) if capacity else 0.0
        if free_capacity >= min_free_capacity:
            regions.append(TrojanRegion(sites, free_capacity))
            exploitable_sites += len(sites)
    return TrojanReport(
        exposure=(exploitable_sites / total) if total else 0.0,
        regions=regions,
        exploitable_sites=exploitable_sites,
        total_sites=total)
